#!/usr/bin/env python3
"""Compare two sets of Google-Benchmark JSON artifacts.

Usage:
    tools/bench_compare.py BASELINE_DIR CANDIDATE_DIR [options]

Both directories hold BENCH_<name>.json files as produced by
bench/run_all.sh (the repo root itself is a valid directory). The script
prints a per-benchmark delta table for every benchmark present in both
sets and exits non-zero when any *gated* benchmark — by default the
engine-facing BM_Reduce*/BM_Integrate*/BM_Aggregate* families — regresses
by more than the threshold (default 10%).

Comparisons are only meaningful between artifacts of the same build
type; the script refuses to compare when the recorded bench_build_type
(or, for older artifacts, library_build_type) differs.

Options:
    --threshold PCT   regression gate in percent (default 10)
    --gate REGEX      regex of gated benchmark names
                      (default: ^BM_(Reduce|Integrat|Aggregat))
    --all-gated       gate every common benchmark, not just the default
                      families
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

DEFAULT_GATE = r"^BM_(Reduce|Integrat|Aggregat)"


def load_set(directory):
    """(name -> real_time_ns, name -> problem, build_types).

    A benchmark with an unusable measurement — absent, non-numeric or
    zero real_time, unknown time unit — lands in the problem map with a
    human-readable reason instead of being silently dropped: if it is
    gated, the comparison must fail by name, not pretend the benchmark
    never ran.
    """
    out = {}
    problems = {}
    build_types = set()
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping {path}: {exc}", file=sys.stderr)
            continue
        if "benchmarks" not in doc:
            continue  # e.g. BENCH_trace_overhead.json, a different schema
        ctx = doc.get("context", {})
        build_types.add(
            ctx.get("bench_build_type") or ctx.get("library_build_type") or "?"
        )
        for bench in doc["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            name = bench.get("name")
            if not name:
                print(f"warning: unnamed benchmark entry in {path}",
                      file=sys.stderr)
                continue
            time_ns = bench.get("real_time")
            unit = bench.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
            if not isinstance(time_ns, (int, float)) or math.isnan(time_ns):
                problems[name] = f"real_time absent or non-numeric in {path.name}"
            elif scale is None:
                problems[name] = f"unknown time_unit {unit!r} in {path.name}"
            elif time_ns <= 0:
                problems[name] = f"non-positive real_time ({time_ns}) in {path.name}"
            else:
                out[name] = time_ns * scale
    return out, problems, build_types


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=10.0)
    parser.add_argument("--gate", default=DEFAULT_GATE)
    parser.add_argument("--all-gated", action="store_true")
    args = parser.parse_args()

    base, base_problems, base_types = load_set(args.baseline)
    cand, cand_problems, cand_types = load_set(args.candidate)
    # A set whose entries all failed to parse is empty; a set whose
    # entries measured badly still carries names to fail on below.
    if not base and not base_problems:
        print(f"error: no benchmark data in {args.baseline}", file=sys.stderr)
        return 2
    if not cand and not cand_problems:
        print(f"error: no benchmark data in {args.candidate}", file=sys.stderr)
        return 2
    if base_types != cand_types or len(base_types) != 1:
        print(
            f"error: build types differ (baseline {sorted(base_types)}, "
            f"candidate {sorted(cand_types)}); regenerate both sets from "
            "the same CMAKE_BUILD_TYPE before comparing",
            file=sys.stderr,
        )
        return 2

    gate_re = re.compile(args.gate)

    def is_gated(name):
        return args.all_gated or gate_re.search(name) is not None

    # A gated benchmark that the baseline measured must be measured by
    # the candidate too: a missing or unusable candidate entry is a
    # failure with a name and a reason, never a crash or a silent skip.
    failures = []  # (name, reason) pairs
    for name in sorted(set(base) | set(base_problems)):
        if not is_gated(name):
            continue
        if name in base_problems:
            # An unusable baseline measurement makes the comparison
            # meaningless whatever the candidate measured.
            failures.append((name, base_problems[name]))
        elif name in cand:
            continue
        elif name in cand_problems:
            failures.append((name, cand_problems[name]))
        else:
            failures.append((name, "missing from candidate"))
    for name in sorted(cand_problems):
        if is_gated(name) and name not in base and name not in base_problems:
            failures.append((name, cand_problems[name]))

    common = sorted(set(base) & set(cand))
    if not common and not failures:
        print("error: no common benchmarks", file=sys.stderr)
        return 2

    if common:
        width = max(len(n) for n in common)
        print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  "
              f"{'delta':>8}  gate")
        for name in common:
            b, c = base[name], cand[name]
            delta = (c / b - 1.0) * 100.0
            gated = is_gated(name)
            verdict = ""
            if gated:
                verdict = "FAIL" if delta > args.threshold else "ok"
                if delta > args.threshold:
                    failures.append((name, f"regressed {delta:+.1f}%"))
            print(f"{name:<{width}}  {b:>12.0f}  {c:>12.0f}  {delta:>+7.1f}%  "
                  f"{verdict}")

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"\nonly in baseline: {', '.join(only_base)}")
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand)}")

    if failures:
        print(
            f"\n{len(failures)} gated benchmark(s) failed the comparison "
            f"(threshold {args.threshold:.0f}%):",
            file=sys.stderr,
        )
        for name, reason in failures:
            print(f"  {name}: {reason}", file=sys.stderr)
        return 1
    print(f"\nall gated benchmarks within {args.threshold:.0f}% "
          f"({len(common)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
