#!/usr/bin/env python3
"""Compare two sets of Google-Benchmark JSON artifacts.

Usage:
    tools/bench_compare.py BASELINE_DIR CANDIDATE_DIR [options]

Both directories hold BENCH_<name>.json files as produced by
bench/run_all.sh (the repo root itself is a valid directory). The script
prints a per-benchmark delta table for every benchmark present in both
sets and exits non-zero when any *gated* benchmark — by default the
engine-facing BM_Reduce*/BM_Integrate*/BM_Aggregate* families — regresses
by more than the threshold (default 10%).

Comparisons are only meaningful between artifacts of the same build
type; the script refuses to compare when the recorded bench_build_type
(or, for older artifacts, library_build_type) differs.

Options:
    --threshold PCT   regression gate in percent (default 10)
    --gate REGEX      regex of gated benchmark names
                      (default: ^BM_(Reduce|Integrat|Aggregat))
    --all-gated       gate every common benchmark, not just the default
                      families
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

DEFAULT_GATE = r"^BM_(Reduce|Integrat|Aggregat)"


def load_set(directory):
    """name -> (real_time_ns, build_type) for every BENCH_*.json."""
    out = {}
    build_types = set()
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping {path}: {exc}", file=sys.stderr)
            continue
        if "benchmarks" not in doc:
            continue  # e.g. BENCH_trace_overhead.json, a different schema
        ctx = doc.get("context", {})
        build_types.add(
            ctx.get("bench_build_type") or ctx.get("library_build_type") or "?"
        )
        for bench in doc["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            name = bench["name"]
            time_ns = bench.get("real_time")
            unit = bench.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
            if time_ns is None or scale is None:
                continue
            out[name] = time_ns * scale
    return out, build_types


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=10.0)
    parser.add_argument("--gate", default=DEFAULT_GATE)
    parser.add_argument("--all-gated", action="store_true")
    args = parser.parse_args()

    base, base_types = load_set(args.baseline)
    cand, cand_types = load_set(args.candidate)
    if not base:
        print(f"error: no benchmark data in {args.baseline}", file=sys.stderr)
        return 2
    if not cand:
        print(f"error: no benchmark data in {args.candidate}", file=sys.stderr)
        return 2
    if base_types != cand_types or len(base_types) != 1:
        print(
            f"error: build types differ (baseline {sorted(base_types)}, "
            f"candidate {sorted(cand_types)}); regenerate both sets from "
            "the same CMAKE_BUILD_TYPE before comparing",
            file=sys.stderr,
        )
        return 2

    gate_re = re.compile(args.gate)
    common = sorted(set(base) & set(cand))
    if not common:
        print("error: no common benchmarks", file=sys.stderr)
        return 2

    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  "
          f"{'delta':>8}  gate")
    failures = []
    for name in common:
        b, c = base[name], cand[name]
        delta = (c / b - 1.0) * 100.0 if b > 0 else math.inf
        gated = args.all_gated or gate_re.search(name) is not None
        verdict = ""
        if gated:
            verdict = "FAIL" if delta > args.threshold else "ok"
            if delta > args.threshold:
                failures.append((name, delta))
        print(f"{name:<{width}}  {b:>12.0f}  {c:>12.0f}  {delta:>+7.1f}%  "
              f"{verdict}")

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"\nonly in baseline: {', '.join(only_base)}")
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand)}")

    if failures:
        print(
            f"\n{len(failures)} gated benchmark(s) regressed more than "
            f"{args.threshold:.0f}%:",
            file=sys.stderr,
        )
        for name, delta in failures:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nall gated benchmarks within {args.threshold:.0f}% "
          f"({len(common)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
