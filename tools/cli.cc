#include "tools/cli.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "analysis/independence.h"
#include "branch/merge.h"
#include "branch/rebase.h"
#include "branch/sim.h"
#include "analysis/lint.h"
#include "analysis/predict.h"
#include "analysis/report.h"
#include "analysis/schema_tier.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/string_util.h"
#include "core/aggregate.h"
#include "core/diff.h"
#include "core/integrate.h"
#include "core/invert.h"
#include "core/reconcile.h"
#include "core/reduce.h"
#include "exec/in_memory.h"
#include "label/sidecar.h"
#include "obs/explain.h"
#include "obs/exposition.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "pul/obtainable.h"
#include "exec/streaming.h"
#include "server/client.h"
#include "server/server.h"
#include "server/stat.h"
#include "store/version.h"
#include "workload/workload.h"
#include "label/labeling.h"
#include "pul/describe.h"
#include "pul/pul_io.h"
#include "xmark/generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/eval.h"
#include "xquery/parser.h"

namespace xupdate::tools {

namespace {

// Parsed command line: flags (--name value or --name=value) and
// positional operands.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  bool Has(const std::string& name) const { return flags.count(name) != 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

Result<Args> ParseArgs(const std::vector<std::string>& argv, size_t begin) {
  Args args;
  for (size_t i = begin; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      } else if (i + 1 >= argv.size()) {
        return Status::InvalidArgument("flag " + arg + " needs a value");
      } else {
        args.flags[arg.substr(2)] = argv[++i];
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IoError("cannot read " + path);
  }
  return buffer.str();
}

Status WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << content;
  if (!out.good()) return Status::IoError("cannot write " + path);
  return Status::OK();
}

Status RequireFlags(const Args& args,
                    std::initializer_list<const char*> names) {
  for (const char* name : names) {
    if (!args.Has(name)) {
      return Status::InvalidArgument(std::string("missing --") + name);
    }
  }
  return Status::OK();
}

// Validated numeric flag parsing, shared by every command: rejects
// non-numeric text, signs, embedded junk and 64-bit overflow with an
// error that names the flag, echoes the offending value and states the
// accepted range. `fallback` is returned when the flag is absent.
Result<int64_t> ParseFlagInt(const Args& args, const std::string& name,
                             int64_t fallback, int64_t min_value,
                             int64_t max_value) {
  if (!args.Has(name)) return fallback;
  std::string text = args.Get(name);
  int64_t value = ParseNonNegativeInt(text);
  if (value < 0) {
    bool digits_only =
        !text.empty() &&
        std::all_of(text.begin(), text.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        });
    if (digits_only) {
      return Status::InvalidArgument("--" + name + "=" + text +
                                     " overflows a 64-bit integer");
    }
    return Status::InvalidArgument(
        "--" + name + "=" + text +
        " is not a non-negative integer (digits only; no sign, no spaces)");
  }
  if (value < min_value || value > max_value) {
    return Status::InvalidArgument(
        "--" + name + "=" + text + " is out of range [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) + "]");
  }
  return value;
}

Result<double> ParseFlagDouble(const Args& args, const std::string& name,
                               double fallback, double min_value,
                               double max_value) {
  if (!args.Has(name)) return fallback;
  std::string text = args.Get(name);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() ||
      errno == ERANGE || !std::isfinite(value)) {
    return Status::InvalidArgument("--" + name + "=" + text +
                                   " is not a finite number");
  }
  if (value < min_value || value > max_value) {
    std::ostringstream range;
    range << "--" << name << "=" << text << " is out of range ["
          << min_value << ", " << max_value << "]";
    return Status::InvalidArgument(range.str());
  }
  return value;
}

Result<xml::Document> LoadDocument(const Args& args) {
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("doc")));
  return xml::ParseDocument(text);
}

Result<std::vector<pul::Pul>> LoadPuls(const std::vector<std::string>& paths) {
  std::vector<pul::Pul> puls;
  for (const std::string& path : paths) {
    XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
    XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
    puls.push_back(std::move(pul));
  }
  return puls;
}

Status WritePul(const pul::Pul& pul, const std::string& path,
                std::ostream& out) {
  XUPDATE_ASSIGN_OR_RETURN(std::string text, pul::SerializePul(pul));
  XUPDATE_RETURN_IF_ERROR(WriteFile(path, text));
  out << "wrote " << path << " (" << pul.size() << " operations, "
      << text.size() << " bytes)\n";
  return Status::OK();
}

Status CmdGenerate(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"bytes", "out"}));
  xmark::Config config;
  XUPDATE_ASSIGN_OR_RETURN(int64_t bytes,
                           ParseFlagInt(args, "bytes", 0, 1, INT64_MAX));
  config.target_bytes = static_cast<size_t>(bytes);
  XUPDATE_ASSIGN_OR_RETURN(int64_t seed,
                           ParseFlagInt(args, "seed", 42, 0, INT64_MAX));
  config.seed = static_cast<uint64_t>(seed);
  XUPDATE_ASSIGN_OR_RETURN(std::string text,
                           xmark::GenerateDocumentText(config));
  XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out"), text));
  out << "wrote " << args.Get("out") << " (" << text.size() << " bytes)\n";
  return Status::OK();
}

Status CmdProduce(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc", "update", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  label::Labeling labeling = label::Labeling::Build(doc);
  xquery::ProducerContext ctx;
  ctx.doc = &doc;
  ctx.labeling = &labeling;
  if (args.Has("id-base")) {
    XUPDATE_ASSIGN_OR_RETURN(int64_t base,
                             ParseFlagInt(args, "id-base", 0, 1, INT64_MAX));
    ctx.id_base = static_cast<xml::NodeId>(base);
  }
  std::string policies = args.Get("policies");
  ctx.policies.preserve_insertion_order =
      policies.find("order") != std::string::npos;
  ctx.policies.preserve_inserted_data =
      policies.find("inserted") != std::string::npos;
  ctx.policies.preserve_removed_data =
      policies.find("removed") != std::string::npos;
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul,
                           xquery::ProducePul(args.Get("update"), ctx));
  return WritePul(pul, args.Get("out"), out);
}

Status CmdApply(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc", "pul", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(std::string doc_text, ReadFile(args.Get("doc")));
  XUPDATE_ASSIGN_OR_RETURN(std::string pul_text, ReadFile(args.Get("pul")));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(pul_text));
  std::string engine = args.Get("engine", "streaming");
  std::string updated;
  if (engine == "streaming") {
    exec::StreamingEvaluator evaluator;
    XUPDATE_ASSIGN_OR_RETURN(updated, evaluator.Evaluate(doc_text, pul));
  } else if (engine == "inmemory") {
    exec::InMemoryEvaluator evaluator;
    XUPDATE_ASSIGN_OR_RETURN(updated, evaluator.Evaluate(doc_text, pul));
  } else {
    return Status::InvalidArgument("--engine must be streaming|inmemory");
  }
  XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out"), updated));
  out << "applied " << pul.size() << " operations with the " << engine
      << " engine; wrote " << args.Get("out") << " (" << updated.size()
      << " bytes)\n";
  return Status::OK();
}

// Shared reasoning-engine flags: --parallelism N selects the worker
// count of the shard-by-subtree engine (1 = sequential), --metrics PATH
// dumps the engine's counters/timers as JSON ("-" for the output
// stream).
Result<int> ParseParallelismFlag(const Args& args) {
  XUPDATE_ASSIGN_OR_RETURN(int64_t n,
                           ParseFlagInt(args, "parallelism", 1, 1, 256));
  return static_cast<int>(n);
}

Status MaybeDumpMetrics(const Args& args, const Metrics& metrics,
                        std::ostream& out) {
  if (!args.Has("metrics")) return Status::OK();
  std::string json = metrics.ToJson() + "\n";
  std::string path = args.Get("metrics");
  if (path == "-") {
    out << json;
    return Status::OK();
  }
  XUPDATE_RETURN_IF_ERROR(WriteFile(path, json));
  out << "wrote metrics " << path << "\n";
  return Status::OK();
}

// Shared tracing flags: --trace PATH writes the deterministic JSONL
// decision journal ("-" for the output stream) consumed by `xupdate
// explain`, --chrome-trace PATH the Perfetto/chrome://tracing timeline.
bool WantTrace(const Args& args) {
  return args.Has("trace") || args.Has("chrome-trace");
}

Status MaybeWriteTraces(const Args& args, const obs::Tracer& tracer,
                        std::ostream& out) {
  if (args.Has("trace")) {
    std::string journal = obs::ToJournalJsonl(tracer);
    std::string path = args.Get("trace");
    if (path == "-") {
      out << journal;
    } else {
      XUPDATE_RETURN_IF_ERROR(WriteFile(path, journal));
      out << "wrote trace " << path << " (" << tracer.size()
          << " events)\n";
    }
  }
  if (args.Has("chrome-trace")) {
    std::string path = args.Get("chrome-trace");
    XUPDATE_RETURN_IF_ERROR(WriteFile(path, obs::ToChromeTrace(tracer)));
    out << "wrote chrome trace " << path << "\n";
  }
  return Status::OK();
}

Status CmdReduce(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"pul", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("pul")));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
  std::string mode_name = args.Get("mode", "deterministic");
  core::ReduceOptions options;
  if (mode_name == "plain") {
    options.mode = core::ReduceMode::kPlain;
  } else if (mode_name == "deterministic") {
    options.mode = core::ReduceMode::kDeterministic;
  } else if (mode_name == "canonical") {
    options.mode = core::ReduceMode::kCanonical;
  } else {
    return Status::InvalidArgument(
        "--mode must be plain|deterministic|canonical");
  }
  XUPDATE_ASSIGN_OR_RETURN(options.parallelism, ParseParallelismFlag(args));
  Metrics metrics;
  options.metrics = &metrics;
  obs::Tracer tracer;
  if (WantTrace(args)) options.tracer = &tracer;
  core::ReduceStats stats;
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul reduced,
                           core::Reduce(pul, options, &stats));
  out << "reduced " << stats.input_ops << " -> " << stats.output_ops
      << " operations (" << stats.rule_applications
      << " rule applications, " << stats.shards << " shards)\n";
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  return WritePul(reduced, args.Get("out"), out);
}

Status CmdAggregate(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"out"}));
  if (args.positional.size() < 2) {
    return Status::InvalidArgument("aggregate needs at least two PULs");
  }
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> puls,
                           LoadPuls(args.positional));
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : puls) ptrs.push_back(&pul);
  core::AggregateOptions options;
  Metrics metrics;
  options.metrics = &metrics;
  obs::Tracer tracer;
  if (WantTrace(args)) options.tracer = &tracer;
  core::AggregateStats stats;
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul aggregate,
                           core::Aggregate(ptrs, options, &stats));
  out << "aggregated " << stats.input_ops << " operations from "
      << puls.size() << " PULs into " << stats.output_ops << " ("
      << stats.folded_ops << " folded into parameter trees)\n";
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  return WritePul(aggregate, args.Get("out"), out);
}

Status CmdIntegrate(const Args& args, std::ostream& out) {
  if (args.positional.size() < 2) {
    return Status::InvalidArgument("integrate needs at least two PULs");
  }
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> puls,
                           LoadPuls(args.positional));
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : puls) ptrs.push_back(&pul);
  core::IntegrateOptions options;
  XUPDATE_ASSIGN_OR_RETURN(options.parallelism, ParseParallelismFlag(args));
  Metrics metrics;
  options.metrics = &metrics;
  obs::Tracer tracer;
  if (WantTrace(args)) options.tracer = &tracer;
  XUPDATE_ASSIGN_OR_RETURN(core::IntegrationResult result,
                           core::Integrate(ptrs, options));
  out << "integration: " << result.merged.size()
      << " non-conflicting operations, " << result.conflicts.size()
      << " conflicts\n";
  std::map<std::string, int> histogram;
  for (const core::Conflict& conflict : result.conflicts) {
    ++histogram[std::string(core::ConflictTypeName(conflict.type))];
  }
  for (const auto& [name, count] : histogram) {
    out << "  " << name << ": " << count << "\n";
  }
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  if (args.Has("out")) {
    return WritePul(result.merged, args.Get("out"), out);
  }
  return Status::OK();
}

Status CmdReconcile(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"out"}));
  if (args.positional.size() < 2) {
    return Status::InvalidArgument("reconcile needs at least two PULs");
  }
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> puls,
                           LoadPuls(args.positional));
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : puls) ptrs.push_back(&pul);
  core::ReconcileOptions options;
  XUPDATE_ASSIGN_OR_RETURN(options.parallelism, ParseParallelismFlag(args));
  Metrics metrics;
  options.metrics = &metrics;
  obs::Tracer tracer;
  if (WantTrace(args)) options.tracer = &tracer;
  core::ReconcileStats stats;
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul merged,
                           core::Reconcile(ptrs, options, &stats));
  out << "reconciled " << stats.conflicts_total << " conflicts ("
      << stats.conflicts_auto_solved << " auto-solved, "
      << stats.operations_excluded << " operations excluded, "
      << stats.operations_generated << " generated)\n";
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  return WritePul(merged, args.Get("out"), out);
}

Status CmdInvert(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc", "pul", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  label::Labeling labeling = label::Labeling::Build(doc);
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("pul")));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul inverse,
                           core::Invert(doc, labeling, pul));
  return WritePul(inverse, args.Get("out"), out);
}

Status CmdQuery(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc", "path"}));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  XUPDATE_ASSIGN_OR_RETURN(xquery::PathExpr path,
                           xquery::ParsePath(args.Get("path")));
  XUPDATE_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                           xquery::EvaluatePath(doc, path));
  out << nodes.size() << " nodes\n";
  for (xml::NodeId id : nodes) {
    switch (doc.type(id)) {
      case xml::NodeType::kElement: {
        XUPDATE_ASSIGN_OR_RETURN(std::string text,
                                 xml::SerializeSubtree(doc, id, {}));
        if (text.size() > 120) text = text.substr(0, 117) + "...";
        out << "  #" << id << " " << text << "\n";
        break;
      }
      case xml::NodeType::kAttribute:
        out << "  #" << id << " @" << doc.name(id) << "=\"" << doc.value(id)
            << "\"\n";
        break;
      case xml::NodeType::kText:
        out << "  #" << id << " \"" << doc.value(id) << "\"\n";
        break;
    }
  }
  return Status::OK();
}

Status CmdSidecarSave(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(
      RequireFlags(args, {"doc", "out-doc", "out-sidecar"}));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  label::Labeling labeling = label::Labeling::Build(doc);
  XUPDATE_ASSIGN_OR_RETURN(std::string plain, xml::SerializeDocument(doc));
  XUPDATE_ASSIGN_OR_RETURN(std::string sidecar,
                           label::SaveSidecar(doc, labeling));
  XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out-doc"), plain));
  XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out-sidecar"), sidecar));
  out << "wrote " << args.Get("out-doc") << " (" << plain.size()
      << " bytes, pristine) and " << args.Get("out-sidecar") << " ("
      << sidecar.size() << " bytes)\n";
  return Status::OK();
}

Status CmdSidecarLoad(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc", "sidecar", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(std::string plain, ReadFile(args.Get("doc")));
  XUPDATE_ASSIGN_OR_RETURN(std::string sidecar,
                           ReadFile(args.Get("sidecar")));
  XUPDATE_ASSIGN_OR_RETURN(label::SidecarDocument loaded,
                           label::LoadWithSidecar(plain, sidecar));
  xml::SerializeOptions options;
  options.with_ids = true;
  XUPDATE_ASSIGN_OR_RETURN(std::string annotated,
                           xml::SerializeDocument(loaded.doc, options));
  XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out"), annotated));
  out << "wrote " << args.Get("out") << " (" << annotated.size()
      << " bytes, annotated)\n";
  return Status::OK();
}

Status CmdDiff(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"from", "to", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(std::string from_text,
                           ReadFile(args.Get("from")));
  XUPDATE_ASSIGN_OR_RETURN(std::string to_text, ReadFile(args.Get("to")));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document from,
                           xml::ParseDocument(from_text));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document to, xml::ParseDocument(to_text));
  label::Labeling labeling = label::Labeling::Build(from);
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul delta,
                           core::ComputeDelta(from, labeling, to));
  return WritePul(delta, args.Get("out"), out);
}

Status CmdEquivalent(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc"}));
  if (args.positional.size() != 2) {
    return Status::InvalidArgument("equivalent takes exactly two PULs");
  }
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> puls,
                           LoadPuls(args.positional));
  // Obtainable-set enumeration is exponential in the non-determinism of
  // the PULs; this command targets reasoning on small PULs.
  XUPDATE_ASSIGN_OR_RETURN(bool equivalent,
                           pul::AreEquivalent(doc, puls[0], puls[1]));
  if (equivalent) {
    out << "equivalent\n";
    return Status::OK();
  }
  XUPDATE_ASSIGN_OR_RETURN(bool sub12,
                           pul::IsSubstitutable(doc, puls[0], puls[1]));
  XUPDATE_ASSIGN_OR_RETURN(bool sub21,
                           pul::IsSubstitutable(doc, puls[1], puls[0]));
  if (sub12) {
    out << "first substitutable to second\n";
  } else if (sub21) {
    out << "second substitutable to first\n";
  } else {
    out << "not equivalent\n";
  }
  return Status::OK();
}

Status CmdShow(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"pul"}));
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("pul")));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
  out << pul.size() << " operations\n" << pul::DescribePul(pul);
  return Status::OK();
}

Status CmdStats(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc"}));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  size_t elements = 0;
  size_t attributes = 0;
  size_t texts = 0;
  size_t text_bytes = 0;
  int max_depth = 0;
  for (xml::NodeId id : doc.AllNodesInOrder()) {
    switch (doc.type(id)) {
      case xml::NodeType::kElement:
        ++elements;
        break;
      case xml::NodeType::kAttribute:
        ++attributes;
        break;
      case xml::NodeType::kText:
        ++texts;
        text_bytes += doc.value(id).size();
        break;
    }
    max_depth = std::max(max_depth, doc.Level(id));
  }
  out << "elements:   " << elements << "\n"
      << "attributes: " << attributes << "\n"
      << "texts:      " << texts << " (" << text_bytes << " bytes)\n"
      << "max depth:  " << max_depth << "\n"
      << "max id:     " << doc.max_assigned_id() << "\n";
  return Status::OK();
}

// Loads a --schema flag value: "builtin:xmark" or a path to a DTD file
// in the subset schema::Schema::ParseDtd documents.
Result<schema::Schema> LoadSchema(const std::string& spec) {
  if (spec == "builtin:xmark") return schema::Schema::BuiltinXmark();
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(spec));
  return schema::Schema::ParseDtd(text);
}

// `xupdate analyze PUL... [--schema dtd|builtin:xmark] [--out
// report.json]`: the static analyzer as a batch tool. Emits one JSON
// object — per-PUL lint diagnostics and reduction-effect prediction,
// plus the pairwise independence verdict for every pair when two or
// more PULs are given. With --schema, the schema lint (XU008-XU010)
// joins the per-PUL diagnostics, each pair gains a "tier0" marker (true
// when the type-level tier proved it independent without running the
// pairwise sweep) and a trailing "schema" object reports the tier's
// precision — the fraction of pairs resolved at type level. The report
// is byte-deterministic, so it can be golden-tested and diffed.
Status CmdAnalyze(const Args& args, std::ostream& out) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("analyze needs at least one PUL");
  }
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> puls,
                           LoadPuls(args.positional));
  std::optional<schema::Schema> schema;
  std::vector<schema::TypeSummary> summaries;
  if (args.Has("schema")) {
    XUPDATE_ASSIGN_OR_RETURN(schema::Schema loaded,
                             LoadSchema(args.Get("schema")));
    schema.emplace(std::move(loaded));
    summaries.reserve(puls.size());
    for (const pul::Pul& pul : puls) {
      summaries.push_back(schema::InferTouchedTypes(*schema, pul));
    }
  }
  obs::Tracer tracer;
  obs::TraceLane lane;
  if (WantTrace(args)) {
    lane = tracer.Lane(tracer.NextPhase(), 0, "analyze");
  }
  auto ref = [](size_t pul, int op) {
    return "P" + std::to_string(pul) + "#" + std::to_string(op);
  };
  std::ostringstream json;
  json << "{\"puls\":[";
  for (size_t i = 0; i < puls.size(); ++i) {
    if (i > 0) json << ",";
    analysis::DiagnosticReport lint = analysis::LintPul(puls[i]);
    if (schema.has_value()) {
      analysis::DiagnosticReport schema_lint =
          analysis::LintPulWithSchema(*schema, puls[i]);
      lint.insert(lint.end(), schema_lint.begin(), schema_lint.end());
      std::sort(lint.begin(), lint.end(),
                [](const analysis::Diagnostic& a,
                   const analysis::Diagnostic& b) {
                  if (a.op_index != b.op_index) {
                    return a.op_index < b.op_index;
                  }
                  return a.code < b.code;
                });
    }
    analysis::ReductionPrediction prediction =
        analysis::PredictReduction(puls[i]);
    if (lane.enabled()) {
      for (const analysis::Diagnostic& d : lint) {
        std::vector<std::string> ops = {ref(i, d.op_index)};
        if (d.related_op >= 0) ops.push_back(ref(i, d.related_op));
        lane.Emit(obs::EventKind::kNote, "lint", std::move(ops), d.code,
                  d.message);
      }
      lane.Emit(obs::EventKind::kNote, "prediction", {}, {},
                "P" + std::to_string(i) + ": " +
                    std::to_string(prediction.input_ops) + " ops, <= " +
                    std::to_string(prediction.surviving_upper_bound) +
                    " survive");
    }
    json << "{\"path\":\"" << analysis::JsonEscape(args.positional[i])
         << "\",\"ops\":" << puls[i].size()
         << ",\"lint\":" << analysis::DiagnosticsToJson(lint)
         << ",\"prediction\":" << analysis::PredictionToJson(prediction)
         << "}";
  }
  json << "],\"independence\":[";
  bool first = true;
  size_t pairs = 0;
  size_t tier0_hits = 0;
  for (size_t i = 0; i < puls.size(); ++i) {
    for (size_t j = i + 1; j < puls.size(); ++j) {
      if (!first) json << ",";
      first = false;
      ++pairs;
      bool tier0 = false;
      analysis::IndependenceReport verdict;
      if (schema.has_value()) {
        analysis::TieredIndependence tiered =
            analysis::AnalyzeIndependenceTiered(summaries[i], summaries[j],
                                                puls[i], puls[j]);
        tier0 = tiered.resolved_at_tier0;
        if (tier0) ++tier0_hits;
        verdict = std::move(tiered.report);
      } else {
        verdict = analysis::AnalyzeIndependence(puls[i], puls[j]);
      }
      if (lane.enabled()) {
        std::vector<std::string> ops;
        if (verdict.op_a >= 0) ops.push_back(ref(i, verdict.op_a));
        if (verdict.op_b >= 0) ops.push_back(ref(j, verdict.op_b));
        lane.Emit(
            obs::EventKind::kNote, "independence", std::move(ops),
            std::string(analysis::IndependenceVerdictName(verdict.verdict)),
            verdict.reason);
      }
      json << "{\"a\":" << i << ",\"b\":" << j
           << ",\"report\":" << analysis::IndependenceToJson(verdict);
      if (schema.has_value()) {
        json << ",\"tier0\":" << (tier0 ? "true" : "false");
      }
      json << "}";
    }
  }
  json << "]";
  if (schema.has_value()) {
    // Fixed 3-decimal precision keeps the line byte-deterministic; a
    // pairless report (one PUL) is vacuously fully resolved.
    double precision =
        pairs == 0 ? 1.0
                   : static_cast<double>(tier0_hits) /
                         static_cast<double>(pairs);
    char fixed[16];
    std::snprintf(fixed, sizeof(fixed), "%.3f", precision);
    json << ",\"schema\":{\"types\":" << schema->num_types()
         << ",\"pairs\":" << pairs << ",\"tier0\":" << tier0_hits
         << ",\"precision\":\"" << fixed << "\"}";
  }
  json << "}";
  std::string text = json.str() + "\n";
  if (args.Has("out") && args.Get("out") != "-") {
    XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out"), text));
    out << "wrote " << args.Get("out") << "\n";
  } else {
    out << text;
  }
  return MaybeWriteTraces(args, tracer, out);
}

// `xupdate explain journal.jsonl [--op ID]`: folds a --trace journal
// back into per-operation provenance chains (obs/explain.h). With --op
// it prints the story of one operation; without, every known operation.
Status CmdExplain(const Args& args, std::ostream& out) {
  if (args.positional.size() != 1) {
    return Status::InvalidArgument("explain takes exactly one journal");
  }
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.positional[0]));
  XUPDATE_ASSIGN_OR_RETURN(std::vector<obs::TraceEvent> events,
                           obs::ParseJournal(text));
  XUPDATE_ASSIGN_OR_RETURN(obs::ExplainReport report,
                           obs::BuildExplainReport(events));
  out << obs::RenderChains(report, args.Get("op"));
  return Status::OK();
}

// `xupdate store <init|commit|checkout|log|compact|rollback|verify|
// branch|merge|rebase>`: the durable versioned update store
// (store/version.h) plus the branch/merge subsystem (src/branch/) as a
// tool. commit/checkout/log address a branch with --branch NAME
// ("main" is the mainline).
// Shared flags: --dir DIR (the store directory), --fsync
// always|batch|never, --snapshot-every N, --snapshot-bytes N,
// --parallelism N, --metrics PATH, --trace PATH. The environment
// variable XUPDATE_STORE_FAIL_AFTER_BYTES, when set to a non-negative
// integer, injects a journal write failure after that many appended
// bytes (crash-testing shim; see WalOptions::fail_after_bytes).
Result<store::StoreOptions> ParseStoreOptions(const Args& args,
                                              Metrics* metrics,
                                              obs::Tracer* tracer) {
  store::StoreOptions options;
  options.metrics = metrics;
  if (WantTrace(args)) options.tracer = tracer;
  if (args.Has("fsync") &&
      !store::FsyncPolicyFromName(args.Get("fsync"), &options.fsync)) {
    return Status::InvalidArgument("--fsync must be always|batch|never");
  }
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t snapshot_every,
      ParseFlagInt(args, "snapshot-every",
                   static_cast<int64_t>(options.snapshot_every), 0,
                   INT64_MAX));
  options.snapshot_every = static_cast<uint64_t>(snapshot_every);
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t snapshot_bytes,
      ParseFlagInt(args, "snapshot-bytes",
                   static_cast<int64_t>(options.snapshot_bytes), 0,
                   INT64_MAX));
  options.snapshot_bytes = static_cast<uint64_t>(snapshot_bytes);
  XUPDATE_ASSIGN_OR_RETURN(options.parallelism, ParseParallelismFlag(args));
  if (const char* budget = std::getenv("XUPDATE_STORE_FAIL_AFTER_BYTES");
      budget != nullptr && *budget != '\0') {
    int64_t n = ParseNonNegativeInt(budget);
    if (n < 0) {
      return Status::InvalidArgument(
          "bad XUPDATE_STORE_FAIL_AFTER_BYTES value");
    }
    options.fail_after_bytes = n;
  }
  return options;
}

Result<uint64_t> ParseVersionFlag(const Args& args, const char* name) {
  XUPDATE_ASSIGN_OR_RETURN(int64_t v,
                           ParseFlagInt(args, name, 0, 0, INT64_MAX));
  return static_cast<uint64_t>(v);
}

Result<pul::Policies> ParsePoliciesFlag(const Args& args) {
  pul::Policies policies;
  if (!args.Has("policies")) return policies;
  std::vector<std::string> names;
  std::istringstream list(args.Get("policies"));
  for (std::string piece; std::getline(list, piece, ',');) {
    names.push_back(std::string(Trim(piece)));
  }
  for (const std::string& name : names) {
    if (name == "preserve-insertion-order") {
      policies.preserve_insertion_order = true;
    } else if (name == "preserve-inserted-data") {
      policies.preserve_inserted_data = true;
    } else if (name == "preserve-removed-data") {
      policies.preserve_removed_data = true;
    } else if (!name.empty()) {
      return Status::InvalidArgument(
          "--policies accepts a comma list of preserve-insertion-order|"
          "preserve-inserted-data|preserve-removed-data, got \"" + name +
          "\"");
    }
  }
  return policies;
}

// Branch heads in name order, appended to every `store log` output so
// the one command shows the whole journal family.
void PrintBranchHeads(const store::VersionStore& vs, std::ostream& out) {
  std::vector<std::string> names = vs.BranchNames();
  if (names.empty()) return;
  out << "branches:\n";
  for (const std::string& name : names) {
    auto info = vs.GetBranch(name);
    if (!info.ok()) continue;
    out << "  " << name << ": head " << info->head << " (fork "
        << info->fork << " of " << info->parent << ")\n";
  }
}

void PrintLogEntry(const store::LogEntry& entry, bool with_ops,
                   std::ostream& out) {
  switch (entry.type) {
    case store::FrameType::kPul:
      out << "  pul       v" << entry.version;
      break;
    case store::FrameType::kAggregate:
      out << "  aggregate v" << entry.aux << " -> v" << entry.version;
      break;
    case store::FrameType::kUndo:
      out << "  undo      v" << entry.version << " -> v"
          << entry.version - 1;
      break;
    case store::FrameType::kSnapshot:
      out << "  snapshot  v" << entry.version;
      break;
    case store::FrameType::kMerge:
      out << "  merge     v" << entry.aux << " -> v" << entry.version;
      break;
    case store::FrameType::kBranchMeta:
      out << "  meta     ";
      break;
  }
  if (with_ops && entry.type != store::FrameType::kSnapshot &&
      entry.type != store::FrameType::kBranchMeta) {
    out << "  " << entry.ops << " ops";
  }
  out << "  (" << entry.payload_bytes << " bytes at offset "
      << entry.offset << ")\n";
}

Status CmdStore(const Args& args, std::ostream& out) {
  if (args.positional.empty()) {
    return Status::InvalidArgument(
        "store needs a subcommand: "
        "init|commit|checkout|log|compact|rollback|verify|branch|merge|"
        "rebase");
  }
  const std::string& sub = args.positional[0];
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"dir"}));
  std::string dir = args.Get("dir");
  Metrics metrics;
  obs::Tracer tracer;
  XUPDATE_ASSIGN_OR_RETURN(store::StoreOptions options,
                           ParseStoreOptions(args, &metrics, &tracer));

  Status result = Status::OK();
  if (sub == "init") {
    XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc"}));
    XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("doc")));
    XUPDATE_RETURN_IF_ERROR(store::VersionStore::Init(dir, text, options));
    out << "initialized store " << dir << " at version 0\n";
  } else {
    store::OpenReport report;
    XUPDATE_ASSIGN_OR_RETURN(
        store::VersionStore vs,
        store::VersionStore::Open(dir, options, &report));
    if (report.wal.truncated_bytes > 0) {
      out << "recovered journal: dropped " << report.wal.truncated_bytes
          << " torn bytes, head is version " << vs.head() << "\n";
    }
    std::string branch = args.Get("branch", "main");
    if (sub == "commit") {
      XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"pul"}));
      XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("pul")));
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
      XUPDATE_ASSIGN_OR_RETURN(uint64_t version,
                               vs.CommitOnBranch(branch, pul));
      out << "committed version " << version << " (" << pul.size()
          << " operations)";
      if (branch != "main") out << " on branch " << branch;
      out << "\n";
    } else if (sub == "checkout") {
      XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"version", "out"}));
      XUPDATE_ASSIGN_OR_RETURN(uint64_t version,
                               ParseVersionFlag(args, "version"));
      XUPDATE_ASSIGN_OR_RETURN(std::string xml,
                               vs.CheckoutXmlBranch(branch, version));
      XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out"), xml));
      out << "checked out version " << version << " to " << args.Get("out")
          << " (" << xml.size() << " bytes)\n";
    } else if (sub == "log") {
      if (args.Has("branch") && branch != "main") {
        XUPDATE_ASSIGN_OR_RETURN(store::BranchInfo info,
                                 vs.GetBranch(branch));
        out << "branch " << branch << ": head " << info.head << " (fork "
            << info.fork << " of " << info.parent << ")\n";
        XUPDATE_ASSIGN_OR_RETURN(
            std::vector<store::LogEntry> entries,
            vs.LogBranch(branch, /*with_op_counts=*/true));
        for (const store::LogEntry& entry : entries) {
          PrintLogEntry(entry, /*with_ops=*/true, out);
        }
      } else {
        out << "head: " << vs.head() << "\n";
        out << "snapshots:";
        for (uint64_t v : vs.snapshots().versions()) out << " " << v;
        out << "\n";
        bool with_ops = args.Has("branch");
        if (with_ops) {
          XUPDATE_ASSIGN_OR_RETURN(
              std::vector<store::LogEntry> entries,
              vs.LogBranch("main", /*with_op_counts=*/true));
          for (const store::LogEntry& entry : entries) {
            PrintLogEntry(entry, with_ops, out);
          }
        } else {
          for (const store::LogEntry& entry : vs.Log()) {
            PrintLogEntry(entry, with_ops, out);
          }
        }
      }
      PrintBranchHeads(vs, out);
    } else if (sub == "branch") {
      if (!args.Has("name")) {
        // No --name: list.
        std::vector<std::string> names = vs.BranchNames();
        out << "branches: " << names.size() << "\n";
        PrintBranchHeads(vs, out);
      } else {
        XUPDATE_ASSIGN_OR_RETURN(pul::Policies policies,
                                 ParsePoliciesFlag(args));
        std::string parent = args.Get("parent", "main");
        XUPDATE_ASSIGN_OR_RETURN(store::BranchInfo parent_info,
                                 vs.GetBranch(parent));
        uint64_t at = parent_info.head;
        if (args.Has("at")) {
          XUPDATE_ASSIGN_OR_RETURN(at, ParseVersionFlag(args, "at"));
        }
        XUPDATE_RETURN_IF_ERROR(
            vs.CreateBranch(args.Get("name"), parent, at, policies));
        out << "created branch " << args.Get("name") << " forking "
            << parent << " at version " << at << "\n";
      }
    } else if (sub == "merge") {
      XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"a", "b"}));
      branch::MergeOptions merge_options;
      merge_options.parallelism = options.parallelism;
      merge_options.metrics = &metrics;
      if (WantTrace(args)) merge_options.tracer = &tracer;
      schema::Schema xmark_schema = schema::Schema::BuiltinXmark();
      if (args.Has("schema")) {
        merge_options.use_schema_analysis = true;
        merge_options.schema = &xmark_schema;
      }
      branch::MergeStats stats;
      XUPDATE_ASSIGN_OR_RETURN(
          store::MergeCommitResult merged,
          branch::Merge(&vs, args.Get("a"), args.Get("b"), merge_options,
                        &stats));
      if (stats.no_op) {
        out << "merge is a no-op (neither side diverged)\n";
      } else if (stats.fast_forward) {
        out << "fast-forwarded";
      } else {
        out << "merged " << stats.suffix_a << "+" << stats.suffix_b
            << " divergent commits, " << stats.merged_ops
            << " reconciled ops, " << stats.reconcile.conflicts_total
            << " conflicts (" << stats.reconcile.operations_excluded
            << " ops excluded)";
      }
      if (!stats.no_op) {
        out << ": " << args.Get("a") << " -> v" << merged.head_a << ", "
            << args.Get("b") << " -> v" << merged.head_b << "\n";
      }
    } else if (sub == "rebase") {
      XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"name", "onto"}));
      branch::RebaseOptions rebase_options;
      XUPDATE_ASSIGN_OR_RETURN(rebase_options.onto,
                               ParseVersionFlag(args, "onto"));
      rebase_options.skip_conflicting = args.Has("skip-conflicts");
      rebase_options.parallelism = options.parallelism;
      rebase_options.metrics = &metrics;
      if (WantTrace(args)) rebase_options.tracer = &tracer;
      XUPDATE_ASSIGN_OR_RETURN(
          branch::RebaseReport report2,
          branch::Rebase(&vs, args.Get("name"), rebase_options));
      for (const branch::RebaseConflict& conflict : report2.conflicts) {
        out << "conflict at old v" << conflict.version << ":";
        for (core::ConflictType type : conflict.types) {
          out << " " << core::ConflictTypeName(type);
        }
        out << " (" << conflict.detail << ")\n";
      }
      if (report2.applied) {
        out << "rebased " << report2.branch << " onto v"
            << report2.new_fork << ": " << report2.replayed
            << " commits replayed, " << report2.dropped << " dropped\n";
      } else {
        out << "rebase aborted: " << report2.conflicts.size()
            << " conflicting commits (use --skip-conflicts to drop "
               "them)\n";
      }
    } else if (sub == "compact") {
      store::CompactStats stats;
      XUPDATE_RETURN_IF_ERROR(vs.Compact(&stats));
      out << "compacted " << stats.segments_compacted << "/"
          << stats.segments_considered << " segments ("
          << stats.segments_skipped << " skipped): " << stats.frames_before
          << " -> " << stats.frames_after << " frames, "
          << stats.journal_bytes_before << " -> "
          << stats.journal_bytes_after << " journal bytes, "
          << stats.input_ops << " -> " << stats.output_ops
          << " operations\n";
    } else if (sub == "rollback") {
      XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"to"}));
      XUPDATE_ASSIGN_OR_RETURN(uint64_t to, ParseVersionFlag(args, "to"));
      XUPDATE_ASSIGN_OR_RETURN(uint64_t head, vs.Rollback(to));
      out << "rolled back to version " << to << " as new version " << head
          << "\n";
    } else if (sub == "verify") {
      XUPDATE_ASSIGN_OR_RETURN(store::VerifyReport report2, vs.Verify());
      out << "verify ok: " << report2.frames << " frames, "
          << report2.snapshots << " snapshots, head " << report2.head
          << ", " << report2.replayed_versions << " versions replayed, "
          << report2.snapshots_checked << " snapshots byte-checked, "
          << report2.undo_chains_checked << " undo chains walked, "
          << report2.merges_checked << " merges checked\n";
      for (const store::BranchVerifyResult& branch_result :
           report2.branches) {
        out << "  branch " << branch_result.name << ": "
            << branch_result.frames << " frames, head "
            << branch_result.head << ", " << branch_result.replayed_versions
            << " versions replayed, " << branch_result.merges_checked
            << " merges checked\n";
      }
    } else {
      result = Status::InvalidArgument("unknown store subcommand \"" + sub +
                                       "\"");
    }
    if (result.ok()) XUPDATE_RETURN_IF_ERROR(vs.Close());
  }
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  return result;
}

// ---------------------------------------------------------------------------
// serve / loadgen: the PUL reasoning daemon and its driver.

std::atomic<bool> g_serve_signal{false};
std::atomic<bool> g_serve_usr1{false};

void HandleServeSignal(int) { g_serve_signal.store(true); }
void HandleServeUsr1(int) { g_serve_usr1.store(true); }

Status CmdServe(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"socket", "data-dir"}));
  Metrics metrics;
  obs::Tracer tracer;
  server::ServerOptions options;
  options.socket_path = args.Get("socket");
  options.data_dir = args.Get("data-dir");
  XUPDATE_ASSIGN_OR_RETURN(options.store,
                           ParseStoreOptions(args, &metrics, &tracer));
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t max_pending,
      ParseFlagInt(args, "max-pending", 128, 1, 1 << 20));
  options.max_pending = static_cast<size_t>(max_pending);
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t per_tenant,
      ParseFlagInt(args, "max-pending-per-tenant", 0, 0, 1 << 20));
  options.max_pending_per_tenant = static_cast<size_t>(per_tenant);
  std::optional<schema::Schema> schema;
  if (args.Has("schema")) {
    XUPDATE_ASSIGN_OR_RETURN(schema::Schema loaded,
                             LoadSchema(args.Get("schema")));
    schema.emplace(std::move(loaded));
    options.schema = &*schema;
  }
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t window, ParseFlagInt(args, "commit-window-ms", 0, 0, 10000));
  options.commit_window_ms = static_cast<int>(window);
  XUPDATE_ASSIGN_OR_RETURN(int64_t max_parallelism,
                           ParseFlagInt(args, "max-parallelism", 8, 1, 256));
  options.max_parallelism = static_cast<int>(max_parallelism);
  options.metrics = &metrics;
  // --trace/--chrome-trace attach per-request span tracing; the
  // journal/timeline files are written when the server exits.
  if (WantTrace(args)) options.tracer = &tracer;
  if (args.Has("slow-request-ms")) {
    XUPDATE_ASSIGN_OR_RETURN(
        int64_t slow_ms,
        ParseFlagInt(args, "slow-request-ms", 0, 0, 3600000));
    options.slow_request_ms = static_cast<int>(slow_ms);
    options.slow_request_log_path = args.Get("slow-request-log");
  }
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t slow_rate,
      ParseFlagInt(args, "slow-request-log-rate", 20, 0, 100000));
  options.slow_request_log_max_per_sec = static_cast<int>(slow_rate);
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t flight_capacity,
      ParseFlagInt(args, "flight-capacity", 1024, 0, 1 << 20));
  options.flight_recorder_capacity = static_cast<size_t>(flight_capacity);
  options.flight_dump_path = args.Get("flight-dump");
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t per_tenant_metrics,
      ParseFlagInt(args, "per-tenant-metrics", 1, 0, 1));
  options.per_tenant_metrics = per_tenant_metrics != 0;
  // --metrics-out writes the Prometheus text exposition atomically every
  // --metrics-interval-ms, so any file-based scraper tails a consistent
  // snapshot without speaking the wire protocol.
  std::string metrics_out = args.Get("metrics-out");
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t metrics_interval,
      ParseFlagInt(args, "metrics-interval-ms", 1000, 10, 3600000));
  XUPDATE_ASSIGN_OR_RETURN(std::unique_ptr<server::Server> server,
                           server::Server::Start(options));
  out << "serving on " << options.socket_path << " (data in "
      << options.data_dir << ", commit window " << options.commit_window_ms
      << " ms, max pending " << options.max_pending;
  if (options.max_pending_per_tenant > 0) {
    out << ", per-tenant quota " << options.max_pending_per_tenant;
  }
  if (options.schema != nullptr) out << ", schema router on";
  if (options.tracer != nullptr) out << ", tracing on";
  if (options.slow_request_ms >= 0) {
    out << ", slow-request log at " << options.slow_request_ms << " ms";
  }
  if (!metrics_out.empty()) out << ", metrics to " << metrics_out;
  out << ")\n";
  out.flush();
  g_serve_signal.store(false);
  g_serve_usr1.store(false);
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  std::signal(SIGUSR1, HandleServeUsr1);
  // Housekeeping loop instead of a blocking Wait: services SIGUSR1
  // flight-recorder dumps and the periodic metrics exposition while
  // watching for shutdown (signal or kShutdown request).
  auto next_metrics_write = std::chrono::steady_clock::now();
  while (!g_serve_signal.load() && !server->stop_requested()) {
    if (g_serve_usr1.exchange(false)) {
      Status dumped = server->DumpFlightRecorder();
      out << (dumped.ok() ? "flight recorder dumped\n"
                          : "flight recorder dump failed: " +
                                dumped.ToString() + "\n");
      out.flush();
    }
    if (!metrics_out.empty() &&
        std::chrono::steady_clock::now() >= next_metrics_write) {
      Status written = WriteFileAtomic(
          metrics_out, obs::RenderPrometheus(metrics.Snapshot()));
      if (!written.ok()) {
        out << "metrics exposition failed (disabled): " << written.ToString()
            << "\n";
        out.flush();
        metrics_out.clear();
      }
      next_metrics_write = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(metrics_interval);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Status stopped = server->Stop();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGUSR1, SIG_DFL);
  if (!metrics_out.empty()) {
    // Final exposition so scrapers see the shutdown-complete totals.
    XUPDATE_RETURN_IF_ERROR(WriteFileAtomic(
        metrics_out, obs::RenderPrometheus(metrics.Snapshot())));
  }
  out << "server stopped\n";
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  return stopped;
}

// ---------------------------------------------------------------------------
// stat / top: poll a running server's versioned kStat payload.

Result<server::StatSnapshot> FetchStat(server::Client* client) {
  XUPDATE_ASSIGN_OR_RETURN(std::string payload, client->Stat());
  return server::ParseStatJson(payload);
}

Status CmdStat(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"socket"}));
  XUPDATE_ASSIGN_OR_RETURN(server::Client client,
                           server::Client::Connect(args.Get("socket")));
  const std::string format = args.Get("format", "json");
  if (format == "json") {
    XUPDATE_ASSIGN_OR_RETURN(std::string payload, client.Stat());
    out << payload << "\n";
    return Status::OK();
  }
  if (format == "prom") {
    XUPDATE_ASSIGN_OR_RETURN(server::StatSnapshot stat, FetchStat(&client));
    out << obs::RenderPrometheus(server::FlattenStatSnapshot(stat));
    return Status::OK();
  }
  return Status::InvalidArgument("--format must be json|prom, got \"" +
                                 format + "\"");
}

uint64_t DeltaCounter(const MetricsDelta& delta, std::string_view name) {
  auto it = delta.counters.find(name);
  return it == delta.counters.end() ? 0 : it->second;
}

int64_t DeltaGauge(const MetricsDelta& delta, std::string_view name) {
  auto it = delta.gauges.find(name);
  return it == delta.gauges.end() ? 0 : it->second;
}

// One refresh of the live monitor: global throughput/health line plus a
// per-tenant table, all computed from the delta between two stat polls.
void RenderTopFrame(std::ostream& out, bool raw,
                    const server::StatSnapshot& stat,
                    const MetricsDelta& delta, double dt) {
  if (!raw) out << "\x1b[2J\x1b[H";  // clear + home (ANSI)
  char line[256];
  const uint64_t commits = DeltaCounter(delta, "store.commit.count");
  const uint64_t fsyncs = DeltaCounter(delta, "store.wal.fsync.count");
  const uint64_t requests = DeltaCounter(delta, "server.requests");
  const uint64_t shed = DeltaCounter(delta, "server.busy.count");
  const uint64_t routed = DeltaCounter(delta, "server.schema.routed");
  const uint64_t fallback = DeltaCounter(delta, "server.schema.fallback");
  std::snprintf(line, sizeof(line),
                "xupdate top  seq=%llu  uptime=%.1fs  interval=%.2fs\n",
                static_cast<unsigned long long>(stat.seq),
                static_cast<double>(stat.uptime_ticks) / 1000.0, dt);
  out << line;
  std::snprintf(line, sizeof(line),
                "req/s %.1f  commit/s %.1f  shed/s %.1f  queue %lld  "
                "tenants %lld  wal %lld B\n",
                static_cast<double>(requests) / dt,
                static_cast<double>(commits) / dt,
                static_cast<double>(shed) / dt,
                static_cast<long long>(
                    DeltaGauge(delta, "server.queue.depth")),
                static_cast<long long>(
                    DeltaGauge(delta, "server.tenants.resident")),
                static_cast<long long>(DeltaGauge(delta, "server.wal.bytes")));
  out << line;
  // Coalescing ratio: commits per WAL fsync in the interval — the
  // group-commit batcher's whole point made visible.
  if (fsyncs > 0) {
    std::snprintf(line, sizeof(line), "fsync/s %.1f  coalescing %.2fx",
                  static_cast<double>(fsyncs) / dt,
                  static_cast<double>(commits) / static_cast<double>(fsyncs));
    out << line;
  } else {
    out << "fsync/s 0.0  coalescing -";
  }
  if (routed + fallback > 0) {
    std::snprintf(line, sizeof(line), "  schema routed %.0f%%",
                  100.0 * static_cast<double>(routed) /
                      static_cast<double>(routed + fallback));
    out << line;
  }
  out << "\n";
  if (stat.tenants.empty()) {
    out << "(no per-tenant metrics)\n";
    out.flush();
    return;
  }
  std::snprintf(line, sizeof(line), "%-18s %9s %9s %9s %9s %9s %7s %11s\n",
                "tenant", "req/s", "commit/s", "p50ms", "p95ms", "p99ms",
                "shed", "wal-bytes");
  out << line;
  for (const auto& [name, section] : stat.tenants) {
    const std::string prefix = "tenant/" + name + "/";
    const uint64_t treq = DeltaCounter(delta, prefix + "requests");
    const uint64_t tcommit = DeltaCounter(delta, prefix + "commit.count");
    const uint64_t tshed = DeltaCounter(delta, prefix + "shed.count");
    MetricsDelta::TimerDelta timer;
    auto it = delta.timers.find(prefix + "commit.seconds");
    if (it != delta.timers.end()) timer = it->second;
    std::snprintf(line, sizeof(line),
                  "%-18s %9.1f %9.1f %9.3f %9.3f %9.3f %7llu %11lld\n",
                  name.c_str(), static_cast<double>(treq) / dt,
                  static_cast<double>(tcommit) / dt, timer.p50 * 1000.0,
                  timer.p95 * 1000.0, timer.p99 * 1000.0,
                  static_cast<unsigned long long>(tshed),
                  static_cast<long long>(
                      DeltaGauge(delta, prefix + "wal.bytes")));
    out << line;
  }
  out.flush();
}

Status CmdTop(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"socket"}));
  XUPDATE_ASSIGN_OR_RETURN(int64_t interval_ms,
                           ParseFlagInt(args, "interval-ms", 1000, 50, 60000));
  // 0 = run until the connection drops (live monitoring); a bounded
  // iteration count makes the command scriptable in CI and smoke tests.
  XUPDATE_ASSIGN_OR_RETURN(int64_t iterations,
                           ParseFlagInt(args, "iterations", 0, 0, 1000000));
  // --raw 1 appends frames without ANSI clear/home, for logs and CI.
  XUPDATE_ASSIGN_OR_RETURN(int64_t raw_flag, ParseFlagInt(args, "raw", 0, 0, 1));
  const bool raw = raw_flag != 0;
  XUPDATE_ASSIGN_OR_RETURN(server::Client client,
                           server::Client::Connect(args.Get("socket")));
  XUPDATE_ASSIGN_OR_RETURN(server::StatSnapshot prev, FetchStat(&client));
  MetricsSnapshot prev_flat = server::FlattenStatSnapshot(prev);
  for (int64_t i = 0; iterations == 0 || i < iterations; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    XUPDATE_ASSIGN_OR_RETURN(server::StatSnapshot cur, FetchStat(&client));
    MetricsSnapshot cur_flat = server::FlattenStatSnapshot(cur);
    MetricsDelta delta = DeltaSnapshots(prev_flat, cur_flat);
    // Rates use the server's own uptime ticks, not the local sleep, so
    // scheduling jitter on the poller cannot skew them.
    double dt = static_cast<double>(cur.uptime_ticks - prev.uptime_ticks) /
                1000.0;
    if (dt <= 0) dt = static_cast<double>(interval_ms) / 1000.0;
    RenderTopFrame(out, raw, cur, delta, dt);
    prev = std::move(cur);
    prev_flat = std::move(cur_flat);
  }
  return Status::OK();
}

// One loadgen connection: the tenants it owns, the items it streams (in
// global stream order) and the verification state shared with main.
struct LoadgenConnection {
  server::Client client;
  std::vector<const workload::WorkloadItem*> items;
  std::vector<size_t> tenants;

  std::thread worker;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::pair<const workload::WorkloadItem*,
                       std::chrono::steady_clock::time_point>>
      in_flight;
  bool send_done = false;
  Status failure;  // first sender/receiver error, named
  uint64_t busy = 0;
};

struct LoadgenPlan {
  workload::Workload workload;
  bool verify = false;
  double rate = 0.0;
  // Max requests in flight per connection: deep enough to let the
  // server's batcher coalesce, bounded so the loadgen doesn't trip its
  // own admission control.
  size_t window = 16;
  // Per tenant: annotated serialization after v commits (index v), the
  // one-shot reference the server's bytes must match. Empty when not
  // verifying.
  std::vector<std::vector<std::string>> expected;
  Metrics* metrics = nullptr;
};

const char* LoadgenItemName(workload::ItemType type) {
  switch (type) {
    case workload::ItemType::kCommit:
      return "commit";
    case workload::ItemType::kCheckout:
      return "checkout";
    case workload::ItemType::kReduce:
      return "reduce";
    case workload::ItemType::kStat:
      return "stat";
  }
  return "unknown";
}

// Local one-shot reference for a reduce item: the same deterministic
// engine configuration the server uses.
Result<std::string> LocalReduce(const std::string& pul_xml) {
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(pul_xml));
  core::ReduceOptions options;
  options.mode = core::ReduceMode::kDeterministic;
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul reduced, core::Reduce(pul, options));
  return pul::SerializePul(reduced);
}

Status VerifyLoadgenResponse(const LoadgenPlan& plan,
                             const workload::WorkloadItem& item,
                             const server::Message& response) {
  std::string where = std::string(LoadgenItemName(item.type)) + " on tenant " +
                      plan.workload.tenants[item.tenant] + " (item #" +
                      std::to_string(item.id) + ")";
  if (response.type == server::MsgType::kBusy) {
    // Outside --verify the caller counts busy responses as shed load;
    // under --verify every item must land.
    if (item.type != workload::ItemType::kCommit || !plan.verify) {
      return Status::OK();
    }
    return Status::Internal("commit shed with kBusy under --verify: " +
                            where);
  }
  if (response.type == server::MsgType::kError) {
    // Without --verify an error response is counted, not fatal: a shed
    // commit legitimately makes a later checkout of that version fail.
    if (!plan.verify) {
      if (plan.metrics != nullptr) {
        plan.metrics->AddCounter("loadgen.error.count");
      }
      return Status::OK();
    }
    return Status::Internal(where + " failed: " +
                            server::StatusFromError(response).ToString());
  }
  if (!plan.verify) return Status::OK();
  switch (item.type) {
    case workload::ItemType::kCommit:
      if (response.a != item.expected_version) {
        return Status::Internal(
            where + " produced version " + std::to_string(response.a) +
            ", expected " + std::to_string(item.expected_version));
      }
      return Status::OK();
    case workload::ItemType::kCheckout: {
      const std::vector<std::string>& chain = plan.expected[item.tenant];
      if (item.version >= chain.size()) {
        return Status::Internal(where + ": no reference for version " +
                                std::to_string(item.version));
      }
      if (response.payload.size() != 1 ||
          response.payload[0] != chain[item.version]) {
        return Status::Internal(
            where + " of version " + std::to_string(item.version) +
            " differs from the locally replayed document");
      }
      return Status::OK();
    }
    case workload::ItemType::kReduce: {
      XUPDATE_ASSIGN_OR_RETURN(std::string expected,
                               LocalReduce(item.pul_xml));
      if (response.payload.size() != 1 || response.payload[0] != expected) {
        return Status::Internal(where +
                                " differs from the local reduction");
      }
      return Status::OK();
    }
    case workload::ItemType::kStat:
      return Status::OK();
  }
  return Status::OK();
}

server::Message LoadgenRequest(const workload::Workload& workload,
                               const workload::WorkloadItem& item) {
  server::Message request;
  switch (item.type) {
    case workload::ItemType::kCommit:
      request.type = server::MsgType::kCommit;
      request.payload = {workload.tenants[item.tenant], item.pul_xml};
      break;
    case workload::ItemType::kCheckout:
      request.type = server::MsgType::kCheckout;
      request.a = item.version;
      request.payload = {workload.tenants[item.tenant]};
      break;
    case workload::ItemType::kReduce:
      request.type = server::MsgType::kReduce;
      request.payload = {item.pul_xml, "deterministic"};
      break;
    case workload::ItemType::kStat:
      request.type = server::MsgType::kStat;
      request.payload = {};
      break;
  }
  return request;
}

// Streams one connection's items (sender thread pipelines, this thread
// receives in order) and records per-type latency histograms.
void RunLoadgenConnection(const LoadgenPlan& plan,
                          LoadgenConnection* conn,
                          std::chrono::steady_clock::time_point start) {
  std::thread sender([&plan, conn, start] {
    for (const workload::WorkloadItem* item : conn->items) {
      if (plan.rate > 0) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            item->arrival_seconds)));
      }
      server::Message request = LoadgenRequest(plan.workload, *item);
      {
        std::unique_lock<std::mutex> lock(conn->mu);
        conn->cv.wait(lock, [&plan, conn] {
          return conn->in_flight.size() < plan.window ||
                 !conn->failure.ok();
        });
        if (!conn->failure.ok()) break;
        conn->in_flight.emplace_back(item,
                                     std::chrono::steady_clock::now());
      }
      conn->cv.notify_all();
      Status sent = conn->client.Send(request);
      if (!sent.ok()) {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->failure.ok()) conn->failure = sent;
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->send_done = true;
    }
    conn->cv.notify_all();
  });
  for (;;) {
    const workload::WorkloadItem* item = nullptr;
    std::chrono::steady_clock::time_point sent_at;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [conn] {
        return !conn->in_flight.empty() || conn->send_done ||
               !conn->failure.ok();
      });
      if (conn->in_flight.empty()) break;
      item = conn->in_flight.front().first;
      sent_at = conn->in_flight.front().second;
      conn->in_flight.pop_front();
    }
    conn->cv.notify_all();  // window slot freed for the sender
    Result<server::Message> response = conn->client.Receive();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sent_at)
                         .count();
    if (!response.ok()) {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->failure.ok()) {
        conn->failure = Status::IoError(
            std::string("lost connection awaiting ") +
            LoadgenItemName(item->type) + " response (item #" +
            std::to_string(item->id) + "): " + response.status().message());
      }
      break;
    }
    if (plan.metrics != nullptr) {
      plan.metrics->RecordDuration(std::string("loadgen.") +
                                       LoadgenItemName(item->type) +
                                       ".seconds",
                                   seconds);
      plan.metrics->AddCounter(std::string("loadgen.") +
                               LoadgenItemName(item->type) + ".count");
    }
    if (response->type == server::MsgType::kBusy) {
      std::lock_guard<std::mutex> lock(conn->mu);
      ++conn->busy;
    }
    Status verified = VerifyLoadgenResponse(plan, *item, *response);
    if (!verified.ok()) {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->failure.ok()) conn->failure = verified;
      break;
    }
  }
  sender.join();
}

Status CmdLoadgen(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"socket"}));
  const std::string socket_path = args.Get("socket");
  workload::WorkloadOptions wopts;
  XUPDATE_ASSIGN_OR_RETURN(int64_t tenants,
                           ParseFlagInt(args, "tenants", 2, 1, 64));
  wopts.num_tenants = static_cast<size_t>(tenants);
  XUPDATE_ASSIGN_OR_RETURN(int64_t items,
                           ParseFlagInt(args, "items", 64, 1, 1000000));
  wopts.num_items = static_cast<size_t>(items);
  XUPDATE_ASSIGN_OR_RETURN(int64_t ops,
                           ParseFlagInt(args, "ops-per-pul", 8, 1, 10000));
  wopts.ops_per_pul = static_cast<size_t>(ops);
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t doc_bytes,
      ParseFlagInt(args, "doc-bytes", 1 << 14, 256, 1 << 26));
  wopts.doc_bytes = static_cast<size_t>(doc_bytes);
  XUPDATE_ASSIGN_OR_RETURN(wopts.zipf_theta,
                           ParseFlagDouble(args, "zipf-theta", 0.99, 0, 16));
  XUPDATE_ASSIGN_OR_RETURN(wopts.arrival_rate,
                           ParseFlagDouble(args, "rate", 0, 0, 1e9));
  XUPDATE_ASSIGN_OR_RETURN(
      wopts.commit_weight,
      ParseFlagDouble(args, "commit-weight", wopts.commit_weight, 0, 1e6));
  XUPDATE_ASSIGN_OR_RETURN(wopts.checkout_weight,
                           ParseFlagDouble(args, "checkout-weight",
                                           wopts.checkout_weight, 0, 1e6));
  XUPDATE_ASSIGN_OR_RETURN(
      wopts.reduce_weight,
      ParseFlagDouble(args, "reduce-weight", wopts.reduce_weight, 0, 1e6));
  XUPDATE_ASSIGN_OR_RETURN(
      wopts.stat_weight,
      ParseFlagDouble(args, "stat-weight", wopts.stat_weight, 0, 1e6));
  XUPDATE_ASSIGN_OR_RETURN(int64_t seed,
                           ParseFlagInt(args, "seed", 42, 0, INT64_MAX));
  wopts.seed = static_cast<uint64_t>(seed);
  XUPDATE_ASSIGN_OR_RETURN(int64_t connections,
                           ParseFlagInt(args, "connections", 1, 1, 64));
  XUPDATE_ASSIGN_OR_RETURN(int64_t window,
                           ParseFlagInt(args, "window", 16, 1, 4096));
  XUPDATE_ASSIGN_OR_RETURN(int64_t verify,
                           ParseFlagInt(args, "verify", 0, 0, 1));
  XUPDATE_ASSIGN_OR_RETURN(int64_t shutdown,
                           ParseFlagInt(args, "shutdown", 0, 0, 1));
  if (connections > tenants) connections = tenants;

  XUPDATE_ASSIGN_OR_RETURN(workload::Workload workload,
                           workload::GenerateWorkload(wopts));
  Metrics metrics;
  LoadgenPlan plan;
  plan.verify = verify != 0;
  plan.rate = wopts.arrival_rate;
  plan.window = static_cast<size_t>(window);
  plan.metrics = &metrics;

  // Local one-shot reference: replay each tenant's commit chain and keep
  // the store-canonical bytes of every version. This is the exact
  // pipeline `xupdate store commit/checkout` runs, so matching bytes
  // here is byte-identity with the one-shot CLI.
  if (plan.verify) {
    plan.expected.resize(workload.tenants.size());
    std::vector<xml::Document> docs;
    docs.reserve(workload.tenants.size());
    for (size_t t = 0; t < workload.tenants.size(); ++t) {
      XUPDATE_ASSIGN_OR_RETURN(xml::Document doc,
                               xml::ParseDocument(workload.initial_xml[t]));
      XUPDATE_ASSIGN_OR_RETURN(
          std::string bytes, store::VersionStore::SerializeAnnotated(doc));
      plan.expected[t].push_back(std::move(bytes));
      docs.push_back(std::move(doc));
    }
    for (const workload::WorkloadItem& item : workload.items) {
      if (item.type != workload::ItemType::kCommit) continue;
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(item.pul_xml));
      XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&docs[item.tenant], pul));
      XUPDATE_ASSIGN_OR_RETURN(std::string bytes,
                               store::VersionStore::SerializeAnnotated(
                                   docs[item.tenant]));
      plan.expected[item.tenant].push_back(std::move(bytes));
    }
  }
  plan.workload = std::move(workload);

  // Tenants are partitioned round-robin across connections, so each
  // tenant's requests stay FIFO on one connection (deterministic
  // versions) while commits from different connections coalesce in the
  // server's group-commit batch.
  std::vector<std::unique_ptr<LoadgenConnection>> conns;
  for (int64_t c = 0; c < connections; ++c) {
    conns.push_back(std::make_unique<LoadgenConnection>());
    XUPDATE_ASSIGN_OR_RETURN(conns.back()->client,
                             server::Client::Connect(socket_path));
    for (size_t t = c; t < plan.workload.tenants.size();
         t += static_cast<size_t>(connections)) {
      conns.back()->tenants.push_back(t);
    }
  }
  for (const workload::WorkloadItem& item : plan.workload.items) {
    conns[item.tenant % conns.size()]->items.push_back(&item);
  }
  // Open every tenant before the clock starts (create, or reopen a
  // store left by an earlier run — but a non-empty store breaks the
  // deterministic version numbering --verify checks).
  for (std::unique_ptr<LoadgenConnection>& conn : conns) {
    for (size_t t : conn->tenants) {
      Result<uint64_t> head =
          conn->client.Open(plan.workload.tenants[t],
                            plan.workload.initial_xml[t]);
      if (!head.ok() &&
          head.status().code() == StatusCode::kInvalidArgument) {
        head = conn->client.Open(plan.workload.tenants[t], "");
      }
      if (!head.ok()) return head.status();
      if (plan.verify && *head != 0) {
        return Status::InvalidArgument(
            "tenant " + plan.workload.tenants[t] + " already has " +
            std::to_string(*head) +
            " versions; --verify 1 needs a fresh data dir");
      }
    }
  }

  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  for (std::unique_ptr<LoadgenConnection>& conn : conns) {
    LoadgenConnection* raw = conn.get();
    raw->worker = std::thread(
        [&plan, raw, start] { RunLoadgenConnection(plan, raw, start); });
  }
  Status failure;
  uint64_t busy = 0;
  for (std::unique_ptr<LoadgenConnection>& conn : conns) {
    conn->worker.join();
    busy += conn->busy;
    if (failure.ok() && !conn->failure.ok()) failure = conn->failure;
  }
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  XUPDATE_RETURN_IF_ERROR(failure);

  // Final head check: every tenant's head document must equal the local
  // replay byte for byte. --dump-head also writes each head to
  // <dir>/<tenant>.head.xml so CI can diff it against what the one-shot
  // `xupdate store checkout` prints for the same data dir.
  const bool dump_head = args.Has("dump-head");
  if (plan.verify || dump_head) {
    for (std::unique_ptr<LoadgenConnection>& conn : conns) {
      for (size_t t : conn->tenants) {
        XUPDATE_ASSIGN_OR_RETURN(
            std::string head_xml,
            conn->client.Checkout(plan.workload.tenants[t], 0,
                                  /*head=*/true));
        if (plan.verify && head_xml != plan.expected[t].back()) {
          return Status::Internal("head checkout of tenant " +
                                  plan.workload.tenants[t] +
                                  " differs from the local replay");
        }
        if (dump_head) {
          XUPDATE_RETURN_IF_ERROR(EnsureDirectory(args.Get("dump-head")));
          XUPDATE_RETURN_IF_ERROR(WriteFileAtomic(
              args.Get("dump-head") + "/" + plan.workload.tenants[t] +
                  ".head.xml",
              head_xml));
        }
      }
    }
    if (plan.verify) {
      out << "verify ok: every response matched the local one-shot "
             "replay\n";
    }
  }

  out << "loadgen: " << plan.workload.items.size() << " items over "
      << conns.size() << " connection(s) in " << wall << " s";
  if (busy > 0) out << " (" << busy << " commits shed with kBusy)";
  out << "\n";
  for (const char* kind : {"commit", "checkout", "reduce", "stat"}) {
    Metrics::TimerSnapshot snap =
        metrics.timer(std::string("loadgen.") + kind + ".seconds");
    if (snap.count == 0) continue;
    std::ostringstream line;
    line << "  " << kind << ": n=" << snap.count << " p50=" << snap.p50
         << "s p95=" << snap.p95 << "s p99=" << snap.p99
         << "s max=" << snap.max << "s";
    out << line.str() << "\n";
  }
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  if (args.Has("server-metrics")) {
    XUPDATE_ASSIGN_OR_RETURN(std::string json, conns.front()->client.Stat());
    XUPDATE_RETURN_IF_ERROR(
        WriteFileAtomic(args.Get("server-metrics"), json));
    out << "server metrics written to " << args.Get("server-metrics")
        << "\n";
  }
  if (shutdown != 0) {
    XUPDATE_RETURN_IF_ERROR(conns.front()->client.Shutdown());
    out << "server shutdown requested\n";
  }
  return Status::OK();
}

// `xupdate sim`: the P2P convergence simulator (branch/sim.h). Flags:
// --writers N, --schedules N, --events N, --ops-per-edit N,
// --sync-prob P, --seed S, --xmark-bytes N, --scratch DIR, --schema
// (route merges through the schema tier), --verify-stores.
Status CmdSim(const Args& args, std::ostream& out) {
  branch::SimOptions options;
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t writers,
      ParseFlagInt(args, "writers", options.writers, 1, 64));
  options.writers = static_cast<int>(writers);
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t schedules,
      ParseFlagInt(args, "schedules",
                   static_cast<int64_t>(options.schedules), 1, INT64_MAX));
  options.schedules = static_cast<size_t>(schedules);
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t events, ParseFlagInt(args, "events",
                                   static_cast<int64_t>(options.events), 0,
                                   INT64_MAX));
  options.events = static_cast<size_t>(events);
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t ops, ParseFlagInt(args, "ops-per-edit",
                                static_cast<int64_t>(options.ops_per_edit),
                                1, INT64_MAX));
  options.ops_per_edit = static_cast<size_t>(ops);
  XUPDATE_ASSIGN_OR_RETURN(
      options.sync_probability,
      ParseFlagDouble(args, "sync-prob", options.sync_probability, 0.0,
                      1.0));
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t seed,
      ParseFlagInt(args, "seed", static_cast<int64_t>(options.seed), 0,
                   INT64_MAX));
  options.seed = static_cast<uint64_t>(seed);
  XUPDATE_ASSIGN_OR_RETURN(
      int64_t xmark_bytes,
      ParseFlagInt(args, "xmark-bytes",
                   static_cast<int64_t>(options.xmark_bytes), 256,
                   INT64_MAX));
  options.xmark_bytes = static_cast<size_t>(xmark_bytes);
  options.use_schema_analysis = args.Has("schema");
  options.verify_stores = args.Has("verify-stores");
  if (args.Has("scratch")) options.scratch_dir = args.Get("scratch");
  Metrics metrics;
  options.metrics = &metrics;
  XUPDATE_ASSIGN_OR_RETURN(branch::SimReport report,
                           branch::RunSim(options));
  out << "sim: " << report.converged << "/" << report.schedules
      << " schedules converged (writers=" << options.writers
      << " events=" << options.events << " seed=" << options.seed
      << ")\n";
  out << "  edits: " << report.edits << ", merges: " << report.merges
      << " (" << report.fast_forwards << " fast-forward, "
      << report.full_merges << " full), conflicts seen: "
      << report.conflicts_auto_solved << "\n";
  out << "  digest: " << report.digest << "\n";
  for (const branch::ScheduleResult& failure : report.failures) {
    out << "  FAILED seed " << failure.seed << ": " << failure.error
        << "\n";
  }
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  if (report.converged != report.schedules) {
    return Status::Internal(
        std::to_string(report.schedules - report.converged) +
        " schedules failed to converge");
  }
  return Status::OK();
}

constexpr char kUsage[] =
    "usage: xupdate <command> [flags] [operands]\n"
    "commands: generate produce apply reduce aggregate integrate\n"
    "          reconcile invert diff query show stats equivalent\n"
    "          sidecar-save sidecar-load analyze explain store\n"
    "          serve loadgen stat top sim\n"
    "see tools/cli.h for per-command flags\n";

}  // namespace

Status RunCli(const std::vector<std::string>& argv, std::ostream& out) {
  if (argv.empty()) {
    out << kUsage;
    return Status::InvalidArgument("missing command");
  }
  XUPDATE_ASSIGN_OR_RETURN(Args args, ParseArgs(argv, 1));
  const std::string& command = argv[0];
  if (command == "generate") return CmdGenerate(args, out);
  if (command == "produce") return CmdProduce(args, out);
  if (command == "apply") return CmdApply(args, out);
  if (command == "reduce") return CmdReduce(args, out);
  if (command == "aggregate") return CmdAggregate(args, out);
  if (command == "integrate") return CmdIntegrate(args, out);
  if (command == "reconcile") return CmdReconcile(args, out);
  if (command == "invert") return CmdInvert(args, out);
  if (command == "query") return CmdQuery(args, out);
  if (command == "diff") return CmdDiff(args, out);
  if (command == "sidecar-save") return CmdSidecarSave(args, out);
  if (command == "sidecar-load") return CmdSidecarLoad(args, out);
  if (command == "equivalent") return CmdEquivalent(args, out);
  if (command == "show") return CmdShow(args, out);
  if (command == "stats") return CmdStats(args, out);
  if (command == "analyze") return CmdAnalyze(args, out);
  if (command == "explain") return CmdExplain(args, out);
  if (command == "store") return CmdStore(args, out);
  if (command == "serve") return CmdServe(args, out);
  if (command == "loadgen") return CmdLoadgen(args, out);
  if (command == "stat") return CmdStat(args, out);
  if (command == "top") return CmdTop(args, out);
  if (command == "sim") return CmdSim(args, out);
  out << kUsage;
  return Status::InvalidArgument("unknown command \"" + command + "\"");
}

}  // namespace xupdate::tools
