#include "tools/cli.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "analysis/independence.h"
#include "analysis/lint.h"
#include "analysis/predict.h"
#include "analysis/report.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/string_util.h"
#include "core/aggregate.h"
#include "core/diff.h"
#include "core/integrate.h"
#include "core/invert.h"
#include "core/reconcile.h"
#include "core/reduce.h"
#include "exec/in_memory.h"
#include "label/sidecar.h"
#include "obs/explain.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "pul/obtainable.h"
#include "exec/streaming.h"
#include "store/version.h"
#include "label/labeling.h"
#include "pul/describe.h"
#include "pul/pul_io.h"
#include "xmark/generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/eval.h"
#include "xquery/parser.h"

namespace xupdate::tools {

namespace {

// Parsed command line: flags (--name value or --name=value) and
// positional operands.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  bool Has(const std::string& name) const { return flags.count(name) != 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

Result<Args> ParseArgs(const std::vector<std::string>& argv, size_t begin) {
  Args args;
  for (size_t i = begin; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      } else if (i + 1 >= argv.size()) {
        return Status::InvalidArgument("flag " + arg + " needs a value");
      } else {
        args.flags[arg.substr(2)] = argv[++i];
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IoError("cannot read " + path);
  }
  return buffer.str();
}

Status WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << content;
  if (!out.good()) return Status::IoError("cannot write " + path);
  return Status::OK();
}

Status RequireFlags(const Args& args,
                    std::initializer_list<const char*> names) {
  for (const char* name : names) {
    if (!args.Has(name)) {
      return Status::InvalidArgument(std::string("missing --") + name);
    }
  }
  return Status::OK();
}

Result<xml::Document> LoadDocument(const Args& args) {
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("doc")));
  return xml::ParseDocument(text);
}

Result<std::vector<pul::Pul>> LoadPuls(const std::vector<std::string>& paths) {
  std::vector<pul::Pul> puls;
  for (const std::string& path : paths) {
    XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
    XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
    puls.push_back(std::move(pul));
  }
  return puls;
}

Status WritePul(const pul::Pul& pul, const std::string& path,
                std::ostream& out) {
  XUPDATE_ASSIGN_OR_RETURN(std::string text, pul::SerializePul(pul));
  XUPDATE_RETURN_IF_ERROR(WriteFile(path, text));
  out << "wrote " << path << " (" << pul.size() << " operations, "
      << text.size() << " bytes)\n";
  return Status::OK();
}

Status CmdGenerate(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"bytes", "out"}));
  xmark::Config config;
  int64_t bytes = ParseNonNegativeInt(args.Get("bytes"));
  if (bytes <= 0) return Status::InvalidArgument("bad --bytes");
  config.target_bytes = static_cast<size_t>(bytes);
  int64_t seed = ParseNonNegativeInt(args.Get("seed", "42"));
  if (seed < 0) return Status::InvalidArgument("bad --seed");
  config.seed = static_cast<uint64_t>(seed);
  XUPDATE_ASSIGN_OR_RETURN(std::string text,
                           xmark::GenerateDocumentText(config));
  XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out"), text));
  out << "wrote " << args.Get("out") << " (" << text.size() << " bytes)\n";
  return Status::OK();
}

Status CmdProduce(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc", "update", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  label::Labeling labeling = label::Labeling::Build(doc);
  xquery::ProducerContext ctx;
  ctx.doc = &doc;
  ctx.labeling = &labeling;
  if (args.Has("id-base")) {
    int64_t base = ParseNonNegativeInt(args.Get("id-base"));
    if (base <= 0) return Status::InvalidArgument("bad --id-base");
    ctx.id_base = static_cast<xml::NodeId>(base);
  }
  std::string policies = args.Get("policies");
  ctx.policies.preserve_insertion_order =
      policies.find("order") != std::string::npos;
  ctx.policies.preserve_inserted_data =
      policies.find("inserted") != std::string::npos;
  ctx.policies.preserve_removed_data =
      policies.find("removed") != std::string::npos;
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul,
                           xquery::ProducePul(args.Get("update"), ctx));
  return WritePul(pul, args.Get("out"), out);
}

Status CmdApply(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc", "pul", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(std::string doc_text, ReadFile(args.Get("doc")));
  XUPDATE_ASSIGN_OR_RETURN(std::string pul_text, ReadFile(args.Get("pul")));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(pul_text));
  std::string engine = args.Get("engine", "streaming");
  std::string updated;
  if (engine == "streaming") {
    exec::StreamingEvaluator evaluator;
    XUPDATE_ASSIGN_OR_RETURN(updated, evaluator.Evaluate(doc_text, pul));
  } else if (engine == "inmemory") {
    exec::InMemoryEvaluator evaluator;
    XUPDATE_ASSIGN_OR_RETURN(updated, evaluator.Evaluate(doc_text, pul));
  } else {
    return Status::InvalidArgument("--engine must be streaming|inmemory");
  }
  XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out"), updated));
  out << "applied " << pul.size() << " operations with the " << engine
      << " engine; wrote " << args.Get("out") << " (" << updated.size()
      << " bytes)\n";
  return Status::OK();
}

// Shared reasoning-engine flags: --parallelism N selects the worker
// count of the shard-by-subtree engine (1 = sequential), --metrics PATH
// dumps the engine's counters/timers as JSON ("-" for the output
// stream).
Result<int> ParseParallelismFlag(const Args& args) {
  if (!args.Has("parallelism")) return 1;
  int64_t n = ParseNonNegativeInt(args.Get("parallelism"));
  if (n <= 0) return Status::InvalidArgument("bad --parallelism");
  return static_cast<int>(n);
}

Status MaybeDumpMetrics(const Args& args, const Metrics& metrics,
                        std::ostream& out) {
  if (!args.Has("metrics")) return Status::OK();
  std::string json = metrics.ToJson() + "\n";
  std::string path = args.Get("metrics");
  if (path == "-") {
    out << json;
    return Status::OK();
  }
  XUPDATE_RETURN_IF_ERROR(WriteFile(path, json));
  out << "wrote metrics " << path << "\n";
  return Status::OK();
}

// Shared tracing flags: --trace PATH writes the deterministic JSONL
// decision journal ("-" for the output stream) consumed by `xupdate
// explain`, --chrome-trace PATH the Perfetto/chrome://tracing timeline.
bool WantTrace(const Args& args) {
  return args.Has("trace") || args.Has("chrome-trace");
}

Status MaybeWriteTraces(const Args& args, const obs::Tracer& tracer,
                        std::ostream& out) {
  if (args.Has("trace")) {
    std::string journal = obs::ToJournalJsonl(tracer);
    std::string path = args.Get("trace");
    if (path == "-") {
      out << journal;
    } else {
      XUPDATE_RETURN_IF_ERROR(WriteFile(path, journal));
      out << "wrote trace " << path << " (" << tracer.size()
          << " events)\n";
    }
  }
  if (args.Has("chrome-trace")) {
    std::string path = args.Get("chrome-trace");
    XUPDATE_RETURN_IF_ERROR(WriteFile(path, obs::ToChromeTrace(tracer)));
    out << "wrote chrome trace " << path << "\n";
  }
  return Status::OK();
}

Status CmdReduce(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"pul", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("pul")));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
  std::string mode_name = args.Get("mode", "deterministic");
  core::ReduceOptions options;
  if (mode_name == "plain") {
    options.mode = core::ReduceMode::kPlain;
  } else if (mode_name == "deterministic") {
    options.mode = core::ReduceMode::kDeterministic;
  } else if (mode_name == "canonical") {
    options.mode = core::ReduceMode::kCanonical;
  } else {
    return Status::InvalidArgument(
        "--mode must be plain|deterministic|canonical");
  }
  XUPDATE_ASSIGN_OR_RETURN(options.parallelism, ParseParallelismFlag(args));
  Metrics metrics;
  options.metrics = &metrics;
  obs::Tracer tracer;
  if (WantTrace(args)) options.tracer = &tracer;
  core::ReduceStats stats;
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul reduced,
                           core::Reduce(pul, options, &stats));
  out << "reduced " << stats.input_ops << " -> " << stats.output_ops
      << " operations (" << stats.rule_applications
      << " rule applications, " << stats.shards << " shards)\n";
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  return WritePul(reduced, args.Get("out"), out);
}

Status CmdAggregate(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"out"}));
  if (args.positional.size() < 2) {
    return Status::InvalidArgument("aggregate needs at least two PULs");
  }
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> puls,
                           LoadPuls(args.positional));
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : puls) ptrs.push_back(&pul);
  core::AggregateOptions options;
  Metrics metrics;
  options.metrics = &metrics;
  obs::Tracer tracer;
  if (WantTrace(args)) options.tracer = &tracer;
  core::AggregateStats stats;
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul aggregate,
                           core::Aggregate(ptrs, options, &stats));
  out << "aggregated " << stats.input_ops << " operations from "
      << puls.size() << " PULs into " << stats.output_ops << " ("
      << stats.folded_ops << " folded into parameter trees)\n";
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  return WritePul(aggregate, args.Get("out"), out);
}

Status CmdIntegrate(const Args& args, std::ostream& out) {
  if (args.positional.size() < 2) {
    return Status::InvalidArgument("integrate needs at least two PULs");
  }
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> puls,
                           LoadPuls(args.positional));
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : puls) ptrs.push_back(&pul);
  core::IntegrateOptions options;
  XUPDATE_ASSIGN_OR_RETURN(options.parallelism, ParseParallelismFlag(args));
  Metrics metrics;
  options.metrics = &metrics;
  obs::Tracer tracer;
  if (WantTrace(args)) options.tracer = &tracer;
  XUPDATE_ASSIGN_OR_RETURN(core::IntegrationResult result,
                           core::Integrate(ptrs, options));
  out << "integration: " << result.merged.size()
      << " non-conflicting operations, " << result.conflicts.size()
      << " conflicts\n";
  std::map<std::string, int> histogram;
  for (const core::Conflict& conflict : result.conflicts) {
    ++histogram[std::string(core::ConflictTypeName(conflict.type))];
  }
  for (const auto& [name, count] : histogram) {
    out << "  " << name << ": " << count << "\n";
  }
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  if (args.Has("out")) {
    return WritePul(result.merged, args.Get("out"), out);
  }
  return Status::OK();
}

Status CmdReconcile(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"out"}));
  if (args.positional.size() < 2) {
    return Status::InvalidArgument("reconcile needs at least two PULs");
  }
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> puls,
                           LoadPuls(args.positional));
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : puls) ptrs.push_back(&pul);
  core::ReconcileOptions options;
  XUPDATE_ASSIGN_OR_RETURN(options.parallelism, ParseParallelismFlag(args));
  Metrics metrics;
  options.metrics = &metrics;
  obs::Tracer tracer;
  if (WantTrace(args)) options.tracer = &tracer;
  core::ReconcileStats stats;
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul merged,
                           core::Reconcile(ptrs, options, &stats));
  out << "reconciled " << stats.conflicts_total << " conflicts ("
      << stats.conflicts_auto_solved << " auto-solved, "
      << stats.operations_excluded << " operations excluded, "
      << stats.operations_generated << " generated)\n";
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  return WritePul(merged, args.Get("out"), out);
}

Status CmdInvert(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc", "pul", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  label::Labeling labeling = label::Labeling::Build(doc);
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("pul")));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul inverse,
                           core::Invert(doc, labeling, pul));
  return WritePul(inverse, args.Get("out"), out);
}

Status CmdQuery(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc", "path"}));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  XUPDATE_ASSIGN_OR_RETURN(xquery::PathExpr path,
                           xquery::ParsePath(args.Get("path")));
  XUPDATE_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                           xquery::EvaluatePath(doc, path));
  out << nodes.size() << " nodes\n";
  for (xml::NodeId id : nodes) {
    switch (doc.type(id)) {
      case xml::NodeType::kElement: {
        XUPDATE_ASSIGN_OR_RETURN(std::string text,
                                 xml::SerializeSubtree(doc, id, {}));
        if (text.size() > 120) text = text.substr(0, 117) + "...";
        out << "  #" << id << " " << text << "\n";
        break;
      }
      case xml::NodeType::kAttribute:
        out << "  #" << id << " @" << doc.name(id) << "=\"" << doc.value(id)
            << "\"\n";
        break;
      case xml::NodeType::kText:
        out << "  #" << id << " \"" << doc.value(id) << "\"\n";
        break;
    }
  }
  return Status::OK();
}

Status CmdSidecarSave(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(
      RequireFlags(args, {"doc", "out-doc", "out-sidecar"}));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  label::Labeling labeling = label::Labeling::Build(doc);
  XUPDATE_ASSIGN_OR_RETURN(std::string plain, xml::SerializeDocument(doc));
  XUPDATE_ASSIGN_OR_RETURN(std::string sidecar,
                           label::SaveSidecar(doc, labeling));
  XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out-doc"), plain));
  XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out-sidecar"), sidecar));
  out << "wrote " << args.Get("out-doc") << " (" << plain.size()
      << " bytes, pristine) and " << args.Get("out-sidecar") << " ("
      << sidecar.size() << " bytes)\n";
  return Status::OK();
}

Status CmdSidecarLoad(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc", "sidecar", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(std::string plain, ReadFile(args.Get("doc")));
  XUPDATE_ASSIGN_OR_RETURN(std::string sidecar,
                           ReadFile(args.Get("sidecar")));
  XUPDATE_ASSIGN_OR_RETURN(label::SidecarDocument loaded,
                           label::LoadWithSidecar(plain, sidecar));
  xml::SerializeOptions options;
  options.with_ids = true;
  XUPDATE_ASSIGN_OR_RETURN(std::string annotated,
                           xml::SerializeDocument(loaded.doc, options));
  XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out"), annotated));
  out << "wrote " << args.Get("out") << " (" << annotated.size()
      << " bytes, annotated)\n";
  return Status::OK();
}

Status CmdDiff(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"from", "to", "out"}));
  XUPDATE_ASSIGN_OR_RETURN(std::string from_text,
                           ReadFile(args.Get("from")));
  XUPDATE_ASSIGN_OR_RETURN(std::string to_text, ReadFile(args.Get("to")));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document from,
                           xml::ParseDocument(from_text));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document to, xml::ParseDocument(to_text));
  label::Labeling labeling = label::Labeling::Build(from);
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul delta,
                           core::ComputeDelta(from, labeling, to));
  return WritePul(delta, args.Get("out"), out);
}

Status CmdEquivalent(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc"}));
  if (args.positional.size() != 2) {
    return Status::InvalidArgument("equivalent takes exactly two PULs");
  }
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> puls,
                           LoadPuls(args.positional));
  // Obtainable-set enumeration is exponential in the non-determinism of
  // the PULs; this command targets reasoning on small PULs.
  XUPDATE_ASSIGN_OR_RETURN(bool equivalent,
                           pul::AreEquivalent(doc, puls[0], puls[1]));
  if (equivalent) {
    out << "equivalent\n";
    return Status::OK();
  }
  XUPDATE_ASSIGN_OR_RETURN(bool sub12,
                           pul::IsSubstitutable(doc, puls[0], puls[1]));
  XUPDATE_ASSIGN_OR_RETURN(bool sub21,
                           pul::IsSubstitutable(doc, puls[1], puls[0]));
  if (sub12) {
    out << "first substitutable to second\n";
  } else if (sub21) {
    out << "second substitutable to first\n";
  } else {
    out << "not equivalent\n";
  }
  return Status::OK();
}

Status CmdShow(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"pul"}));
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("pul")));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
  out << pul.size() << " operations\n" << pul::DescribePul(pul);
  return Status::OK();
}

Status CmdStats(const Args& args, std::ostream& out) {
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc"}));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, LoadDocument(args));
  size_t elements = 0;
  size_t attributes = 0;
  size_t texts = 0;
  size_t text_bytes = 0;
  int max_depth = 0;
  for (xml::NodeId id : doc.AllNodesInOrder()) {
    switch (doc.type(id)) {
      case xml::NodeType::kElement:
        ++elements;
        break;
      case xml::NodeType::kAttribute:
        ++attributes;
        break;
      case xml::NodeType::kText:
        ++texts;
        text_bytes += doc.value(id).size();
        break;
    }
    max_depth = std::max(max_depth, doc.Level(id));
  }
  out << "elements:   " << elements << "\n"
      << "attributes: " << attributes << "\n"
      << "texts:      " << texts << " (" << text_bytes << " bytes)\n"
      << "max depth:  " << max_depth << "\n"
      << "max id:     " << doc.max_assigned_id() << "\n";
  return Status::OK();
}

// `xupdate analyze PUL... [--out report.json]`: the static analyzer as
// a batch tool. Emits one JSON object — per-PUL lint diagnostics and
// reduction-effect prediction, plus the pairwise independence verdict
// for every pair when two or more PULs are given. The report is
// byte-deterministic, so it can be golden-tested and diffed.
Status CmdAnalyze(const Args& args, std::ostream& out) {
  if (args.positional.empty()) {
    return Status::InvalidArgument("analyze needs at least one PUL");
  }
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> puls,
                           LoadPuls(args.positional));
  obs::Tracer tracer;
  obs::TraceLane lane;
  if (WantTrace(args)) {
    lane = tracer.Lane(tracer.NextPhase(), 0, "analyze");
  }
  auto ref = [](size_t pul, int op) {
    return "P" + std::to_string(pul) + "#" + std::to_string(op);
  };
  std::ostringstream json;
  json << "{\"puls\":[";
  for (size_t i = 0; i < puls.size(); ++i) {
    if (i > 0) json << ",";
    analysis::DiagnosticReport lint = analysis::LintPul(puls[i]);
    analysis::ReductionPrediction prediction =
        analysis::PredictReduction(puls[i]);
    if (lane.enabled()) {
      for (const analysis::Diagnostic& d : lint) {
        std::vector<std::string> ops = {ref(i, d.op_index)};
        if (d.related_op >= 0) ops.push_back(ref(i, d.related_op));
        lane.Emit(obs::EventKind::kNote, "lint", std::move(ops), d.code,
                  d.message);
      }
      lane.Emit(obs::EventKind::kNote, "prediction", {}, {},
                "P" + std::to_string(i) + ": " +
                    std::to_string(prediction.input_ops) + " ops, <= " +
                    std::to_string(prediction.surviving_upper_bound) +
                    " survive");
    }
    json << "{\"path\":\"" << analysis::JsonEscape(args.positional[i])
         << "\",\"ops\":" << puls[i].size()
         << ",\"lint\":" << analysis::DiagnosticsToJson(lint)
         << ",\"prediction\":" << analysis::PredictionToJson(prediction)
         << "}";
  }
  json << "],\"independence\":[";
  bool first = true;
  for (size_t i = 0; i < puls.size(); ++i) {
    for (size_t j = i + 1; j < puls.size(); ++j) {
      if (!first) json << ",";
      first = false;
      analysis::IndependenceReport verdict =
          analysis::AnalyzeIndependence(puls[i], puls[j]);
      if (lane.enabled()) {
        std::vector<std::string> ops;
        if (verdict.op_a >= 0) ops.push_back(ref(i, verdict.op_a));
        if (verdict.op_b >= 0) ops.push_back(ref(j, verdict.op_b));
        lane.Emit(
            obs::EventKind::kNote, "independence", std::move(ops),
            std::string(analysis::IndependenceVerdictName(verdict.verdict)),
            verdict.reason);
      }
      json << "{\"a\":" << i << ",\"b\":" << j
           << ",\"report\":" << analysis::IndependenceToJson(verdict) << "}";
    }
  }
  json << "]}";
  std::string text = json.str() + "\n";
  if (args.Has("out") && args.Get("out") != "-") {
    XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out"), text));
    out << "wrote " << args.Get("out") << "\n";
  } else {
    out << text;
  }
  return MaybeWriteTraces(args, tracer, out);
}

// `xupdate explain journal.jsonl [--op ID]`: folds a --trace journal
// back into per-operation provenance chains (obs/explain.h). With --op
// it prints the story of one operation; without, every known operation.
Status CmdExplain(const Args& args, std::ostream& out) {
  if (args.positional.size() != 1) {
    return Status::InvalidArgument("explain takes exactly one journal");
  }
  XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.positional[0]));
  XUPDATE_ASSIGN_OR_RETURN(std::vector<obs::TraceEvent> events,
                           obs::ParseJournal(text));
  XUPDATE_ASSIGN_OR_RETURN(obs::ExplainReport report,
                           obs::BuildExplainReport(events));
  out << obs::RenderChains(report, args.Get("op"));
  return Status::OK();
}

// `xupdate store <init|commit|checkout|log|compact|rollback|verify>`:
// the durable versioned update store (store/version.h) as a tool.
// Shared flags: --dir DIR (the store directory), --fsync
// always|batch|never, --snapshot-every N, --snapshot-bytes N,
// --parallelism N, --metrics PATH, --trace PATH. The environment
// variable XUPDATE_STORE_FAIL_AFTER_BYTES, when set to a non-negative
// integer, injects a journal write failure after that many appended
// bytes (crash-testing shim; see WalOptions::fail_after_bytes).
Result<store::StoreOptions> ParseStoreOptions(const Args& args,
                                              Metrics* metrics,
                                              obs::Tracer* tracer) {
  store::StoreOptions options;
  options.metrics = metrics;
  if (WantTrace(args)) options.tracer = tracer;
  if (args.Has("fsync") &&
      !store::FsyncPolicyFromName(args.Get("fsync"), &options.fsync)) {
    return Status::InvalidArgument("--fsync must be always|batch|never");
  }
  if (args.Has("snapshot-every")) {
    int64_t n = ParseNonNegativeInt(args.Get("snapshot-every"));
    if (n < 0) return Status::InvalidArgument("bad --snapshot-every");
    options.snapshot_every = static_cast<uint64_t>(n);
  }
  if (args.Has("snapshot-bytes")) {
    int64_t n = ParseNonNegativeInt(args.Get("snapshot-bytes"));
    if (n < 0) return Status::InvalidArgument("bad --snapshot-bytes");
    options.snapshot_bytes = static_cast<uint64_t>(n);
  }
  XUPDATE_ASSIGN_OR_RETURN(options.parallelism, ParseParallelismFlag(args));
  if (const char* budget = std::getenv("XUPDATE_STORE_FAIL_AFTER_BYTES");
      budget != nullptr && *budget != '\0') {
    int64_t n = ParseNonNegativeInt(budget);
    if (n < 0) {
      return Status::InvalidArgument(
          "bad XUPDATE_STORE_FAIL_AFTER_BYTES value");
    }
    options.fail_after_bytes = n;
  }
  return options;
}

Result<uint64_t> ParseVersionFlag(const Args& args, const char* name) {
  int64_t v = ParseNonNegativeInt(args.Get(name));
  if (v < 0) {
    return Status::InvalidArgument(std::string("bad --") + name);
  }
  return static_cast<uint64_t>(v);
}

Status CmdStore(const Args& args, std::ostream& out) {
  if (args.positional.empty()) {
    return Status::InvalidArgument(
        "store needs a subcommand: "
        "init|commit|checkout|log|compact|rollback|verify");
  }
  const std::string& sub = args.positional[0];
  XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"dir"}));
  std::string dir = args.Get("dir");
  Metrics metrics;
  obs::Tracer tracer;
  XUPDATE_ASSIGN_OR_RETURN(store::StoreOptions options,
                           ParseStoreOptions(args, &metrics, &tracer));

  Status result = Status::OK();
  if (sub == "init") {
    XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"doc"}));
    XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("doc")));
    XUPDATE_RETURN_IF_ERROR(store::VersionStore::Init(dir, text, options));
    out << "initialized store " << dir << " at version 0\n";
  } else {
    store::OpenReport report;
    XUPDATE_ASSIGN_OR_RETURN(
        store::VersionStore vs,
        store::VersionStore::Open(dir, options, &report));
    if (report.wal.truncated_bytes > 0) {
      out << "recovered journal: dropped " << report.wal.truncated_bytes
          << " torn bytes, head is version " << vs.head() << "\n";
    }
    if (sub == "commit") {
      XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"pul"}));
      XUPDATE_ASSIGN_OR_RETURN(std::string text, ReadFile(args.Get("pul")));
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
      XUPDATE_ASSIGN_OR_RETURN(uint64_t version, vs.Commit(pul));
      out << "committed version " << version << " (" << pul.size()
          << " operations)\n";
    } else if (sub == "checkout") {
      XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"version", "out"}));
      XUPDATE_ASSIGN_OR_RETURN(uint64_t version,
                               ParseVersionFlag(args, "version"));
      XUPDATE_ASSIGN_OR_RETURN(std::string xml, vs.CheckoutXml(version));
      XUPDATE_RETURN_IF_ERROR(WriteFile(args.Get("out"), xml));
      out << "checked out version " << version << " to " << args.Get("out")
          << " (" << xml.size() << " bytes)\n";
    } else if (sub == "log") {
      out << "head: " << vs.head() << "\n";
      out << "snapshots:";
      for (uint64_t v : vs.snapshots().versions()) out << " " << v;
      out << "\n";
      for (const store::LogEntry& entry : vs.Log()) {
        switch (entry.type) {
          case store::FrameType::kPul:
            out << "  pul       v" << entry.version;
            break;
          case store::FrameType::kAggregate:
            out << "  aggregate v" << entry.aux << " -> v" << entry.version;
            break;
          case store::FrameType::kUndo:
            out << "  undo      v" << entry.version << " -> v"
                << entry.version - 1;
            break;
          case store::FrameType::kSnapshot:
            out << "  snapshot  v" << entry.version;
            break;
        }
        out << "  (" << entry.payload_bytes << " bytes at offset "
            << entry.offset << ")\n";
      }
    } else if (sub == "compact") {
      store::CompactStats stats;
      XUPDATE_RETURN_IF_ERROR(vs.Compact(&stats));
      out << "compacted " << stats.segments_compacted << "/"
          << stats.segments_considered << " segments ("
          << stats.segments_skipped << " skipped): " << stats.frames_before
          << " -> " << stats.frames_after << " frames, "
          << stats.journal_bytes_before << " -> "
          << stats.journal_bytes_after << " journal bytes, "
          << stats.input_ops << " -> " << stats.output_ops
          << " operations\n";
    } else if (sub == "rollback") {
      XUPDATE_RETURN_IF_ERROR(RequireFlags(args, {"to"}));
      XUPDATE_ASSIGN_OR_RETURN(uint64_t to, ParseVersionFlag(args, "to"));
      XUPDATE_ASSIGN_OR_RETURN(uint64_t head, vs.Rollback(to));
      out << "rolled back to version " << to << " as new version " << head
          << "\n";
    } else if (sub == "verify") {
      XUPDATE_ASSIGN_OR_RETURN(store::VerifyReport report2, vs.Verify());
      out << "verify ok: " << report2.frames << " frames, "
          << report2.snapshots << " snapshots, head " << report2.head
          << ", " << report2.replayed_versions << " versions replayed, "
          << report2.snapshots_checked << " snapshots byte-checked, "
          << report2.undo_chains_checked << " undo chains walked\n";
    } else {
      result = Status::InvalidArgument("unknown store subcommand \"" + sub +
                                       "\"");
    }
    if (result.ok()) XUPDATE_RETURN_IF_ERROR(vs.Close());
  }
  XUPDATE_RETURN_IF_ERROR(MaybeDumpMetrics(args, metrics, out));
  XUPDATE_RETURN_IF_ERROR(MaybeWriteTraces(args, tracer, out));
  return result;
}

constexpr char kUsage[] =
    "usage: xupdate <command> [flags] [operands]\n"
    "commands: generate produce apply reduce aggregate integrate\n"
    "          reconcile invert diff query show stats equivalent\n"
    "          sidecar-save sidecar-load analyze explain store\n"
    "see tools/cli.h for per-command flags\n";

}  // namespace

Status RunCli(const std::vector<std::string>& argv, std::ostream& out) {
  if (argv.empty()) {
    out << kUsage;
    return Status::InvalidArgument("missing command");
  }
  XUPDATE_ASSIGN_OR_RETURN(Args args, ParseArgs(argv, 1));
  const std::string& command = argv[0];
  if (command == "generate") return CmdGenerate(args, out);
  if (command == "produce") return CmdProduce(args, out);
  if (command == "apply") return CmdApply(args, out);
  if (command == "reduce") return CmdReduce(args, out);
  if (command == "aggregate") return CmdAggregate(args, out);
  if (command == "integrate") return CmdIntegrate(args, out);
  if (command == "reconcile") return CmdReconcile(args, out);
  if (command == "invert") return CmdInvert(args, out);
  if (command == "query") return CmdQuery(args, out);
  if (command == "diff") return CmdDiff(args, out);
  if (command == "sidecar-save") return CmdSidecarSave(args, out);
  if (command == "sidecar-load") return CmdSidecarLoad(args, out);
  if (command == "equivalent") return CmdEquivalent(args, out);
  if (command == "show") return CmdShow(args, out);
  if (command == "stats") return CmdStats(args, out);
  if (command == "analyze") return CmdAnalyze(args, out);
  if (command == "explain") return CmdExplain(args, out);
  if (command == "store") return CmdStore(args, out);
  out << kUsage;
  return Status::InvalidArgument("unknown command \"" + command + "\"");
}

}  // namespace xupdate::tools
