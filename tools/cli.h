#ifndef XUPDATE_TOOLS_CLI_H_
#define XUPDATE_TOOLS_CLI_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"

namespace xupdate::tools {

// Entry point of the `xupdate` command-line tool, factored out of main()
// so tests can drive it. Commands:
//
//   xupdate generate  --bytes N [--seed S] --out doc.xml
//   xupdate produce   --doc doc.xml --update "script" [--id-base N]
//                     [--policies order,inserted,removed] --out pul.xml
//   xupdate apply     --doc doc.xml --pul pul.xml
//                     [--engine streaming|inmemory] --out out.xml
//   xupdate reduce    --pul pul.xml [--mode plain|deterministic|canonical]
//                     --out out.xml
//   xupdate aggregate --out out.xml PUL...
//   xupdate integrate [--out merged.xml] PUL...
//   xupdate reconcile --out out.xml PUL...
//   xupdate invert    --doc doc.xml --pul pul.xml --out inverse.xml
//   xupdate query     --doc doc.xml --path "//item/name"
//   xupdate stats     --doc doc.xml
//   xupdate analyze   [--out report.json] PUL...
//   xupdate explain   journal.jsonl [--op ID]
//   xupdate store     init --dir DIR --doc doc.xml
//   xupdate store     commit --dir DIR --pul pul.xml
//   xupdate store     checkout --dir DIR --version V --out out.xml
//   xupdate store     log|compact|verify --dir DIR
//   xupdate store     rollback --dir DIR --to V
//   xupdate serve     --socket PATH --data-dir DIR
//                     [--commit-window-ms N] [--max-pending N]
//                     [--max-parallelism N]
//   xupdate loadgen   --socket PATH [--tenants N] [--items N]
//                     [--connections N] [--window N] [--ops-per-pul N]
//                     [--doc-bytes N] [--zipf-theta F] [--rate F]
//                     [--commit-weight F] [--checkout-weight F]
//                     [--reduce-weight F] [--stat-weight F] [--seed S]
//                     [--verify 0|1] [--dump-head DIR]
//                     [--server-metrics PATH] [--shutdown 0|1]
//
// `serve` runs the PUL reasoning daemon (src/server/) until SIGINT,
// SIGTERM or a client kShutdown. `loadgen` replays a deterministic
// typed workload (src/workload/) against it over pipelined
// connections; --verify 1 checks every response byte-for-byte against
// a local one-shot replay, --dump-head writes each tenant's final
// head document for external diffing, --server-metrics saves the
// server's metrics JSON (fsync-coalescing counters included).
//
// The store subcommands share --fsync always|batch|never,
// --snapshot-every N and --snapshot-bytes N, and honor the environment
// variable XUPDATE_STORE_FAIL_AFTER_BYTES (inject a journal write
// failure after N appended bytes — crash-recovery testing).
//
// Flags accept both `--name value` and `--name=value`. The reasoning
// commands (reduce, aggregate, integrate, reconcile, analyze) share
//   --parallelism N           worker threads (reduce/integrate/reconcile)
//   --metrics PATH            counters/timers JSON ("-" for stdout)
//   --trace PATH              deterministic JSONL decision journal,
//                             input of `xupdate explain`
//   --chrome-trace PATH       chrome://tracing / Perfetto timeline
//
// Documents and PULs are exchanged in the id-annotated XML formats of
// the library. Returns a Status; diagnostics and results go to `out`.
Status RunCli(const std::vector<std::string>& args, std::ostream& out);

}  // namespace xupdate::tools

#endif  // XUPDATE_TOOLS_CLI_H_
