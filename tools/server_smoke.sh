#!/usr/bin/env bash
# End-to-end smoke of the PUL reasoning daemon, as run by CI (under
# ASan there): start the server, drive it with a verified mixed
# workload over pipelined connections, prove byte identity of every
# tenant head against the one-shot `store checkout` path, prove the
# group commit actually coalesced fsyncs, and shut the daemon down
# cleanly. Usage: tools/server_smoke.sh BUILD_DIR [WORK_DIR]
set -euo pipefail

build=${1:?usage: server_smoke.sh BUILD_DIR [WORK_DIR]}
work=${2:-$(mktemp -d "${TMPDIR:-/tmp}/xupdate_smoke.XXXXXX")}
xupdate="$build/tools/xupdate"
sock="$work/xupdate.sock"
data="$work/tenants"
mkdir -p "$work"

cleanup() {
  for pid in "${server_pid:-}" "${router_pid:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
}
trap cleanup EXIT

echo "== starting daemon"
"$xupdate" serve --socket "$sock" --data-dir "$data" \
  --commit-window-ms 5 --max-pending 256 --schema builtin:xmark \
  >"$work/serve.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
  [[ -S "$sock" ]] && break
  kill -0 "$server_pid" || { cat "$work/serve.log"; exit 1; }
  sleep 0.1
done
[[ -S "$sock" ]] || { echo "server socket never appeared"; exit 1; }

echo "== verified mixed workload over pipelined connections"
"$xupdate" loadgen --socket "$sock" \
  --tenants 4 --items 300 --connections 4 --window 16 \
  --ops-per-pul 6 --doc-bytes 8192 --seed 7 --verify 1 \
  --dump-head "$work/heads" --server-metrics "$work/server_metrics.json" \
  --metrics - | tee "$work/loadgen.log"
grep -q "verify ok" "$work/loadgen.log"

echo "== byte identity: loadgen heads vs one-shot store checkout"
for tenant_dir in "$data"/*/; do
  tenant=$(basename "$tenant_dir")
  head=$("$xupdate" store log --dir "$tenant_dir" |
    sed -n 's/^head: \([0-9][0-9]*\)$/\1/p')
  "$xupdate" store checkout --dir "$tenant_dir" --version "$head" \
    --out "$work/cli_$tenant.xml"
  cmp "$work/heads/$tenant.head.xml" "$work/cli_$tenant.xml"
  echo "   $tenant: version $head identical"
done

echo "== group commit coalesced fsyncs, router accounted every commit"
python3 - "$work/server_metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["counters"]
fsyncs, commits = m["store.wal.fsync.count"], m["store.commit.count"]
print(f"   {commits} commits, {fsyncs} wal fsyncs")
assert commits > 0 and fsyncs < commits, "group commit did not coalesce"
# The daemon runs with --schema, so every commit must pass through the
# router (routed or fallback; the pipelined chains above all fall back —
# same-tenant chains cannot be proven pairwise independent).
routed = m.get("server.schema.routed", 0)
fallback = m.get("server.schema.fallback", 0)
print(f"   {routed} routed, {fallback} fallback")
assert routed + fallback == commits, "router accounting does not cover commits"
EOF

echo "== schema router routes unpipelined singles (fresh daemon)"
rsock="$work/router.sock"
rdata="$work/router_tenants"
"$xupdate" serve --socket "$rsock" --data-dir "$rdata" \
  --commit-window-ms 5 --max-pending 256 --schema builtin:xmark \
  >"$work/router_serve.log" 2>&1 &
router_pid=$!
for _ in $(seq 1 100); do
  [[ -S "$rsock" ]] && break
  kill -0 "$router_pid" || { cat "$work/router_serve.log"; exit 1; }
  sleep 0.1
done
[[ -S "$rsock" ]] || { echo "router socket never appeared"; exit 1; }
# Paced open-loop arrivals (~40ms per-tenant gaps vs the 5ms commit
# window) keep most tenant groups at one queued commit per batch, and a
# single-commit group is trivially proven independent — so the
# concurrent route must fire; the smoke fails if nothing routes.
"$xupdate" loadgen --socket "$rsock" \
  --tenants 4 --items 60 --connections 4 --window 1 --rate 100 \
  --commit-weight 1 --checkout-weight 0 --reduce-weight 0 --stat-weight 0 \
  --ops-per-pul 4 --doc-bytes 4096 --seed 11 --verify 1 \
  --server-metrics "$work/router_metrics.json" >"$work/router_loadgen.log"
grep -q "verify ok" "$work/router_loadgen.log"
python3 - "$work/router_metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["counters"]
routed = m.get("server.schema.routed", 0)
fallback = m.get("server.schema.fallback", 0)
commits = m["store.commit.count"]
print(f"   {commits} commits: {routed} routed, {fallback} fallback")
assert routed > 0, "schema router enabled but nothing routed"
assert routed + fallback == commits, "router accounting does not cover commits"
EOF
kill "$router_pid" 2>/dev/null || true
wait "$router_pid" 2>/dev/null || true
router_pid=""

echo "== remote shutdown"
"$xupdate" loadgen --socket "$sock" --tenants 1 --items 1 \
  --commit-weight 0 --checkout-weight 0 --reduce-weight 0 --stat-weight 1 \
  --shutdown 1 >/dev/null
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "server still running after shutdown request"; exit 1
fi
wait "$server_pid" || { echo "server exited non-zero"; cat "$work/serve.log"; exit 1; }
server_pid=""

echo "== server smoke OK ($work)"
