#!/usr/bin/env bash
# End-to-end smoke of the PUL reasoning daemon, as run by CI (under
# ASan there): start the server, drive it with a verified mixed
# workload over pipelined connections, prove byte identity of every
# tenant head against the one-shot `store checkout` path, prove the
# group commit actually coalesced fsyncs, exercise the telemetry
# surface (versioned stat payload, Prometheus exposition, `top` deltas,
# slow-request log, SIGUSR1 flight-recorder dump), and shut the daemon
# down cleanly. Usage: tools/server_smoke.sh BUILD_DIR [WORK_DIR]
set -euo pipefail

build=${1:?usage: server_smoke.sh BUILD_DIR [WORK_DIR]}
work=${2:-$(mktemp -d "${TMPDIR:-/tmp}/xupdate_smoke.XXXXXX")}
xupdate="$build/tools/xupdate"
sock="$work/xupdate.sock"
data="$work/tenants"
mkdir -p "$work"

cleanup() {
  for pid in "${server_pid:-}" "${router_pid:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
}
trap cleanup EXIT

echo "== starting daemon (telemetry on: metrics-out, slow log, flight dump)"
"$xupdate" serve --socket "$sock" --data-dir "$data" \
  --commit-window-ms 5 --max-pending 256 --schema builtin:xmark \
  --metrics-out "$work/metrics.prom" --metrics-interval-ms 200 \
  --slow-request-ms 0 --slow-request-log "$work/slow.jsonl" \
  --slow-request-log-rate 100000 --flight-dump "$work/flight.jsonl" \
  >"$work/serve.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
  [[ -S "$sock" ]] && break
  kill -0 "$server_pid" || { cat "$work/serve.log"; exit 1; }
  sleep 0.1
done
[[ -S "$sock" ]] || { echo "server socket never appeared"; exit 1; }

echo "== verified mixed workload over pipelined connections"
"$xupdate" loadgen --socket "$sock" \
  --tenants 4 --items 300 --connections 4 --window 16 \
  --ops-per-pul 6 --doc-bytes 8192 --seed 7 --verify 1 \
  --dump-head "$work/heads" --server-metrics "$work/server_metrics.json" \
  --metrics - | tee "$work/loadgen.log"
grep -q "verify ok" "$work/loadgen.log"

echo "== byte identity: loadgen heads vs one-shot store checkout"
for tenant_dir in "$data"/*/; do
  tenant=$(basename "$tenant_dir")
  head=$("$xupdate" store log --dir "$tenant_dir" |
    sed -n 's/^head: \([0-9][0-9]*\)$/\1/p')
  "$xupdate" store checkout --dir "$tenant_dir" --version "$head" \
    --out "$work/cli_$tenant.xml"
  cmp "$work/heads/$tenant.head.xml" "$work/cli_$tenant.xml"
  echo "   $tenant: version $head identical"
done

echo "== group commit coalesced fsyncs, router accounted every commit"
python3 - "$work/server_metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
# The stat payload is the versioned wrapper now; global metrics moved
# under "global", tenant-scoped series under "tenants".
assert doc.get("v") == 1, f"unexpected stat payload version: {doc.get('v')}"
assert doc.get("seq", 0) >= 1 and "uptime_ticks" in doc
m = doc["global"]["counters"]
fsyncs, commits = m["store.wal.fsync.count"], m["store.commit.count"]
print(f"   {commits} commits, {fsyncs} wal fsyncs")
assert commits > 0 and fsyncs < commits, "group commit did not coalesce"
# The daemon runs with --schema, so every commit must pass through the
# router (routed or fallback; the pipelined chains above all fall back —
# same-tenant chains cannot be proven pairwise independent).
routed = m.get("server.schema.routed", 0)
fallback = m.get("server.schema.fallback", 0)
print(f"   {routed} routed, {fallback} fallback")
assert routed + fallback == commits, "router accounting does not cover commits"
# Per-tenant isolation: the global aggregate is exactly the sum of the
# per-tenant sections.
per_tenant = {t: s["counters"].get("commit.count", 0)
              for t, s in doc["tenants"].items()}
print(f"   per-tenant commits: {per_tenant}")
assert sum(per_tenant.values()) == commits, "tenant sections do not sum"
assert all(c > 0 for c in per_tenant.values()), "a tenant saw no commits"
EOF

echo "== prometheus exposition: stat --format=prom and --metrics-out"
"$xupdate" stat --socket "$sock" --format=prom >"$work/stat.prom"
grep -q '^# TYPE xupdate_store_commit_count counter$' "$work/stat.prom"
grep -q '^xupdate_commit_count{tenant="t0"} ' "$work/stat.prom"
grep -q 'quantile="0.99"' "$work/stat.prom"
for _ in $(seq 1 50); do
  [[ -s "$work/metrics.prom" ]] && break
  sleep 0.1
done
grep -q '^# TYPE xupdate_store_commit_count counter$' "$work/metrics.prom"
echo "   exposition renders global + tenant families"

echo "== live monitor: top over stat deltas"
"$xupdate" top --socket "$sock" --interval-ms 200 --iterations 2 --raw 1 \
  >"$work/top.log"
grep -q 'xupdate top  seq=' "$work/top.log"
grep -q 'p50ms' "$work/top.log"
grep -q '^t0 ' "$work/top.log"
echo "   top rendered per-tenant percentile rows"

echo "== slow-request log is structured jsonl"
python3 - "$work/slow.jsonl" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert lines, "slow-request log is empty at threshold 0"
commits = [l for l in lines if l["type"] == "commit"]
assert commits, "no commit lines in slow-request log"
for l in commits:
    assert l["tenant"].startswith("t") and l["batch"] >= 1
    for key in ("total_ms", "admission_ms", "batch_wait_ms", "fsync_ms"):
        assert key in l, f"missing {key}"
print(f"   {len(lines)} slow-log lines, {len(commits)} commits")
EOF

echo "== SIGUSR1 dumps the flight recorder"
rm -f "$work/flight.jsonl"
kill -USR1 "$server_pid"
for _ in $(seq 1 50); do
  [[ -s "$work/flight.jsonl" ]] && break
  sleep 0.1
done
python3 - "$work/flight.jsonl" <<'EOF'
import json, sys
events = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert events, "flight dump is empty"
kinds = {e["kind"] for e in events}
assert "batch-seal" in kinds, f"no batch seals in flight dump: {kinds}"
assert "admit" in kinds and "fsync-ok" in kinds
seqs = [e["seq"] for e in events]
assert seqs == sorted(seqs), "flight dump out of seq order"
print(f"   {len(events)} flight events, kinds: {sorted(kinds)}")
EOF

echo "== schema router routes unpipelined singles (fresh daemon)"
rsock="$work/router.sock"
rdata="$work/router_tenants"
"$xupdate" serve --socket "$rsock" --data-dir "$rdata" \
  --commit-window-ms 5 --max-pending 256 --schema builtin:xmark \
  >"$work/router_serve.log" 2>&1 &
router_pid=$!
for _ in $(seq 1 100); do
  [[ -S "$rsock" ]] && break
  kill -0 "$router_pid" || { cat "$work/router_serve.log"; exit 1; }
  sleep 0.1
done
[[ -S "$rsock" ]] || { echo "router socket never appeared"; exit 1; }
# Paced open-loop arrivals (~40ms per-tenant gaps vs the 5ms commit
# window) keep most tenant groups at one queued commit per batch, and a
# single-commit group is trivially proven independent — so the
# concurrent route must fire; the smoke fails if nothing routes.
"$xupdate" loadgen --socket "$rsock" \
  --tenants 4 --items 60 --connections 4 --window 1 --rate 100 \
  --commit-weight 1 --checkout-weight 0 --reduce-weight 0 --stat-weight 0 \
  --ops-per-pul 4 --doc-bytes 4096 --seed 11 --verify 1 \
  --server-metrics "$work/router_metrics.json" >"$work/router_loadgen.log"
grep -q "verify ok" "$work/router_loadgen.log"
python3 - "$work/router_metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["global"]["counters"]
routed = m.get("server.schema.routed", 0)
fallback = m.get("server.schema.fallback", 0)
commits = m["store.commit.count"]
print(f"   {commits} commits: {routed} routed, {fallback} fallback")
assert routed > 0, "schema router enabled but nothing routed"
assert routed + fallback == commits, "router accounting does not cover commits"
EOF
kill "$router_pid" 2>/dev/null || true
wait "$router_pid" 2>/dev/null || true
router_pid=""

echo "== remote shutdown"
"$xupdate" loadgen --socket "$sock" --tenants 1 --items 1 \
  --commit-weight 0 --checkout-weight 0 --reduce-weight 0 --stat-weight 1 \
  --shutdown 1 >/dev/null
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "server still running after shutdown request"; exit 1
fi
wait "$server_pid" || { echo "server exited non-zero"; cat "$work/serve.log"; exit 1; }
server_pid=""

echo "== shutdown wrote a final flight dump with the shutdown marker"
grep -q '"kind":"shutdown"' "$work/flight.jsonl"

echo "== server smoke OK ($work)"
