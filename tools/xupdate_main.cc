#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  xupdate::Status status = xupdate::tools::RunCli(args, std::cout);
  if (!status.ok()) {
    std::cerr << "xupdate: " << status << "\n";
    return 1;
  }
  return 0;
}
