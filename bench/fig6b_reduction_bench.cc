// Figure 6b: cost of PUL reduction.
//
// Paper workload: PULs of 5k-100k operations with roughly one successful
// rule application every 10 operations; the measured pipeline is
// deserialize -> reduce -> reserialize. Expected shape: near-linear in
// the operation count, with (de)serialization dominating the reduction
// itself.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/reduce.h"
#include "pul/pul_io.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

constexpr size_t kDocMb = 8;  // large enough for 100k distinct targets

struct ReductionInput {
  pul::Pul pul;
  std::string serialized;
};

const ReductionInput& InputFixture(size_t ops) {
  static std::map<size_t, std::unique_ptr<ReductionInput>> cache;
  auto it = cache.find(ops);
  if (it != cache.end()) return *it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling, 555 + ops);
  workload::PulGenerator::PulOptions options;
  options.num_ops = ops;
  options.reducible_fraction = 0.2;  // ~1 rule application per 10 ops
  auto pul = gen.Generate(options);
  if (!pul.ok()) {
    fprintf(stderr, "pul generation failed: %s\n",
            pul.status().ToString().c_str());
    abort();
  }
  auto input = std::make_unique<ReductionInput>();
  auto text = pul::SerializePul(*pul);
  if (!text.ok()) abort();
  input->pul = std::move(*pul);
  input->serialized = std::move(*text);
  return *cache.emplace(ops, std::move(input)).first->second;
}

void BM_ReduceFullPipeline(benchmark::State& state) {
  const ReductionInput& input =
      InputFixture(static_cast<size_t>(state.range(0)));
  core::ReduceStats stats;
  for (auto _ : state) {
    auto parsed = pul::ParsePul(input.serialized);
    if (!parsed.ok()) {
      state.SkipWithError(parsed.status().ToString().c_str());
      return;
    }
    auto reduced =
        core::ReduceWithStats(*parsed, core::ReduceMode::kPlain, &stats);
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    auto text = pul::SerializePul(*reduced);
    if (!text.ok()) {
      state.SkipWithError(text.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*text);
  }
  state.counters["ops"] = static_cast<double>(input.pul.size());
  state.counters["rule_apps"] = static_cast<double>(stats.rule_applications);
  state.counters["out_ops"] = static_cast<double>(stats.output_ops);
}

void BM_ReduceDeserializeOnly(benchmark::State& state) {
  const ReductionInput& input =
      InputFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto parsed = pul::ParsePul(input.serialized);
    if (!parsed.ok()) {
      state.SkipWithError(parsed.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*parsed);
  }
  state.counters["ops"] = static_cast<double>(input.pul.size());
}

void BM_ReduceOnly(benchmark::State& state) {
  const ReductionInput& input =
      InputFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto reduced = core::Reduce(input.pul, core::ReduceMode::kPlain);
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*reduced);
  }
  state.counters["ops"] = static_cast<double>(input.pul.size());
}

void BM_ReduceSerializeOnly(benchmark::State& state) {
  const ReductionInput& input =
      InputFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto text = pul::SerializePul(input.pul);
    if (!text.ok()) {
      state.SkipWithError(text.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*text);
  }
  state.counters["ops"] = static_cast<double>(input.pul.size());
}

void PulSizes(benchmark::internal::Benchmark* b) {
  for (int64_t ops : {5000, 10000, 25000, 50000, 100000}) b->Arg(ops);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_ReduceFullPipeline)->Apply(PulSizes);
BENCHMARK(BM_ReduceDeserializeOnly)->Apply(PulSizes);
BENCHMARK(BM_ReduceOnly)->Apply(PulSizes);
BENCHMARK(BM_ReduceSerializeOnly)->Apply(PulSizes);

}  // namespace
}  // namespace xupdate

