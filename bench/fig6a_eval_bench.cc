// Figure 6a: streaming vs in-memory PUL evaluation.
//
// Paper workload: XMark documents of growing size, a PUL of 1000
// operations; the streaming evaluator processes the document as a SAX
// event stream while the in-memory evaluator loads it completely.
// Expected shape: both engines scale linearly with document size, the
// streaming engine is a constant factor (~3x in the paper) faster and
// its advantage grows in absolute terms with document size.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/in_memory.h"
#include "exec/streaming.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

constexpr size_t kPulOps = 1000;

const pul::Pul& PulFixture(size_t mb) {
  static std::map<size_t, std::unique_ptr<pul::Pul>> cache;
  auto it = cache.find(mb);
  if (it != cache.end()) return *it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(mb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling, 1234);
  workload::PulGenerator::PulOptions options;
  options.num_ops = kPulOps;
  auto pul = gen.Generate(options);
  if (!pul.ok()) {
    fprintf(stderr, "pul generation failed: %s\n",
            pul.status().ToString().c_str());
    abort();
  }
  return *cache.emplace(mb, std::make_unique<pul::Pul>(std::move(*pul)))
              .first->second;
}

void ReportDocCounters(benchmark::State& state, size_t input_bytes,
                       size_t output_bytes) {
  state.counters["doc_mb"] =
      static_cast<double>(state.range(0));
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(input_bytes) * static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
  state.counters["out_bytes"] = static_cast<double>(output_bytes);
}

void BM_InMemoryEval(benchmark::State& state) {
  size_t mb = static_cast<size_t>(state.range(0));
  const bench::BenchDocument& fixture = bench::XmarkFixture(mb);
  const pul::Pul& pul = PulFixture(mb);
  exec::InMemoryEvaluator evaluator;
  size_t out_bytes = 0;
  for (auto _ : state) {
    auto result = evaluator.Evaluate(fixture.annotated_text, pul);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    out_bytes = result->size();
    benchmark::DoNotOptimize(*result);
  }
  ReportDocCounters(state, fixture.annotated_text.size(), out_bytes);
}

void BM_StreamingEval(benchmark::State& state) {
  size_t mb = static_cast<size_t>(state.range(0));
  const bench::BenchDocument& fixture = bench::XmarkFixture(mb);
  const pul::Pul& pul = PulFixture(mb);
  exec::StreamingEvaluator evaluator;
  size_t out_bytes = 0;
  for (auto _ : state) {
    auto result = evaluator.Evaluate(fixture.annotated_text, pul);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    out_bytes = result->size();
    benchmark::DoNotOptimize(*result);
  }
  ReportDocCounters(state, fixture.annotated_text.size(), out_bytes);
}

void DocSizes(benchmark::internal::Benchmark* b) {
  for (size_t mb = 1; mb <= xupdate::bench::MaxDocMb(); mb *= 2) {
    b->Arg(static_cast<int64_t>(mb));
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_InMemoryEval)->Apply(DocSizes);
BENCHMARK(BM_StreamingEval)->Apply(DocSizes);

}  // namespace
}  // namespace xupdate

