// Disabled-telemetry overhead gate for the serving layer. The PR that
// added per-tenant metrics, the flight recorder and request tracing
// must not tax the hot commit path when tracing is off and nothing is
// polling: this gate drives a real in-process server over its Unix
// socket twice — once with every telemetry sink disabled, once with the
// `serve` defaults (flight recorder on, per-tenant metrics on, tracer
// null, slow-request log off) — and fails (exit 1) if the default
// configuration is more than 1% slower on a synchronous single-
// connection commit workload. fsync=never and a zero batch window keep
// the measured work CPU-bound, which is the unfavourable case for the
// telemetry branches: against real fsyncs they would vanish.
//
// The gated statistic is a ratio of two separately robust numbers:
//
//   overhead = (per-commit telemetry op cost, measured directly)
//            / (fastest end-to-end bare commit round trip)
//
// The numerator times the exact op sequence an admitted commit executes
// beyond the bare configuration — the per-tenant counter/timer updates,
// the wal-bytes gauge and the four flight-recorder events — in a tight
// loop against a registry and recorder populated like a live server's.
// The denominator is the minimum single-commit round trip over every
// commit of every bare trial. A paired end-to-end comparison cannot
// gate at 1% here: each round trip crosses three threads (client,
// session read loop, batch writer), and on a single-core box the
// run-to-run noise floor of even the per-commit minimum exceeds the
// budget with BOTH sides configured identically. The direct measurement
// is stable to well under a microsecond, and the denominator tolerates
// its own noise (a 10% swing moves a 0.5% ratio by 0.05 points). The
// end-to-end comparison still runs and lands in the artifact
// (`e2e_overhead`) for context, unguarded. If the server's telemetry
// sequence changes, kTelemetryOpsPerCommit below must follow: the
// sanity block cross-checks the live server's flight-event and
// per-tenant counts against the modelled sequence so drift fails loudly
// instead of silently gating the wrong loop.
//
// Not a Google-Benchmark binary on purpose (same rationale as
// trace_overhead_check): a hard verdict plus a repo-root JSON artifact.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "label/labeling.h"
#include "obs/flight_recorder.h"
#include "pul/pul_io.h"
#include "server/client.h"
#include "server/server.h"
#include "store/version.h"
#include "store/wal.h"
#include "workload/pul_generator.h"
#include "xmark/generator.h"
#include "xml/parser.h"

namespace {

namespace fs = std::filesystem;

constexpr size_t kDocBytes = 1 << 14;
constexpr size_t kCommits = 64;
constexpr size_t kOpsPerPul = 4;
constexpr int kTrials = 15;
constexpr double kMaxOverhead = 0.01;

// The telemetry ops an admitted commit runs beyond the bare
// configuration (server.cc): per-tenant requests counter at GetTenant,
// flight events admit/batch-seal/fsync-ok/apply, the per-tenant
// wal-bytes gauge after apply, and the per-tenant commit timer+counter
// at respond time. The sanity block below cross-checks these counts
// against the live server so the model cannot silently drift.
constexpr uint64_t kFlightEventsPerCommit = 4;
constexpr size_t kServerDefaultFlightCapacity = 1024;

using Clock = std::chrono::steady_clock;

struct Fixture {
  std::string base_xml;
  std::vector<std::string> chain;
};

Fixture BuildFixture() {
  xupdate::xmark::Config config;
  config.seed = 777;
  config.target_bytes = kDocBytes;
  auto text = xupdate::xmark::GenerateDocumentText(config);
  if (!text.ok()) {
    fprintf(stderr, "xmark generation failed: %s\n",
            text.status().ToString().c_str());
    exit(1);
  }
  auto doc = xupdate::xml::ParseDocument(*text);
  if (!doc.ok()) {
    fprintf(stderr, "parse failed: %s\n", doc.status().ToString().c_str());
    exit(1);
  }
  auto annotated = xupdate::store::VersionStore::SerializeAnnotated(*doc);
  if (!annotated.ok()) {
    fprintf(stderr, "serialize failed: %s\n",
            annotated.status().ToString().c_str());
    exit(1);
  }
  xupdate::label::Labeling labeling = xupdate::label::Labeling::Build(*doc);
  xupdate::workload::PulGenerator gen(*doc, labeling, 778);
  xupdate::workload::PulGenerator::SequenceOptions seq;
  seq.num_puls = kCommits;
  seq.ops_per_pul = kOpsPerPul;
  auto puls = gen.GenerateSequence(seq);
  if (!puls.ok()) {
    fprintf(stderr, "pul generation failed: %s\n",
            puls.status().ToString().c_str());
    exit(1);
  }
  Fixture fixture;
  fixture.base_xml = std::move(*annotated);
  for (const auto& pul : *puls) {
    auto xml = xupdate::pul::SerializePul(pul);
    if (!xml.ok()) {
      fprintf(stderr, "pul serialization failed: %s\n",
              xml.status().ToString().c_str());
      exit(1);
    }
    fixture.chain.push_back(std::move(*xml));
  }
  return fixture;
}

struct Harness {
  xupdate::Metrics metrics;
  std::unique_ptr<xupdate::server::Server> server;
  xupdate::server::Client client;
  size_t next_tenant = 0;

  // One trial: open a fresh tenant (untimed: the document parse is
  // setup, not hot path), then run the synchronous commit loop and
  // return the fastest single-commit round trip it saw.
  double RunTrial(const Fixture& fixture) {
    std::string tenant = "t" + std::to_string(next_tenant++);
    auto head = client.Open(tenant, fixture.base_xml);
    if (!head.ok()) {
      fprintf(stderr, "open failed: %s\n", head.status().ToString().c_str());
      exit(1);
    }
    double best = 1e300;
    for (size_t i = 0; i < fixture.chain.size(); ++i) {
      auto begin = Clock::now();
      auto ack = client.Commit(tenant, fixture.chain[i]);
      auto end = Clock::now();
      if (!ack.ok() || ack->busy || ack->version != i + 1) {
        fprintf(stderr, "commit %zu failed: %s\n", i,
                ack.ok() ? "busy/unexpected version"
                         : ack.status().ToString().c_str());
        exit(1);
      }
      best = std::min(best,
                      std::chrono::duration<double>(end - begin).count());
    }
    return best;
  }
};

void StartHarness(Harness* harness, const fs::path& root,
                  const std::string& tag, bool telemetry) {
  xupdate::server::ServerOptions options;
  options.socket_path = (root / (tag + ".sock")).string();
  options.data_dir = (root / (tag + "_data")).string();
  options.commit_window_ms = 0;
  options.metrics = &harness->metrics;
  options.store.fsync = xupdate::store::FsyncPolicy::kNever;
  options.store.snapshot_every = 0;
  options.store.snapshot_bytes = 0;
  if (!telemetry) {
    options.flight_recorder_capacity = 0;
    options.per_tenant_metrics = false;
  }
  auto server = xupdate::server::Server::Start(options);
  if (!server.ok()) {
    fprintf(stderr, "server start failed: %s\n",
            server.status().ToString().c_str());
    exit(1);
  }
  harness->server = std::move(*server);
  auto client = xupdate::server::Client::Connect(options.socket_path);
  if (!client.ok()) {
    fprintf(stderr, "connect failed: %s\n",
            client.status().ToString().c_str());
    exit(1);
  }
  harness->client = std::move(*client);
}

// Directly times the per-commit telemetry op sequence against a
// registry and flight recorder populated like a live server's (the
// global series the daemon registers plus a realistic tenant
// population, so map lookups walk trees of honest depth). Returns
// seconds per commit, minimum over repeats. Mutexes are uncontended
// here; on the serialized single-connection hot path they are on the
// server too, and a contended acquisition is a context switch —
// scheduler cost, not telemetry CPU.
double MeasureTelemetryOpsPerCommit() {
  xupdate::Metrics metrics;
  xupdate::obs::FlightRecorder flight(kServerDefaultFlightCapacity);
  for (const char* name :
       {"server.requests", "server.accept.count", "server.batch.count",
        "server.batch.jobs", "store.commit.count", "store.wal.append.count",
        "store.wal.fsync.count"}) {
    metrics.AddCounter(name, 0);
  }
  metrics.SetGauge("server.queue.depth", 0);
  metrics.SetGauge("server.batch.window.occupancy", 0);
  metrics.SetGauge("server.tenants.resident", 0);
  metrics.SetGauge("server.wal.bytes", 0);
  metrics.RecordDuration("server.commit.seconds", 0.000150);
  std::vector<std::string> requests_names;
  std::vector<std::string> commit_count_names;
  std::vector<std::string> commit_seconds_names;
  std::vector<std::string> wal_bytes_names;
  for (int t = 0; t < 16; ++t) {
    const std::string prefix = "tenant/t" + std::to_string(t) + "/";
    requests_names.push_back(prefix + "requests");
    commit_count_names.push_back(prefix + "commit.count");
    commit_seconds_names.push_back(prefix + "commit.seconds");
    wal_bytes_names.push_back(prefix + "wal.bytes");
    metrics.AddCounter(requests_names.back(), 0);
    metrics.AddCounter(commit_count_names.back(), 0);
    metrics.AddCounter(prefix + "commit.errors", 0);
    metrics.AddCounter(prefix + "shed.count", 0);
    metrics.RecordDuration(commit_seconds_names.back(), 0.000150);
    metrics.RecordDuration(prefix + "checkout.seconds", 0.000150);
    metrics.SetGauge(wal_bytes_names.back(), 0);
  }

  constexpr int kReps = 5;
  constexpr uint64_t kIters = 100000;
  const std::string tenant = "t12";
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    auto begin = Clock::now();
    for (uint64_t k = 0; k < kIters; ++k) {
      const size_t t = k % 16;
      metrics.AddCounter(requests_names[t]);
      flight.Record(xupdate::obs::FlightEventKind::kAdmit, tenant, k, 0, 1);
      flight.Record(xupdate::obs::FlightEventKind::kBatchSeal, {}, 0, k, 1);
      flight.Record(xupdate::obs::FlightEventKind::kFsyncOk, tenant, 0, k, 1);
      flight.Record(xupdate::obs::FlightEventKind::kApply, tenant, 0, k, 1);
      metrics.SetGauge(wal_bytes_names[t], static_cast<int64_t>(k));
      metrics.RecordDuration(commit_seconds_names[t], 0.000150);
      metrics.AddCounter(commit_count_names[t]);
    }
    auto end = Clock::now();
    best = std::min(best, std::chrono::duration<double>(end - begin).count() /
                              static_cast<double>(kIters));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
  if (std::getenv("XUPDATE_ALLOW_DEBUG_BENCH") == nullptr) {
    fprintf(stderr,
            "refusing to gate on a Debug build; rebuild with "
            "-DCMAKE_BUILD_TYPE=Release or set "
            "XUPDATE_ALLOW_DEBUG_BENCH=1 to override\n");
    return 1;
  }
#endif

  const char* out_path =
      argc > 1 ? argv[1] : "BENCH_telemetry_overhead.json";

  Fixture fixture = BuildFixture();
  fs::path root =
      fs::temp_directory_path() /
      ("xupdate_telemetry_overhead_" + std::to_string(::getpid()));
  fs::create_directories(root);

  Harness bare;
  Harness full;
  StartHarness(&bare, root, "bare", /*telemetry=*/false);
  StartHarness(&full, root, "full", /*telemetry=*/true);

  // Warm both paths, then interleave with alternating order so drift
  // and allocator state land on both sides equally.
  (void)bare.RunTrial(fixture);
  (void)full.RunTrial(fixture);
  double bare_min = 1e300;
  double full_min = 1e300;
  for (int trial = 0; trial < kTrials; ++trial) {
    if (trial % 2 == 0) {
      bare_min = std::min(bare_min, bare.RunTrial(fixture));
      full_min = std::min(full_min, full.RunTrial(fixture));
    } else {
      full_min = std::min(full_min, full.RunTrial(fixture));
      bare_min = std::min(bare_min, bare.RunTrial(fixture));
    }
  }

  // Sanity: the telemetry side actually recorded per-tenant series (the
  // gate must not pass because telemetry silently never ran), and the
  // live server's event counts match the modelled op sequence — if the
  // commit path gains or loses a flight event or per-tenant metric op,
  // this fails instead of letting the direct loop measure a stale model.
  const size_t opened_tenants = 1 + static_cast<size_t>(kTrials);  // + warm
  if (full.metrics.counter("tenant/t1/commit.count") != kCommits ||
      full.metrics.counter("tenant/t1/requests") != kCommits + 1 ||  // + open
      full.server->flight_recorder() == nullptr) {
    fprintf(stderr, "telemetry configuration did not record\n");
    return 1;
  }
  const uint64_t expected_events =
      kFlightEventsPerCommit * kCommits * opened_tenants + opened_tenants;
  const uint64_t recorded = full.server->flight_recorder()->total_recorded();
  if (recorded != expected_events) {
    fprintf(stderr,
            "flight-event count %llu != modelled %llu; update the "
            "telemetry op model in MeasureTelemetryOpsPerCommit\n",
            static_cast<unsigned long long>(recorded),
            static_cast<unsigned long long>(expected_events));
    return 1;
  }
  if (bare.metrics.counter("tenant/t1/commit.count") != 0) {
    fprintf(stderr, "bare configuration unexpectedly recorded\n");
    return 1;
  }

  if (!bare.server->Stop().ok() || !full.server->Stop().ok()) {
    fprintf(stderr, "server stop failed\n");
    return 1;
  }
  bare.server.reset();
  full.server.reset();
  std::error_code ec;
  fs::remove_all(root, ec);

  const double ops_seconds = MeasureTelemetryOpsPerCommit();
  const double e2e_overhead = full_min / bare_min - 1.0;
  const double overhead = ops_seconds / bare_min;
  const bool pass = ops_seconds <= bare_min * kMaxOverhead;

  char json[640];
  snprintf(json, sizeof(json),
           "{\"workload\":\"serve-sync-commits\",\"build_type\":\"%s\","
           "\"commits\":%zu,\"trials\":%d,"
           "\"bare_min_commit_seconds\":%.9f,"
           "\"telemetry_min_commit_seconds\":%.9f,"
           "\"e2e_overhead\":%.6f,"
           "\"telemetry_ops_seconds\":%.9f,"
           "\"overhead\":%.6f,\"budget\":%.6f,\"pass\":%s}\n",
           build_type, kCommits, kTrials, bare_min, full_min, e2e_overhead,
           ops_seconds, overhead, kMaxOverhead, pass ? "true" : "false");
  FILE* f = fopen(out_path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  fputs(json, f);
  fclose(f);
  fputs(json, stdout);
  if (!pass) {
    fprintf(stderr,
            "disabled-telemetry overhead %.2f%% exceeds the %.0f%% "
            "budget\n",
            overhead * 100.0, kMaxOverhead * 100.0);
    return 1;
  }
  return 0;
}
