// Ablation A1: reduction cost as a function of reducible-pair density.
//
// DESIGN.md calls out the staged worklist fixpoint as the central design
// choice of the reducer; this sweep holds the PUL size fixed (20k ops)
// and varies the fraction of operations that participate in a reduction,
// verifying that cost stays near-linear even when half the PUL collapses.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/reduce.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

constexpr size_t kDocMb = 4;
constexpr size_t kOps = 20000;

const pul::Pul& DensityFixture(size_t density_percent) {
  static std::map<size_t, std::unique_ptr<pul::Pul>> cache;
  auto it = cache.find(density_percent);
  if (it != cache.end()) return *it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling,
                             4242 + density_percent);
  workload::PulGenerator::PulOptions options;
  options.num_ops = kOps;
  options.reducible_fraction =
      static_cast<double>(density_percent) / 100.0;
  auto pul = gen.Generate(options);
  if (!pul.ok()) {
    fprintf(stderr, "pul generation failed: %s\n",
            pul.status().ToString().c_str());
    abort();
  }
  return *cache
              .emplace(density_percent,
                       std::make_unique<pul::Pul>(std::move(*pul)))
              .first->second;
}

void BM_ReduceByDensity(benchmark::State& state) {
  const pul::Pul& pul =
      DensityFixture(static_cast<size_t>(state.range(0)));
  core::ReduceStats stats;
  for (auto _ : state) {
    auto reduced =
        core::ReduceWithStats(pul, core::ReduceMode::kPlain, &stats);
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*reduced);
  }
  state.counters["density_pct"] = static_cast<double>(state.range(0));
  state.counters["rule_apps"] = static_cast<double>(stats.rule_applications);
  state.counters["out_ops"] = static_cast<double>(stats.output_ops);
}

BENCHMARK(BM_ReduceByDensity)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xupdate

