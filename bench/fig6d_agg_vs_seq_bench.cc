// Figure 6d: aggregation + one evaluation vs. sequential evaluation.
//
// Paper workload: a list of n sequential PULs on one document; either
// (a) stream-evaluate each PUL in turn (n full passes over the — growing
// — document) or (b) aggregate the list into one PUL and stream-evaluate
// once. Expected shape: the sequential cost grows linearly in n while
// the aggregated cost stays near one pass; the aggregation itself is not
// even visible at this scale.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/aggregate.h"
#include "exec/streaming.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

constexpr size_t kDocMb = 4;
constexpr size_t kOpsPerPul = 1000;

const std::vector<pul::Pul>& SequenceFixture(size_t num_puls) {
  static std::map<size_t, std::unique_ptr<std::vector<pul::Pul>>> cache;
  auto it = cache.find(num_puls);
  if (it != cache.end()) return *it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling, 999 + num_puls);
  workload::PulGenerator::SequenceOptions options;
  options.num_puls = num_puls;
  options.ops_per_pul = kOpsPerPul;
  options.new_node_fraction = 0.5;
  auto puls = gen.GenerateSequence(options);
  if (!puls.ok()) {
    fprintf(stderr, "sequence generation failed: %s\n",
            puls.status().ToString().c_str());
    abort();
  }
  return *cache
              .emplace(num_puls, std::make_unique<std::vector<pul::Pul>>(
                                     std::move(*puls)))
              .first->second;
}

void BM_SequentialEvaluation(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  const std::vector<pul::Pul>& puls = SequenceFixture(n);
  exec::StreamingEvaluator evaluator;
  for (auto _ : state) {
    std::string current = fixture.annotated_text;
    for (const pul::Pul& pul : puls) {
      auto next = evaluator.Evaluate(current, pul);
      if (!next.ok()) {
        state.SkipWithError(next.status().ToString().c_str());
        return;
      }
      current = std::move(*next);
    }
    benchmark::DoNotOptimize(current);
  }
  state.counters["puls"] = static_cast<double>(n);
  state.counters["passes"] = static_cast<double>(n);
}

void BM_AggregateThenEvaluate(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  const std::vector<pul::Pul>& puls = SequenceFixture(n);
  exec::StreamingEvaluator evaluator;
  double agg_ms = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    std::vector<const pul::Pul*> ptrs;
    for (const pul::Pul& p : puls) ptrs.push_back(&p);
    auto aggregate = core::Aggregate(ptrs, nullptr);
    if (!aggregate.ok()) {
      state.SkipWithError(aggregate.status().ToString().c_str());
      return;
    }
    agg_ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
                 .count();
    auto result = evaluator.Evaluate(fixture.annotated_text, *aggregate);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*result);
  }
  state.counters["puls"] = static_cast<double>(n);
  state.counters["passes"] = 1;
  state.counters["agg_ms"] = agg_ms;
}

void PulCounts(benchmark::internal::Benchmark* b) {
  for (int64_t n : {2, 4, 8, 12, 15}) b->Arg(n);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_SequentialEvaluation)->Apply(PulCounts);
BENCHMARK(BM_AggregateThenEvaluate)->Apply(PulCounts);

}  // namespace
}  // namespace xupdate

