// Ablation A5: inline id annotations vs. external sidecar storage.
//
// The paper's §6 notes that storing ids and labels inside documents
// roughly triples their size and proposes external structures as future
// work. This sweep compares, per document size: (a) the inline scheme
// (annotated document; labels re-derived at parse) and (b) the sidecar
// scheme (pristine document + external id/label table; labels loaded
// verbatim). Counters report both artifacts' sizes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "label/sidecar.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xupdate {
namespace {

struct SidecarFixture {
  std::string plain;
  std::string sidecar;
};

const SidecarFixture& Fixture(size_t mb) {
  static std::map<size_t, std::unique_ptr<SidecarFixture>> cache;
  auto it = cache.find(mb);
  if (it != cache.end()) return *it->second;
  const bench::BenchDocument& base = bench::XmarkFixture(mb);
  auto fixture = std::make_unique<SidecarFixture>();
  auto plain = xml::SerializeDocument(base.doc);
  auto sidecar = label::SaveSidecar(base.doc, base.labeling);
  if (!plain.ok() || !sidecar.ok()) abort();
  fixture->plain = std::move(*plain);
  fixture->sidecar = std::move(*sidecar);
  return *cache.emplace(mb, std::move(fixture)).first->second;
}

void BM_LoadInlineAnnotated(benchmark::State& state) {
  size_t mb = static_cast<size_t>(state.range(0));
  const bench::BenchDocument& base = bench::XmarkFixture(mb);
  for (auto _ : state) {
    auto doc = xml::ParseDocument(base.annotated_text);
    if (!doc.ok()) {
      state.SkipWithError(doc.status().ToString().c_str());
      return;
    }
    label::Labeling labeling = label::Labeling::Build(*doc);
    benchmark::DoNotOptimize(labeling);
  }
  state.counters["doc_bytes"] =
      static_cast<double>(base.annotated_text.size());
  state.counters["extra_bytes"] = 0;
}

void BM_LoadWithSidecar(benchmark::State& state) {
  size_t mb = static_cast<size_t>(state.range(0));
  const SidecarFixture& fixture = Fixture(mb);
  for (auto _ : state) {
    auto loaded = label::LoadWithSidecar(fixture.plain, fixture.sidecar);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*loaded);
  }
  state.counters["doc_bytes"] = static_cast<double>(fixture.plain.size());
  state.counters["extra_bytes"] =
      static_cast<double>(fixture.sidecar.size());
}

void Sizes(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_LoadInlineAnnotated)->Apply(Sizes);
BENCHMARK(BM_LoadWithSidecar)->Apply(Sizes);

}  // namespace
}  // namespace xupdate

