// Versioned update store: the three trade-offs the store exposes.
//
//   * commit throughput per fsync policy — the durability knob
//     (always / batch / never), journal append + apply, no checkpoints;
//   * checkout latency vs snapshot cadence — sparse checkpoints mean
//     long forward replays, dense ones buy latency with disk;
//   * compaction cost and benefit — what a Compact() pass costs and
//     what it saves in journal bytes and replayed frames.
//
// Each benchmark works on a throwaway store directory under the system
// temp dir; artifacts are removed on process exit.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "store/version.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

namespace fs = std::filesystem;

constexpr size_t kDocMb = 1;
constexpr size_t kOpsPerPul = 100;
constexpr size_t kVersions = 32;

std::string BenchRoot() {
  static const std::string root = [] {
    std::string dir =
        (fs::temp_directory_path() /
         ("xupdate_store_bench_" + std::to_string(::getpid())))
            .string();
    fs::remove_all(dir);
    fs::create_directories(dir);
    // Best-effort cleanup when the process exits normally.
    std::atexit([] {
      std::error_code ec;
      fs::remove_all(fs::temp_directory_path() /
                         ("xupdate_store_bench_" +
                          std::to_string(::getpid())),
                     ec);
    });
    return dir;
  }();
  return root;
}

// The committed workload, generated once per process.
const std::vector<pul::Pul>& WorkloadFixture() {
  static std::mutex mutex;
  static std::unique_ptr<std::vector<pul::Pul>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  if (cache != nullptr) return *cache;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling, 4242);
  workload::PulGenerator::SequenceOptions options;
  options.num_puls = kVersions;
  options.ops_per_pul = kOpsPerPul;
  options.new_node_fraction = 0.3;
  auto puls = gen.GenerateSequence(options);
  if (!puls.ok()) {
    fprintf(stderr, "sequence generation failed: %s\n",
            puls.status().ToString().c_str());
    abort();
  }
  cache = std::make_unique<std::vector<pul::Pul>>(std::move(*puls));
  return *cache;
}

// A store with the full workload committed at the given snapshot
// cadence, built once per cadence and handed out read-only.
const std::string& CommittedStoreFixture(uint64_t snapshot_every) {
  static std::mutex mutex;
  static std::map<uint64_t, std::string> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(snapshot_every);
  if (it != cache.end()) return it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  std::string dir =
      BenchRoot() + "/committed_" + std::to_string(snapshot_every);
  store::StoreOptions options;
  options.snapshot_every = snapshot_every;
  options.snapshot_bytes = 0;
  options.fsync = store::FsyncPolicy::kNever;
  auto init =
      store::VersionStore::Init(dir, fixture.annotated_text, options);
  if (!init.ok()) abort();
  auto vs = store::VersionStore::Open(dir, options);
  if (!vs.ok()) abort();
  for (const pul::Pul& pul : WorkloadFixture()) {
    if (!vs->Commit(pul).ok()) abort();
  }
  if (!vs->Close().ok()) abort();
  return cache.emplace(snapshot_every, std::move(dir)).first->second;
}

// Commit throughput under each fsync policy. Arg 0/1/2 = always /
// batch / never. Checkpoints are disabled so the journal append + apply
// path is what's measured; the store is rebuilt (untimed) every
// kVersions commits.
void BM_StoreCommit(benchmark::State& state) {
  store::FsyncPolicy policy;
  switch (state.range(0)) {
    case 0: policy = store::FsyncPolicy::kAlways; break;
    case 1: policy = store::FsyncPolicy::kBatch; break;
    default: policy = store::FsyncPolicy::kNever; break;
  }
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  const std::vector<pul::Pul>& puls = WorkloadFixture();
  std::string dir = BenchRoot() + "/commit_" +
                    std::to_string(state.range(0));
  store::StoreOptions options;
  options.fsync = policy;
  options.snapshot_every = 0;
  options.snapshot_bytes = 0;

  store::VersionStore vs = [&] {
    fs::remove_all(dir);
    auto init =
        store::VersionStore::Init(dir, fixture.annotated_text, options);
    if (!init.ok()) abort();
    auto opened = store::VersionStore::Open(dir, options);
    if (!opened.ok()) abort();
    return std::move(*opened);
  }();
  size_t next = 0;
  uint64_t committed = 0;
  for (auto _ : state) {
    if (next == puls.size()) {
      state.PauseTiming();
      if (!vs.Close().ok()) abort();
      fs::remove_all(dir);
      auto init =
          store::VersionStore::Init(dir, fixture.annotated_text, options);
      if (!init.ok()) abort();
      auto opened = store::VersionStore::Open(dir, options);
      if (!opened.ok()) abort();
      vs = std::move(*opened);
      next = 0;
      state.ResumeTiming();
    }
    auto version = vs.Commit(puls[next++]);
    if (!version.ok()) {
      state.SkipWithError(version.status().ToString().c_str());
      return;
    }
    ++committed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["journal_bytes"] =
      static_cast<double>(fs::file_size(dir + "/wal.log"));
  state.counters["fsync_policy"] = static_cast<double>(state.range(0));
  (void)vs.Close();
}

// Checkout latency as a function of snapshot cadence. Arg = snapshot
// interval in versions (0 = only the version-0 checkpoint, the
// replay-everything worst case). The checked-out version is the one
// farthest from its nearest checkpoint under that cadence.
void BM_StoreCheckout(benchmark::State& state) {
  uint64_t cadence = static_cast<uint64_t>(state.range(0));
  const std::string& dir = CommittedStoreFixture(cadence);
  store::StoreOptions options;
  options.snapshot_every = cadence;
  options.snapshot_bytes = 0;
  Metrics metrics;
  options.metrics = &metrics;
  auto vs = store::VersionStore::Open(dir, options);
  if (!vs.ok()) abort();
  uint64_t interval = cadence == 0 ? kVersions : cadence;
  uint64_t version =
      std::min<uint64_t>(kVersions, interval == 1 ? kVersions : interval - 1);
  for (auto _ : state) {
    auto xml = vs->CheckoutXml(version);
    if (!xml.ok()) {
      state.SkipWithError(xml.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*xml);
  }
  state.counters["snapshot_every"] = static_cast<double>(cadence);
  state.counters["snapshots"] =
      static_cast<double>(vs->snapshots().versions().size());
  state.counters["replayed_frames"] = benchmark::Counter(
      static_cast<double>(metrics.counter("store.checkout.replayed_frames")),
      benchmark::Counter::kAvgIterations);
  (void)vs->Close();
}

// Cost of one Compact() pass over a freshly committed store (store
// cloned untimed per iteration) and its benefit: journal bytes saved
// and frames dropped.
void BM_StoreCompact(benchmark::State& state) {
  uint64_t cadence = static_cast<uint64_t>(state.range(0));
  const std::string& source = CommittedStoreFixture(cadence);
  std::string dir = BenchRoot() + "/compact_scratch";
  store::StoreOptions options;
  options.snapshot_every = cadence;
  options.snapshot_bytes = 0;
  store::CompactStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    fs::copy(source, dir, fs::copy_options::recursive);
    auto vs = store::VersionStore::Open(dir, options);
    if (!vs.ok()) abort();
    state.ResumeTiming();
    auto status = vs->Compact(&stats);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    state.PauseTiming();
    (void)vs->Close();
    state.ResumeTiming();
  }
  state.counters["segments_compacted"] =
      static_cast<double>(stats.segments_compacted);
  state.counters["segments_skipped"] =
      static_cast<double>(stats.segments_skipped);
  state.counters["bytes_before"] =
      static_cast<double>(stats.journal_bytes_before);
  state.counters["bytes_after"] =
      static_cast<double>(stats.journal_bytes_after);
  state.counters["frames_before"] =
      static_cast<double>(stats.frames_before);
  state.counters["frames_after"] = static_cast<double>(stats.frames_after);
}

// Checkout latency on the compacted version of the same store — the
// benefit side of BM_StoreCompact, comparable against BM_StoreCheckout
// at the same cadence.
void BM_StoreCheckoutCompacted(benchmark::State& state) {
  uint64_t cadence = static_cast<uint64_t>(state.range(0));
  const std::string& source = CommittedStoreFixture(cadence);
  std::string dir =
      BenchRoot() + "/compacted_" + std::to_string(cadence);
  if (!fs::exists(dir)) {
    fs::copy(source, dir, fs::copy_options::recursive);
    store::StoreOptions options;
    options.snapshot_every = cadence;
    options.snapshot_bytes = 0;
    auto vs = store::VersionStore::Open(dir, options);
    if (!vs.ok()) abort();
    if (!vs->Compact(nullptr).ok()) abort();
    if (!vs->Close().ok()) abort();
  }
  store::StoreOptions options;
  options.snapshot_every = cadence;
  options.snapshot_bytes = 0;
  auto vs = store::VersionStore::Open(dir, options);
  if (!vs.ok()) abort();
  uint64_t interval = cadence == 0 ? kVersions : cadence;
  uint64_t version =
      std::min<uint64_t>(kVersions, interval == 1 ? kVersions : interval - 1);
  for (auto _ : state) {
    auto xml = vs->CheckoutXml(version);
    if (!xml.ok()) {
      state.SkipWithError(xml.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*xml);
  }
  state.counters["snapshot_every"] = static_cast<double>(cadence);
  state.counters["journal_bytes"] =
      static_cast<double>(fs::file_size(dir + "/wal.log"));
  (void)vs->Close();
}

// Group commit: the whole workload committed through CommitBatch in
// groups of Arg PULs under the always-fsync policy. One iteration = one
// batch = one fdatasync, so items/s against BM_StoreCommit/0 shows what
// the server's batcher buys: the fsync cost amortized over the group.
void BM_StoreCommitBatch(benchmark::State& state) {
  const size_t group = static_cast<size_t>(state.range(0));
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  const std::vector<pul::Pul>& puls = WorkloadFixture();
  std::string dir = BenchRoot() + "/commit_batch_" + std::to_string(group);
  store::StoreOptions options;
  options.fsync = store::FsyncPolicy::kAlways;
  options.snapshot_every = 0;
  options.snapshot_bytes = 0;

  store::VersionStore vs = [&] {
    fs::remove_all(dir);
    auto init =
        store::VersionStore::Init(dir, fixture.annotated_text, options);
    if (!init.ok()) abort();
    auto opened = store::VersionStore::Open(dir, options);
    if (!opened.ok()) abort();
    return std::move(*opened);
  }();
  size_t next = 0;
  uint64_t committed = 0;
  uint64_t batches = 0;
  for (auto _ : state) {
    if (next + group > puls.size()) {
      state.PauseTiming();
      if (!vs.Close().ok()) abort();
      fs::remove_all(dir);
      auto init =
          store::VersionStore::Init(dir, fixture.annotated_text, options);
      if (!init.ok()) abort();
      auto opened = store::VersionStore::Open(dir, options);
      if (!opened.ok()) abort();
      vs = std::move(*opened);
      next = 0;
      state.ResumeTiming();
    }
    std::vector<const pul::Pul*> batch;
    batch.reserve(group);
    for (size_t i = 0; i < group; ++i) batch.push_back(&puls[next++]);
    auto done = vs.CommitBatch(batch, nullptr);
    if (!done.ok()) {
      state.SkipWithError(done.status().ToString().c_str());
      return;
    }
    committed += *done;
    ++batches;
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["batch_size"] = static_cast<double>(group);
  state.counters["fsyncs"] = static_cast<double>(batches);
  (void)vs.Close();
}

BENCHMARK(BM_StoreCommit)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreCommitBatch)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreCheckout)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreCompact)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreCheckoutCompacted)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xupdate

