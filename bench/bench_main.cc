// Shared benchmark entry point. BENCHMARK_MAIN() alone mislabels the
// artifacts: the distro libbenchmark package is compiled without
// NDEBUG, so every JSON reports "library_build_type": "debug" even when
// the benchmark code and the statically linked xupdate library are -O2
// Release. What matters for the numbers is how *this* binary was
// compiled, so the entry point records that as "bench_build_type" (and
// run_all.sh rewrites the library field to match). It also refuses to
// run a Debug build outright — Debug timings committed as BENCH_*.json
// baselines poison every later comparison — unless the operator sets
// XUPDATE_ALLOW_DEBUG_BENCH=1.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

namespace {

#ifdef NDEBUG
constexpr char kBenchBuildType[] = "release";
#else
constexpr char kBenchBuildType[] = "debug";
#endif

}  // namespace

int main(int argc, char** argv) {
#ifndef NDEBUG
  if (std::getenv("XUPDATE_ALLOW_DEBUG_BENCH") == nullptr) {
    std::fprintf(stderr,
                 "refusing to benchmark a Debug build (assertions on, no "
                 "optimization); rebuild with -DCMAKE_BUILD_TYPE=Release "
                 "or set XUPDATE_ALLOW_DEBUG_BENCH=1 to override\n");
    return 1;
  }
#endif
  benchmark::AddCustomContext("bench_build_type", kBenchBuildType);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
