// Branch merge/rebase subsystem: what the multi-writer layer costs.
//
//   * full merge latency vs divergence — both sides hold Arg divergent
//     commits; the merge folds each suffix, reconciles, and commits
//     under the sync protocol (fold + reconcile + 2x journal append);
//   * fast-forward latency — one side diverged, no reconciliation;
//   * the schema tier on the merge path — type-disjoint suffixes skip
//     conflict detection (byte-identically), measured against the
//     default path on the same stores;
//   * rebase replay — a branch of Arg commits replayed onto a new
//     mainline base, rewind verification included;
//   * one full simulator schedule — the end-to-end convergence unit
//     (N writers, random interleaving, gather/scatter, byte-identity).
//
// Merges mutate both journals, so every iteration clones a pre-built
// divergent store (untimed) and merges the clone.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "branch/merge.h"
#include "branch/rebase.h"
#include "branch/sim.h"
#include "store/version.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

namespace fs = std::filesystem;

constexpr size_t kDocMb = 1;
constexpr size_t kOpsPerPul = 20;
constexpr uint64_t kIdBlock = 1 << 16;

std::string BenchRoot() {
  static const std::string root = [] {
    std::string dir =
        (fs::temp_directory_path() /
         ("xupdate_merge_bench_" + std::to_string(::getpid())))
            .string();
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::atexit([] {
      std::error_code ec;
      fs::remove_all(fs::temp_directory_path() /
                         ("xupdate_merge_bench_" +
                          std::to_string(::getpid())),
                     ec);
    });
    return dir;
  }();
  return root;
}

store::StoreOptions BenchStoreOptions() {
  store::StoreOptions options;
  options.fsync = store::FsyncPolicy::kNever;
  options.snapshot_bytes = 0;
  return options;
}

// Commits `commits` generated PULs on `branch`, drawing inserted-node
// ids from disjoint blocks so concurrent branches never collide.
void CommitEdits(store::VersionStore* vs, const std::string& branch,
                 size_t commits, uint64_t seed, uint64_t* next_id_base) {
  for (size_t i = 0; i < commits; ++i) {
    auto doc = vs->BranchHeadDoc(branch);
    if (!doc.ok()) abort();
    label::Labeling labeling = label::Labeling::Build(**doc);
    workload::PulGenerator gen(**doc, labeling, seed + i);
    workload::PulGenerator::PulOptions options;
    options.num_ops = kOpsPerPul;
    options.id_base = *next_id_base;
    *next_id_base += kIdBlock;
    auto pul = gen.Generate(options);
    if (!pul.ok()) abort();
    if (!vs->CommitOnBranch(branch, *pul).ok()) abort();
  }
}

// A store where main and branch "w" each hold `per_side` divergent
// commits past the fork (per_side = 0 leaves "w" at the fork: the
// fast-forward shape). Built once per shape, cloned per iteration.
const std::string& DivergentStoreFixture(size_t per_side) {
  static std::mutex mutex;
  static std::map<size_t, std::string> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(per_side);
  if (it != cache.end()) return it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  std::string dir = BenchRoot() + "/divergent_" + std::to_string(per_side);
  store::StoreOptions options = BenchStoreOptions();
  if (!store::VersionStore::Init(dir, fixture.annotated_text, options)
           .ok()) {
    abort();
  }
  auto vs = store::VersionStore::Open(dir, options);
  if (!vs.ok()) abort();
  uint64_t next_id_base =
      ((vs->head_doc().max_assigned_id() / kIdBlock) + 1) * kIdBlock;
  if (!vs->CreateBranch("w", "main", vs->head()).ok()) abort();
  CommitEdits(&*vs, "main", per_side == 0 ? 4 : per_side, 101,
              &next_id_base);
  CommitEdits(&*vs, "w", per_side, 202, &next_id_base);
  if (!vs->Close().ok()) abort();
  return cache.emplace(per_side, std::move(dir)).first->second;
}

// Clones the fixture (untimed) and merges main with w (timed).
void RunMerge(benchmark::State& state, size_t per_side, bool use_schema) {
  const std::string& source = DivergentStoreFixture(per_side);
  std::string dir = BenchRoot() + "/merge_scratch";
  store::StoreOptions options = BenchStoreOptions();
  schema::Schema xmark_schema = schema::Schema::BuiltinXmark();
  branch::MergeOptions merge_options;
  merge_options.use_schema_analysis = use_schema;
  merge_options.schema = use_schema ? &xmark_schema : nullptr;
  branch::MergeStats stats;
  uint64_t merges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    fs::copy(source, dir, fs::copy_options::recursive);
    auto vs = store::VersionStore::Open(dir, options);
    if (!vs.ok()) abort();
    state.ResumeTiming();
    auto merged = branch::Merge(&*vs, "main", "w", merge_options, &stats);
    if (!merged.ok()) {
      state.SkipWithError(merged.status().ToString().c_str());
      return;
    }
    ++merges;
    state.PauseTiming();
    (void)vs->Close();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(merges));
  state.counters["suffix_per_side"] = static_cast<double>(per_side);
  state.counters["merged_ops"] = static_cast<double>(stats.merged_ops);
  state.counters["conflicts"] =
      static_cast<double>(stats.reconcile.conflicts_total);
}

// Full merge at increasing divergence.
void BM_MergeFull(benchmark::State& state) {
  RunMerge(state, static_cast<size_t>(state.range(0)), false);
}

// One side at the base: commit-only, no reconciliation.
void BM_MergeFastForward(benchmark::State& state) {
  RunMerge(state, 0, false);
}

// The schema tier in front of the same merges (XMark schema).
void BM_MergeFullSchemaTier(benchmark::State& state) {
  RunMerge(state, static_cast<size_t>(state.range(0)), true);
}

// Rebase: w's Arg commits replayed onto the mainline head.
void BM_RebaseReplay(benchmark::State& state) {
  size_t commits = static_cast<size_t>(state.range(0));
  const std::string& source = DivergentStoreFixture(commits);
  std::string dir = BenchRoot() + "/rebase_scratch";
  store::StoreOptions options = BenchStoreOptions();
  branch::RebaseOptions rebase_options;
  rebase_options.skip_conflicting = true;
  uint64_t replayed = 0;
  uint64_t dropped = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    fs::copy(source, dir, fs::copy_options::recursive);
    auto vs = store::VersionStore::Open(dir, options);
    if (!vs.ok()) abort();
    rebase_options.onto = vs->head();
    state.ResumeTiming();
    auto report = branch::Rebase(&*vs, "w", rebase_options);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    replayed += report->replayed;
    dropped += report->dropped;
    state.PauseTiming();
    (void)vs->Close();
    state.ResumeTiming();
  }
  state.counters["commits"] = static_cast<double>(commits);
  state.counters["replayed"] = benchmark::Counter(
      static_cast<double>(replayed), benchmark::Counter::kAvgIterations);
  state.counters["dropped"] = benchmark::Counter(
      static_cast<double>(dropped), benchmark::Counter::kAvgIterations);
}

// One simulator schedule end to end (store setup, random interleaving,
// gather/scatter convergence, byte-identity check, teardown). Arg =
// writers.
void BM_SimSchedule(benchmark::State& state) {
  branch::SimOptions options;
  options.writers = static_cast<int>(state.range(0));
  options.schedules = 1;
  options.scratch_dir = BenchRoot() + "/sim";
  uint64_t seed = 1;
  uint64_t converged = 0;
  for (auto _ : state) {
    options.seed = seed++;
    auto report = branch::RunSim(options);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    if (report->converged != report->schedules) {
      state.SkipWithError("schedule failed to converge");
      return;
    }
    converged += report->converged;
  }
  state.SetItemsProcessed(static_cast<int64_t>(converged));
  state.counters["writers"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_MergeFull)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeFastForward)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeFullSchemaTier)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RebaseReplay)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimSchedule)->Arg(2)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xupdate
