// Ablation: the parallel shard-by-subtree reasoning engine.
//
// Workload: 10k operations over an XMark document large enough that the
// targets fall into thousands of disjoint subtrees (shards), swept at
// 1/2/4/8 worker threads for both reduction and integration. The
// parallelism=1 rows take the sequential path and serve as the
// speedup baseline; hardware with fewer cores than the thread count
// flattens the curve. Each sweep dumps the engine's metrics registry as
// JSON on stderr (shard counts, per-phase wall time, conflict tallies).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/integrate.h"
#include "core/reduce.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

constexpr size_t kDocMb = 8;
constexpr size_t kOps = 10000;

const pul::Pul& ReduceInput() {
  static const pul::Pul* input = [] {
    const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
    workload::PulGenerator gen(fixture.doc, fixture.labeling, 909);
    workload::PulGenerator::PulOptions options;
    options.num_ops = kOps;
    options.reducible_fraction = 0.2;
    auto pul = gen.Generate(options);
    if (!pul.ok()) {
      fprintf(stderr, "pul generation failed: %s\n",
              pul.status().ToString().c_str());
      abort();
    }
    return new pul::Pul(std::move(*pul));
  }();
  return *input;
}

const std::vector<pul::Pul>& IntegrateInput() {
  static const std::vector<pul::Pul>* input = [] {
    const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
    workload::PulGenerator gen(fixture.doc, fixture.labeling, 909);
    workload::PulGenerator::ConflictOptions options;
    options.num_puls = 8;
    options.ops_per_pul = kOps / 8;
    options.conflicting_fraction = 0.2;
    options.ops_per_conflict = 3;
    auto puls = gen.GenerateConflicting(options);
    if (!puls.ok()) {
      fprintf(stderr, "pul generation failed: %s\n",
              puls.status().ToString().c_str());
      abort();
    }
    return new std::vector<pul::Pul>(std::move(*puls));
  }();
  return *input;
}

void BM_ParallelReduce(benchmark::State& state) {
  const pul::Pul& input = ReduceInput();
  int threads = static_cast<int>(state.range(0));
  ThreadPool pool(static_cast<size_t>(threads));
  Metrics metrics;
  core::ReduceOptions options;
  options.parallelism = threads;
  options.pool = threads > 1 ? &pool : nullptr;
  options.metrics = &metrics;
  core::ReduceStats stats;
  for (auto _ : state) {
    auto reduced = core::Reduce(input, options, &stats);
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*reduced);
  }
  state.counters["ops"] = static_cast<double>(input.size());
  state.counters["shards"] = static_cast<double>(stats.shards);
  state.counters["threads"] = static_cast<double>(threads);
  fprintf(stderr, "reduce/threads:%d metrics %s\n", threads,
          metrics.ToJson().c_str());
}

void BM_ParallelIntegrate(benchmark::State& state) {
  const std::vector<pul::Pul>& input = IntegrateInput();
  std::vector<const pul::Pul*> refs;
  for (const pul::Pul& p : input) refs.push_back(&p);
  int threads = static_cast<int>(state.range(0));
  ThreadPool pool(static_cast<size_t>(threads));
  Metrics metrics;
  core::IntegrateOptions options;
  options.parallelism = threads;
  options.pool = threads > 1 ? &pool : nullptr;
  options.metrics = &metrics;
  for (auto _ : state) {
    auto result = core::Integrate(refs, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*result);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["shards"] =
      static_cast<double>(metrics.counter("integrate.shards") /
                          std::max<uint64_t>(metrics.counter("integrate.calls"),
                                             1));
  fprintf(stderr, "integrate/threads:%d metrics %s\n", threads,
          metrics.ToJson().c_str());
}

void ThreadSweep(benchmark::internal::Benchmark* b) {
  for (int64_t threads : {1, 2, 4, 8}) b->Arg(threads);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_ParallelReduce)->Apply(ThreadSweep);
BENCHMARK(BM_ParallelIntegrate)->Apply(ThreadSweep);

}  // namespace
}  // namespace xupdate

