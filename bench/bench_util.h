#ifndef XUPDATE_BENCH_BENCH_UTIL_H_
#define XUPDATE_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/string_util.h"
#include "label/labeling.h"
#include "xmark/generator.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xupdate::bench {

// A generated XMark document in every representation the benches need.
struct BenchDocument {
  std::string annotated_text;  // the executor's exchange format
  xml::Document doc;
  label::Labeling labeling;
};

// Generates (once per size per process) an XMark document of roughly
// `mb` megabytes of plain serialization.
inline const BenchDocument& XmarkFixture(size_t mb) {
  static std::mutex mutex;
  static std::map<size_t, std::unique_ptr<BenchDocument>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(mb);
  if (it != cache.end()) return *it->second;
  xmark::Config config;
  config.seed = 42 + mb;
  config.target_bytes = mb << 20;
  auto fixture = std::make_unique<BenchDocument>();
  auto doc = xmark::GenerateDocument(config);
  if (!doc.ok()) {
    fprintf(stderr, "xmark generation failed: %s\n",
            doc.status().ToString().c_str());
    abort();
  }
  fixture->doc = std::move(*doc);
  xml::SerializeOptions opts;
  opts.with_ids = true;
  auto text = xml::SerializeDocument(fixture->doc, opts);
  if (!text.ok()) {
    fprintf(stderr, "serialization failed: %s\n",
            text.status().ToString().c_str());
    abort();
  }
  fixture->annotated_text = std::move(*text);
  fixture->labeling = label::Labeling::Build(fixture->doc);
  return *cache.emplace(mb, std::move(fixture)).first->second;
}

// Upper document size of the Fig. 6a sweep; the paper used 256 MB, the
// default here keeps the sweep laptop-friendly. Override with
// XUPDATE_BENCH_MAX_MB.
inline size_t MaxDocMb() {
  if (const char* env = std::getenv("XUPDATE_BENCH_MAX_MB")) {
    int64_t v = ParseNonNegativeInt(env);
    if (v >= 1) return static_cast<size_t>(v);
  }
  return 32;
}

}  // namespace xupdate::bench

#endif  // XUPDATE_BENCH_BENCH_UTIL_H_
