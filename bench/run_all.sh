#!/usr/bin/env sh
# Runs every figure and ablation benchmark plus the disabled-tracer
# overhead gate, writing one BENCH_<name>.json per binary at the repo
# root. The JSON files are Google-Benchmark --benchmark_out artifacts
# (context + per-run timings), suitable for trajectory plots across
# commits; BENCH_trace_overhead.json is the overhead gate's verdict.
#
# Usage: bench/run_all.sh [build-dir] [repo-root]
# (defaults: ./build relative to the repo root containing this script)
set -eu

script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
root=${2:-$(dirname -- "$script_dir")}
build=${1:-$root/build}

if [ ! -d "$build/bench" ]; then
  echo "error: $build/bench not found; build the project first" >&2
  exit 1
fi

# Small repetitions keep a full sweep tractable on one core; the
# artifact format is identical to a long run.
filter=${XUPDATE_BENCH_FILTER:-}

status=0
for bench in fig6a_eval fig6b_reduction fig6c_aggregation \
             fig6d_agg_vs_seq fig6e_integration abl_parallel \
             abl_reduction_density abl_label abl_canonical \
             abl_encoding abl_sidecar abl_analysis abl_schema store merge \
             hot_path; do
  binary="$build/bench/${bench}_bench"
  if [ ! -x "$binary" ]; then
    echo "skip: $binary missing" >&2
    status=1
    continue
  fi
  echo "== $bench =="
  out="$root/BENCH_${bench}.json"
  "$binary" \
    ${filter:+--benchmark_filter="$filter"} \
    --benchmark_out="$out" \
    --benchmark_out_format=json || status=1
  # The distro libbenchmark is compiled without NDEBUG and stamps
  # "library_build_type": "debug" into every artifact regardless of how
  # the benchmark code was built. bench_main.cc records the truth as
  # "bench_build_type"; rewrite the library field to agree so committed
  # artifacts are not misread as Debug numbers.
  if grep -q '"bench_build_type": "release"' "$out" 2>/dev/null; then
    sed -i 's/"library_build_type": "debug"/"library_build_type": "release"/' \
      "$out"
  fi
done

echo "== trace_overhead =="
"$build/bench/trace_overhead_check" "$root/BENCH_trace_overhead.json" \
  || status=1

echo "== telemetry_overhead =="
"$build/bench/telemetry_overhead_check" \
  "$root/BENCH_telemetry_overhead.json" || status=1

exit $status
