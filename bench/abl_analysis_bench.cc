// Ablation: the static PUL analyzer (src/analysis/) as a pre-pass.
//
// Three questions, Figure-6-style framing (cost as a function of the
// conflict/reduction density of the workload):
//   1. What does AnalyzeIndependence cost next to the dynamic detector
//      it can spare? (BM_AnalyzeIndependence vs BM_IntegrateBaseline)
//   2. What does the integrate fast path save end-to-end on independent
//      workloads, and what does a losing bet cost on conflicting ones?
//      (BM_IntegrateStaticAnalysis at density 0 vs > 0)
//   3. Same for the reduce identity skip. (BM_ReduceStaticAnalysis)
// Density is percent of ops planted into cross-PUL conflicts
// (integration) resp. reducible clusters (reduction); density 0 is where
// the analyzer pays off, the positive densities price the wasted
// analysis.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "analysis/independence.h"
#include "analysis/lint.h"
#include "analysis/predict.h"
#include "bench_util.h"
#include "core/integrate.h"
#include "core/reduce.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

constexpr size_t kDocMb = 4;
constexpr size_t kOpsPerPul = 2000;

// Pair of PULs with the given percent of conflict-planted operations.
const std::vector<pul::Pul>& PulPair(int density_pct) {
  static std::map<int, std::vector<pul::Pul>>* cache =
      new std::map<int, std::vector<pul::Pul>>();
  auto it = cache->find(density_pct);
  if (it != cache->end()) return it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling,
                             1234 + static_cast<uint64_t>(density_pct));
  workload::PulGenerator::ConflictOptions options;
  options.num_puls = 2;
  options.ops_per_pul = kOpsPerPul;
  options.conflicting_fraction = density_pct / 100.0;
  options.ops_per_conflict = 2;
  auto puls = gen.GenerateConflicting(options);
  if (!puls.ok()) {
    fprintf(stderr, "pul generation failed: %s\n",
            puls.status().ToString().c_str());
    abort();
  }
  return cache->emplace(density_pct, std::move(*puls)).first->second;
}

const pul::Pul& ReduceInput(int density_pct) {
  static std::map<int, pul::Pul>* cache = new std::map<int, pul::Pul>();
  auto it = cache->find(density_pct);
  if (it != cache->end()) return it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling,
                             4321 + static_cast<uint64_t>(density_pct));
  workload::PulGenerator::PulOptions options;
  options.num_ops = kOpsPerPul;
  options.reducible_fraction = density_pct / 100.0;
  auto pul = gen.Generate(options);
  if (!pul.ok()) {
    fprintf(stderr, "pul generation failed: %s\n",
            pul.status().ToString().c_str());
    abort();
  }
  return cache->emplace(density_pct, std::move(*pul)).first->second;
}

// The analyzer alone: the price of asking.
void BM_AnalyzeIndependence(benchmark::State& state) {
  const std::vector<pul::Pul>& puls = PulPair(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    analysis::IndependenceReport r =
        analysis::AnalyzeIndependence(puls[0], puls[1]);
    benchmark::DoNotOptimize(r);
  }
  state.counters["ops"] = static_cast<double>(2 * kOpsPerPul);
}

void BM_LintPul(benchmark::State& state) {
  const pul::Pul& pul = ReduceInput(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    analysis::DiagnosticReport r = analysis::LintPul(pul);
    benchmark::DoNotOptimize(r);
  }
  state.counters["ops"] = static_cast<double>(pul.size());
}

void BM_PredictReduction(benchmark::State& state) {
  const pul::Pul& pul = ReduceInput(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    analysis::ReductionPrediction p = analysis::PredictReduction(pul);
    benchmark::DoNotOptimize(p);
  }
  state.counters["ops"] = static_cast<double>(pul.size());
}

void IntegrateLoop(benchmark::State& state, bool use_static_analysis) {
  const std::vector<pul::Pul>& puls = PulPair(static_cast<int>(state.range(0)));
  std::vector<const pul::Pul*> refs{&puls[0], &puls[1]};
  core::IntegrateOptions options;
  options.use_static_analysis = use_static_analysis;
  Metrics metrics;
  options.metrics = &metrics;
  size_t conflicts = 0;
  for (auto _ : state) {
    auto result = core::Integrate(refs, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    conflicts = result->conflicts.size();
    benchmark::DoNotOptimize(*result);
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.counters["static_skips"] =
      static_cast<double>(metrics.counter("integrate.static.skips"));
}

void BM_IntegrateBaseline(benchmark::State& state) {
  IntegrateLoop(state, false);
}

void BM_IntegrateStaticAnalysis(benchmark::State& state) {
  IntegrateLoop(state, true);
}

void ReduceLoop(benchmark::State& state, bool use_static_analysis) {
  const pul::Pul& pul = ReduceInput(static_cast<int>(state.range(0)));
  core::ReduceOptions options;
  options.mode = core::ReduceMode::kPlain;
  options.use_static_analysis = use_static_analysis;
  Metrics metrics;
  options.metrics = &metrics;
  core::ReduceStats stats;
  for (auto _ : state) {
    auto reduced = core::Reduce(pul, options, &stats);
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*reduced);
  }
  state.counters["surviving"] = static_cast<double>(stats.output_ops);
  state.counters["static_skips"] =
      static_cast<double>(metrics.counter("reduce.static.identity_skips"));
}

void BM_ReduceBaseline(benchmark::State& state) { ReduceLoop(state, false); }

void BM_ReduceStaticAnalysis(benchmark::State& state) {
  ReduceLoop(state, true);
}

BENCHMARK(BM_AnalyzeIndependence)->Arg(0)->Arg(5)->Arg(20);
BENCHMARK(BM_LintPul)->Arg(0)->Arg(20);
BENCHMARK(BM_PredictReduction)->Arg(0)->Arg(20);
BENCHMARK(BM_IntegrateBaseline)->Arg(0)->Arg(5)->Arg(20);
BENCHMARK(BM_IntegrateStaticAnalysis)->Arg(0)->Arg(5)->Arg(20);
BENCHMARK(BM_ReduceBaseline)->Arg(0)->Arg(20);
BENCHMARK(BM_ReduceStaticAnalysis)->Arg(0)->Arg(20);

}  // namespace
}  // namespace xupdate

