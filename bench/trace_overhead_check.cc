// Disabled-tracer overhead gate. The observability hooks added to the
// reduction engine (lane null-checks in the rule loops, the tracer
// branch in the driver) must cost nothing when no tracer is attached.
// Both public entry points funnel into the same driver, so the gate
// times the pre-observability API (Reduce(pul, mode)) against the
// options path with a null tracer on the Fig. 6b reduction workload —
// interleaved, order alternated per trial, minimum-of-trials — and
// fails (exit 1) beyond a 1% difference. Any future change that makes
// the no-tracer configuration eagerly pay for tracing (forced
// partitioning, unconditional id-string building, a hot-loop emission
// that stops checking enabled()) lands on both sides' timings and on
// the separately reported enabled-tracer ratio in the JSON artifact.
//
// Not a Google-Benchmark binary on purpose: the check needs a hard
// verdict and a repo-root JSON artifact, not statistics.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/reduce.h"
#include "obs/trace.h"
#include "workload/pul_generator.h"

namespace {

constexpr size_t kDocMb = 2;
constexpr size_t kNumOps = 10000;
constexpr int kTrials = 15;
constexpr double kMaxOverhead = 0.01;

using Clock = std::chrono::steady_clock;

// One timed run; the result is verified and destructed inside the timed
// region so every measurement covers the identical allocation
// lifecycle.
template <typename Fn>
double TimedRun(Fn&& run, size_t* out_ops) {
  auto begin = Clock::now();
  {
    auto result = run();
    if (!result.ok()) {
      fprintf(stderr, "reduce failed: %s\n",
              result.status().ToString().c_str());
      exit(1);
    }
    *out_ops = result->size();
  }
  auto end = Clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
  using xupdate::core::Reduce;
  using xupdate::core::ReduceMode;
  using xupdate::core::ReduceOptions;

#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
  if (std::getenv("XUPDATE_ALLOW_DEBUG_BENCH") == nullptr) {
    fprintf(stderr,
            "refusing to gate on a Debug build; rebuild with "
            "-DCMAKE_BUILD_TYPE=Release or set "
            "XUPDATE_ALLOW_DEBUG_BENCH=1 to override\n");
    return 1;
  }
#endif

  const char* out_path = argc > 1 ? argv[1] : "BENCH_trace_overhead.json";

  const xupdate::bench::BenchDocument& fixture =
      xupdate::bench::XmarkFixture(kDocMb);
  xupdate::workload::PulGenerator gen(fixture.doc, fixture.labeling, 555);
  xupdate::workload::PulGenerator::PulOptions options;
  options.num_ops = kNumOps;
  options.reducible_fraction = 0.2;  // the Fig. 6b density
  auto pul = gen.Generate(options);
  if (!pul.ok()) {
    fprintf(stderr, "pul generation failed: %s\n",
            pul.status().ToString().c_str());
    return 1;
  }

  auto run_legacy = [&] { return Reduce(*pul, ReduceMode::kPlain); };
  auto run_disabled = [&] { return Reduce(*pul, ReduceOptions{}); };
  auto run_enabled = [&] {
    xupdate::obs::Tracer tracer;
    ReduceOptions opts;
    opts.tracer = &tracer;
    return Reduce(*pul, opts);
  };

  // Warm every path once (page in code and fixture memory), then
  // interleave trials with alternating order so drift and allocator
  // state hit both sides equally.
  size_t ops_a = 0;
  size_t ops_b = 0;
  size_t ops_c = 0;
  (void)TimedRun(run_legacy, &ops_a);
  (void)TimedRun(run_disabled, &ops_b);
  (void)TimedRun(run_enabled, &ops_c);
  if (ops_a != ops_b || ops_a != ops_c) {
    fprintf(stderr, "paths disagree: %zu vs %zu vs %zu ops\n", ops_a,
            ops_b, ops_c);
    return 1;
  }

  double legacy_min = 1e300;
  double disabled_min = 1e300;
  double enabled_min = 1e300;
  for (int trial = 0; trial < kTrials; ++trial) {
    if (trial % 2 == 0) {
      legacy_min = std::min(legacy_min, TimedRun(run_legacy, &ops_a));
      disabled_min = std::min(disabled_min, TimedRun(run_disabled, &ops_b));
    } else {
      disabled_min = std::min(disabled_min, TimedRun(run_disabled, &ops_b));
      legacy_min = std::min(legacy_min, TimedRun(run_legacy, &ops_a));
    }
    enabled_min = std::min(enabled_min, TimedRun(run_enabled, &ops_c));
  }

  double overhead = disabled_min / legacy_min - 1.0;
  double enabled_ratio = enabled_min / legacy_min;
  bool pass = disabled_min <= legacy_min * (1.0 + kMaxOverhead);

  char json[512];
  snprintf(json, sizeof(json),
           "{\"workload\":\"fig6b-reduction\",\"build_type\":\"%s\","
           "\"ops\":%zu,\"trials\":%d,"
           "\"legacy_min_seconds\":%.9f,\"disabled_min_seconds\":%.9f,"
           "\"enabled_min_seconds\":%.9f,\"disabled_overhead\":%.6f,"
           "\"enabled_ratio\":%.3f,\"budget\":%.6f,\"pass\":%s}\n",
           build_type, kNumOps, kTrials, legacy_min, disabled_min,
           enabled_min, overhead, enabled_ratio, kMaxOverhead,
           pass ? "true" : "false");
  FILE* f = fopen(out_path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  fputs(json, f);
  fclose(f);
  fputs(json, stdout);
  if (!pass) {
    fprintf(stderr,
            "disabled-tracer overhead %.2f%% exceeds the %.0f%% budget\n",
            overhead * 100.0, kMaxOverhead * 100.0);
    return 1;
  }
  return 0;
}
