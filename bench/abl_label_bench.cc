// Ablation A2: cost of the eight Table 1 structural predicates.
//
// §4.1 claims the extended containment labeling decides every
// relationship in constant time; this bench measures ns/op over random
// label pairs of a real document, independent of document size.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "label/node_label.h"

namespace xupdate {
namespace {

struct LabelPairs {
  std::vector<std::pair<label::NodeLabel, label::NodeLabel>> pairs;
};

const LabelPairs& PairsFixture(size_t mb) {
  static std::map<size_t, std::unique_ptr<LabelPairs>> cache;
  auto it = cache.find(mb);
  if (it != cache.end()) return *it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(mb);
  std::vector<xml::NodeId> nodes = fixture.doc.AllNodesInOrder();
  Rng rng(17);
  auto out = std::make_unique<LabelPairs>();
  out->pairs.reserve(4096);
  for (size_t i = 0; i < 4096; ++i) {
    xml::NodeId a = nodes[static_cast<size_t>(rng.Below(nodes.size()))];
    xml::NodeId b = nodes[static_cast<size_t>(rng.Below(nodes.size()))];
    out->pairs.emplace_back(*fixture.labeling.Find(a),
                            *fixture.labeling.Find(b));
  }
  return *cache.emplace(mb, std::move(out)).first->second;
}

template <bool (*Predicate)(const label::NodeLabel&,
                            const label::NodeLabel&)>
void BM_Predicate(benchmark::State& state) {
  const LabelPairs& fixture =
      PairsFixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = fixture.pairs[i++ & 4095];
    benchmark::DoNotOptimize(Predicate(a, b));
  }
  state.counters["doc_mb"] = static_cast<double>(state.range(0));
}

// Two document sizes demonstrate size independence (O(1) in nodes; the
// code length of a label grows only logarithmically).
#define XUPDATE_PREDICATE_BENCH(name)                        \
  BENCHMARK(BM_Predicate<label::name>)                        \
      ->Name("BM_" #name)                                     \
      ->Arg(1)                                                \
      ->Arg(8)

XUPDATE_PREDICATE_BENCH(Precedes);
XUPDATE_PREDICATE_BENCH(IsLeftSiblingOf);
XUPDATE_PREDICATE_BENCH(IsChildOf);
XUPDATE_PREDICATE_BENCH(IsAttributeOf);
XUPDATE_PREDICATE_BENCH(IsFirstChildOf);
XUPDATE_PREDICATE_BENCH(IsLastChildOf);
XUPDATE_PREDICATE_BENCH(IsDescendantOf);
XUPDATE_PREDICATE_BENCH(IsNonAttributeDescendantOf);

}  // namespace
}  // namespace xupdate

