// Figure 6e: cost of PUL integration and conflict resolution.
//
// Paper workload: 10 PULs of 4k-80k operations each, half of the
// operations involved in conflicts averaging 5 operations per conflict,
// conflict types equally distributed and 1/5 of conflicts solved through
// exclusions made for other conflicts. Expected shape: near-linear in
// the total operation count — "integration is a cost effective
// operation".

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/integrate.h"
#include "core/reconcile.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

constexpr size_t kDocMb = 16;  // enough distinct targets for 80k x 10 ops
constexpr size_t kNumPuls = 10;

const std::vector<pul::Pul>& ConflictFixture(size_t ops_per_pul) {
  static std::map<size_t, std::unique_ptr<std::vector<pul::Pul>>> cache;
  auto it = cache.find(ops_per_pul);
  if (it != cache.end()) return *it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling,
                             1313 + ops_per_pul);
  workload::PulGenerator::ConflictOptions options;
  options.num_puls = kNumPuls;
  options.ops_per_pul = ops_per_pul;
  options.conflicting_fraction = 0.5;
  options.ops_per_conflict = 5;
  options.chained_fraction = 0.2;
  auto puls = gen.GenerateConflicting(options);
  if (!puls.ok()) {
    fprintf(stderr, "conflict workload generation failed: %s\n",
            puls.status().ToString().c_str());
    abort();
  }
  return *cache
              .emplace(ops_per_pul, std::make_unique<std::vector<pul::Pul>>(
                                        std::move(*puls)))
              .first->second;
}

void BM_Integration(benchmark::State& state) {
  const std::vector<pul::Pul>& puls =
      ConflictFixture(static_cast<size_t>(state.range(0)));
  std::vector<const pul::Pul*> ptrs;
  size_t total_ops = 0;
  for (const pul::Pul& p : puls) {
    ptrs.push_back(&p);
    total_ops += p.size();
  }
  size_t conflicts = 0;
  for (auto _ : state) {
    auto result = core::Integrate(ptrs);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    conflicts = result->conflicts.size();
    benchmark::DoNotOptimize(*result);
  }
  state.counters["total_ops"] = static_cast<double>(total_ops);
  state.counters["conflicts"] = static_cast<double>(conflicts);
}

void BM_IntegrationAndResolution(benchmark::State& state) {
  const std::vector<pul::Pul>& puls =
      ConflictFixture(static_cast<size_t>(state.range(0)));
  std::vector<const pul::Pul*> ptrs;
  size_t total_ops = 0;
  for (const pul::Pul& p : puls) {
    ptrs.push_back(&p);
    total_ops += p.size();
  }
  core::ReconcileStats stats;
  for (auto _ : state) {
    auto merged = core::Reconcile(ptrs, &stats);
    if (!merged.ok()) {
      state.SkipWithError(merged.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*merged);
  }
  state.counters["total_ops"] = static_cast<double>(total_ops);
  state.counters["conflicts"] = static_cast<double>(stats.conflicts_total);
  state.counters["auto_solved"] =
      static_cast<double>(stats.conflicts_auto_solved);
  state.counters["excluded"] =
      static_cast<double>(stats.operations_excluded);
}

void OpsPerPul(benchmark::internal::Benchmark* b) {
  for (int64_t ops : {4000, 8000, 20000, 40000, 80000}) b->Arg(ops);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Integration)->Apply(OpsPerPul);
BENCHMARK(BM_IntegrationAndResolution)->Apply(OpsPerPul);

}  // namespace
}  // namespace xupdate

