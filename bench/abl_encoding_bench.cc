// Ablation A4: CDBS (binary) vs CDQS (quaternary) dynamic codes.
//
// The paper adopts the Zhang containment scheme "encoded by means of the
// CDQS, or alternatively the CDBS, encoder" (§4.1). This sweep compares
// the two code spaces under the three access patterns the executor
// generates: bulk initial assignment, uniformly random insertions and
// the skewed append pattern of repeated insLast operations. Counters
// report the storage cost (total bits) alongside the running time.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "label/bitstring.h"
#include "label/qstring.h"

namespace xupdate {
namespace {

using label::BitString;
using label::QString;

void BM_CdbsInitialAssignment(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t bits = 0;
  for (auto _ : state) {
    std::vector<BitString> codes = label::cdbs::InitialCodes(n);
    bits = 0;
    for (const auto& c : codes) bits += c.size();
    benchmark::DoNotOptimize(codes);
  }
  state.counters["total_bits"] = static_cast<double>(bits);
}

void BM_CdqsInitialAssignment(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t bits = 0;
  for (auto _ : state) {
    std::vector<QString> codes = label::cdqs::InitialCodes(n);
    bits = 0;
    for (const auto& c : codes) bits += c.bit_size();
    benchmark::DoNotOptimize(codes);
  }
  state.counters["total_bits"] = static_cast<double>(bits);
}

void BM_CdbsRandomInsertions(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t bits = 0;
  for (auto _ : state) {
    Rng rng(1);
    std::vector<BitString> codes = label::cdbs::InitialCodes(64);
    for (size_t i = 0; i < n; ++i) {
      size_t gap = static_cast<size_t>(rng.Below(codes.size() + 1));
      BitString left = gap == 0 ? BitString() : codes[gap - 1];
      BitString right = gap == codes.size() ? BitString() : codes[gap];
      auto fresh = label::cdbs::Between(left, right);
      if (!fresh.ok()) {
        state.SkipWithError("insertion failed");
        return;
      }
      codes.insert(codes.begin() + static_cast<ptrdiff_t>(gap), *fresh);
    }
    bits = 0;
    for (const auto& c : codes) bits += c.size();
  }
  state.counters["total_bits"] = static_cast<double>(bits);
}

void BM_CdqsRandomInsertions(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t bits = 0;
  for (auto _ : state) {
    Rng rng(1);
    std::vector<QString> codes = label::cdqs::InitialCodes(64);
    for (size_t i = 0; i < n; ++i) {
      size_t gap = static_cast<size_t>(rng.Below(codes.size() + 1));
      QString left = gap == 0 ? QString() : codes[gap - 1];
      QString right = gap == codes.size() ? QString() : codes[gap];
      auto fresh = label::cdqs::Between(left, right);
      if (!fresh.ok()) {
        state.SkipWithError("insertion failed");
        return;
      }
      codes.insert(codes.begin() + static_cast<ptrdiff_t>(gap), *fresh);
    }
    bits = 0;
    for (const auto& c : codes) bits += c.bit_size();
  }
  state.counters["total_bits"] = static_cast<double>(bits);
}

void BM_CdbsSkewedAppends(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t bits = 0;
  for (auto _ : state) {
    BitString cursor = BitString::FromBits("1");
    for (size_t i = 0; i < n; ++i) {
      auto next = label::cdbs::Between(cursor, BitString());
      if (!next.ok()) {
        state.SkipWithError("append failed");
        return;
      }
      cursor = *next;
    }
    bits = cursor.size();
    benchmark::DoNotOptimize(cursor);
  }
  state.counters["final_bits"] = static_cast<double>(bits);
}

void BM_CdqsSkewedAppends(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t bits = 0;
  for (auto _ : state) {
    QString cursor = QString::FromDigits("2");
    for (size_t i = 0; i < n; ++i) {
      auto next = label::cdqs::Between(cursor, QString());
      if (!next.ok()) {
        state.SkipWithError("append failed");
        return;
      }
      cursor = *next;
    }
    bits = cursor.bit_size();
    benchmark::DoNotOptimize(cursor);
  }
  state.counters["final_bits"] = static_cast<double>(bits);
}

BENCHMARK(BM_CdbsInitialAssignment)->Arg(10000)->Arg(100000);
BENCHMARK(BM_CdqsInitialAssignment)->Arg(10000)->Arg(100000);
BENCHMARK(BM_CdbsRandomInsertions)->Arg(2000)->Arg(10000);
BENCHMARK(BM_CdqsRandomInsertions)->Arg(2000)->Arg(10000);
BENCHMARK(BM_CdbsSkewedAppends)->Arg(1000)->Arg(10000);
BENCHMARK(BM_CdqsSkewedAppends)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace xupdate

