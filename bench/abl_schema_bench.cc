// Ablation: the schema tier (src/schema/) in front of the engines.
//
// Three questions:
//   1. What does a touched-type summary cost next to the exact analyzer
//      and the dynamic detector? (BM_SchemaSummaryInfer vs
//      BM_SchemaExactAnalyze / BM_SchemaDynamicDetector)
//   2. What does the tier-0 short-circuit save on an indep-heavy
//      workload the tier can actually prove — typed edits against
//      structurally disjoint regions? (BM_SchemaIntegrateIndependent,
//      tier on/off; the `tier0_rate` counter is the hit rate)
//   3. What does a losing bet cost on a conflict-heavy workload where
//      the tier abstains and the full detector runs anyway?
//      (BM_SchemaIntegrateConflicting, tier on/off)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "analysis/independence.h"
#include "analysis/schema_tier.h"
#include "bench_util.h"
#include "core/integrate.h"
#include "schema/schema.h"
#include "schema/summary.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

constexpr size_t kDocMb = 4;
constexpr size_t kOpsPerPul = 2000;

const schema::Schema& Xdtd() {
  static const schema::Schema* schema =
      new schema::Schema(schema::Schema::BuiltinXmark());
  return *schema;
}

// Indep-heavy pair the type tier can prove: one PUL edits person/@*
// attributes (Attr atoms at level 2), the other deletes item subtrees
// (element atoms at level 3 plus their descendant closure) — disjoint
// under the XMark DTD, so tier 0 fires on every pair.
const std::vector<pul::Pul>& IndependentPair() {
  static std::vector<pul::Pul>* cache = nullptr;
  if (cache != nullptr) return *cache;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  std::vector<xml::NodeId> person_attrs;
  std::vector<xml::NodeId> items;
  for (xml::NodeId id : fixture.doc.AllNodesInOrder()) {
    if (fixture.doc.type(id) != xml::NodeType::kElement) continue;
    if (fixture.doc.name(id) == "person" &&
        !fixture.doc.attributes(id).empty()) {
      person_attrs.push_back(fixture.doc.attributes(id)[0]);
    } else if (fixture.doc.name(id) == "item") {
      items.push_back(id);
    }
  }
  if (person_attrs.size() < 2 || items.size() < 2) {
    fprintf(stderr, "xmark fixture too small for the schema workload\n");
    abort();
  }
  // Each target exactly once: a second repV on one attribute (or a
  // second delete of one item) would be an intra-PUL incompatibility.
  auto build = [&](const std::vector<xml::NodeId>& targets, bool attrs,
                   xml::NodeId id_base) {
    pul::Pul pul;
    pul.BindIdSpace(id_base);
    size_t n = targets.size() < kOpsPerPul ? targets.size() : kOpsPerPul;
    for (size_t i = 0; i < n; ++i) {
      Status status =
          attrs ? pul.AddStringOp(pul::OpKind::kReplaceValue, targets[i],
                                  fixture.labeling,
                                  "v" + std::to_string(i))
                : pul.AddDelete(targets[i], fixture.labeling);
      if (!status.ok()) {
        fprintf(stderr, "workload op failed: %s\n",
                status.ToString().c_str());
        abort();
      }
    }
    return pul;
  };
  cache = new std::vector<pul::Pul>();
  cache->push_back(build(person_attrs, /*attrs=*/true,
                         fixture.doc.max_assigned_id() + 1));
  cache->push_back(build(items, /*attrs=*/false,
                         fixture.doc.max_assigned_id() + 4000000));
  return *cache;
}

// Conflict-heavy pair: the generator plants cross-PUL conflicts of all
// five types, which the tier cannot (and must not) prove away.
const std::vector<pul::Pul>& ConflictingPair() {
  static std::vector<pul::Pul>* cache = nullptr;
  if (cache != nullptr) return *cache;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling, 977);
  workload::PulGenerator::ConflictOptions options;
  options.num_puls = 2;
  options.ops_per_pul = kOpsPerPul;
  options.conflicting_fraction = 0.3;
  options.ops_per_conflict = 2;
  auto puls = gen.GenerateConflicting(options);
  if (!puls.ok()) {
    fprintf(stderr, "pul generation failed: %s\n",
            puls.status().ToString().c_str());
    abort();
  }
  cache = new std::vector<pul::Pul>(std::move(*puls));
  return *cache;
}

// The summary alone: the price of asking the type-level question.
void BM_SchemaSummaryInfer(benchmark::State& state) {
  const std::vector<pul::Pul>& puls = IndependentPair();
  for (auto _ : state) {
    schema::TypeSummary s = schema::InferTouchedTypes(Xdtd(), puls[0]);
    benchmark::DoNotOptimize(s);
  }
  state.counters["ops"] = static_cast<double>(puls[0].size());
}

// The exact analyzer on the same pair, for scale.
void BM_SchemaExactAnalyze(benchmark::State& state) {
  const std::vector<pul::Pul>& puls = IndependentPair();
  for (auto _ : state) {
    analysis::IndependenceReport r =
        analysis::AnalyzeIndependence(puls[0], puls[1]);
    benchmark::DoNotOptimize(r);
  }
}

// Tiered analysis end-to-end: summaries + decide + (on a hit) report
// synthesis. On the independent pair this never reaches the sweep.
void BM_SchemaTieredAnalyze(benchmark::State& state) {
  const std::vector<pul::Pul>& puls = IndependentPair();
  size_t hits = 0;
  for (auto _ : state) {
    schema::TypeSummary a = schema::InferTouchedTypes(Xdtd(), puls[0]);
    schema::TypeSummary b = schema::InferTouchedTypes(Xdtd(), puls[1]);
    analysis::TieredIndependence t =
        analysis::AnalyzeIndependenceTiered(a, b, puls[0], puls[1]);
    hits += t.resolved_at_tier0 ? 1 : 0;
    benchmark::DoNotOptimize(t);
  }
  state.counters["tier0_rate"] =
      state.iterations() > 0
          ? static_cast<double>(hits) / static_cast<double>(state.iterations())
          : 0.0;
}

void SchemaIntegrateLoop(benchmark::State& state,
                         const std::vector<pul::Pul>& puls,
                         bool use_schema) {
  std::vector<const pul::Pul*> refs{&puls[0], &puls[1]};
  core::IntegrateOptions options;
  options.use_schema_analysis = use_schema;
  options.schema = use_schema ? &Xdtd() : nullptr;
  Metrics metrics;
  options.metrics = &metrics;
  size_t conflicts = 0;
  for (auto _ : state) {
    auto result = core::Integrate(refs, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    conflicts = result->conflicts.size();
    benchmark::DoNotOptimize(*result);
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
  double pairs = static_cast<double>(metrics.counter("integrate.schema.pairs"));
  state.counters["tier0_rate"] =
      pairs > 0
          ? static_cast<double>(metrics.counter("integrate.schema.proven")) /
                pairs
          : 0.0;
  state.counters["schema_skips"] =
      static_cast<double>(metrics.counter("integrate.schema.skips"));
}

void BM_SchemaIntegrateIndependent(benchmark::State& state) {
  SchemaIntegrateLoop(state, IndependentPair(), state.range(0) != 0);
}

void BM_SchemaIntegrateConflicting(benchmark::State& state) {
  SchemaIntegrateLoop(state, ConflictingPair(), state.range(0) != 0);
}

// The dynamic detector alone on the independent pair — the cost the
// tier spares (identical to BM_SchemaIntegrateIndependent/0; kept as an
// explicitly named anchor for the trajectory plots).
void BM_SchemaDynamicDetector(benchmark::State& state) {
  SchemaIntegrateLoop(state, IndependentPair(), false);
}

BENCHMARK(BM_SchemaSummaryInfer);
BENCHMARK(BM_SchemaExactAnalyze);
BENCHMARK(BM_SchemaTieredAnalyze);
// Arg 0: tier off (baseline); arg 1: tier on.
BENCHMARK(BM_SchemaIntegrateIndependent)->Arg(0)->Arg(1);
BENCHMARK(BM_SchemaIntegrateConflicting)->Arg(0)->Arg(1);
BENCHMARK(BM_SchemaDynamicDetector);

}  // namespace
}  // namespace xupdate
