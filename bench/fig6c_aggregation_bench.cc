// Figure 6c: cost of PUL aggregation.
//
// Paper workload: an increasing number of sequential PULs, 1000
// operations each, half of the later PULs' operations targeting nodes
// inserted by earlier PULs. The measured pipeline is deserialize ->
// aggregate -> reserialize. Expected shape: linear in the total number
// of operations, with (de)serialization dominating — the paper reports
// the aggregation itself under 5 ms even at 15 PULs x 1000 ops.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/aggregate.h"
#include "pul/pul_io.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

constexpr size_t kDocMb = 4;
constexpr size_t kOpsPerPul = 1000;

struct SequenceInput {
  std::vector<pul::Pul> puls;
  std::vector<std::string> serialized;
};

const SequenceInput& InputFixture(size_t num_puls) {
  static std::map<size_t, std::unique_ptr<SequenceInput>> cache;
  auto it = cache.find(num_puls);
  if (it != cache.end()) return *it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling, 777 + num_puls);
  workload::PulGenerator::SequenceOptions options;
  options.num_puls = num_puls;
  options.ops_per_pul = kOpsPerPul;
  options.new_node_fraction = 0.5;
  auto puls = gen.GenerateSequence(options);
  if (!puls.ok()) {
    fprintf(stderr, "sequence generation failed: %s\n",
            puls.status().ToString().c_str());
    abort();
  }
  auto input = std::make_unique<SequenceInput>();
  input->puls = std::move(*puls);
  for (const pul::Pul& pul : input->puls) {
    auto text = pul::SerializePul(pul);
    if (!text.ok()) abort();
    input->serialized.push_back(std::move(*text));
  }
  return *cache.emplace(num_puls, std::move(input)).first->second;
}

void BM_AggregateFullPipeline(benchmark::State& state) {
  const SequenceInput& input =
      InputFixture(static_cast<size_t>(state.range(0)));
  core::AggregateStats stats;
  for (auto _ : state) {
    std::vector<pul::Pul> parsed;
    parsed.reserve(input.serialized.size());
    for (const std::string& text : input.serialized) {
      auto pul = pul::ParsePul(text);
      if (!pul.ok()) {
        state.SkipWithError(pul.status().ToString().c_str());
        return;
      }
      parsed.push_back(std::move(*pul));
    }
    std::vector<const pul::Pul*> ptrs;
    for (const pul::Pul& p : parsed) ptrs.push_back(&p);
    auto aggregate = core::Aggregate(ptrs, &stats);
    if (!aggregate.ok()) {
      state.SkipWithError(aggregate.status().ToString().c_str());
      return;
    }
    auto text = pul::SerializePul(*aggregate);
    if (!text.ok()) {
      state.SkipWithError(text.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*text);
  }
  state.counters["puls"] = static_cast<double>(input.puls.size());
  state.counters["total_ops"] =
      static_cast<double>(input.puls.size() * kOpsPerPul);
  state.counters["agg_ops"] = static_cast<double>(stats.output_ops);
  state.counters["folded"] = static_cast<double>(stats.folded_ops);
}

void BM_AggregateOnly(benchmark::State& state) {
  const SequenceInput& input =
      InputFixture(static_cast<size_t>(state.range(0)));
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& p : input.puls) ptrs.push_back(&p);
  for (auto _ : state) {
    auto aggregate = core::Aggregate(ptrs, nullptr);
    if (!aggregate.ok()) {
      state.SkipWithError(aggregate.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*aggregate);
  }
  state.counters["total_ops"] =
      static_cast<double>(input.puls.size() * kOpsPerPul);
}

void BM_AggregateDeserializeOnly(benchmark::State& state) {
  const SequenceInput& input =
      InputFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (const std::string& text : input.serialized) {
      auto pul = pul::ParsePul(text);
      if (!pul.ok()) {
        state.SkipWithError(pul.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(*pul);
    }
  }
  state.counters["total_ops"] =
      static_cast<double>(input.puls.size() * kOpsPerPul);
}

void PulCounts(benchmark::internal::Benchmark* b) {
  for (int64_t n : {1, 3, 5, 10, 15}) b->Arg(n);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_AggregateFullPipeline)->Apply(PulCounts);
BENCHMARK(BM_AggregateOnly)->Apply(PulCounts);
BENCHMARK(BM_AggregateDeserializeOnly)->Apply(PulCounts);

}  // namespace
}  // namespace xupdate

