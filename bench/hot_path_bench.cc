// Hot-path primitives behind the PR-5 layout work: word-wise code
// comparison, the order-preserving 64-bit prefix key, key-first label
// sorting, and the flat shared-target join. These are the inner loops
// of reduce/integrate/aggregate; the figure benches measure them only
// end-to-end, so regressions in the primitives themselves would show up
// late and diluted. Everything runs on labels of a real document, where
// code lengths and shared prefixes match what the engines actually see.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "label/bitstring.h"
#include "label/node_label.h"
#include "pul/pul_view.h"

namespace xupdate {
namespace {

struct LabelPool {
  std::vector<label::NodeLabel> labels;
  std::vector<uint64_t> keys;  // labels[i].OrderKey(), precomputed
};

const LabelPool& PoolFixture(size_t mb) {
  static std::map<size_t, std::unique_ptr<LabelPool>> cache;
  auto it = cache.find(mb);
  if (it != cache.end()) return *it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(mb);
  std::vector<xml::NodeId> nodes = fixture.doc.AllNodesInOrder();
  Rng rng(29);
  auto out = std::make_unique<LabelPool>();
  out->labels.reserve(8192);
  for (size_t i = 0; i < 8192; ++i) {
    xml::NodeId n = nodes[static_cast<size_t>(rng.Below(nodes.size()))];
    out->labels.push_back(*fixture.labeling.Find(n));
  }
  out->keys.reserve(out->labels.size());
  for (const label::NodeLabel& l : out->labels) {
    out->keys.push_back(l.OrderKey());
  }
  return *cache.emplace(mb, std::move(out)).first->second;
}

// Full code comparison (the word-wise loop; no key short-circuit).
void BM_BitStringCompare(benchmark::State& state) {
  const LabelPool& pool = PoolFixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = pool.labels[i & 8191];
    const auto& b = pool.labels[(i + 4096) & 8191];
    benchmark::DoNotOptimize(a.start.Compare(b.start));
    ++i;
  }
  state.counters["doc_mb"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BitStringCompare)->Arg(1)->Arg(8);

// Key-first comparison with precomputed keys: the engines' common case,
// where unequal prefixes never touch the codes.
void BM_CompareKeyed(benchmark::State& state) {
  const LabelPool& pool = PoolFixture(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    size_t x = i & 8191;
    size_t y = (i + 4096) & 8191;
    benchmark::DoNotOptimize(label::BitString::CompareKeyed(
        pool.keys[x], pool.labels[x].start, pool.keys[y],
        pool.labels[y].start));
    ++i;
  }
  state.counters["doc_mb"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CompareKeyed)->Arg(1)->Arg(8);

// Document-order sort of N labels: plain full-code comparator versus
// the cached-key-first comparator the engines now use.
void BM_SortByStartPlain(benchmark::State& state) {
  const LabelPool& pool = PoolFixture(1);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<const label::NodeLabel*> scratch;
  for (auto _ : state) {
    state.PauseTiming();
    scratch.clear();
    for (size_t i = 0; i < n; ++i) scratch.push_back(&pool.labels[i & 8191]);
    state.ResumeTiming();
    std::sort(scratch.begin(), scratch.end(),
              [](const label::NodeLabel* a, const label::NodeLabel* b) {
                return a->start.Compare(b->start) < 0;
              });
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_SortByStartPlain)->Arg(1024)->Arg(8192);

void BM_SortByStartKeyed(benchmark::State& state) {
  const LabelPool& pool = PoolFixture(1);
  size_t n = static_cast<size_t>(state.range(0));
  struct Slot {
    uint64_t key;
    const label::NodeLabel* label;
  };
  std::vector<Slot> scratch;
  for (auto _ : state) {
    state.PauseTiming();
    scratch.clear();
    for (size_t i = 0; i < n; ++i) {
      scratch.push_back({pool.keys[i & 8191], &pool.labels[i & 8191]});
    }
    state.ResumeTiming();
    std::sort(scratch.begin(), scratch.end(),
              [](const Slot& a, const Slot& b) {
                return label::BitString::CompareKeyed(
                           a.key, a.label->start, b.key, b.label->start) < 0;
              });
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_SortByStartKeyed)->Arg(1024)->Arg(8192);

// Shared-target join: append N (target, op-index) pairs, then walk every
// chain. TargetIndex versus the unordered_map-of-vectors it replaced.
// Targets repeat with the skew the generators produce (~4 ops/target).
std::vector<xml::NodeId> JoinTargets(size_t n) {
  Rng rng(31);
  std::vector<xml::NodeId> targets;
  targets.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    targets.push_back(static_cast<xml::NodeId>(1 + rng.Below(n / 4 + 1)));
  }
  return targets;
}

void BM_TargetIndexJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<xml::NodeId> targets = JoinTargets(n);
  pul::TargetIndex index;
  for (auto _ : state) {
    index.Reset(n);
    for (size_t i = 0; i < n; ++i) {
      index.Append(targets[i], static_cast<int32_t>(i));
    }
    int64_t visited = 0;
    for (size_t i = 0; i < n; ++i) {
      for (int32_t j = index.Head(targets[i]); j >= 0; j = index.Next(j)) {
        ++visited;
      }
    }
    benchmark::DoNotOptimize(visited);
  }
}
BENCHMARK(BM_TargetIndexJoin)->Arg(1024)->Arg(16384);

void BM_HashMapJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<xml::NodeId> targets = JoinTargets(n);
  for (auto _ : state) {
    std::unordered_map<xml::NodeId, std::vector<int>> index;
    for (size_t i = 0; i < n; ++i) {
      index[targets[i]].push_back(static_cast<int>(i));
    }
    int64_t visited = 0;
    for (size_t i = 0; i < n; ++i) {
      auto it = index.find(targets[i]);
      if (it != index.end()) visited += static_cast<int64_t>(it->second.size());
    }
    benchmark::DoNotOptimize(visited);
  }
}
BENCHMARK(BM_HashMapJoin)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace xupdate
