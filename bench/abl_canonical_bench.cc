// Ablation A3: overhead of the reduction variants.
//
// Definition 7 (plain) vs Definition 8 (deterministic, + stage 10) vs
// Definition 9 (canonical, <p-minimal pair selection). The canonical
// form trades the worklist's near-linear scan for a quadratic
// minimal-pair search, so it is expected to be markedly slower — the
// price of a unique normal form.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/reduce.h"
#include "workload/pul_generator.h"

namespace xupdate {
namespace {

constexpr size_t kDocMb = 2;

const pul::Pul& PulFixture(size_t ops) {
  static std::map<size_t, std::unique_ptr<pul::Pul>> cache;
  auto it = cache.find(ops);
  if (it != cache.end()) return *it->second;
  const bench::BenchDocument& fixture = bench::XmarkFixture(kDocMb);
  workload::PulGenerator gen(fixture.doc, fixture.labeling, 31337 + ops);
  workload::PulGenerator::PulOptions options;
  options.num_ops = ops;
  options.reducible_fraction = 0.2;
  auto pul = gen.Generate(options);
  if (!pul.ok()) {
    fprintf(stderr, "pul generation failed: %s\n",
            pul.status().ToString().c_str());
    abort();
  }
  return *cache.emplace(ops, std::make_unique<pul::Pul>(std::move(*pul)))
              .first->second;
}

template <core::ReduceMode Mode>
void BM_ReduceMode(benchmark::State& state) {
  const pul::Pul& pul = PulFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto reduced = core::Reduce(pul, Mode);
    if (!reduced.ok()) {
      state.SkipWithError(reduced.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*reduced);
  }
  state.counters["ops"] = static_cast<double>(pul.size());
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (int64_t ops : {500, 1000, 2000}) b->Arg(ops);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_ReduceMode<core::ReduceMode::kPlain>)
    ->Name("BM_ReducePlain")
    ->Apply(Sizes);
BENCHMARK(BM_ReduceMode<core::ReduceMode::kDeterministic>)
    ->Name("BM_ReduceDeterministic")
    ->Apply(Sizes);
BENCHMARK(BM_ReduceMode<core::ReduceMode::kCanonical>)
    ->Name("BM_ReduceCanonical")
    ->Apply(Sizes);

}  // namespace
}  // namespace xupdate

