// Disconnected execution (paper §1): a node edits its local replica for
// a while, producing one PUL per editing session. On reconnection it
// sends the whole sequence; the server aggregates it into a single PUL
// and applies it in one pass instead of walking the document once per
// session.

#include <cstdlib>
#include <iostream>

#include "core/aggregate.h"
#include "core/reduce.h"
#include "exec/streaming.h"
#include "label/labeling.h"
#include "pul/apply.h"
#include "pul/pul_io.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/eval.h"

namespace {

template <typename T>
T Check(xupdate::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const xupdate::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace xupdate;

  const char* source =
      "<notebook>"
      "<entry date=\"01-03\"><text>draft</text></entry>"
      "</notebook>";
  xml::Document server_doc = Check(xml::ParseDocument(source), "parse");

  // The laptop checks out a replica (same ids, same labels).
  xml::Document laptop = server_doc;
  label::Labeling laptop_labels = label::Labeling::Build(laptop);
  xml::NodeId id_base = laptop.max_assigned_id() + 1000;

  // Three offline editing sessions. Each session's PUL is produced
  // against the *current* replica state and applied locally, so later
  // sessions freely touch nodes earlier sessions created.
  std::vector<pul::Pul> sessions;
  const char* scripts[] = {
      // Session 1: add a new entry.
      "insert nodes <entry date=\"01-04\"><text>field notes</text></entry> "
      "as last into /notebook",
      // Session 2: extend the new entry and fix the old one.
      "insert nodes <tag>travel</tag> as last into //entry[2], "
      "replace value of node //entry[1]/text/text() with \"final draft\"",
      // Session 3: reconsider the tag.
      "replace node //entry[2]/tag with <tag>expedition</tag>",
  };
  for (const char* script : scripts) {
    xquery::ProducerContext ctx;
    ctx.doc = &laptop;
    ctx.labeling = &laptop_labels;
    ctx.id_base = id_base;
    pul::Pul pul = Check(xquery::ProducePul(script, ctx), "session update");
    id_base += 1000;
    pul::ApplyOptions apply;
    apply.labeling = &laptop_labels;
    Check(pul::ApplyPul(&laptop, pul, apply), "local apply");
    sessions.push_back(std::move(pul));
  }
  std::cout << "offline sessions recorded: " << sessions.size() << "\n";

  // Back online: ship the deltas, not the document.
  size_t wire_bytes = 0;
  for (const pul::Pul& pul : sessions) {
    wire_bytes += Check(pul::SerializePul(pul), "wire").size();
  }
  std::cout << "wire cost of the PUL sequence: " << wire_bytes
            << " bytes\n";

  // The server aggregates the sequence into one PUL (rule D6 folds the
  // session-2/3 edits into session 1's inserted entry) and reduces it.
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : sessions) ptrs.push_back(&pul);
  core::AggregateStats stats;
  pul::Pul aggregate = Check(core::Aggregate(ptrs, &stats), "aggregation");
  pul::Pul delta = Check(
      core::Reduce(aggregate, core::ReduceMode::kDeterministic),
      "reduction");
  size_t total_ops = 0;
  for (const pul::Pul& pul : sessions) total_ops += pul.size();
  std::cout << "aggregation: " << total_ops << " ops in " << sessions.size()
            << " PULs -> " << delta.size() << " ops (" << stats.folded_ops
            << " folded into parameter trees)\n";

  // One streaming pass updates the server copy.
  xml::SerializeOptions annotated;
  annotated.with_ids = true;
  std::string server_text =
      Check(xml::SerializeDocument(server_doc, annotated), "serialize");
  exec::StreamingEvaluator executor;
  std::string updated =
      Check(executor.Evaluate(server_text, delta), "server apply");

  // The server replica now equals the laptop replica.
  xml::Document server_after = Check(xml::ParseDocument(updated), "reparse");
  bool in_sync = xml::Document::SubtreeEquals(
      server_after, server_after.root(), laptop, laptop.root(),
      /*compare_ids=*/true);
  std::cout << "replicas in sync: " << (in_sync ? "yes" : "NO") << "\n";

  xml::SerializeOptions pretty;
  pretty.pretty = true;
  std::cout << "\nsynchronized document:\n"
            << Check(xml::SerializeDocument(server_after, pretty), "print")
            << "\n";
  return in_sync ? 0 : 1;
}
