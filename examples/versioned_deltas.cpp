// Document versioning (paper §1): versions are stored as deltas (PULs)
// over an original document. Aggregation lets the archive drop
// intermediate versions — collapsing a run of deltas into one — while
// still being able to materialize any retained version.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/aggregate.h"
#include "label/labeling.h"
#include "pul/apply.h"
#include "pul/obtainable.h"
#include "pul/pul_io.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/eval.h"

namespace {

template <typename T>
T Check(xupdate::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const xupdate::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace xupdate;

  const char* v0_text =
      "<spec version=\"0\">"
      "<section id=\"intro\"><p>First cut.</p></section>"
      "</spec>";
  xml::Document v0 = Check(xml::ParseDocument(v0_text), "parse");

  // Build five versions, each described by a delta over its predecessor.
  const char* edits[] = {
      "replace value of node /spec/@version with \"1\", "
      "insert nodes <section id=\"api\"><p>API sketch.</p></section> "
      "as last into /spec",

      "replace value of node /spec/@version with \"2\", "
      "replace value of node //section[@id='intro']/p/text() with "
      "\"Polished intro.\"",

      "replace value of node /spec/@version with \"3\", "
      "insert nodes <p>Error handling.</p> as last into "
      "//section[@id='api']",

      "replace value of node /spec/@version with \"4\", "
      "delete nodes //section[@id='intro']",
  };

  std::vector<pul::Pul> deltas;
  xml::Document head = v0;
  label::Labeling labels = label::Labeling::Build(head);
  xml::NodeId id_base = head.max_assigned_id() + 1000;
  for (const char* edit : edits) {
    xquery::ProducerContext ctx;
    ctx.doc = &head;
    ctx.labeling = &labels;
    ctx.id_base = id_base;
    id_base += 1000;
    pul::Pul delta = Check(xquery::ProducePul(edit, ctx), "edit");
    pul::ApplyOptions apply;
    apply.labeling = &labels;
    Check(pul::ApplyPul(&head, delta, apply), "apply");
    deltas.push_back(std::move(delta));
  }
  std::cout << "archive: v0 document + " << deltas.size() << " deltas\n";

  // Materializing a version = applying a prefix of the delta chain.
  auto materialize = [&](size_t version) {
    xml::Document doc = v0;
    for (size_t i = 0; i < version; ++i) {
      Check(pul::ApplyPul(&doc, deltas[i]), "materialize");
    }
    return doc;
  };

  // Retention policy: keep v0, v2 and v4; v1 and v3 are collapsed away.
  // delta(v0->v2) = aggregate(d1, d2); delta(v2->v4) = aggregate(d3, d4).
  pul::Pul v0_to_v2 =
      Check(core::Aggregate({&deltas[0], &deltas[1]}), "collapse v1");
  pul::Pul v2_to_v4 =
      Check(core::Aggregate({&deltas[2], &deltas[3]}), "collapse v3");
  std::cout << "collapsed archive: v0 + delta(v0->v2) ["
            << v0_to_v2.size() << " ops] + delta(v2->v4) ["
            << v2_to_v4.size() << " ops]\n";

  // The collapsed chain reproduces the retained versions exactly.
  xml::Document v2_direct = materialize(2);
  xml::Document v2_collapsed = v0;
  Check(pul::ApplyPul(&v2_collapsed, v0_to_v2), "v2 via collapse");
  bool v2_ok = pul::CanonicalForm(v2_direct) ==
               pul::CanonicalForm(v2_collapsed);

  xml::Document v4_direct = materialize(4);
  xml::Document v4_collapsed = v2_collapsed;
  Check(pul::ApplyPul(&v4_collapsed, v2_to_v4), "v4 via collapse");
  bool v4_ok = pul::CanonicalForm(v4_direct) ==
               pul::CanonicalForm(v4_collapsed);

  std::cout << "v2 reproduced: " << (v2_ok ? "yes" : "NO")
            << ", v4 reproduced: " << (v4_ok ? "yes" : "NO") << "\n";

  // Storage comparison: deltas vs. full copies.
  size_t full_bytes = 0;
  for (size_t v = 1; v <= 4; ++v) {
    xml::SerializeOptions opts;
    opts.with_ids = true;
    full_bytes +=
        Check(xml::SerializeDocument(materialize(v), opts), "size").size();
  }
  size_t delta_bytes = Check(pul::SerializePul(v0_to_v2), "size").size() +
                       Check(pul::SerializePul(v2_to_v4), "size").size();
  std::cout << "storing full versions v1..v4: " << full_bytes
            << " bytes; collapsed deltas: " << delta_bytes << " bytes\n";

  xml::SerializeOptions pretty;
  pretty.pretty = true;
  std::cout << "\nhead version (v4):\n"
            << Check(xml::SerializeDocument(v4_direct, pretty), "print")
            << "\n";
  return (v2_ok && v4_ok) ? 0 : 1;
}
