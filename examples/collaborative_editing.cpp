// Collaborative editing (paper §1): a node holds the authoritative
// version of a document and shares it with collaborators. Each
// collaborator produces a PUL against the same snapshot; the executor
// integrates the PULs, detects the clashes, reconciles them under the
// producers' policies and installs a new authoritative version.

#include <cstdlib>
#include <iostream>

#include "core/integrate.h"
#include "core/reconcile.h"
#include "exec/streaming.h"
#include "label/labeling.h"
#include "pul/pul_io.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/eval.h"

namespace {

template <typename T>
T Check(xupdate::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

const char* ConflictName(xupdate::core::ConflictType type) {
  switch (type) {
    case xupdate::core::ConflictType::kRepeatedModification:
      return "repeated modification";
    case xupdate::core::ConflictType::kRepeatedAttributeInsertion:
      return "repeated attribute insertion";
    case xupdate::core::ConflictType::kInsertionOrder:
      return "element insertion order";
    case xupdate::core::ConflictType::kLocalOverride:
      return "local override";
    case xupdate::core::ConflictType::kNonLocalOverride:
      return "non-local override";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace xupdate;

  // The authoritative version at the executor.
  const char* source =
      "<paper>"
      "<title>Dynamic Reasoning on XML Updates</title>"
      "<authors>"
      "<author>F.Cavalieri</author>"
      "<author>G.Guerrini</author>"
      "</authors>"
      "<abstract><p>PULs can be exchanged among nodes.</p></abstract>"
      "<keywords><kw>XML</kw></keywords>"
      "</paper>";
  xml::Document master = Check(xml::ParseDocument(source), "parse");
  label::Labeling labeling = label::Labeling::Build(master);

  // Three collaborators check out the same snapshot. Each gets its own
  // id space and states its desiderata.
  auto producer = [&](xml::NodeId id_base,
                      pul::Policies policies) {
    xquery::ProducerContext ctx;
    ctx.doc = &master;
    ctx.labeling = &labeling;
    ctx.id_base = master.max_assigned_id() + id_base;
    ctx.policies = policies;
    return ctx;
  };

  // Alice appends an author and must see her data in the final document.
  pul::Policies alice_policies;
  alice_policies.preserve_inserted_data = true;
  alice_policies.preserve_insertion_order = true;
  pul::Pul alice = Check(
      xquery::ProducePul(
          "insert nodes <author>M.Mesiti</author> as last into //authors, "
          "insert attributes venue=\"EDBT\" into /paper",
          producer(1000, alice_policies)),
      "alice's update");

  // Bob also appends an author and tweaks the abstract.
  pul::Pul bob = Check(
      xquery::ProducePul(
          "insert nodes <author>B.Catania</author> as last into //authors, "
          "replace value of node //abstract/p/text() with "
          "\"PULs travel between nodes.\", "
          "insert attributes venue=\"VLDB\" into /paper",
          producer(2000, pul::Policies{})),
      "bob's update");

  // Carol prunes the keywords and replaces the abstract wholesale;
  // her removals must stick.
  pul::Policies carol_policies;
  carol_policies.preserve_removed_data = true;
  pul::Pul carol = Check(
      xquery::ProducePul(
          "delete nodes //keywords/kw, "
          "replace node //abstract/p with <p>Rewritten abstract.</p>",
          producer(3000, carol_policies)),
      "carol's update");

  // The executor integrates the three parallel update requests.
  core::IntegrationResult integration =
      Check(core::Integrate({&alice, &bob, &carol}), "integration");
  std::cout << "integration found " << integration.conflicts.size()
            << " conflicts:\n";
  for (const core::Conflict& c : integration.conflicts) {
    std::cout << "  - " << ConflictName(c.type) << " involving "
              << (c.ops.size() + (c.symmetric() ? 0 : 1))
              << " operations\n";
  }

  // Reconciliation honors the policies: Alice's author comes first in
  // the order conflict, Bob's venue attribute loses to Alice's, and
  // Bob's abstract tweak yields to Carol's replacement.
  core::ReconcileStats stats;
  pul::Pul merged =
      Check(core::Reconcile({&alice, &bob, &carol}, &stats),
            "reconciliation");
  std::cout << "reconciled: " << stats.conflicts_total << " conflicts, "
            << stats.operations_excluded << " operations excluded, "
            << stats.operations_generated
            << " generated, final PUL has " << merged.size()
            << " operations\n";

  // Install the new authoritative version with one streaming pass.
  xml::SerializeOptions annotated;
  annotated.with_ids = true;
  std::string master_text =
      Check(xml::SerializeDocument(master, annotated), "serialize");
  exec::StreamingEvaluator executor;
  std::string updated =
      Check(executor.Evaluate(master_text, merged), "execution");
  xml::Document result = Check(xml::ParseDocument(updated), "reparse");
  xml::SerializeOptions pretty;
  pretty.pretty = true;
  std::cout << "\nnew authoritative version:\n"
            << Check(xml::SerializeDocument(result, pretty), "print")
            << "\n";
  return 0;
}
