// Undo log via PUL inversion (the paper's §6 future-work item): an
// editor applies a series of updates, keeping for each the inverse PUL
// computed against the pre-state. Undo = apply the inverses in reverse
// order. Node identities are restored exactly, so redo and further
// reasoning keep working after an undo.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/invert.h"
#include "core/reduce.h"
#include "label/labeling.h"
#include "pul/apply.h"
#include "pul/obtainable.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/eval.h"

namespace {

template <typename T>
T Check(xupdate::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const xupdate::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << " failed: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace xupdate;

  const char* source =
      "<recipe serves=\"4\">"
      "<title>Pasta al pomodoro</title>"
      "<ingredients>"
      "<item>pasta</item><item>tomatoes</item><item>basil</item>"
      "</ingredients>"
      "<steps><step>boil</step><step>simmer</step></steps>"
      "</recipe>";
  xml::Document doc = Check(xml::ParseDocument(source), "parse");
  label::Labeling labeling = label::Labeling::Build(doc);

  std::vector<std::string> snapshots;
  auto snapshot = [&]() {
    return pul::CanonicalForm(
        doc, std::numeric_limits<xml::NodeId>::max());
  };
  snapshots.push_back(snapshot());

  const char* edits[] = {
      "replace value of node /recipe/@serves with \"6\"",
      "insert nodes <item>garlic</item> as last into //ingredients",
      "delete nodes //steps/step[1]",
      "rename node /recipe/title as \"name\"",
  };

  // Apply each edit, stashing its inverse first.
  std::vector<pul::Pul> undo_stack;
  xml::NodeId id_base = doc.max_assigned_id() + 1000;
  for (const char* edit : edits) {
    xquery::ProducerContext ctx;
    ctx.doc = &doc;
    ctx.labeling = &labeling;
    ctx.id_base = id_base;
    id_base += 1000;
    pul::Pul pul = Check(xquery::ProducePul(edit, ctx), "edit");
    // Inversion requires an O-irreducible PUL; reduce defensively.
    pul = Check(core::Reduce(pul, core::ReduceMode::kDeterministic),
                "reduce");
    undo_stack.push_back(
        Check(core::Invert(doc, labeling, pul), "invert"));
    pul::ApplyOptions opts;
    opts.labeling = &labeling;
    Check(pul::ApplyPul(&doc, pul, opts), "apply");
    snapshots.push_back(snapshot());
  }
  std::cout << "applied " << undo_stack.size()
            << " edits; undo stack holds their inverses\n";

  // Undo everything, checking each intermediate state matches the
  // snapshot taken on the way in (ids included).
  for (size_t i = undo_stack.size(); i-- > 0;) {
    pul::ApplyOptions opts;
    opts.labeling = &labeling;
    Check(pul::ApplyPul(&doc, undo_stack[i], opts), "undo");
    bool match = snapshot() == snapshots[i];
    std::cout << "undo edit " << (i + 1) << ": state "
              << (match ? "matches" : "DIVERGES FROM") << " snapshot "
              << i << "\n";
    if (!match) return 1;
  }

  xml::SerializeOptions pretty;
  pretty.pretty = true;
  std::cout << "\nfully unwound document:\n"
            << Check(xml::SerializeDocument(doc, pretty), "print") << "\n";
  return 0;
}
