// Quickstart: the full life of a PUL.
//
//   1. Parse an XML document and label it.
//   2. Produce a PUL by evaluating an XQuery Update expression.
//   3. Serialize the PUL (the wire format of the paper's architecture).
//   4. Reduce it (collapse/override elimination, Definition 7).
//   5. Execute it with the streaming evaluator.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/reduce.h"
#include "exec/streaming.h"
#include "label/labeling.h"
#include "pul/pul_io.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/eval.h"

namespace {

// Aborts the example with a readable message on any error.
template <typename T>
T Check(xupdate::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace xupdate;

  // 1. The document (Figure 1 of the paper, abridged).
  const char* source =
      "<sigmodRecord>"
      "<issue><volume>11</volume>"
      "<article><title>XML Processing</title>"
      "<authors><author position=\"00\">B.Catania</author></authors>"
      "</article></issue>"
      "</sigmodRecord>";
  xml::Document doc = Check(xml::ParseDocument(source), "parse");
  label::Labeling labeling = label::Labeling::Build(doc);
  std::cout << "document has " << doc.node_count() << " nodes\n";

  // 2. Produce a PUL with an update script. Snapshot semantics: all
  //    paths are resolved against the unmodified document.
  xquery::ProducerContext producer;
  producer.doc = &doc;
  producer.labeling = &labeling;
  pul::Pul pul = Check(
      xquery::ProducePul(
          "insert nodes <author>G.Guerrini</author> as last into //authors, "
          "insert nodes <author>M.Mesiti</author> as last into //authors, "
          "insert attributes initPage=\"132\" lastPage=\"134\" "
          "into //article, "
          "rename node //article/title as \"heading\", "
          "replace value of node //author[1]/text() with \"B. Catania\"",
          producer),
      "update evaluation");
  std::cout << "produced a PUL with " << pul.size() << " operations\n";

  // 3. The PUL travels as XML (decoupled production/execution).
  std::string wire = Check(pul::SerializePul(pul), "PUL serialization");
  std::cout << "wire format (" << wire.size() << " bytes):\n"
            << wire << "\n\n";
  pul::Pul received = Check(pul::ParsePul(wire), "PUL parse");

  // 4. Reduce: the two insLast operations on //authors collapse (rule
  //    I5) without touching the document.
  pul::Pul reduced =
      Check(core::Reduce(received, core::ReduceMode::kDeterministic),
            "reduction");
  std::cout << "reduction: " << received.size() << " ops -> "
            << reduced.size() << " ops\n";

  // 5. Execute in streaming: one SAX pass, no DOM.
  xml::SerializeOptions annotated;
  annotated.with_ids = true;
  std::string doc_text =
      Check(xml::SerializeDocument(doc, annotated), "serialize");
  exec::StreamingEvaluator executor;
  std::string updated = Check(executor.Evaluate(doc_text, reduced),
                              "streaming evaluation");

  // Show the result without the id annotations.
  xml::Document result = Check(xml::ParseDocument(updated), "reparse");
  xml::SerializeOptions pretty;
  pretty.pretty = true;
  std::cout << "updated document:\n"
            << Check(xml::SerializeDocument(result, pretty), "print")
            << "\n";
  return 0;
}
