#ifndef XUPDATE_EXEC_EXECUTOR_H_
#define XUPDATE_EXEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/aggregate.h"
#include "core/reconcile.h"
#include "label/labeling.h"
#include "pul/pul.h"
#include "xml/document.h"

namespace xupdate::exec {

// The PUL handler system of the paper's §4: one executor per document
// holds the master (authoritative) copy, hands out replicas to
// producers — each with its own identifier space (§4.1) — and makes
// collected PULs effective, reasoning on them first:
//
//   * CommitParallel: update requests against the *same* version are
//     integrated, conflicts reconciled under the producers' policies
//     (Algorithm 1 + Algorithm 3), and the result applied;
//   * CommitSequence: a producer's sequential PULs are aggregated into
//     one (Algorithm 2) and applied in a single pass;
//   * Commit: a single PUL is applied directly.
//
// The executor maintains the label table incrementally across commits
// (existing labels never change) and bumps a version number on every
// successful commit. PULs arrive either as in-memory objects or in the
// serialized exchange format.
class PulExecutor {
 public:
  // Opens an executor over a parsed or serialized document.
  static Result<PulExecutor> Open(xml::Document document);
  static Result<PulExecutor> Open(std::string_view annotated_xml);

  PulExecutor(PulExecutor&&) noexcept = default;
  PulExecutor& operator=(PulExecutor&&) noexcept = default;

  // What a producer receives at check-out: the annotated serialization
  // of the current version plus a private id space for the nodes it
  // will create.
  struct Checkout {
    std::string document;
    uint64_t version = 0;
    xml::NodeId id_base = 0;
    // Exclusive upper bound of the producer's id space.
    xml::NodeId id_limit = 0;
  };
  Result<Checkout> CheckOut();

  // Applies one PUL produced against the current version.
  Status Commit(const pul::Pul& pul);

  // Integrates + reconciles parallel PULs (same base version) and
  // applies the result. `stats` is optional.
  Status CommitParallel(const std::vector<const pul::Pul*>& puls,
                        core::ReconcileStats* stats = nullptr);

  // Aggregates a producer's sequential PULs and applies the single
  // cumulated PUL. `stats` is optional.
  Status CommitSequence(const std::vector<const pul::Pul*>& puls,
                        core::AggregateStats* stats = nullptr);

  // Parses serialized PULs and dispatches to CommitParallel.
  Status CommitParallelSerialized(const std::vector<std::string>& puls,
                                  core::ReconcileStats* stats = nullptr);

  const xml::Document& document() const { return document_; }
  const label::Labeling& labeling() const { return labeling_; }
  uint64_t version() const { return version_; }

  // The current version in the annotated exchange format.
  Result<std::string> Serialize() const;

 private:
  PulExecutor(xml::Document document, label::Labeling labeling);

  xml::Document document_;
  label::Labeling labeling_;
  uint64_t version_ = 0;
  // Producer id spaces are carved in fixed blocks above every id ever
  // seen; a new block is handed out per checkout.
  xml::NodeId next_id_base_ = 0;
};

}  // namespace xupdate::exec

#endif  // XUPDATE_EXEC_EXECUTOR_H_
