#include "exec/streaming.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"
#include "pul/update_op.h"
#include "xml/sax.h"
#include "xml/serializer.h"

namespace xupdate::exec {

namespace {

using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using xml::kInvalidNode;
using xml::NodeId;
using xml::NodeType;
using xml::SaxAttribute;

// All operations of the PUL aimed at one node, pre-sorted by kind.
struct TargetOps {
  std::vector<const UpdateOp*> ins_before;
  std::vector<const UpdateOp*> ins_after;
  std::vector<const UpdateOp*> ins_first;
  std::vector<const UpdateOp*> ins_into;
  std::vector<const UpdateOp*> ins_last;
  std::vector<const UpdateOp*> ins_attr;
  const UpdateOp* rep_node = nullptr;
  const UpdateOp* rep_children = nullptr;
  const UpdateOp* rep_value = nullptr;
  const UpdateOp* rename = nullptr;
  bool deleted = false;
  bool seen = false;

  bool HasElementOnlyOps() const {
    return !ins_first.empty() || !ins_into.empty() || !ins_last.empty() ||
           !ins_attr.empty() || rep_children != nullptr;
  }
};

// "self[;attr1,attr2,...]".
Status ParseIdsAnnotation(std::string_view text, NodeId* self,
                          std::vector<NodeId>* attr_ids) {
  size_t semi = text.find(';');
  int64_t id = ParseNonNegativeInt(text.substr(0, semi));
  if (id <= 0) return Status::ParseError("bad xu:ids annotation");
  *self = static_cast<NodeId>(id);
  if (semi == std::string_view::npos) return Status::OK();
  // A ';' promises at least one attribute id, and every ',' promises
  // another — a dangling separator is malformed, not empty.
  std::string_view rest = text.substr(semi + 1);
  while (true) {
    size_t comma = rest.find(',');
    int64_t a = ParseNonNegativeInt(rest.substr(0, comma));
    if (a <= 0) return Status::ParseError("bad xu:ids attribute id");
    attr_ids->push_back(static_cast<NodeId>(a));
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return Status::OK();
}

// Rewrites the SAX event stream according to the PUL (§4.3: "the
// original document is parsed generating a sequence of SAX events, that
// are transformed on-the-fly applying the operations specified in the
// PUL and immediately serialized"). Produces exactly the document the
// in-memory evaluator produces under its default options.
class Transformer : public xml::SaxHandler {
 public:
  Transformer(const Pul& pul,
              std::unordered_map<NodeId, TargetOps>& index)
      : pul_(pul), index_(index) {}

  std::string TakeOutput() { return out_.TakeString(); }

  Status StartElement(std::string_view name,
                      std::span<const SaxAttribute> attributes) override;
  Status EndElement(std::string_view name) override;
  Status Text(std::string_view text) override;
  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override;

 private:
  struct Frame {
    bool emit = true;
    bool children_suppressed = false;
    std::string end_name;
    TargetOps* ops = nullptr;
  };

  TargetOps* Find(NodeId id) {
    auto it = index_.find(id);
    if (it == index_.end()) return nullptr;
    it->second.seen = true;
    return &it->second;
  }

  bool ParentEmits() const {
    if (stack_.empty()) return true;
    return stack_.back().emit && !stack_.back().children_suppressed;
  }

  Status EmitParamTree(NodeId root) {
    switch (pul_.forest().type(root)) {
      case NodeType::kElement: {
        xml::SerializeOptions options;
        options.with_ids = true;
        XUPDATE_ASSIGN_OR_RETURN(
            std::string tree,
            xml::SerializeSubtree(pul_.forest(), root, options));
        out_.Raw(tree);
        return Status::OK();
      }
      case NodeType::kText:
        XUPDATE_RETURN_IF_ERROR(
            out_.ProcessingInstruction("xuid", std::to_string(root)));
        return out_.Text(pul_.forest().value(root));
      case NodeType::kAttribute:
        return Status::Internal("attribute tree outside an element tag");
    }
    return Status::Internal("unknown parameter node type");
  }

  Status EmitTrees(const std::vector<const UpdateOp*>& ops, bool reverse) {
    if (!reverse) {
      for (const UpdateOp* op : ops) {
        for (NodeId root : op->param_trees) {
          XUPDATE_RETURN_IF_ERROR(EmitParamTree(root));
        }
      }
    } else {
      for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
        for (NodeId root : (*it)->param_trees) {
          XUPDATE_RETURN_IF_ERROR(EmitParamTree(root));
        }
      }
    }
    return Status::OK();
  }

  const Pul& pul_;
  std::unordered_map<NodeId, TargetOps>& index_;
  xml::SaxWriter out_{false};
  std::vector<Frame> stack_;
  NodeId next_auto_id_ = 1;
  NodeId pending_text_id_ = kInvalidNode;
};

Status Transformer::StartElement(std::string_view name,
                                 std::span<const SaxAttribute> attributes) {
  pending_text_id_ = kInvalidNode;
  // Resolve ids (annotation or document-order auto-assignment, mirroring
  // the DOM parser: element first, then its attributes).
  NodeId self = kInvalidNode;
  std::vector<NodeId> explicit_attr_ids;
  for (const SaxAttribute& a : attributes) {
    if (a.name == xml::kIdsAttributeName) {
      XUPDATE_RETURN_IF_ERROR(
          ParseIdsAnnotation(a.value, &self, &explicit_attr_ids));
      break;
    }
  }
  if (self == kInvalidNode) self = next_auto_id_++;

  struct InAttr {
    const SaxAttribute* attr;
    NodeId id;
  };
  std::vector<InAttr> in_attrs;
  size_t pos = 0;
  for (const SaxAttribute& a : attributes) {
    if (a.name == xml::kIdsAttributeName) continue;
    NodeId id = pos < explicit_attr_ids.size() ? explicit_attr_ids[pos]
                                               : next_auto_id_++;
    in_attrs.push_back({&a, id});
    ++pos;
  }

  TargetOps* t = Find(self);
  if (!ParentEmits()) {
    // Inside a removed or replaced region: structure is consumed without
    // output; contained operations are overridden (stage semantics).
    stack_.push_back({false, false, std::string(), nullptr});
    // Attribute targets still count as seen.
    for (const InAttr& ia : in_attrs) Find(ia.id);
    return Status::OK();
  }

  if (t != nullptr && (t->deleted || t->rep_node != nullptr)) {
    // Sibling insertions survive removal of the target (Table 2 / O1).
    XUPDATE_RETURN_IF_ERROR(EmitTrees(t->ins_before, false));
    if (t->rep_node != nullptr) {
      for (NodeId root : t->rep_node->param_trees) {
        XUPDATE_RETURN_IF_ERROR(EmitParamTree(root));
      }
    }
    for (const InAttr& ia : in_attrs) Find(ia.id);
    stack_.push_back({false, false, std::string(), t});
    return Status::OK();
  }

  if (t != nullptr) {
    XUPDATE_RETURN_IF_ERROR(EmitTrees(t->ins_before, false));
  }

  // Assemble the output attribute list.
  std::vector<SaxAttribute> out_attrs;
  std::vector<NodeId> out_attr_ids;
  bool attrs_touched = t != nullptr && !t->ins_attr.empty();
  for (const InAttr& ia : in_attrs) {
    TargetOps* ta = Find(ia.id);
    if (ta == nullptr) {
      out_attrs.push_back(*ia.attr);
      out_attr_ids.push_back(ia.id);
      continue;
    }
    attrs_touched = true;
    if (ta->HasElementOnlyOps() || !ta->ins_before.empty() ||
        !ta->ins_after.empty()) {
      return Status::NotApplicable(
          "element-content operation targets attribute " +
          std::to_string(ia.id));
    }
    if (ta->deleted) continue;
    if (ta->rep_node != nullptr) {
      for (NodeId root : ta->rep_node->param_trees) {
        if (pul_.forest().type(root) != NodeType::kAttribute) {
          return Status::NotApplicable(
              "attribute replaced by a non-attribute tree");
        }
        out_attrs.push_back({std::string(pul_.forest().name(root)),
                             pul_.forest().value(root)});
        out_attr_ids.push_back(root);
      }
      continue;
    }
    std::string out_name = ta->rename != nullptr
                               ? ta->rename->param_string
                               : ia.attr->name;
    std::string out_value = ta->rep_value != nullptr
                                ? ta->rep_value->param_string
                                : ia.attr->value;
    out_attrs.push_back({std::move(out_name), std::move(out_value)});
    out_attr_ids.push_back(ia.id);
  }
  if (t != nullptr) {
    for (const UpdateOp* op : t->ins_attr) {
      for (NodeId root : op->param_trees) {
        out_attrs.push_back({std::string(pul_.forest().name(root)),
                             pul_.forest().value(root)});
        out_attr_ids.push_back(root);
      }
    }
  }
  if (attrs_touched) {
    for (size_t i = 0; i < out_attrs.size(); ++i) {
      for (size_t j = i + 1; j < out_attrs.size(); ++j) {
        if (out_attrs[i].name == out_attrs[j].name) {
          return Status::NotApplicable("duplicate attribute \"" +
                                       out_attrs[i].name + "\" on element " +
                                       std::to_string(self));
        }
      }
    }
  }

  std::string out_name(t != nullptr && t->rename != nullptr
                           ? std::string_view(t->rename->param_string)
                           : name);
  // xu:ids annotation: "self[;attr ids]".
  std::string annotation = std::to_string(self);
  if (!out_attr_ids.empty()) {
    annotation += ';';
    for (size_t i = 0; i < out_attr_ids.size(); ++i) {
      if (i > 0) annotation += ',';
      annotation += std::to_string(out_attr_ids[i]);
    }
  }
  out_attrs.push_back({xml::kIdsAttributeName, std::move(annotation)});
  XUPDATE_RETURN_IF_ERROR(out_.StartElement(out_name, out_attrs));

  Frame frame;
  frame.emit = true;
  frame.end_name = out_name;
  frame.ops = t;
  if (t != nullptr && t->rep_children != nullptr) {
    for (NodeId root : t->rep_children->param_trees) {
      XUPDATE_RETURN_IF_ERROR(EmitParamTree(root));
    }
    frame.children_suppressed = true;
  } else if (t != nullptr) {
    // Stage 1 insInto blocks land first-position in op order, then stage
    // 2 insFirst blocks land in front of them: emit both in reverse.
    XUPDATE_RETURN_IF_ERROR(EmitTrees(t->ins_first, true));
    XUPDATE_RETURN_IF_ERROR(EmitTrees(t->ins_into, true));
  }
  stack_.push_back(std::move(frame));
  return Status::OK();
}

Status Transformer::EndElement(std::string_view) {
  Frame frame = std::move(stack_.back());
  stack_.pop_back();
  pending_text_id_ = kInvalidNode;
  if (!frame.emit) {
    // Closing a removed/replaced target (or a node inside one); only a
    // removed *target* carries ops whose insAfter must still fire.
    if (frame.ops != nullptr && ParentEmits()) {
      XUPDATE_RETURN_IF_ERROR(EmitTrees(frame.ops->ins_after, true));
    }
    return Status::OK();
  }
  if (frame.ops != nullptr && !frame.children_suppressed) {
    XUPDATE_RETURN_IF_ERROR(EmitTrees(frame.ops->ins_last, false));
  }
  XUPDATE_RETURN_IF_ERROR(out_.EndElement(frame.end_name));
  if (frame.ops != nullptr) {
    XUPDATE_RETURN_IF_ERROR(EmitTrees(frame.ops->ins_after, true));
  }
  return Status::OK();
}

Status Transformer::Text(std::string_view text) {
  NodeId id = pending_text_id_ != kInvalidNode ? pending_text_id_
                                               : next_auto_id_++;
  pending_text_id_ = kInvalidNode;
  TargetOps* t = Find(id);
  if (!ParentEmits()) return Status::OK();
  if (t == nullptr) {
    XUPDATE_RETURN_IF_ERROR(
        out_.ProcessingInstruction("xuid", std::to_string(id)));
    return out_.Text(text);
  }
  if (t->HasElementOnlyOps() || t->rename != nullptr) {
    return Status::NotApplicable("element operation targets text node " +
                                 std::to_string(id));
  }
  XUPDATE_RETURN_IF_ERROR(EmitTrees(t->ins_before, false));
  if (t->deleted || t->rep_node != nullptr) {
    if (t->rep_node != nullptr) {
      for (NodeId root : t->rep_node->param_trees) {
        XUPDATE_RETURN_IF_ERROR(EmitParamTree(root));
      }
    }
  } else {
    XUPDATE_RETURN_IF_ERROR(
        out_.ProcessingInstruction("xuid", std::to_string(id)));
    XUPDATE_RETURN_IF_ERROR(out_.Text(
        t->rep_value != nullptr ? std::string_view(t->rep_value->param_string)
                                : text));
  }
  return EmitTrees(t->ins_after, true);
}

Status Transformer::ProcessingInstruction(std::string_view target,
                                          std::string_view data) {
  if (target != "xuid") return Status::OK();
  int64_t id = ParseNonNegativeInt(Trim(data));
  if (id <= 0) return Status::ParseError("bad <?xuid?> id");
  pending_text_id_ = static_cast<NodeId>(id);
  return Status::OK();
}

Status BuildIndex(const Pul& pul,
                  std::unordered_map<NodeId, TargetOps>* index) {
  XUPDATE_RETURN_IF_ERROR(pul.CheckCompatible());
  for (const UpdateOp& op : pul.ops()) {
    TargetOps& t = (*index)[op.target];
    switch (op.kind) {
      case OpKind::kInsBefore:
        t.ins_before.push_back(&op);
        break;
      case OpKind::kInsAfter:
        t.ins_after.push_back(&op);
        break;
      case OpKind::kInsFirst:
        t.ins_first.push_back(&op);
        break;
      case OpKind::kInsInto:
        t.ins_into.push_back(&op);
        break;
      case OpKind::kInsLast:
        t.ins_last.push_back(&op);
        break;
      case OpKind::kInsAttributes:
        t.ins_attr.push_back(&op);
        break;
      case OpKind::kDelete:
        t.deleted = true;
        break;
      case OpKind::kReplaceNode:
        t.rep_node = &op;
        break;
      case OpKind::kReplaceChildren:
        t.rep_children = &op;
        break;
      case OpKind::kReplaceValue:
        t.rep_value = &op;
        break;
      case OpKind::kRename:
        t.rename = &op;
        break;
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> StreamingEvaluator::Evaluate(
    std::string_view document_xml, const pul::Pul& pul) const {
  std::unordered_map<NodeId, TargetOps> index;
  XUPDATE_RETURN_IF_ERROR(BuildIndex(pul, &index));
  Transformer transformer(pul, index);
  XUPDATE_RETURN_IF_ERROR(xml::ParseSax(document_xml, &transformer));
  for (const auto& [id, t] : index) {
    if (!t.seen) {
      return Status::NotApplicable("target node " + std::to_string(id) +
                                   " not in document");
    }
  }
  return transformer.TakeOutput();
}

}  // namespace xupdate::exec
