#ifndef XUPDATE_EXEC_IN_MEMORY_H_
#define XUPDATE_EXEC_IN_MEMORY_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "pul/pul.h"

namespace xupdate::exec {

// The baseline PUL evaluation strategy of §4.3 (the "adapted Qizx"):
// load the entire document in memory, apply the PUL, serialize the
// document back. Memory usage is proportional to the document size.
class InMemoryEvaluator {
 public:
  struct Options {
    // Maintain the executor's label table incrementally while applying
    // (the executor owns the authoritative copy, §4.1).
    bool maintain_labels = true;
  };

  InMemoryEvaluator() = default;
  explicit InMemoryEvaluator(const Options& options) : options_(options) {}

  // Applies `pul` to the id-annotated document text and returns the
  // updated id-annotated serialization.
  Result<std::string> Evaluate(std::string_view document_xml,
                               const pul::Pul& pul) const;

 private:
  Options options_;
};

}  // namespace xupdate::exec

#endif  // XUPDATE_EXEC_IN_MEMORY_H_
