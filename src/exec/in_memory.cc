#include "exec/in_memory.h"

#include "label/labeling.h"
#include "pul/apply.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xupdate::exec {

Result<std::string> InMemoryEvaluator::Evaluate(
    std::string_view document_xml, const pul::Pul& pul) const {
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc,
                           xml::ParseDocument(document_xml));
  pul::ApplyOptions apply_options;
  label::Labeling labeling;
  if (options_.maintain_labels) {
    labeling = label::Labeling::Build(doc);
    apply_options.labeling = &labeling;
  }
  XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, pul, apply_options));
  xml::SerializeOptions serialize_options;
  serialize_options.with_ids = true;
  return xml::SerializeDocument(doc, serialize_options);
}

}  // namespace xupdate::exec
