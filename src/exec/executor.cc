#include "exec/executor.h"

#include <algorithm>

#include "pul/apply.h"
#include "pul/pul_io.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xupdate::exec {

namespace {

// Size of the id block handed to each producer at check-out.
constexpr xml::NodeId kIdBlock = xml::NodeId{1} << 24;

}  // namespace

PulExecutor::PulExecutor(xml::Document document, label::Labeling labeling)
    : document_(std::move(document)), labeling_(std::move(labeling)) {
  next_id_base_ = document_.max_assigned_id() + 1;
}

Result<PulExecutor> PulExecutor::Open(xml::Document document) {
  if (document.root() == xml::kInvalidNode) {
    return Status::InvalidArgument("document has no root");
  }
  label::Labeling labeling = label::Labeling::Build(document);
  return PulExecutor(std::move(document), std::move(labeling));
}

Result<PulExecutor> PulExecutor::Open(std::string_view annotated_xml) {
  XUPDATE_ASSIGN_OR_RETURN(xml::Document document,
                           xml::ParseDocument(annotated_xml));
  return Open(std::move(document));
}

Result<PulExecutor::Checkout> PulExecutor::CheckOut() {
  Checkout out;
  XUPDATE_ASSIGN_OR_RETURN(out.document, Serialize());
  out.version = version_;
  // Round the base up to a block boundary beyond every known id, so
  // concurrent producers never clash (§4.1: "each producer has an
  // assigned identification space").
  xml::NodeId floor =
      std::max(next_id_base_, document_.max_assigned_id() + 1);
  out.id_base = ((floor + kIdBlock - 1) / kIdBlock) * kIdBlock;
  out.id_limit = out.id_base + kIdBlock;
  next_id_base_ = out.id_limit;
  return out;
}

Status PulExecutor::Commit(const pul::Pul& pul) {
  pul::ApplyOptions options;
  options.labeling = &labeling_;
  XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&document_, pul, options));
  ++version_;
  return Status::OK();
}

Status PulExecutor::CommitParallel(
    const std::vector<const pul::Pul*>& puls,
    core::ReconcileStats* stats) {
  if (puls.empty()) return Status::InvalidArgument("no PULs to commit");
  if (puls.size() == 1) return Commit(*puls[0]);
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul merged, core::Reconcile(puls, stats));
  return Commit(merged);
}

Status PulExecutor::CommitSequence(
    const std::vector<const pul::Pul*>& puls,
    core::AggregateStats* stats) {
  if (puls.empty()) return Status::InvalidArgument("no PULs to commit");
  if (puls.size() == 1) return Commit(*puls[0]);
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul aggregate,
                           core::Aggregate(puls, stats));
  return Commit(aggregate);
}

Status PulExecutor::CommitParallelSerialized(
    const std::vector<std::string>& puls, core::ReconcileStats* stats) {
  std::vector<pul::Pul> parsed;
  parsed.reserve(puls.size());
  for (const std::string& text : puls) {
    XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
    parsed.push_back(std::move(pul));
  }
  std::vector<const pul::Pul*> ptrs;
  ptrs.reserve(parsed.size());
  for (const pul::Pul& pul : parsed) ptrs.push_back(&pul);
  return CommitParallel(ptrs, stats);
}

Result<std::string> PulExecutor::Serialize() const {
  xml::SerializeOptions options;
  options.with_ids = true;
  return xml::SerializeDocument(document_, options);
}

}  // namespace xupdate::exec
