#ifndef XUPDATE_EXEC_STREAMING_H_
#define XUPDATE_EXEC_STREAMING_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "pul/pul.h"

namespace xupdate::exec {

// The streaming PUL evaluation strategy of §4.3: the document is parsed
// into a stream of SAX events that are rewritten on the fly according to
// the PUL and serialized immediately. No in-memory representation of the
// document is built — state is bounded by the PUL size plus the tree
// depth, decoupling memory from document size.
//
// The produced document is equal (including node ids) to what the
// in-memory evaluator produces with its default options; the two
// engines are the subject of the paper's Figure 6a comparison.
class StreamingEvaluator {
 public:
  // Applies `pul` to the id-annotated document text and returns the
  // updated id-annotated serialization. Inputs without id annotations
  // are accepted: ids are then assigned in document order exactly as the
  // DOM parser would.
  Result<std::string> Evaluate(std::string_view document_xml,
                               const pul::Pul& pul) const;
};

}  // namespace xupdate::exec

#endif  // XUPDATE_EXEC_STREAMING_H_
