#include "server/stat.h"

#include <utility>

#include "common/json.h"
#include "obs/exposition.h"

namespace xupdate::server {

namespace {

// Splits one flat registry snapshot into (global, per-tenant) sections.
void SplitSnapshot(const MetricsSnapshot& snapshot, StatSnapshot* out) {
  auto route = [&out](std::string_view name, auto&& assign) {
    std::string_view tenant, rest;
    if (obs::SplitTenantMetric(name, &tenant, &rest)) {
      assign(&out->tenants[std::string(tenant)], rest);
    } else {
      assign(&out->global, name);
    }
  };
  for (const auto& [name, value] : snapshot.counters) {
    route(name, [&value](MetricsSnapshot* section, std::string_view key) {
      section->counters.emplace(std::string(key), value);
    });
  }
  for (const auto& [name, value] : snapshot.gauges) {
    route(name, [&value](MetricsSnapshot* section, std::string_view key) {
      section->gauges.emplace(std::string(key), value);
    });
  }
  for (const auto& [name, timer] : snapshot.timers) {
    route(name, [&timer](MetricsSnapshot* section, std::string_view key) {
      section->timers.emplace(std::string(key), timer);
    });
  }
}

Status ReadMetricsObject(const json::Value& value, MetricsSnapshot* out) {
  if (!value.is_object()) {
    return Status::ParseError("metrics section is not an object");
  }
  if (const json::Value* counters = value.Find("counters")) {
    if (!counters->is_object()) {
      return Status::ParseError("\"counters\" is not an object");
    }
    for (const auto& [name, v] : counters->members) {
      out->counters[name] = v.U64Or(0);
    }
  }
  if (const json::Value* gauges = value.Find("gauges")) {
    if (!gauges->is_object()) {
      return Status::ParseError("\"gauges\" is not an object");
    }
    for (const auto& [name, v] : gauges->members) {
      out->gauges[name] = v.I64Or(0);
    }
  }
  if (const json::Value* timers = value.Find("timers")) {
    if (!timers->is_object()) {
      return Status::ParseError("\"timers\" is not an object");
    }
    for (const auto& [name, v] : timers->members) {
      if (!v.is_object()) {
        return Status::ParseError("timer \"" + name + "\" is not an object");
      }
      MetricsSnapshot::TimerState t;
      if (const json::Value* f = v.Find("seconds")) t.seconds = f->NumberOr(0);
      if (const json::Value* f = v.Find("count")) t.count = f->U64Or(0);
      if (const json::Value* f = v.Find("min")) t.min = f->NumberOr(0);
      if (const json::Value* f = v.Find("max")) t.max = f->NumberOr(0);
      if (const json::Value* buckets = v.Find("buckets")) {
        if (!buckets->is_array()) {
          return Status::ParseError("timer buckets is not an array");
        }
        // Tolerate a different ladder length from a newer/older server:
        // read what overlaps, ignore the rest (percentile deltas then
        // degrade, they don't fail).
        size_t n = buckets->items.size() < kNumLatencyBuckets
                       ? buckets->items.size()
                       : kNumLatencyBuckets;
        for (size_t b = 0; b < n; ++b) {
          t.buckets[b] = buckets->items[b].U64Or(0);
        }
      }
      out->timers[name] = t;
    }
  }
  return Status::OK();
}

}  // namespace

std::string BuildStatJson(const MetricsSnapshot& snapshot, uint64_t seq,
                          uint64_t uptime_ticks) {
  StatSnapshot split;
  SplitSnapshot(snapshot, &split);
  std::string out = "{\"v\":";
  out += std::to_string(kStatVersion);
  out += ",\"seq\":";
  out += std::to_string(seq);
  out += ",\"uptime_ticks\":";
  out += std::to_string(uptime_ticks);
  out += ",\"global\":";
  out += MetricsSnapshotToJson(split.global);
  out += ",\"tenants\":{";
  bool first = true;
  for (const auto& [tenant, section] : split.tenants) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += tenant;  // ValidTenantName charset — no escaping needed
    out += "\":";
    out += MetricsSnapshotToJson(section);
  }
  out += "}}";
  return out;
}

Result<MetricsSnapshot> ParseMetricsJson(std::string_view json) {
  XUPDATE_ASSIGN_OR_RETURN(json::Value value, json::Parse(json));
  MetricsSnapshot snapshot;
  XUPDATE_RETURN_IF_ERROR(ReadMetricsObject(value, &snapshot));
  return snapshot;
}

Result<StatSnapshot> ParseStatJson(std::string_view json) {
  XUPDATE_ASSIGN_OR_RETURN(json::Value value, json::Parse(json));
  if (!value.is_object()) {
    return Status::ParseError("stat payload is not a JSON object");
  }
  StatSnapshot stat;
  const json::Value* version = value.Find("v");
  if (version == nullptr) {
    // Pre-versioning payload: a bare metrics object with tenant-scoped
    // names inline. Split it the way the server now does.
    MetricsSnapshot flat;
    XUPDATE_RETURN_IF_ERROR(ReadMetricsObject(value, &flat));
    SplitSnapshot(flat, &stat);
    return stat;
  }
  stat.version = version->U64Or(0);
  if (const json::Value* seq = value.Find("seq")) stat.seq = seq->U64Or(0);
  if (const json::Value* uptime = value.Find("uptime_ticks")) {
    stat.uptime_ticks = uptime->U64Or(0);
  }
  if (const json::Value* global = value.Find("global")) {
    XUPDATE_RETURN_IF_ERROR(ReadMetricsObject(*global, &stat.global));
  }
  if (const json::Value* tenants = value.Find("tenants")) {
    if (!tenants->is_object()) {
      return Status::ParseError("\"tenants\" is not an object");
    }
    for (const auto& [tenant, section] : tenants->members) {
      XUPDATE_RETURN_IF_ERROR(
          ReadMetricsObject(section, &stat.tenants[tenant]));
    }
  }
  return stat;
}

MetricsSnapshot FlattenStatSnapshot(const StatSnapshot& stat) {
  MetricsSnapshot flat = stat.global;
  for (const auto& [tenant, section] : stat.tenants) {
    std::string prefix = "tenant/" + tenant + "/";
    for (const auto& [name, value] : section.counters) {
      flat.counters[prefix + name] = value;
    }
    for (const auto& [name, value] : section.gauges) {
      flat.gauges[prefix + name] = value;
    }
    for (const auto& [name, value] : section.timers) {
      flat.timers[prefix + name] = value;
    }
  }
  return flat;
}

}  // namespace xupdate::server
