#include "server/protocol.h"

#include "common/framing.h"

namespace xupdate::server {

namespace {

using framing::GetU32;
using framing::GetU64;
using framing::PutU32;
using framing::PutU64;

}  // namespace

bool IsRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kOpen) &&
         type <= static_cast<uint8_t>(MsgType::kShutdown);
}

bool IsResponseType(uint8_t type) {
  return type == static_cast<uint8_t>(MsgType::kOk) ||
         type == static_cast<uint8_t>(MsgType::kError) ||
         type == static_cast<uint8_t>(MsgType::kBusy);
}

void EncodeStringList(const std::vector<std::string>& strings,
                      std::string* out) {
  PutU32(out, static_cast<uint32_t>(strings.size()));
  for (const std::string& s : strings) {
    PutU32(out, static_cast<uint32_t>(s.size()));
    *out += s;
  }
}

Status DecodeStringList(std::string_view data, size_t offset,
                        std::vector<std::string>* out) {
  out->clear();
  if (data.size() - offset < 4) {
    return Status::ParseError("truncated string-list count");
  }
  uint32_t count = GetU32(data, offset);
  offset += 4;
  // Each entry costs at least its 4-byte length prefix; a count the
  // remaining bytes cannot possibly hold is rejected before the loop
  // (a hostile count of 2^32-1 must not drive 4 billion iterations).
  if (count > (data.size() - offset) / 4) {
    return Status::ParseError("string-list count of " +
                              std::to_string(count) +
                              " exceeds the message body");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (data.size() - offset < 4) {
      return Status::ParseError("truncated string-list entry length");
    }
    uint32_t len = GetU32(data, offset);
    offset += 4;
    if (len > data.size() - offset) {
      return Status::ParseError("truncated string-list entry");
    }
    out->emplace_back(data.substr(offset, len));
    offset += len;
  }
  if (offset != data.size()) {
    return Status::ParseError("trailing bytes after string list");
  }
  return Status::OK();
}

std::string EncodeMessage(const Message& msg) {
  std::string body;
  body.push_back(static_cast<char>(msg.type));
  PutU64(&body, msg.a);
  PutU64(&body, msg.b);
  EncodeStringList(msg.payload, &body);
  return body;
}

Result<Message> DecodeMessage(std::string_view body, bool expect_request) {
  if (body.size() < kMessageFixedSize) {
    return Status::ParseError("message body of " +
                              std::to_string(body.size()) +
                              " bytes is shorter than the fixed header");
  }
  uint8_t type = static_cast<uint8_t>(body[0]);
  if (expect_request ? !IsRequestType(type) : !IsResponseType(type)) {
    return Status::ParseError(
        std::string("unexpected message type ") + std::to_string(type) +
        (expect_request ? " (wanted a request)" : " (wanted a response)"));
  }
  Message msg;
  msg.type = static_cast<MsgType>(type);
  msg.a = GetU64(body, 1);
  msg.b = GetU64(body, 9);
  XUPDATE_RETURN_IF_ERROR(
      DecodeStringList(body, kMessageFixedSize, &msg.payload));
  return msg;
}

Message ErrorResponse(const Status& status) {
  Message msg;
  msg.type = MsgType::kError;
  msg.a = static_cast<uint64_t>(status.code());
  msg.payload = {status.message()};
  return msg;
}

Status StatusFromError(const Message& msg) {
  std::string text = msg.payload.empty() ? "" : msg.payload[0];
  // An out-of-range or kOk code in a kError frame means the peer is
  // broken; surface that rather than minting a fake OK.
  if (msg.a == 0 || msg.a > static_cast<uint64_t>(StatusCode::kInternal)) {
    return Status::Internal("malformed error response (code " +
                            std::to_string(msg.a) + "): " + text);
  }
  return Status(static_cast<StatusCode>(msg.a), std::move(text));
}

bool ValidTenantName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace xupdate::server
