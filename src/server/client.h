#ifndef XUPDATE_SERVER_CLIENT_H_
#define XUPDATE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/socket.h"
#include "server/protocol.h"

namespace xupdate::server {

// Client side of the daemon protocol: one connection, synchronous
// convenience calls plus the raw Send/Receive pair the load generator
// uses to pipeline (responses arrive in request order, so a sender
// thread can stream requests while a receiver thread drains replies).

// Commit can succeed, fail, or be shed (kBusy) — shedding is load
// feedback, not an error, so it is a field rather than a Status.
struct CommitAck {
  bool busy = false;
  uint64_t version = 0;
};

struct IntegrateAck {
  uint64_t conflicts = 0;
  std::string merged_xml;
};

class Client {
 public:
  static Result<Client> Connect(
      const std::string& socket_path,
      uint64_t max_message_bytes = kDefaultMaxMessageBytes);

  Client() = default;
  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  // Creates (initial_xml non-empty) or reopens (initial_xml empty) the
  // tenant's store; returns its head version.
  Result<uint64_t> Open(const std::string& tenant,
                        const std::string& initial_xml);
  Result<CommitAck> Commit(const std::string& tenant,
                           const std::string& pul_xml);
  // head=true checks out the current head (version ignored).
  Result<std::string> Checkout(const std::string& tenant, uint64_t version,
                               bool head = false);
  Result<std::string> Reduce(const std::string& pul_xml,
                             const std::string& mode, uint64_t parallelism);
  Result<IntegrateAck> Integrate(const std::vector<std::string>& pul_xmls,
                                 uint64_t parallelism);
  Result<std::string> Aggregate(const std::vector<std::string>& pul_xmls);
  // Server metrics registry as JSON.
  Result<std::string> Stat();
  Status Ping();
  // Asks the server to stop; returns once the server acknowledged.
  Status Shutdown();

  // Pipelining primitives. Responses must be received in send order.
  Status Send(const Message& request);
  Result<Message> Receive();

  // Unblocks a Receive() in another thread.
  Status ShutdownSocket() { return sock_.ShutdownBoth(); }
  Status Close() { return sock_.Close(); }

 private:
  // One round trip; turns kError into its Status, leaves kOk/kBusy.
  Result<Message> Call(const Message& request);

  UnixSocket sock_;
  uint64_t max_message_bytes_ = kDefaultMaxMessageBytes;
};

}  // namespace xupdate::server

#endif  // XUPDATE_SERVER_CLIENT_H_
