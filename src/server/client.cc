#include "server/client.h"

#include <utility>

namespace xupdate::server {

Result<Client> Client::Connect(const std::string& socket_path,
                               uint64_t max_message_bytes) {
  Client client;
  XUPDATE_ASSIGN_OR_RETURN(client.sock_, UnixSocket::Connect(socket_path));
  client.max_message_bytes_ = max_message_bytes;
  return client;
}

Status Client::Send(const Message& request) {
  return sock_.SendFrame(EncodeMessage(request));
}

Result<Message> Client::Receive() {
  XUPDATE_ASSIGN_OR_RETURN(std::string body,
                           sock_.RecvFrame(max_message_bytes_));
  return DecodeMessage(body, /*expect_request=*/false);
}

Result<Message> Client::Call(const Message& request) {
  XUPDATE_RETURN_IF_ERROR(Send(request));
  XUPDATE_ASSIGN_OR_RETURN(Message response, Receive());
  if (response.type == MsgType::kError) return StatusFromError(response);
  return response;
}

Result<uint64_t> Client::Open(const std::string& tenant,
                              const std::string& initial_xml) {
  Message request;
  request.type = MsgType::kOpen;
  request.payload = {tenant, initial_xml};
  XUPDATE_ASSIGN_OR_RETURN(Message response, Call(request));
  return response.a;
}

Result<CommitAck> Client::Commit(const std::string& tenant,
                                 const std::string& pul_xml) {
  Message request;
  request.type = MsgType::kCommit;
  request.payload = {tenant, pul_xml};
  XUPDATE_ASSIGN_OR_RETURN(Message response, Call(request));
  CommitAck ack;
  if (response.type == MsgType::kBusy) {
    ack.busy = true;
  } else {
    ack.version = response.a;
  }
  return ack;
}

Result<std::string> Client::Checkout(const std::string& tenant,
                                     uint64_t version, bool head) {
  Message request;
  request.type = MsgType::kCheckout;
  request.a = version;
  request.b = head ? 1 : 0;
  request.payload = {tenant};
  XUPDATE_ASSIGN_OR_RETURN(Message response, Call(request));
  if (response.payload.size() != 1) {
    return Status::Internal("checkout response carries no document");
  }
  return std::move(response.payload[0]);
}

Result<std::string> Client::Reduce(const std::string& pul_xml,
                                   const std::string& mode,
                                   uint64_t parallelism) {
  Message request;
  request.type = MsgType::kReduce;
  request.a = parallelism;
  request.payload = {pul_xml, mode};
  XUPDATE_ASSIGN_OR_RETURN(Message response, Call(request));
  if (response.payload.size() != 1) {
    return Status::Internal("reduce response carries no PUL");
  }
  return std::move(response.payload[0]);
}

Result<IntegrateAck> Client::Integrate(
    const std::vector<std::string>& pul_xmls, uint64_t parallelism) {
  Message request;
  request.type = MsgType::kIntegrate;
  request.a = parallelism;
  request.payload = pul_xmls;
  XUPDATE_ASSIGN_OR_RETURN(Message response, Call(request));
  if (response.payload.size() != 1) {
    return Status::Internal("integrate response carries no PUL");
  }
  IntegrateAck ack;
  ack.conflicts = response.a;
  ack.merged_xml = std::move(response.payload[0]);
  return ack;
}

Result<std::string> Client::Aggregate(
    const std::vector<std::string>& pul_xmls) {
  Message request;
  request.type = MsgType::kAggregate;
  request.payload = pul_xmls;
  XUPDATE_ASSIGN_OR_RETURN(Message response, Call(request));
  if (response.payload.size() != 1) {
    return Status::Internal("aggregate response carries no PUL");
  }
  return std::move(response.payload[0]);
}

Result<std::string> Client::Stat() {
  Message request;
  request.type = MsgType::kStat;
  XUPDATE_ASSIGN_OR_RETURN(Message response, Call(request));
  // Forward compatibility: a newer server may append payload strings (or
  // bump the version scalar in response.b); only a payload with no
  // metrics at all is an error. Payload shape is not a protocol version
  // check — server/stat.h's parser handles every known payload version.
  if (response.payload.empty()) {
    return Status::Internal("stat response carries no metrics");
  }
  return std::move(response.payload[0]);
}

Status Client::Ping() {
  Message request;
  request.type = MsgType::kPing;
  Result<Message> response = Call(request);
  return response.ok() ? Status::OK() : response.status();
}

Status Client::Shutdown() {
  Message request;
  request.type = MsgType::kShutdown;
  Result<Message> response = Call(request);
  return response.ok() ? Status::OK() : response.status();
}

}  // namespace xupdate::server
