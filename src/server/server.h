#ifndef XUPDATE_SERVER_SERVER_H_
#define XUPDATE_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/socket.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "pul/pul.h"
#include "schema/schema.h"
#include "server/protocol.h"
#include "store/version.h"

namespace xupdate::server {

// The PUL reasoning daemon: a multi-tenant server that keeps parsed
// documents, their label state and open VersionStores resident across
// requests, so clients pay parse/index cost once instead of per CLI
// invocation. Requests arrive over a Unix-domain socket as framed
// messages (server/protocol.h).
//
// Threads:
//   accept   polls the listener, spawns one session thread per
//            connection;
//   session  a read loop plus a writer thread per connection. The read
//            loop admits commits to the batcher immediately (so a
//            pipelining client's commits land in the same batch window)
//            and defers everything else as a thunk; the writer drains
//            thunks strictly FIFO, blocking on each commit's outcome
//            before evaluating later requests. Responses therefore
//            arrive in request order and every read-only request
//            observes all commits that preceded it on its connection.
//            (Corollary: pipeline commits only after the tenant's kOpen
//            acknowledged — commit admission happens at read time.)
//   batcher  the group-commit engine. Session threads enqueue commit
//            jobs (bounded queue; a full queue is refused and the
//            client told kBusy — explicit load shedding, never an
//            unbounded backlog). The batcher drains the whole queue,
//            optionally after a short commit window that lets
//            concurrent committers pile in, groups the jobs by tenant
//            in arrival order, and feeds each group to
//            VersionStore::CommitBatch — which appends every frame and
//            then fsyncs ONCE. N concurrent commits therefore cost one
//            fdatasync instead of N; `store.wal.fsync.count` against
//            `store.commit.count` makes the coalescing observable.
//
// Consistency: each tenant has one mutex serializing every touch of
// its store (the batcher's CommitBatch and the sessions' checkouts),
// so a checkout sees either all of a batch or none of it.
//
// Telemetry (see DESIGN.md "Serving-layer observability"): every
// admitted request gets a stable id; commits carry it through the
// batcher so the per-phase decomposition (admission wait, batch wait,
// fsync, apply, respond) lands in the slow-request log, in per-tenant
// "tenant/<t>/..." metrics, and — when a tracer is attached — as
// per-request spans keyed (phase = request id, lane = pipeline stage),
// which keeps the JSONL journal deterministic for serial
// single-connection workloads. A fixed-size flight recorder retains the
// recent event window regardless of tracing, dumped on SIGUSR1 (via
// DumpFlightRecorder), on WAL poisoning and at shutdown.

struct ServerOptions {
  std::string socket_path;
  // Tenant stores live at <data_dir>/<tenant>/.
  std::string data_dir;
  // Template for every tenant store (fsync policy, checkpoint cadence,
  // fault injection...). Its metrics pointer is overwritten with
  // `metrics` below so server and store counters land in one registry.
  store::StoreOptions store;
  // Commit admission bound: jobs queued but not yet batched. At the
  // bound, further commits get kBusy.
  size_t max_pending = 128;
  // Per-tenant admission quota: one tenant's jobs queued but not yet
  // batched. 0 disables the quota (only max_pending applies). With a
  // quota, a hot tenant that fills its share gets kBusy
  // (`server.busy.tenant_quota`) while other tenants keep committing —
  // one producer can no longer monopolize the admission queue.
  size_t max_pending_per_tenant = 0;
  // Schema router. When set, the batcher type-checks each tenant
  // group's PULs (schema::InferTouchedTypes / DecideIndependence):
  // groups whose members are pairwise proven independent — trivially so
  // for single-commit groups — are routed to a concurrent commit wave
  // that never enters conflict detection, while the rest fall back to
  // the sequential path. `server.schema.routed` / `server.schema.fallback`
  // count the jobs on each side. Not owned; must outlive the server.
  const schema::Schema* schema = nullptr;
  // How long the batcher waits after the first queued commit before
  // draining, letting concurrent committers coalesce. 0 = drain
  // immediately (still coalesces whatever queued while the previous
  // batch was fsyncing).
  int commit_window_ms = 0;
  // Largest request/response body accepted on the wire.
  uint64_t max_message_bytes = kDefaultMaxMessageBytes;
  // Reasoning parallelism cap for reduce/integrate requests.
  int max_parallelism = 8;
  Metrics* metrics = nullptr;
  // Per-request span tracing into the (phase = request id, lane =
  // pipeline stage) discipline. Not owned; null = off (one branch per
  // emission site — the disabled-telemetry overhead gate pins this).
  obs::Tracer* tracer = nullptr;
  // Slow-request log: requests slower than this (milliseconds, end to
  // end) emit one JSONL line naming tenant, type, batch id and the
  // phase breakdown. < 0 disables. Independent of `tracer`.
  int slow_request_ms = -1;
  // Where slow-request lines go; empty = stderr.
  std::string slow_request_log_path;
  // Token-bucket cap on slow-request lines (burst = 2s worth); beyond
  // it lines are dropped and counted under `server.slowlog.dropped`.
  int slow_request_log_max_per_sec = 20;
  // Flight-recorder window (recent server events). 0 disables.
  size_t flight_recorder_capacity = 1024;
  // Where flight-recorder dumps land; empty = <data_dir>/flight.jsonl.
  std::string flight_dump_path;
  // Per-tenant "tenant/<t>/..." counters/timers. Off caps metric
  // cardinality for deployments with very many tenants.
  bool per_tenant_metrics = true;
};

class Server {
 public:
  // Binds the socket and starts the accept and batcher threads.
  static Result<std::unique_ptr<Server>> Start(const ServerOptions& options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Blocks until a kShutdown request arrives (or RequestStop is
  // called), polling `external_stop` if given — the CLI points it at
  // its signal flag. Returns without stopping; call Stop() after.
  void Wait(const std::atomic<bool>* external_stop = nullptr);

  // Asks the server to stop; safe from any thread, returns immediately.
  void RequestStop();

  // True once a kShutdown request arrived or a stop began — the CLI's
  // housekeeping loop polls this instead of blocking in Wait() so it
  // can also service SIGUSR1 dumps and periodic metrics exposition.
  bool stop_requested() const {
    return stop_requested_.load() || stop_.load();
  }

  // Stops accepting, disconnects every session, drains the batcher and
  // joins all threads. Idempotent. Must not be called from a session
  // thread (it joins them); kShutdown requests call RequestStop and the
  // owner calls Stop after Wait returns.
  Status Stop();

  // Writes the flight-recorder window to the configured dump path
  // (atomic replace). No-op when the recorder is disabled. Safe from
  // any thread — the CLI calls it on SIGUSR1; the server calls it on
  // WAL poisoning and at shutdown.
  Status DumpFlightRecorder();

  // The recorder itself (null when disabled) — tests inspect it.
  const obs::FlightRecorder* flight_recorder() const {
    return flight_.get();
  }

  // Milliseconds since Start() — the stat payload's uptime ticks.
  uint64_t uptime_ms() const;

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Tenant {
    std::mutex mu;
    std::string name;
    std::optional<store::VersionStore> store;  // open after kOpen
    // Journal bytes at the last gauge update; guarded by mu.
    uint64_t wal_bytes_last = 0;
    // Jobs admitted but not yet swapped into a batch; guarded by
    // queue_mu_ (NOT mu — it is part of the admission queue's state).
    size_t pending = 0;
    // Pre-built "tenant/<name>/..." metric names (const after GetTenant
    // creates the slot) so the per-commit hot path never concatenates.
    std::string m_commit_seconds;
    std::string m_commit_count;
    std::string m_commit_errors;
    std::string m_checkout_seconds;
    std::string m_shed_count;
    std::string m_requests;
    std::string m_wal_bytes;
  };

  // What the batcher hands back through a commit job's promise: the
  // outcome plus the phase decomposition the telemetry consumes.
  struct CommitResult {
    Status status;
    uint64_t version = 0;
    uint64_t batch_id = 0;
    double batch_wait_seconds = 0.0;  // admission -> group commit start
    double fsync_seconds = 0.0;       // the group's single WAL sync
    double apply_seconds = 0.0;       // install + checkpoint
    double store_seconds = 0.0;       // whole CommitBatch for the group
  };

  struct CommitJob {
    Tenant* tenant = nullptr;
    uint64_t request_id = 0;
    std::chrono::steady_clock::time_point admit_tp;
    pul::Pul pul;
    std::promise<CommitResult> done;
  };

  struct Session {
    UnixSocket sock;
    std::thread worker;
    std::atomic<bool> finished{false};
  };

  explicit Server(const ServerOptions& options);

  void AcceptLoop();
  void ReapFinishedSessions();
  void SessionLoop(Session* session);
  void BatcherLoop();
  void RunBatch(std::deque<CommitJob> batch);
  // Commits one tenant's jobs of the current batch (one CommitBatch,
  // one fsync). Caller holds no locks; takes the tenant's mutex.
  void CommitGroup(Tenant* tenant, const std::vector<CommitJob*>& jobs,
                   uint64_t batch_id);

  // A response not yet produced: evaluated on the session's writer
  // thread, in request order. Commit thunks block on the batcher's
  // outcome; everything else evaluates lazily.
  using ResponseThunk = std::function<Message()>;

  // Request dispatch. Handle() runs on the read loop: commits are
  // admitted to the batcher right away and return a thunk waiting on
  // the outcome; other requests return a thunk that evaluates
  // HandleSync later.
  ResponseThunk Handle(const Message& request);
  Message HandleSync(const Message& request);
  ResponseThunk HandleCommitDeferred(const Message& request);
  Message HandleOpen(const Message& request);
  Message HandleCheckout(const Message& request);
  Message HandleReduce(const Message& request);
  Message HandleIntegrate(const Message& request);
  Message HandleAggregate(const Message& request);
  Message HandleStat(const Message& request);

  // Looks up (creating the slot if `create`) the tenant entry.
  Result<Tenant*> GetTenant(const std::string& name, bool create);

  int ClampParallelism(uint64_t requested) const;

  // Null-safe flight-recorder append.
  void RecordFlight(obs::FlightEventKind kind, std::string_view tenant,
                    uint64_t request = 0, uint64_t batch = 0,
                    uint64_t value = 0, std::string_view detail = {});

  // Emits one slow-request JSONL line if the request crossed the
  // threshold and the token bucket admits it.
  void MaybeLogSlowRequest(std::string_view type, const std::string& tenant,
                           uint64_t request_id, const CommitResult& result,
                           double admission_seconds, double total_seconds);

  ServerOptions options_;
  UnixListener listener_;

  std::atomic<bool> stop_{false};            // accept/session threads
  std::atomic<bool> stop_requested_{false};  // kShutdown arrived
  // Set strictly after the session threads are joined, so the batcher
  // never exits while a commit could still be enqueued.
  std::atomic<bool> batcher_stop_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::mutex stop_call_mu_;  // serializes Stop()
  bool stopped_ = false;     // Stop() ran to completion

  std::thread accept_thread_;
  std::thread batcher_thread_;

  std::mutex sessions_mu_;
  std::list<Session> sessions_;

  std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  // Open stores (gauge `server.tenants.resident`).
  std::atomic<uint64_t> resident_tenants_{0};
  // Journal bytes across every open store (gauge `server.wal.bytes`).
  std::atomic<uint64_t> total_wal_bytes_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<CommitJob> queue_;

  std::chrono::steady_clock::time_point started_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> next_batch_id_{1};
  std::atomic<uint64_t> stat_seq_{0};

  std::unique_ptr<obs::FlightRecorder> flight_;

  // Slow-request log sink + token bucket; all guarded by slow_mu_.
  std::mutex slow_mu_;
  std::ofstream slow_log_stream_;
  bool slow_log_to_file_ = false;
  double slow_tokens_ = 0.0;
  std::chrono::steady_clock::time_point slow_refill_;
};

}  // namespace xupdate::server

#endif  // XUPDATE_SERVER_SERVER_H_
