#include "server/server.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <utility>

#include "common/file_io.h"
#include "common/string_util.h"
#include "core/aggregate.h"
#include "core/integrate.h"
#include "core/reduce.h"
#include "pul/pul_io.h"
#include "schema/summary.h"
#include "server/stat.h"

namespace xupdate::server {

namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

Message OkMessage(uint64_t a = 0, uint64_t b = 0,
                  std::vector<std::string> payload = {}) {
  Message msg;
  msg.type = MsgType::kOk;
  msg.a = a;
  msg.b = b;
  msg.payload = std::move(payload);
  return msg;
}

double SecondsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::string_view RequestTypeName(MsgType type) {
  switch (type) {
    case MsgType::kOpen:
      return "open";
    case MsgType::kCommit:
      return "commit";
    case MsgType::kCheckout:
      return "checkout";
    case MsgType::kReduce:
      return "reduce";
    case MsgType::kIntegrate:
      return "integrate";
    case MsgType::kAggregate:
      return "aggregate";
    case MsgType::kStat:
      return "stat";
    case MsgType::kPing:
      return "ping";
    case MsgType::kShutdown:
      return "shutdown";
    default:
      return "unknown";
  }
}

// Tenant name for the slow-request log, for the request types whose
// first payload string is a tenant.
std::string TenantOfRequest(const Message& request) {
  switch (request.type) {
    case MsgType::kOpen:
    case MsgType::kCommit:
    case MsgType::kCheckout:
    case MsgType::kStat:
      return request.payload.empty() ? std::string() : request.payload[0];
    default:
      return std::string();
  }
}

std::string FormatMs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1000.0);
  return buf;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options), started_(Clock::now()), slow_refill_(started_) {}

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("server needs a socket path");
  }
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("server needs a data directory");
  }
  XUPDATE_RETURN_IF_ERROR(EnsureDirectory(options.data_dir));
  std::unique_ptr<Server> server(new Server(options));
  // Per-tenant stores share the server's metrics registry (it is
  // thread-safe); the tracer is not shared with the stores — server
  // tracing follows the (request id, pipeline lane) discipline instead.
  server->options_.store.metrics = options.metrics;
  server->options_.store.tracer = nullptr;
  if (options.flight_recorder_capacity > 0) {
    server->flight_ =
        std::make_unique<obs::FlightRecorder>(options.flight_recorder_capacity);
  }
  if (server->options_.flight_dump_path.empty()) {
    server->options_.flight_dump_path = options.data_dir + "/flight.jsonl";
  }
  if (options.slow_request_ms >= 0 && !options.slow_request_log_path.empty()) {
    server->slow_log_stream_.open(options.slow_request_log_path,
                                  std::ios::app);
    if (!server->slow_log_stream_.is_open()) {
      return Status::IoError("cannot open slow-request log: " +
                             options.slow_request_log_path);
    }
    server->slow_log_to_file_ = true;
  }
  if (options.slow_request_log_max_per_sec > 0) {
    // Start with a full bucket so the first burst of slow requests —
    // usually the interesting one — is never throttled.
    server->slow_tokens_ =
        2.0 * static_cast<double>(options.slow_request_log_max_per_sec);
  }
  XUPDATE_ASSIGN_OR_RETURN(server->listener_,
                           UnixListener::Bind(options.socket_path));
  server->accept_thread_ =
      std::thread([s = server.get()] { s->AcceptLoop(); });
  server->batcher_thread_ =
      std::thread([s = server.get()] { s->BatcherLoop(); });
  return server;
}

Server::~Server() { (void)Stop(); }

void Server::Wait(const std::atomic<bool>* external_stop) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_.load() && !stop_.load() &&
         (external_stop == nullptr || !external_stop->load())) {
    stop_cv_.wait_for(lock, milliseconds(100));
  }
}

void Server::RequestStop() {
  stop_requested_.store(true);
  stop_cv_.notify_all();
}

Status Server::Stop() {
  // Serialize concurrent Stop() calls (destructor vs. owner).
  std::lock_guard<std::mutex> stop_call(stop_call_mu_);
  if (stopped_) return Status::OK();
  stop_.store(true);
  stop_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock every session's recv. In-flight requests still finish —
  // including commits waiting on the batcher, which keeps running
  // until all sessions are joined (a commit whose promise is never
  // fulfilled would deadlock the join).
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (Session& session : sessions_) (void)session.sock.ShutdownBoth();
  }
  // The accept thread (the only other mutator of sessions_) is joined,
  // so iterating without the lock is safe — and necessary: joining
  // under sessions_mu_ could deadlock if a session path ever needed it.
  for (Session& session : sessions_) {
    if (session.worker.joinable()) session.worker.join();
  }
  batcher_stop_.store(true);
  queue_cv_.notify_all();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  Status worst = listener_.Close();
  {
    std::lock_guard<std::mutex> tenants_lock(tenants_mu_);
    for (auto& [name, tenant] : tenants_) {
      std::lock_guard<std::mutex> lock(tenant->mu);
      if (tenant->store.has_value()) {
        Status closed = tenant->store->Close();
        if (worst.ok() && !closed.ok()) worst = closed;
      }
    }
  }
  if (flight_ != nullptr) {
    flight_->Record(obs::FlightEventKind::kShutdown, {}, 0, 0,
                    flight_->total_recorded());
    Status dumped = DumpFlightRecorder();
    if (worst.ok() && !dumped.ok()) worst = dumped;
  }
  stopped_ = true;
  return worst;
}

Status Server::DumpFlightRecorder() {
  if (flight_ == nullptr) return Status::OK();
  return WriteFileAtomic(options_.flight_dump_path, flight_->DumpJsonl());
}

uint64_t Server::uptime_ms() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<milliseconds>(Clock::now() - started_)
          .count());
}

void Server::RecordFlight(obs::FlightEventKind kind, std::string_view tenant,
                          uint64_t request, uint64_t batch, uint64_t value,
                          std::string_view detail) {
  if (flight_ == nullptr) return;
  flight_->Record(kind, tenant, request, batch, value, detail);
}

void Server::MaybeLogSlowRequest(std::string_view type,
                                 const std::string& tenant,
                                 uint64_t request_id,
                                 const CommitResult& result,
                                 double admission_seconds,
                                 double total_seconds) {
  if (options_.slow_request_ms < 0) return;
  if (total_seconds * 1000.0 <
      static_cast<double>(options_.slow_request_ms)) {
    return;
  }
  std::string line = "{\"uptime_ms\":";
  line += std::to_string(uptime_ms());
  line += ",\"request\":";
  line += std::to_string(request_id);
  line += ",\"type\":\"";
  line += type;
  line += "\",\"tenant\":\"";
  line += JsonEscape(tenant);
  line += "\",\"batch\":";
  line += std::to_string(result.batch_id);
  line += ",\"status\":\"";
  line += result.status.ok() ? std::string_view("ok")
                             : StatusCodeToString(result.status.code());
  line += "\",\"total_ms\":";
  line += FormatMs(total_seconds);
  line += ",\"admission_ms\":";
  line += FormatMs(admission_seconds);
  line += ",\"batch_wait_ms\":";
  line += FormatMs(result.batch_wait_seconds);
  line += ",\"fsync_ms\":";
  line += FormatMs(result.fsync_seconds);
  line += ",\"apply_ms\":";
  line += FormatMs(result.apply_seconds);
  line += ",\"store_ms\":";
  line += FormatMs(result.store_seconds);
  line += '}';
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    const double rate =
        static_cast<double>(options_.slow_request_log_max_per_sec);
    if (rate > 0) {
      const auto now = Clock::now();
      const double cap = 2.0 * rate;
      slow_tokens_ += SecondsBetween(slow_refill_, now) * rate;
      if (slow_tokens_ > cap) slow_tokens_ = cap;
      slow_refill_ = now;
      if (slow_tokens_ < 1.0) {
        if (options_.metrics != nullptr) {
          options_.metrics->AddCounter("server.slowlog.dropped");
        }
        return;
      }
      slow_tokens_ -= 1.0;
    }
    std::ostream& out =
        slow_log_to_file_ ? static_cast<std::ostream&>(slow_log_stream_)
                          : std::cerr;
    out << line << '\n';
    out.flush();
  }
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("server.slowlog.count");
  }
}

void Server::AcceptLoop() {
  while (!stop_.load()) {
    Result<UnixSocket> accepted = listener_.AcceptWithTimeout(100);
    ReapFinishedSessions();
    if (!accepted.ok()) {
      if (options_.metrics != nullptr) {
        options_.metrics->AddCounter("server.accept.errors");
      }
      continue;
    }
    if (!accepted->is_open()) continue;  // timeout tick
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.emplace_back();
    Session* session = &sessions_.back();
    session->sock = std::move(*accepted);
    session->worker = std::thread([this, session] { SessionLoop(session); });
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter("server.accept.count");
    }
  }
}

void Server::ReapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->finished.load()) {
      if (it->worker.joinable()) it->worker.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::SessionLoop(Session* session) {
  // Per-session response pipeline: the read loop pushes thunks, the
  // writer evaluates them strictly FIFO and sends the results. A queued
  // commit therefore doesn't block reading the next request — which is
  // what lets one pipelining connection's commits share a batch — while
  // responses still leave in request order. Queue depth is bounded by
  // how far the client pipelines (one thunk per unanswered request).
  std::mutex mu;
  std::condition_variable cv;
  std::deque<ResponseThunk> pending;
  bool done = false;
  std::thread writer([this, session, &mu, &cv, &pending, &done] {
    for (;;) {
      ResponseThunk next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || done; });
        if (pending.empty()) return;  // done and drained
        next = std::move(pending.front());
        pending.pop_front();
      }
      Message response = next();  // may block on a commit outcome
      if (!session->sock.SendFrame(EncodeMessage(response)).ok()) {
        // Peer is gone. Unblock the read loop and bail; any commits
        // still pending are fulfilled by the batcher regardless.
        (void)session->sock.ShutdownBoth();
        return;
      }
    }
  });
  auto enqueue = [&mu, &cv, &pending](ResponseThunk thunk) {
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back(std::move(thunk));
    }
    cv.notify_all();
  };
  bool shutdown = false;
  for (;;) {
    Result<std::string> body =
        session->sock.RecvFrame(options_.max_message_bytes);
    if (!body.ok()) {
      // kNotFound is the peer closing between requests — the normal end
      // of a session. Everything else (EOF mid-frame, CRC mismatch,
      // oversized length prefix) means the stream can no longer be
      // trusted to be frame-aligned: drop the connection, count it.
      if (body.status().code() != StatusCode::kNotFound &&
          options_.metrics != nullptr) {
        options_.metrics->AddCounter("server.recv.errors");
      }
      break;
    }
    Result<Message> request = DecodeMessage(*body, /*expect_request=*/true);
    if (!request.ok()) {
      // The frame itself was CRC-clean, so framing is intact; a
      // malformed message gets an error response and the session lives.
      Message response = ErrorResponse(request.status());
      enqueue([response] { return response; });
      continue;
    }
    if (request->type == MsgType::kShutdown) {
      shutdown = true;
      break;
    }
    enqueue(Handle(*request));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  writer.join();
  if (shutdown) {
    // Acknowledge only after every earlier response was flushed, so the
    // client sees a fully ordered stream, then stop the server.
    (void)session->sock.SendFrame(EncodeMessage(OkMessage()));
    RequestStop();
  }
  (void)session->sock.Close();
  session->finished.store(true);
}

Server::ResponseThunk Server::Handle(const Message& request) {
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("server.requests");
  }
  if (request.type == MsgType::kCommit) {
    return HandleCommitDeferred(request);
  }
  // Request ids are handed out on the read loop for every request type,
  // so for a single serial connection the id sequence — and with it the
  // trace journal — is deterministic.
  const uint64_t rid = next_request_id_.fetch_add(1);
  if (options_.tracer == nullptr && options_.slow_request_ms < 0) {
    // Everything else evaluates lazily on the writer thread, after every
    // commit the connection queued before it.
    return [this, request] { return HandleSync(request); };
  }
  return [this, request, rid] {
    obs::TraceLane lane;
    const std::string_view name = RequestTypeName(request.type);
    if (options_.tracer != nullptr) {
      lane = options_.tracer->Lane(static_cast<uint32_t>(rid), 0, "serve");
      lane.Emit(obs::EventKind::kSpanBegin, name);
    }
    const auto start = Clock::now();
    Message response = HandleSync(request);
    const double total = SecondsBetween(start, Clock::now());
    if (lane.enabled()) lane.Emit(obs::EventKind::kSpanEnd, name);
    MaybeLogSlowRequest(name, TenantOfRequest(request), rid, CommitResult{},
                        0.0, total);
    return response;
  };
}

Message Server::HandleSync(const Message& request) {
  switch (request.type) {
    case MsgType::kOpen: {
      ScopedTimer timer(options_.metrics, "server.open.seconds");
      return HandleOpen(request);
    }
    case MsgType::kCheckout: {
      ScopedTimer timer(options_.metrics, "server.checkout.seconds");
      return HandleCheckout(request);
    }
    case MsgType::kReduce: {
      ScopedTimer timer(options_.metrics, "server.reduce.seconds");
      return HandleReduce(request);
    }
    case MsgType::kIntegrate: {
      ScopedTimer timer(options_.metrics, "server.integrate.seconds");
      return HandleIntegrate(request);
    }
    case MsgType::kAggregate: {
      ScopedTimer timer(options_.metrics, "server.aggregate.seconds");
      return HandleAggregate(request);
    }
    case MsgType::kStat:
      return HandleStat(request);
    case MsgType::kPing:
      return OkMessage(request.a, request.b);
    case MsgType::kShutdown:
      return OkMessage();
    default:
      return ErrorResponse(Status::InvalidArgument("unhandled request type"));
  }
}

Result<Server::Tenant*> Server::GetTenant(const std::string& name,
                                          bool create) {
  if (!ValidTenantName(name)) {
    return Status::InvalidArgument("invalid tenant name: \"" + name + "\"");
  }
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    if (!create) return Status::NotFound("tenant is not open: " + name);
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    // ValidTenantName is a strict subset of the metric-name charset, so
    // these names always pass registration.
    const std::string prefix = "tenant/" + name + "/";
    tenant->m_commit_seconds = prefix + "commit.seconds";
    tenant->m_commit_count = prefix + "commit.count";
    tenant->m_commit_errors = prefix + "commit.errors";
    tenant->m_checkout_seconds = prefix + "checkout.seconds";
    tenant->m_shed_count = prefix + "shed.count";
    tenant->m_requests = prefix + "requests";
    tenant->m_wal_bytes = prefix + "wal.bytes";
    it = tenants_.emplace(name, std::move(tenant)).first;
  }
  if (options_.metrics != nullptr && options_.per_tenant_metrics) {
    options_.metrics->AddCounter(it->second->m_requests);
  }
  return it->second.get();
}

Message Server::HandleOpen(const Message& request) {
  if (request.payload.size() != 2) {
    return ErrorResponse(
        Status::InvalidArgument("open expects [tenant, initial_xml]"));
  }
  Result<Tenant*> tenant = GetTenant(request.payload[0], /*create=*/true);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  const std::string& initial = request.payload[1];
  std::lock_guard<std::mutex> lock((*tenant)->mu);
  if (!(*tenant)->store.has_value()) {
    std::string dir = options_.data_dir + "/" + request.payload[0];
    bool exists = PathExists(dir + "/wal.log");
    if (!exists) {
      if (initial.empty()) {
        return ErrorResponse(Status::NotFound(
            "tenant store does not exist and no initial document was "
            "given: " +
            dir));
      }
      Status init = store::VersionStore::Init(dir, initial, options_.store);
      if (!init.ok()) return ErrorResponse(init);
    } else if (!initial.empty()) {
      return ErrorResponse(Status::InvalidArgument(
          "tenant store already exists; reopen it without an initial "
          "document: " +
          dir));
    }
    Result<store::VersionStore> opened =
        store::VersionStore::Open(dir, options_.store);
    if (!opened.ok()) return ErrorResponse(opened.status());
    (*tenant)->store.emplace(std::move(*opened));
    const uint64_t resident = resident_tenants_.fetch_add(1) + 1;
    (*tenant)->wal_bytes_last = (*tenant)->store->wal_bytes();
    const uint64_t total_bytes =
        total_wal_bytes_.fetch_add((*tenant)->wal_bytes_last) +
        (*tenant)->wal_bytes_last;
    if (options_.metrics != nullptr) {
      options_.metrics->SetGauge("server.tenants.resident",
                                 static_cast<int64_t>(resident));
      options_.metrics->SetGauge("server.wal.bytes",
                                 static_cast<int64_t>(total_bytes));
      if (options_.per_tenant_metrics) {
        options_.metrics->SetGauge(
            (*tenant)->m_wal_bytes,
            static_cast<int64_t>((*tenant)->wal_bytes_last));
      }
    }
    RecordFlight(obs::FlightEventKind::kTenantOpen, (*tenant)->name, 0, 0,
                 resident);
  } else if (!initial.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "tenant is already open; reopen it without an initial document"));
  }
  return OkMessage((*tenant)->store->head());
}

Server::ResponseThunk Server::HandleCommitDeferred(const Message& request) {
  auto ready = [](Message m) {
    return ResponseThunk([m = std::move(m)] { return m; });
  };
  const uint64_t rid = next_request_id_.fetch_add(1);
  const auto recv_tp = Clock::now();
  if (request.payload.size() != 2) {
    return ready(ErrorResponse(
        Status::InvalidArgument("commit expects [tenant, pul_xml]")));
  }
  const std::string& tenant_name = request.payload[0];
  Result<Tenant*> tenant = GetTenant(tenant_name, /*create=*/false);
  if (!tenant.ok()) return ready(ErrorResponse(tenant.status()));
  {
    std::lock_guard<std::mutex> lock((*tenant)->mu);
    if (!(*tenant)->store.has_value()) {
      return ready(
          ErrorResponse(Status::NotFound("tenant is not open: " + tenant_name)));
    }
  }
  Result<pul::Pul> pul = pul::ParsePul(request.payload[1]);
  if (!pul.ok()) return ready(ErrorResponse(pul.status()));
  obs::TraceLane lane;
  if (options_.tracer != nullptr) {
    lane = options_.tracer->Lane(static_cast<uint32_t>(rid), 0, "serve");
    lane.Emit(obs::EventKind::kSpanBegin, "commit.admit", {}, {},
              "tenant=" + tenant_name);
  }
  const auto admit_tp = Clock::now();
  std::future<CommitResult> done;
  uint64_t depth = 0;
  int shed = 0;  // 0 = admitted, 1 = global bound, 2 = tenant quota
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.max_pending) {
      // Explicit load shedding: the client sees kBusy and backs off;
      // an unbounded queue would instead grow latency without limit.
      shed = 1;
      depth = queue_.size();
    } else if (options_.max_pending_per_tenant > 0 &&
               (*tenant)->pending >= options_.max_pending_per_tenant) {
      // Per-tenant shedding: the hot tenant is over its share of the
      // admission queue; everyone else's commits still get through.
      shed = 2;
      depth = queue_.size();
    } else {
      ++(*tenant)->pending;
      CommitJob job;
      job.tenant = *tenant;
      job.request_id = rid;
      job.admit_tp = admit_tp;
      job.pul = std::move(*pul);
      done = job.done.get_future();
      queue_.push_back(std::move(job));
      depth = queue_.size();
      if (options_.metrics != nullptr) {
        options_.metrics->SetGauge("server.queue.depth",
                                   static_cast<int64_t>(depth));
      }
    }
  }
  if (shed != 0) {
    const std::string_view reason = shed == 1 ? "global" : "tenant-quota";
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter("server.busy.count");
      if (shed == 2) options_.metrics->AddCounter("server.busy.tenant_quota");
      if (options_.per_tenant_metrics) {
        options_.metrics->AddCounter((*tenant)->m_shed_count);
      }
    }
    RecordFlight(obs::FlightEventKind::kShed, tenant_name, rid, 0, depth,
                 reason);
    if (lane.enabled()) {
      lane.Emit(obs::EventKind::kNote, "commit.shed", {}, {},
                std::string(reason));
      lane.Emit(obs::EventKind::kSpanEnd, "commit.admit");
    }
    Message busy;
    busy.type = MsgType::kBusy;
    return ready(busy);
  }
  queue_cv_.notify_all();
  RecordFlight(obs::FlightEventKind::kAdmit, tenant_name, rid, 0, depth);
  if (lane.enabled()) lane.Emit(obs::EventKind::kSpanEnd, "commit.admit");
  // The job is admitted; the writer thread blocks here, so the read
  // loop is already free to admit the connection's next commit into the
  // same batch window.
  auto outcome =
      std::make_shared<std::future<CommitResult>>(std::move(done));
  Tenant* tenant_ptr = *tenant;
  return [this, outcome, recv_tp, admit_tp, rid, tenant_ptr, tenant_name] {
    obs::TraceLane respond;
    if (options_.tracer != nullptr) {
      respond = options_.tracer->Lane(static_cast<uint32_t>(rid), 3, "serve");
      respond.Emit(obs::EventKind::kSpanBegin, "commit.respond");
    }
    CommitResult result = outcome->get();
    const double total = SecondsBetween(recv_tp, Clock::now());
    if (options_.metrics != nullptr) {
      options_.metrics->RecordDuration("server.commit.seconds", total);
      if (options_.per_tenant_metrics) {
        options_.metrics->RecordDuration(tenant_ptr->m_commit_seconds, total);
        options_.metrics->AddCounter(result.status.ok()
                                         ? tenant_ptr->m_commit_count
                                         : tenant_ptr->m_commit_errors);
      }
    }
    if (respond.enabled()) {
      respond.Emit(obs::EventKind::kNote, "commit.done", {},
                   result.status.ok()
                       ? "v" + std::to_string(result.version)
                       : std::string(StatusCodeToString(result.status.code())));
      respond.Emit(obs::EventKind::kSpanEnd, "commit.respond");
    }
    MaybeLogSlowRequest("commit", tenant_name, rid, result,
                        SecondsBetween(recv_tp, admit_tp), total);
    if (!result.status.ok()) return ErrorResponse(result.status);
    return OkMessage(result.version);
  };
}

Message Server::HandleCheckout(const Message& request) {
  if (request.payload.size() != 1) {
    return ErrorResponse(Status::InvalidArgument(
        "checkout expects [tenant] with a = version (b = 1 for head)"));
  }
  Result<Tenant*> tenant = GetTenant(request.payload[0], /*create=*/false);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  ScopedTimer tenant_timer(
      options_.per_tenant_metrics ? options_.metrics : nullptr,
      (*tenant)->m_checkout_seconds);
  std::lock_guard<std::mutex> lock((*tenant)->mu);
  if (!(*tenant)->store.has_value()) {
    return ErrorResponse(
        Status::NotFound("tenant is not open: " + request.payload[0]));
  }
  uint64_t version =
      request.b == 1 ? (*tenant)->store->head() : request.a;
  Result<std::string> xml = (*tenant)->store->CheckoutXml(version);
  if (!xml.ok()) return ErrorResponse(xml.status());
  return OkMessage(version, 0, {std::move(*xml)});
}

int Server::ClampParallelism(uint64_t requested) const {
  if (requested == 0) return 1;
  uint64_t cap = options_.max_parallelism > 0
                     ? static_cast<uint64_t>(options_.max_parallelism)
                     : 1;
  return static_cast<int>(requested < cap ? requested : cap);
}

Message Server::HandleReduce(const Message& request) {
  if (request.payload.size() != 2) {
    return ErrorResponse(
        Status::InvalidArgument("reduce expects [pul_xml, mode]"));
  }
  Result<pul::Pul> pul = pul::ParsePul(request.payload[0]);
  if (!pul.ok()) return ErrorResponse(pul.status());
  core::ReduceOptions options;
  const std::string& mode = request.payload[1];
  if (mode == "plain") {
    options.mode = core::ReduceMode::kPlain;
  } else if (mode == "deterministic" || mode.empty()) {
    options.mode = core::ReduceMode::kDeterministic;
  } else if (mode == "canonical") {
    options.mode = core::ReduceMode::kCanonical;
  } else {
    return ErrorResponse(Status::InvalidArgument(
        "reduce mode must be plain|deterministic|canonical, got \"" + mode +
        "\""));
  }
  options.parallelism = ClampParallelism(request.a);
  options.metrics = options_.metrics;
  Result<pul::Pul> reduced = core::Reduce(*pul, options);
  if (!reduced.ok()) return ErrorResponse(reduced.status());
  Result<std::string> xml = pul::SerializePul(*reduced);
  if (!xml.ok()) return ErrorResponse(xml.status());
  return OkMessage(0, 0, {std::move(*xml)});
}

Message Server::HandleIntegrate(const Message& request) {
  if (request.payload.size() < 2) {
    return ErrorResponse(
        Status::InvalidArgument("integrate expects at least two PULs"));
  }
  std::vector<pul::Pul> puls;
  puls.reserve(request.payload.size());
  for (const std::string& text : request.payload) {
    Result<pul::Pul> pul = pul::ParsePul(text);
    if (!pul.ok()) return ErrorResponse(pul.status());
    puls.push_back(std::move(*pul));
  }
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : puls) ptrs.push_back(&pul);
  core::IntegrateOptions options;
  options.parallelism = ClampParallelism(request.a);
  options.metrics = options_.metrics;
  Result<core::IntegrationResult> result = core::Integrate(ptrs, options);
  if (!result.ok()) return ErrorResponse(result.status());
  Result<std::string> xml = pul::SerializePul(result->merged);
  if (!xml.ok()) return ErrorResponse(xml.status());
  return OkMessage(result->conflicts.size(), 0, {std::move(*xml)});
}

Message Server::HandleAggregate(const Message& request) {
  if (request.payload.size() < 2) {
    return ErrorResponse(
        Status::InvalidArgument("aggregate expects at least two PULs"));
  }
  std::vector<pul::Pul> puls;
  puls.reserve(request.payload.size());
  for (const std::string& text : request.payload) {
    Result<pul::Pul> pul = pul::ParsePul(text);
    if (!pul.ok()) return ErrorResponse(pul.status());
    puls.push_back(std::move(*pul));
  }
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : puls) ptrs.push_back(&pul);
  core::AggregateOptions options;
  options.metrics = options_.metrics;
  Result<pul::Pul> aggregate = core::Aggregate(ptrs, options);
  if (!aggregate.ok()) return ErrorResponse(aggregate.status());
  Result<std::string> xml = pul::SerializePul(*aggregate);
  if (!xml.ok()) return ErrorResponse(xml.status());
  return OkMessage(0, 0, {std::move(*xml)});
}

Message Server::HandleStat(const Message& request) {
  const uint64_t seq = stat_seq_.fetch_add(1) + 1;
  MetricsSnapshot snapshot;
  if (options_.metrics != nullptr) snapshot = options_.metrics->Snapshot();
  std::string json = BuildStatJson(snapshot, seq, uptime_ms());
  if (request.payload.empty()) {
    return OkMessage(0, kStatVersion, {std::move(json)});
  }
  if (request.payload.size() != 1) {
    return ErrorResponse(
        Status::InvalidArgument("stat expects [] or [tenant]"));
  }
  Result<Tenant*> tenant = GetTenant(request.payload[0], /*create=*/false);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  std::lock_guard<std::mutex> lock((*tenant)->mu);
  if (!(*tenant)->store.has_value()) {
    return ErrorResponse(
        Status::NotFound("tenant is not open: " + request.payload[0]));
  }
  return OkMessage((*tenant)->store->head(), kStatVersion, {std::move(json)});
}

void Server::BatcherLoop() {
  for (;;) {
    std::deque<CommitJob> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return batcher_stop_.load() || !queue_.empty();
      });
      if (queue_.empty()) {
        // batcher_stop_ is only set after every session thread is
        // joined, so an empty queue here means no commit can still be
        // in flight — safe to exit.
        if (batcher_stop_.load()) return;
        continue;
      }
      if (options_.commit_window_ms > 0 && !batcher_stop_.load()) {
        // Hold the batch open briefly so concurrent committers pile in;
        // they enqueue freely because wait_for releases the lock.
        queue_cv_.wait_for(lock, milliseconds(options_.commit_window_ms),
                           [this] { return batcher_stop_.load(); });
      }
      batch.swap(queue_);
      // The swapped jobs stop counting against their tenants' admission
      // quotas: they are the batcher's now, and the point of the quota
      // is bounding what still waits in the queue.
      for (const CommitJob& job : batch) {
        if (job.tenant->pending > 0) --job.tenant->pending;
      }
      if (options_.metrics != nullptr) {
        options_.metrics->SetGauge("server.queue.depth",
                                   static_cast<int64_t>(queue_.size()));
      }
    }
    RunBatch(std::move(batch));
  }
}

void Server::RunBatch(std::deque<CommitJob> batch) {
  if (batch.empty()) return;
  const uint64_t batch_id = next_batch_id_.fetch_add(1);
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("server.batch.count");
    options_.metrics->AddCounter("server.batch.jobs", batch.size());
    options_.metrics->SetGauge("server.batch.window.occupancy",
                               static_cast<int64_t>(batch.size()));
  }
  RecordFlight(obs::FlightEventKind::kBatchSeal, {}, 0, batch_id,
               batch.size());
  if (options_.tracer != nullptr) {
    // One seal note per job on its batcher lane. The note carries no
    // batch id: request-to-batch assignment is timing-dependent under
    // pipelining, and the journal must stay deterministic for serial
    // single-connection workloads (where every batch has one job).
    for (const CommitJob& job : batch) {
      obs::TraceLane lane = options_.tracer->Lane(
          static_cast<uint32_t>(job.request_id), 1, "serve");
      lane.Emit(obs::EventKind::kNote, "batch.sealed");
    }
  }
  // Group by tenant, preserving each tenant's arrival order, so one
  // CommitBatch (= one fsync) covers all of a tenant's queued commits.
  std::vector<Tenant*> order;
  std::map<Tenant*, std::vector<CommitJob*>> groups;
  for (CommitJob& job : batch) {
    auto [it, inserted] = groups.try_emplace(job.tenant);
    if (inserted) order.push_back(job.tenant);
    it->second.push_back(&job);
  }
  if (options_.schema == nullptr) {
    for (Tenant* tenant : order) {
      CommitGroup(tenant, groups[tenant], batch_id);
    }
    return;
  }

  // Schema router: type-check each tenant group. A group whose queued
  // PULs are pairwise proven independent at the type level — trivially
  // true for a single commit — needs no conflict detection and joins
  // the concurrent wave (distinct tenants own distinct stores, and
  // CommitBatch preserves the group's internal order, so the wave
  // commutes with the sequential path byte for byte). Groups the tier
  // cannot prove fall back to the sequential path.
  std::vector<Tenant*> routed;
  std::vector<Tenant*> fallback;
  for (Tenant* tenant : order) {
    const std::vector<CommitJob*>& jobs = groups[tenant];
    bool proven = true;
    if (jobs.size() > 1) {
      std::vector<schema::TypeSummary> summaries;
      summaries.reserve(jobs.size());
      for (const CommitJob* job : jobs) {
        summaries.push_back(
            schema::InferTouchedTypes(*options_.schema, job->pul));
      }
      for (size_t i = 0; i < summaries.size() && proven; ++i) {
        for (size_t j = i + 1; j < summaries.size(); ++j) {
          if (schema::DecideIndependence(summaries[i], summaries[j]) !=
              schema::SchemaVerdict::kProvenIndependent) {
            proven = false;
            break;
          }
        }
      }
    }
    (proven ? routed : fallback).push_back(tenant);
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter(
          proven ? "server.schema.routed" : "server.schema.fallback",
          jobs.size());
    }
    RecordFlight(proven ? obs::FlightEventKind::kSchemaRoute
                        : obs::FlightEventKind::kSchemaFallback,
                 tenant->name, 0, batch_id, jobs.size());
  }
  if (routed.size() <= 1) {
    for (Tenant* tenant : routed) CommitGroup(tenant, groups[tenant], batch_id);
  } else {
    size_t workers = routed.size();
    if (options_.max_parallelism > 0 &&
        workers > static_cast<size_t>(options_.max_parallelism)) {
      workers = static_cast<size_t>(options_.max_parallelism);
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([this, &routed, &groups, &next, batch_id] {
        for (;;) {
          size_t i = next.fetch_add(1);
          if (i >= routed.size()) return;
          CommitGroup(routed[i], groups[routed[i]], batch_id);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (Tenant* tenant : fallback) CommitGroup(tenant, groups[tenant], batch_id);
}

void Server::CommitGroup(Tenant* tenant, const std::vector<CommitJob*>& jobs,
                         uint64_t batch_id) {
  const auto start = Clock::now();
  // One commit-stage lane per job: each (request id, lane 2) pair is
  // touched only by this thread, so the seq discipline holds even when
  // the schema router runs groups concurrently.
  std::vector<obs::TraceLane> lanes;
  if (options_.tracer != nullptr) {
    lanes.reserve(jobs.size());
    for (const CommitJob* job : jobs) {
      lanes.push_back(options_.tracer->Lane(
          static_cast<uint32_t>(job->request_id), 2, "serve"));
      lanes.back().Emit(obs::EventKind::kSpanBegin, "commit.store");
    }
  }
  auto finish_lanes = [&lanes](const std::vector<store::CommitOutcome>& out) {
    for (size_t i = 0; i < lanes.size(); ++i) {
      lanes[i].Emit(
          obs::EventKind::kSpanEnd, "commit.store", {},
          i < out.size() && out[i].status.ok()
              ? "v" + std::to_string(out[i].version)
              : std::string(StatusCodeToString(
                    i < out.size() ? out[i].status.code()
                                   : StatusCode::kInternal)));
    }
  };
  std::lock_guard<std::mutex> lock(tenant->mu);
  if (!tenant->store.has_value()) {
    std::vector<store::CommitOutcome> outcomes(
        jobs.size(),
        store::CommitOutcome{Status::NotFound("tenant is not open"), 0});
    for (size_t i = 0; i < jobs.size(); ++i) {
      CommitResult result;
      result.status = outcomes[i].status;
      result.batch_id = batch_id;
      result.batch_wait_seconds = SecondsBetween(jobs[i]->admit_tp, start);
      jobs[i]->done.set_value(std::move(result));
    }
    finish_lanes(outcomes);
    return;
  }
  std::vector<const pul::Pul*> puls;
  puls.reserve(jobs.size());
  for (CommitJob* job : jobs) puls.push_back(&job->pul);
  std::vector<store::CommitOutcome> outcomes;
  store::BatchCommitStats stats;
  Result<size_t> committed =
      tenant->store->CommitBatch(puls, &outcomes, &stats);
  const double store_seconds = SecondsBetween(start, Clock::now());
  if (!committed.ok() && outcomes.size() != jobs.size()) {
    outcomes.assign(jobs.size(),
                    store::CommitOutcome{committed.status(), 0});
  }
  // Telemetry lands before the promises are fulfilled: once a client
  // holds its ack, the flight window and gauges already reflect that
  // commit (and a quiesced client implies a quiesced recorder).
  if (committed.ok()) {
    RecordFlight(obs::FlightEventKind::kFsyncOk, tenant->name, 0, batch_id,
                 jobs.size());
    RecordFlight(obs::FlightEventKind::kApply, tenant->name, 0, batch_id,
                 *committed);
    // Refresh the WAL-size gauges (tenant->mu is still held, so
    // wal_bytes_last updates are ordered; checkpoints can shrink the
    // journal, hence the signed adjustment of the global total).
    const uint64_t now_bytes = tenant->store->wal_bytes();
    const uint64_t prev_bytes = tenant->wal_bytes_last;
    tenant->wal_bytes_last = now_bytes;
    uint64_t total_bytes;
    if (now_bytes >= prev_bytes) {
      total_bytes = total_wal_bytes_.fetch_add(now_bytes - prev_bytes) +
                    (now_bytes - prev_bytes);
    } else {
      total_bytes = total_wal_bytes_.fetch_sub(prev_bytes - now_bytes) -
                    (prev_bytes - now_bytes);
    }
    if (options_.metrics != nullptr) {
      options_.metrics->SetGauge("server.wal.bytes",
                                 static_cast<int64_t>(total_bytes));
      if (options_.per_tenant_metrics) {
        options_.metrics->SetGauge(tenant->m_wal_bytes,
                                   static_cast<int64_t>(now_bytes));
      }
    }
  } else {
    RecordFlight(obs::FlightEventKind::kFsyncFail, tenant->name, 0, batch_id,
                 jobs.size(), committed.status().message());
    if (committed.status().code() == StatusCode::kIoError) {
      // The store just poisoned its WAL: preserve the event window that
      // led here while it is still fresh.
      RecordFlight(obs::FlightEventKind::kWalPoison, tenant->name, 0,
                   batch_id, 0, committed.status().message());
      (void)DumpFlightRecorder();
    }
  }
  for (size_t i = 0; i < jobs.size(); ++i) {
    CommitResult result;
    result.status = outcomes[i].status;
    result.version = outcomes[i].version;
    result.batch_id = batch_id;
    result.batch_wait_seconds = SecondsBetween(jobs[i]->admit_tp, start);
    result.fsync_seconds = stats.fsync_seconds;
    result.apply_seconds = stats.apply_seconds;
    result.store_seconds = store_seconds;
    jobs[i]->done.set_value(std::move(result));
  }
  finish_lanes(outcomes);
}

}  // namespace xupdate::server
