#include "server/server.h"

#include <chrono>
#include <utility>

#include "common/file_io.h"
#include "core/aggregate.h"
#include "core/integrate.h"
#include "core/reduce.h"
#include "pul/pul_io.h"
#include "schema/summary.h"

namespace xupdate::server {

namespace {

using std::chrono::milliseconds;

Message OkMessage(uint64_t a = 0, uint64_t b = 0,
                  std::vector<std::string> payload = {}) {
  Message msg;
  msg.type = MsgType::kOk;
  msg.a = a;
  msg.b = b;
  msg.payload = std::move(payload);
  return msg;
}

}  // namespace

Server::Server(const ServerOptions& options) : options_(options) {}

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("server needs a socket path");
  }
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("server needs a data directory");
  }
  XUPDATE_RETURN_IF_ERROR(EnsureDirectory(options.data_dir));
  std::unique_ptr<Server> server(new Server(options));
  // Per-tenant stores share the server's metrics registry (it is
  // thread-safe); the tracer is not, so stores run untraced here.
  server->options_.store.metrics = options.metrics;
  server->options_.store.tracer = nullptr;
  XUPDATE_ASSIGN_OR_RETURN(server->listener_,
                           UnixListener::Bind(options.socket_path));
  server->accept_thread_ =
      std::thread([s = server.get()] { s->AcceptLoop(); });
  server->batcher_thread_ =
      std::thread([s = server.get()] { s->BatcherLoop(); });
  return server;
}

Server::~Server() { (void)Stop(); }

void Server::Wait(const std::atomic<bool>* external_stop) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_.load() && !stop_.load() &&
         (external_stop == nullptr || !external_stop->load())) {
    stop_cv_.wait_for(lock, milliseconds(100));
  }
}

void Server::RequestStop() {
  stop_requested_.store(true);
  stop_cv_.notify_all();
}

Status Server::Stop() {
  // Serialize concurrent Stop() calls (destructor vs. owner).
  std::lock_guard<std::mutex> stop_call(stop_call_mu_);
  if (stopped_) return Status::OK();
  stop_.store(true);
  stop_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock every session's recv. In-flight requests still finish —
  // including commits waiting on the batcher, which keeps running
  // until all sessions are joined (a commit whose promise is never
  // fulfilled would deadlock the join).
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (Session& session : sessions_) (void)session.sock.ShutdownBoth();
  }
  // The accept thread (the only other mutator of sessions_) is joined,
  // so iterating without the lock is safe — and necessary: joining
  // under sessions_mu_ could deadlock if a session path ever needed it.
  for (Session& session : sessions_) {
    if (session.worker.joinable()) session.worker.join();
  }
  batcher_stop_.store(true);
  queue_cv_.notify_all();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  Status worst = listener_.Close();
  std::lock_guard<std::mutex> tenants_lock(tenants_mu_);
  for (auto& [name, tenant] : tenants_) {
    std::lock_guard<std::mutex> lock(tenant->mu);
    if (tenant->store.has_value()) {
      Status closed = tenant->store->Close();
      if (worst.ok() && !closed.ok()) worst = closed;
    }
  }
  stopped_ = true;
  return worst;
}

void Server::AcceptLoop() {
  while (!stop_.load()) {
    Result<UnixSocket> accepted = listener_.AcceptWithTimeout(100);
    ReapFinishedSessions();
    if (!accepted.ok()) {
      if (options_.metrics != nullptr) {
        options_.metrics->AddCounter("server.accept.errors");
      }
      continue;
    }
    if (!accepted->is_open()) continue;  // timeout tick
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.emplace_back();
    Session* session = &sessions_.back();
    session->sock = std::move(*accepted);
    session->worker = std::thread([this, session] { SessionLoop(session); });
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter("server.accept.count");
    }
  }
}

void Server::ReapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->finished.load()) {
      if (it->worker.joinable()) it->worker.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::SessionLoop(Session* session) {
  // Per-session response pipeline: the read loop pushes thunks, the
  // writer evaluates them strictly FIFO and sends the results. A queued
  // commit therefore doesn't block reading the next request — which is
  // what lets one pipelining connection's commits share a batch — while
  // responses still leave in request order. Queue depth is bounded by
  // how far the client pipelines (one thunk per unanswered request).
  std::mutex mu;
  std::condition_variable cv;
  std::deque<ResponseThunk> pending;
  bool done = false;
  std::thread writer([this, session, &mu, &cv, &pending, &done] {
    for (;;) {
      ResponseThunk next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || done; });
        if (pending.empty()) return;  // done and drained
        next = std::move(pending.front());
        pending.pop_front();
      }
      Message response = next();  // may block on a commit outcome
      if (!session->sock.SendFrame(EncodeMessage(response)).ok()) {
        // Peer is gone. Unblock the read loop and bail; any commits
        // still pending are fulfilled by the batcher regardless.
        (void)session->sock.ShutdownBoth();
        return;
      }
    }
  });
  auto enqueue = [&mu, &cv, &pending](ResponseThunk thunk) {
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back(std::move(thunk));
    }
    cv.notify_all();
  };
  bool shutdown = false;
  for (;;) {
    Result<std::string> body =
        session->sock.RecvFrame(options_.max_message_bytes);
    if (!body.ok()) {
      // kNotFound is the peer closing between requests — the normal end
      // of a session. Everything else (EOF mid-frame, CRC mismatch,
      // oversized length prefix) means the stream can no longer be
      // trusted to be frame-aligned: drop the connection, count it.
      if (body.status().code() != StatusCode::kNotFound &&
          options_.metrics != nullptr) {
        options_.metrics->AddCounter("server.recv.errors");
      }
      break;
    }
    Result<Message> request = DecodeMessage(*body, /*expect_request=*/true);
    if (!request.ok()) {
      // The frame itself was CRC-clean, so framing is intact; a
      // malformed message gets an error response and the session lives.
      Message response = ErrorResponse(request.status());
      enqueue([response] { return response; });
      continue;
    }
    if (request->type == MsgType::kShutdown) {
      shutdown = true;
      break;
    }
    enqueue(Handle(*request));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  writer.join();
  if (shutdown) {
    // Acknowledge only after every earlier response was flushed, so the
    // client sees a fully ordered stream, then stop the server.
    (void)session->sock.SendFrame(EncodeMessage(OkMessage()));
    RequestStop();
  }
  (void)session->sock.Close();
  session->finished.store(true);
}

Server::ResponseThunk Server::Handle(const Message& request) {
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("server.requests");
  }
  if (request.type == MsgType::kCommit) {
    return HandleCommitDeferred(request);
  }
  // Everything else evaluates lazily on the writer thread, after every
  // commit the connection queued before it.
  return [this, request] { return HandleSync(request); };
}

Message Server::HandleSync(const Message& request) {
  switch (request.type) {
    case MsgType::kOpen: {
      ScopedTimer timer(options_.metrics, "server.open.seconds");
      return HandleOpen(request);
    }
    case MsgType::kCheckout: {
      ScopedTimer timer(options_.metrics, "server.checkout.seconds");
      return HandleCheckout(request);
    }
    case MsgType::kReduce: {
      ScopedTimer timer(options_.metrics, "server.reduce.seconds");
      return HandleReduce(request);
    }
    case MsgType::kIntegrate: {
      ScopedTimer timer(options_.metrics, "server.integrate.seconds");
      return HandleIntegrate(request);
    }
    case MsgType::kAggregate: {
      ScopedTimer timer(options_.metrics, "server.aggregate.seconds");
      return HandleAggregate(request);
    }
    case MsgType::kStat:
      return HandleStat(request);
    case MsgType::kPing:
      return OkMessage(request.a, request.b);
    case MsgType::kShutdown:
      return OkMessage();
    default:
      return ErrorResponse(Status::InvalidArgument("unhandled request type"));
  }
}

Result<Server::Tenant*> Server::GetTenant(const std::string& name,
                                          bool create) {
  if (!ValidTenantName(name)) {
    return Status::InvalidArgument("invalid tenant name: \"" + name + "\"");
  }
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    if (!create) return Status::NotFound("tenant is not open: " + name);
    it = tenants_.emplace(name, std::make_unique<Tenant>()).first;
  }
  return it->second.get();
}

Message Server::HandleOpen(const Message& request) {
  if (request.payload.size() != 2) {
    return ErrorResponse(
        Status::InvalidArgument("open expects [tenant, initial_xml]"));
  }
  Result<Tenant*> tenant = GetTenant(request.payload[0], /*create=*/true);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  const std::string& initial = request.payload[1];
  std::lock_guard<std::mutex> lock((*tenant)->mu);
  if (!(*tenant)->store.has_value()) {
    std::string dir = options_.data_dir + "/" + request.payload[0];
    bool exists = PathExists(dir + "/wal.log");
    if (!exists) {
      if (initial.empty()) {
        return ErrorResponse(Status::NotFound(
            "tenant store does not exist and no initial document was "
            "given: " +
            dir));
      }
      Status init = store::VersionStore::Init(dir, initial, options_.store);
      if (!init.ok()) return ErrorResponse(init);
    } else if (!initial.empty()) {
      return ErrorResponse(Status::InvalidArgument(
          "tenant store already exists; reopen it without an initial "
          "document: " +
          dir));
    }
    Result<store::VersionStore> opened =
        store::VersionStore::Open(dir, options_.store);
    if (!opened.ok()) return ErrorResponse(opened.status());
    (*tenant)->store.emplace(std::move(*opened));
  } else if (!initial.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "tenant is already open; reopen it without an initial document"));
  }
  return OkMessage((*tenant)->store->head());
}

Server::ResponseThunk Server::HandleCommitDeferred(const Message& request) {
  auto ready = [](Message m) {
    return ResponseThunk([m = std::move(m)] { return m; });
  };
  if (request.payload.size() != 2) {
    return ready(ErrorResponse(
        Status::InvalidArgument("commit expects [tenant, pul_xml]")));
  }
  Result<Tenant*> tenant = GetTenant(request.payload[0], /*create=*/false);
  if (!tenant.ok()) return ready(ErrorResponse(tenant.status()));
  {
    std::lock_guard<std::mutex> lock((*tenant)->mu);
    if (!(*tenant)->store.has_value()) {
      return ready(ErrorResponse(
          Status::NotFound("tenant is not open: " + request.payload[0])));
    }
  }
  Result<pul::Pul> pul = pul::ParsePul(request.payload[1]);
  if (!pul.ok()) return ready(ErrorResponse(pul.status()));
  std::future<std::pair<Status, uint64_t>> done;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.max_pending) {
      // Explicit load shedding: the client sees kBusy and backs off;
      // an unbounded queue would instead grow latency without limit.
      if (options_.metrics != nullptr) {
        options_.metrics->AddCounter("server.busy.count");
      }
      Message busy;
      busy.type = MsgType::kBusy;
      return ready(busy);
    }
    if (options_.max_pending_per_tenant > 0 &&
        (*tenant)->pending >= options_.max_pending_per_tenant) {
      // Per-tenant shedding: the hot tenant is over its share of the
      // admission queue; everyone else's commits still get through.
      if (options_.metrics != nullptr) {
        options_.metrics->AddCounter("server.busy.count");
        options_.metrics->AddCounter("server.busy.tenant_quota");
      }
      Message busy;
      busy.type = MsgType::kBusy;
      return ready(busy);
    }
    ++(*tenant)->pending;
    CommitJob job;
    job.tenant = *tenant;
    job.pul = std::move(*pul);
    done = job.done.get_future();
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_all();
  // The job is admitted; the writer thread blocks here, so the read
  // loop is already free to admit the connection's next commit into the
  // same batch window.
  auto outcome =
      std::make_shared<std::future<std::pair<Status, uint64_t>>>(
          std::move(done));
  auto start = std::chrono::steady_clock::now();
  Metrics* metrics = options_.metrics;
  return [outcome, start, metrics] {
    std::pair<Status, uint64_t> result = outcome->get();
    if (metrics != nullptr) {
      metrics->RecordDuration(
          "server.commit.seconds",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    }
    if (!result.first.ok()) return ErrorResponse(result.first);
    return OkMessage(result.second);
  };
}

Message Server::HandleCheckout(const Message& request) {
  if (request.payload.size() != 1) {
    return ErrorResponse(Status::InvalidArgument(
        "checkout expects [tenant] with a = version (b = 1 for head)"));
  }
  Result<Tenant*> tenant = GetTenant(request.payload[0], /*create=*/false);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  std::lock_guard<std::mutex> lock((*tenant)->mu);
  if (!(*tenant)->store.has_value()) {
    return ErrorResponse(
        Status::NotFound("tenant is not open: " + request.payload[0]));
  }
  uint64_t version =
      request.b == 1 ? (*tenant)->store->head() : request.a;
  Result<std::string> xml = (*tenant)->store->CheckoutXml(version);
  if (!xml.ok()) return ErrorResponse(xml.status());
  return OkMessage(version, 0, {std::move(*xml)});
}

int Server::ClampParallelism(uint64_t requested) const {
  if (requested == 0) return 1;
  uint64_t cap = options_.max_parallelism > 0
                     ? static_cast<uint64_t>(options_.max_parallelism)
                     : 1;
  return static_cast<int>(requested < cap ? requested : cap);
}

Message Server::HandleReduce(const Message& request) {
  if (request.payload.size() != 2) {
    return ErrorResponse(
        Status::InvalidArgument("reduce expects [pul_xml, mode]"));
  }
  Result<pul::Pul> pul = pul::ParsePul(request.payload[0]);
  if (!pul.ok()) return ErrorResponse(pul.status());
  core::ReduceOptions options;
  const std::string& mode = request.payload[1];
  if (mode == "plain") {
    options.mode = core::ReduceMode::kPlain;
  } else if (mode == "deterministic" || mode.empty()) {
    options.mode = core::ReduceMode::kDeterministic;
  } else if (mode == "canonical") {
    options.mode = core::ReduceMode::kCanonical;
  } else {
    return ErrorResponse(Status::InvalidArgument(
        "reduce mode must be plain|deterministic|canonical, got \"" + mode +
        "\""));
  }
  options.parallelism = ClampParallelism(request.a);
  options.metrics = options_.metrics;
  Result<pul::Pul> reduced = core::Reduce(*pul, options);
  if (!reduced.ok()) return ErrorResponse(reduced.status());
  Result<std::string> xml = pul::SerializePul(*reduced);
  if (!xml.ok()) return ErrorResponse(xml.status());
  return OkMessage(0, 0, {std::move(*xml)});
}

Message Server::HandleIntegrate(const Message& request) {
  if (request.payload.size() < 2) {
    return ErrorResponse(
        Status::InvalidArgument("integrate expects at least two PULs"));
  }
  std::vector<pul::Pul> puls;
  puls.reserve(request.payload.size());
  for (const std::string& text : request.payload) {
    Result<pul::Pul> pul = pul::ParsePul(text);
    if (!pul.ok()) return ErrorResponse(pul.status());
    puls.push_back(std::move(*pul));
  }
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : puls) ptrs.push_back(&pul);
  core::IntegrateOptions options;
  options.parallelism = ClampParallelism(request.a);
  options.metrics = options_.metrics;
  Result<core::IntegrationResult> result = core::Integrate(ptrs, options);
  if (!result.ok()) return ErrorResponse(result.status());
  Result<std::string> xml = pul::SerializePul(result->merged);
  if (!xml.ok()) return ErrorResponse(xml.status());
  return OkMessage(result->conflicts.size(), 0, {std::move(*xml)});
}

Message Server::HandleAggregate(const Message& request) {
  if (request.payload.size() < 2) {
    return ErrorResponse(
        Status::InvalidArgument("aggregate expects at least two PULs"));
  }
  std::vector<pul::Pul> puls;
  puls.reserve(request.payload.size());
  for (const std::string& text : request.payload) {
    Result<pul::Pul> pul = pul::ParsePul(text);
    if (!pul.ok()) return ErrorResponse(pul.status());
    puls.push_back(std::move(*pul));
  }
  std::vector<const pul::Pul*> ptrs;
  for (const pul::Pul& pul : puls) ptrs.push_back(&pul);
  core::AggregateOptions options;
  options.metrics = options_.metrics;
  Result<pul::Pul> aggregate = core::Aggregate(ptrs, options);
  if (!aggregate.ok()) return ErrorResponse(aggregate.status());
  Result<std::string> xml = pul::SerializePul(*aggregate);
  if (!xml.ok()) return ErrorResponse(xml.status());
  return OkMessage(0, 0, {std::move(*xml)});
}

Message Server::HandleStat(const Message& request) {
  std::string json =
      options_.metrics != nullptr ? options_.metrics->ToJson() : "{}";
  if (request.payload.empty()) {
    return OkMessage(0, 0, {std::move(json)});
  }
  if (request.payload.size() != 1) {
    return ErrorResponse(
        Status::InvalidArgument("stat expects [] or [tenant]"));
  }
  Result<Tenant*> tenant = GetTenant(request.payload[0], /*create=*/false);
  if (!tenant.ok()) return ErrorResponse(tenant.status());
  std::lock_guard<std::mutex> lock((*tenant)->mu);
  if (!(*tenant)->store.has_value()) {
    return ErrorResponse(
        Status::NotFound("tenant is not open: " + request.payload[0]));
  }
  return OkMessage((*tenant)->store->head(), 0, {std::move(json)});
}

void Server::BatcherLoop() {
  for (;;) {
    std::deque<CommitJob> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return batcher_stop_.load() || !queue_.empty();
      });
      if (queue_.empty()) {
        // batcher_stop_ is only set after every session thread is
        // joined, so an empty queue here means no commit can still be
        // in flight — safe to exit.
        if (batcher_stop_.load()) return;
        continue;
      }
      if (options_.commit_window_ms > 0 && !batcher_stop_.load()) {
        // Hold the batch open briefly so concurrent committers pile in;
        // they enqueue freely because wait_for releases the lock.
        queue_cv_.wait_for(lock, milliseconds(options_.commit_window_ms),
                           [this] { return batcher_stop_.load(); });
      }
      batch.swap(queue_);
      // The swapped jobs stop counting against their tenants' admission
      // quotas: they are the batcher's now, and the point of the quota
      // is bounding what still waits in the queue.
      for (const CommitJob& job : batch) {
        if (job.tenant->pending > 0) --job.tenant->pending;
      }
    }
    RunBatch(std::move(batch));
  }
}

void Server::RunBatch(std::deque<CommitJob> batch) {
  if (batch.empty()) return;
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("server.batch.count");
    options_.metrics->AddCounter("server.batch.jobs", batch.size());
  }
  // Group by tenant, preserving each tenant's arrival order, so one
  // CommitBatch (= one fsync) covers all of a tenant's queued commits.
  std::vector<Tenant*> order;
  std::map<Tenant*, std::vector<CommitJob*>> groups;
  for (CommitJob& job : batch) {
    auto [it, inserted] = groups.try_emplace(job.tenant);
    if (inserted) order.push_back(job.tenant);
    it->second.push_back(&job);
  }
  if (options_.schema == nullptr) {
    for (Tenant* tenant : order) {
      CommitGroup(tenant, groups[tenant]);
    }
    return;
  }

  // Schema router: type-check each tenant group. A group whose queued
  // PULs are pairwise proven independent at the type level — trivially
  // true for a single commit — needs no conflict detection and joins
  // the concurrent wave (distinct tenants own distinct stores, and
  // CommitBatch preserves the group's internal order, so the wave
  // commutes with the sequential path byte for byte). Groups the tier
  // cannot prove fall back to the sequential path.
  std::vector<Tenant*> routed;
  std::vector<Tenant*> fallback;
  for (Tenant* tenant : order) {
    const std::vector<CommitJob*>& jobs = groups[tenant];
    bool proven = true;
    if (jobs.size() > 1) {
      std::vector<schema::TypeSummary> summaries;
      summaries.reserve(jobs.size());
      for (const CommitJob* job : jobs) {
        summaries.push_back(
            schema::InferTouchedTypes(*options_.schema, job->pul));
      }
      for (size_t i = 0; i < summaries.size() && proven; ++i) {
        for (size_t j = i + 1; j < summaries.size(); ++j) {
          if (schema::DecideIndependence(summaries[i], summaries[j]) !=
              schema::SchemaVerdict::kProvenIndependent) {
            proven = false;
            break;
          }
        }
      }
    }
    (proven ? routed : fallback).push_back(tenant);
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter(
          proven ? "server.schema.routed" : "server.schema.fallback",
          jobs.size());
    }
  }
  if (routed.size() <= 1) {
    for (Tenant* tenant : routed) CommitGroup(tenant, groups[tenant]);
  } else {
    size_t workers = routed.size();
    if (options_.max_parallelism > 0 &&
        workers > static_cast<size_t>(options_.max_parallelism)) {
      workers = static_cast<size_t>(options_.max_parallelism);
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([this, &routed, &groups, &next] {
        for (;;) {
          size_t i = next.fetch_add(1);
          if (i >= routed.size()) return;
          CommitGroup(routed[i], groups[routed[i]]);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (Tenant* tenant : fallback) CommitGroup(tenant, groups[tenant]);
}

void Server::CommitGroup(Tenant* tenant,
                         const std::vector<CommitJob*>& jobs) {
  std::lock_guard<std::mutex> lock(tenant->mu);
  if (!tenant->store.has_value()) {
    for (CommitJob* job : jobs) {
      job->done.set_value({Status::NotFound("tenant is not open"), 0});
    }
    return;
  }
  std::vector<const pul::Pul*> puls;
  puls.reserve(jobs.size());
  for (CommitJob* job : jobs) puls.push_back(&job->pul);
  std::vector<store::CommitOutcome> outcomes;
  Result<size_t> committed = tenant->store->CommitBatch(puls, &outcomes);
  if (!committed.ok() && outcomes.size() != jobs.size()) {
    outcomes.assign(jobs.size(),
                    store::CommitOutcome{committed.status(), 0});
  }
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i]->done.set_value({outcomes[i].status, outcomes[i].version});
  }
}

}  // namespace xupdate::server
