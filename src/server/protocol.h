#ifndef XUPDATE_SERVER_PROTOCOL_H_
#define XUPDATE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace xupdate::server {

// Wire protocol of the PUL reasoning daemon. A connection carries a
// sequence of request frames and their response frames, in order
// (clients may pipeline: send several requests before reading the
// responses). Each message rides in one common/framing frame — the
// exact u32 len | u32 masked-crc32c | body layout of a WAL record, so
// the server detects torn and corrupted wire bytes with the same code
// path that detects a torn journal tail. The message body mirrors the
// WAL body layout too:
//
//   body := u8 type | u64 a | u64 b | payload
//
// `a`/`b` are message-specific scalars; `payload` is a string list
// (u32 count | (u32 len | bytes)*). The protocol is stateless per
// request — the tenant name travels in each request's payload — so any
// request can be retried on a fresh connection.
//
// Requests (payload fields in order):
//   kOpen      [tenant, initial_xml]  create the tenant's store with
//              initial_xml as version 0, or open it if it exists (then
//              initial_xml must be empty). ok.a = head version.
//   kCommit    [tenant, pul_xml]      commit one PUL at head+1, through
//              the group-commit batcher. ok.a = new version.
//   kCheckout  [tenant]               a = version, b = 1 for head
//              (a ignored). ok.a = version, payload = [annotated xml].
//   kReduce    [pul_xml, mode]        a = parallelism; mode is
//              plain|deterministic|canonical. payload = [reduced xml].
//   kIntegrate [pul_xml...]           a = parallelism. ok.a = number of
//              conflicts, payload = [merged xml].
//   kAggregate [pul_xml...]           payload = [aggregate xml].
//   kStat      [] or [tenant]         ok.a = tenant head (tenant form),
//              ok.b = stat payload version (server/stat.h), payload[0] =
//              versioned stat json ({"v":...,"seq":...,"uptime_ticks":...,
//              "global":{...},"tenants":{...}}). Clients must tolerate
//              extra payload strings and unknown json keys; version
//              dispatch goes through ok.b / the "v" key, never through
//              payload arity.
//   kPing      []                     ok, empty.
//   kShutdown  []                     ok, then the server stops.
//
// Responses:
//   kOk    per-request scalars/payload as above.
//   kError a = StatusCode, payload = [message]. The session survives —
//          an inapplicable PUL must not wedge the connection.
//   kBusy  the commit admission queue is full; the client sheds load
//          (retry later). Empty payload.

enum class MsgType : uint8_t {
  kOpen = 1,
  kCommit = 2,
  kCheckout = 3,
  kReduce = 4,
  kIntegrate = 5,
  kAggregate = 6,
  kStat = 7,
  kPing = 8,
  kShutdown = 9,
  kOk = 100,
  kError = 101,
  kBusy = 102,
};

// True for the message types a client may send.
bool IsRequestType(uint8_t type);
// True for the message types a server may send.
bool IsResponseType(uint8_t type);

struct Message {
  MsgType type = MsgType::kPing;
  uint64_t a = 0;
  uint64_t b = 0;
  std::vector<std::string> payload;
};

// Body codec (the framing layer adds the length/CRC header).
std::string EncodeMessage(const Message& msg);
// `expect_request`: decode refuses response types (server side) or
// request types (client side) — a frame that parses but carries the
// wrong direction is a protocol error, not a crash.
Result<Message> DecodeMessage(std::string_view body, bool expect_request);

// String-list payload codec, exposed for tests.
void EncodeStringList(const std::vector<std::string>& strings,
                      std::string* out);
Status DecodeStringList(std::string_view data, size_t offset,
                        std::vector<std::string>* out);

// Builds the kError response for a failed request.
Message ErrorResponse(const Status& status);
// Reconstitutes the Status carried by a kError response.
Status StatusFromError(const Message& msg);

// Tenant names become store directory names; restricting them to
// [A-Za-z0-9_-]+ (max 64 bytes) keeps "../../etc" out of the data dir.
bool ValidTenantName(std::string_view name);

// Default cap on a message body; requests and responses above it are
// rejected before allocation. Generous for documents, far below the
// u32 framing limit.
inline constexpr uint64_t kDefaultMaxMessageBytes = 64ull << 20;

// Fixed part of the body: type + a + b.
inline constexpr size_t kMessageFixedSize = 17;

}  // namespace xupdate::server

#endif  // XUPDATE_SERVER_PROTOCOL_H_
