#ifndef XUPDATE_SERVER_STAT_H_
#define XUPDATE_SERVER_STAT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/result.h"

namespace xupdate::server {

// The versioned kStat payload. The response payload stays exactly one
// JSON string — old clients that slice payload[0] keep working — but
// the string is now a wrapper:
//
//   {"v":1,"seq":<poll ordinal>,"uptime_ticks":<ms since Start>,
//    "global":{<metrics json>},
//    "tenants":{"<t>":{<metrics json>},...}}
//
// where <metrics json> is the Metrics::ToJson shape (counters / gauges
// / timers with raw buckets). The server splits "tenant/<t>/<rest>"
// metric names out of the registry into per-tenant sections keyed by
// the bare <rest>; everything else lands in "global". The version also
// rides in the kOk response's `b` scalar so clients can dispatch
// without parsing.
//
// ParseStatJson accepts both this wrapper and the pre-versioning
// payload (a bare metrics object, reported as version 0), and ignores
// unknown keys — a v1 parser reads a v2 server's payload, it just
// won't see the new fields. That is the extensibility contract the old
// "payload.size() != 1" hard-fail lacked.

inline constexpr uint64_t kStatVersion = 1;

struct StatSnapshot {
  uint64_t version = 0;
  uint64_t seq = 0;
  uint64_t uptime_ticks = 0;  // milliseconds since the server started
  MetricsSnapshot global;
  std::map<std::string, MetricsSnapshot, std::less<>> tenants;
};

// Serializes a registry snapshot as the versioned wrapper, splitting
// tenant-scoped names into per-tenant sections. Byte-deterministic for
// a given snapshot (sorted keys everywhere).
std::string BuildStatJson(const MetricsSnapshot& snapshot, uint64_t seq,
                          uint64_t uptime_ticks);

// Parses a kStat payload of any known version (see above).
Result<StatSnapshot> ParseStatJson(std::string_view json);

// Parses one <metrics json> object (the Metrics::ToJson shape) into a
// snapshot. Exposed for tools that read raw dumps.
Result<MetricsSnapshot> ParseMetricsJson(std::string_view json);

// Re-flattens a stat snapshot into one registry-shaped snapshot with
// "tenant/<t>/<rest>" names — the input shape of DeltaSnapshots and the
// Prometheus renderer.
MetricsSnapshot FlattenStatSnapshot(const StatSnapshot& stat);

}  // namespace xupdate::server

#endif  // XUPDATE_SERVER_STAT_H_
