#ifndef XUPDATE_COMMON_CRC32C_H_
#define XUPDATE_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace xupdate {

// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) — the checksum
// of RFC 3720 / iSCSI, used by the versioned store to frame journal
// records and snapshot files. Software slice-by-4 implementation: four
// table lookups per 32-bit word, no hardware intrinsics, so the value is
// identical on every platform the store runs on.
//
// Crc32c(data) computes the checksum of one buffer; ExtendCrc32c chains
// over split buffers:
//   ExtendCrc32c(Crc32c(a), b) == Crc32c(a + b)
uint32_t Crc32c(std::string_view data);
uint32_t ExtendCrc32c(uint32_t crc, std::string_view data);

// The store stores checksums masked the way RocksDB/LevelDB do: a
// rotation plus an additive constant, so that a CRC computed over bytes
// that themselves embed a CRC does not collapse into a fixed point.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace xupdate

#endif  // XUPDATE_COMMON_CRC32C_H_
