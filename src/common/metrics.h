#ifndef XUPDATE_COMMON_METRICS_H_
#define XUPDATE_COMMON_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace xupdate {

// Lightweight counters/timers registry shared by the reasoning engines,
// the benches and the CLI. Thread-safe; names are sorted (std::map) so
// ToJson() output is byte-deterministic. Cheap enough for hot paths that
// record a handful of values per phase — not a per-operation profiler.
class Metrics {
 public:
  Metrics() = default;

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // Adds `delta` to the counter `name` (created at zero on first use).
  void AddCounter(std::string_view name, uint64_t delta = 1);

  // Accumulates one timing sample (seconds) under `name`; the JSON dump
  // reports the sum and the sample count.
  void RecordDuration(std::string_view name, double seconds);

  uint64_t counter(std::string_view name) const;
  double total_seconds(std::string_view name) const;

  // {"counters":{"a":1,...},"timers":{"b":{"seconds":0.5,"count":2},...}}
  // with keys in sorted order; seconds use a fixed 9-digit format.
  std::string ToJson() const;

  void Clear();

 private:
  struct Timer {
    double seconds = 0.0;
    uint64_t count = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, Timer, std::less<>> timers_;
};

// Records the wall time between construction and destruction under
// `name`. A null registry makes the timer a no-op.
class ScopedTimer {
 public:
  ScopedTimer(Metrics* metrics, std::string_view name)
      : metrics_(metrics), name_(name) {
    if (metrics_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (metrics_ != nullptr) {
      std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      metrics_->RecordDuration(name_, elapsed.count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metrics* metrics_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xupdate

#endif  // XUPDATE_COMMON_METRICS_H_
