#ifndef XUPDATE_COMMON_METRICS_H_
#define XUPDATE_COMMON_METRICS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <iterator>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace xupdate {

// Fixed histogram boundaries for the timer latency distributions
// (seconds): a 1-2-5 ladder from one microsecond to ten seconds.
// Samples above the last boundary land in an overflow bucket. The
// boundaries are compile-time constants so percentile outputs depend
// only on the recorded sample multiset — never on platform or locale —
// keeping ToJson() byte-deterministic for deterministic workloads.
inline constexpr double kLatencyBucketBounds[] = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
    5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0};
inline constexpr size_t kNumLatencyBuckets =
    std::size(kLatencyBucketBounds) + 1;  // + overflow

// Lightweight counters/timers registry shared by the reasoning engines,
// the benches and the CLI. Thread-safe; names are sorted (std::map) so
// ToJson() output is byte-deterministic. Cheap enough for hot paths that
// record a handful of values per phase — not a per-operation profiler.
class Metrics {
 public:
  Metrics() = default;

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // Adds `delta` to the counter `name` (created at zero on first use).
  void AddCounter(std::string_view name, uint64_t delta = 1);

  // Accumulates one timing sample (seconds) under `name`; the JSON dump
  // reports the sum, the sample count, min/max and the p50/p95/p99
  // latency estimates from the fixed-boundary histogram.
  void RecordDuration(std::string_view name, double seconds);

  uint64_t counter(std::string_view name) const;
  double total_seconds(std::string_view name) const;

  // One timer's distribution. Percentiles are the upper boundary of the
  // histogram bucket holding the rank-ceil(q*count) sample, clamped to
  // the observed maximum (exact for the overflow bucket).
  struct TimerSnapshot {
    double seconds = 0.0;
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  // Zero snapshot for unknown names.
  TimerSnapshot timer(std::string_view name) const;

  // {"counters":{"a":1,...},
  //  "timers":{"b":{"seconds":...,"count":...,"min":...,"max":...,
  //                 "p50":...,"p95":...,"p99":...},...}}
  // with keys in sorted order and JSON-escaped; seconds use a fixed
  // 9-digit format.
  std::string ToJson() const;

  void Clear();

 private:
  struct Timer {
    double seconds = 0.0;
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    std::array<uint64_t, kNumLatencyBuckets> buckets{};
  };

  static double Percentile(const Timer& timer, double q);

  mutable std::mutex mu_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, Timer, std::less<>> timers_;
};

// Records the wall time between construction and destruction under
// `name`. A null registry makes the timer a no-op.
class ScopedTimer {
 public:
  ScopedTimer(Metrics* metrics, std::string_view name)
      : metrics_(metrics), name_(name) {
    if (metrics_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (metrics_ != nullptr) {
      std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      metrics_->RecordDuration(name_, elapsed.count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metrics* metrics_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xupdate

#endif  // XUPDATE_COMMON_METRICS_H_
