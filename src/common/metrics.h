#ifndef XUPDATE_COMMON_METRICS_H_
#define XUPDATE_COMMON_METRICS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <iterator>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace xupdate {

// Fixed histogram boundaries for the timer latency distributions
// (seconds): a 1-2-5 ladder from one microsecond to ten seconds.
// Samples above the last boundary land in an overflow bucket. The
// boundaries are compile-time constants so percentile outputs depend
// only on the recorded sample multiset — never on platform or locale —
// keeping ToJson() byte-deterministic for deterministic workloads.
inline constexpr double kLatencyBucketBounds[] = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
    5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0};
inline constexpr size_t kNumLatencyBuckets =
    std::size(kLatencyBucketBounds) + 1;  // + overflow

// Metric names are restricted to [A-Za-z0-9._/-] (nonempty) so every
// downstream sink — the JSON dump, the Prometheus text exposition, the
// JSONL slow-request log — can embed them without escaping. `/` is the
// scope separator: the serving layer registers per-tenant metrics as
// "tenant/<name>/rest" and the exposition layer folds that prefix into
// a {tenant="<name>"} label.
bool IsValidMetricName(std::string_view name);

// Registrations with invalid names are dropped and tallied under this
// (valid) counter, so operator typos and hostile tenant strings surface
// without poisoning the sinks.
inline constexpr std::string_view kInvalidMetricNameCounter =
    "metrics.invalid_name.dropped";

// Point-in-time copy of a registry (or one tenant section of a parsed
// stat payload). Value type: pollers diff two of these to get rates.
struct MetricsSnapshot {
  struct TimerState {
    double seconds = 0.0;
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    std::array<uint64_t, kNumLatencyBuckets> buckets{};
  };
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, int64_t, std::less<>> gauges;
  std::map<std::string, TimerState, std::less<>> timers;
};

// Interval view between two snapshots of the same registry: counter and
// timer deltas (clamped at zero so a registry Clear() between polls
// cannot produce underflow), gauges as the later point-in-time values,
// and percentiles recomputed from the bucket-count differences — i.e.
// the latency distribution *of the interval*, not of process lifetime.
struct MetricsDelta {
  struct TimerDelta {
    uint64_t count = 0;
    double seconds = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, int64_t, std::less<>> gauges;
  std::map<std::string, TimerDelta, std::less<>> timers;
};
MetricsDelta DeltaSnapshots(const MetricsSnapshot& before,
                            const MetricsSnapshot& after);

// Percentile over a fixed-boundary bucket vector: the upper boundary of
// the bucket holding the rank-ceil(q*count) sample, clamped to
// `max_clamp`; `max_clamp` is also the answer for the overflow bucket.
double PercentileFromBuckets(
    const std::array<uint64_t, kNumLatencyBuckets>& buckets, uint64_t count,
    double q, double max_clamp);

// Serializes a snapshot exactly the way Metrics::ToJson does (sorted
// keys, fixed 9-digit seconds), including the raw per-timer bucket
// vector so a remote poller can delta-diff distributions.
std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot);

// Lightweight counters/gauges/timers registry shared by the reasoning
// engines, the server, the benches and the CLI. Thread-safe; names are
// sorted (std::map) so ToJson() output is byte-deterministic. Cheap
// enough for hot paths that record a handful of values per phase — not
// a per-operation profiler.
class Metrics {
 public:
  Metrics() = default;

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // Adds `delta` to the counter `name` (created at zero on first use).
  void AddCounter(std::string_view name, uint64_t delta = 1);

  // Sets the gauge `name` to an absolute point-in-time value (queue
  // depth, resident tenants, WAL bytes...).
  void SetGauge(std::string_view name, int64_t value);

  // Accumulates one timing sample (seconds) under `name`; the JSON dump
  // reports the sum, the sample count, min/max, the p50/p95/p99
  // latency estimates and the raw fixed-boundary histogram.
  void RecordDuration(std::string_view name, double seconds);

  uint64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  double total_seconds(std::string_view name) const;

  // One timer's distribution. Percentiles are the upper boundary of the
  // histogram bucket holding the rank-ceil(q*count) sample, clamped to
  // the observed maximum (exact for the overflow bucket).
  struct TimerSnapshot {
    double seconds = 0.0;
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  // Zero snapshot for unknown names.
  TimerSnapshot timer(std::string_view name) const;

  // Consistent point-in-time copy of every counter, gauge and timer
  // (one lock acquisition — safe to call from a poller thread while the
  // serving threads keep recording).
  MetricsSnapshot Snapshot() const;

  // {"counters":{"a":1,...},"gauges":{"g":0,...},
  //  "timers":{"b":{"seconds":...,"count":...,"min":...,"max":...,
  //                 "p50":...,"p95":...,"p99":...,"buckets":[...]},...}}
  // with keys in sorted order; seconds use a fixed 9-digit format.
  // Names never need escaping (IsValidMetricName at registration).
  std::string ToJson() const;

  void Clear();

 private:
  struct Timer {
    double seconds = 0.0;
    uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    std::array<uint64_t, kNumLatencyBuckets> buckets{};
  };

  // Returns false (and tallies kInvalidMetricNameCounter) for names the
  // sinks could not embed verbatim. Caller holds mu_.
  bool CheckNameLocked(std::string_view name);

  mutable std::mutex mu_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, int64_t, std::less<>> gauges_;
  std::map<std::string, Timer, std::less<>> timers_;
};

// Records the wall time between construction and destruction under
// `name`. A null registry makes the timer a no-op.
class ScopedTimer {
 public:
  ScopedTimer(Metrics* metrics, std::string_view name)
      : metrics_(metrics), name_(name) {
    if (metrics_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (metrics_ != nullptr) {
      std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      metrics_->RecordDuration(name_, elapsed.count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metrics* metrics_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xupdate

#endif  // XUPDATE_COMMON_METRICS_H_
