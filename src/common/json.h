#ifndef XUPDATE_COMMON_JSON_H_
#define XUPDATE_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace xupdate::json {

// Minimal JSON value model + recursive-descent parser for the telemetry
// plumbing: the `top`/`stat` subcommands parse the versioned kStat
// payload, tests parse flight-recorder dumps and slow-request logs.
// Parses strictly (RFC 8259 grammar, UTF-16 escapes folded to UTF-8,
// bounded nesting depth) and never throws. Numbers are held as doubles —
// every value we read back (counts, gauges, seconds) fits in 53 bits.
class Value {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> items;                            // kArray
  std::vector<std::pair<std::string, Value>> members;  // kObject, source order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup (first match); nullptr when absent or when
  // this value is not an object.
  const Value* Find(std::string_view key) const;

  // Typed accessors with defaults — the telemetry readers treat a
  // missing or mistyped field as "not reported".
  double NumberOr(double fallback) const {
    return is_number() ? number : fallback;
  }
  uint64_t U64Or(uint64_t fallback) const {
    return is_number() && number >= 0 ? static_cast<uint64_t>(number)
                                      : fallback;
  }
  int64_t I64Or(int64_t fallback) const {
    return is_number() ? static_cast<int64_t>(number) : fallback;
  }
  std::string_view StringOr(std::string_view fallback) const {
    return is_string() ? std::string_view(str) : fallback;
  }
};

// Parses exactly one JSON document (trailing non-whitespace is an
// error). kParseError carries the byte offset of the failure.
Result<Value> Parse(std::string_view text);

}  // namespace xupdate::json

#endif  // XUPDATE_COMMON_JSON_H_
