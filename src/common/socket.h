#ifndef XUPDATE_COMMON_SOCKET_H_
#define XUPDATE_COMMON_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xupdate {

// Thin POSIX Unix-domain stream socket layer for the PUL reasoning
// server. Connections exchange length-prefixed CRC-framed messages
// (common/framing.h — the same frame the WAL journal uses), so torn and
// corrupt wire data is detected by the exact code path that detects a
// torn journal tail. Everything reports through Status/Result; nothing
// throws. All fds are CLOEXEC.

// A connected stream socket: the client side of Connect(), or one
// accepted connection on the server side.
class UnixSocket {
 public:
  // Connects to the listening socket at `path`.
  static Result<UnixSocket> Connect(const std::string& path);

  // A default-constructed socket is closed.
  UnixSocket() = default;
  UnixSocket(UnixSocket&& other) noexcept;
  UnixSocket& operator=(UnixSocket&& other) noexcept;
  UnixSocket(const UnixSocket&) = delete;
  UnixSocket& operator=(const UnixSocket&) = delete;
  ~UnixSocket();

  // Writes all of `data`, retrying on short writes and EINTR.
  Status SendAll(std::string_view data);

  // Frames `body` (framing::EncodeFrame) and writes it.
  Status SendFrame(std::string_view body);

  // Reads one complete frame and returns its CRC-verified body.
  //   kNotFound    clean EOF before the first header byte (the peer
  //                finished and closed — the idle-disconnect case);
  //   kIoError     EOF mid-frame or a read error (torn request);
  //   kParseError  CRC mismatch or body larger than `max_body_bytes`
  //                (framing is lost; the connection must be dropped).
  Result<std::string> RecvFrame(uint64_t max_body_bytes);

  // Half-close / close. shutdown() wakes a peer (or own thread) blocked
  // in RecvFrame; Close() is idempotent and runs on destruction.
  Status ShutdownBoth();
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  friend class UnixListener;
  int fd_ = -1;
};

// The server's listening socket.
class UnixListener {
 public:
  // Binds and listens at `path`. A stale socket file from a previous
  // run is unlinked first; fails if something is actively listening.
  static Result<UnixListener> Bind(const std::string& path, int backlog = 64);

  UnixListener() = default;
  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;
  ~UnixListener();

  // Polls for a pending connection for up to `timeout_ms`, then
  // accepts it. Returns an open socket, or a closed (is_open() ==
  // false) socket on timeout — the accept-loop idiom that lets the
  // server check its stop flag between polls.
  Result<UnixSocket> AcceptWithTimeout(int timeout_ms);

  // Closes the fd and unlinks the socket file.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace xupdate

#endif  // XUPDATE_COMMON_SOCKET_H_
