#include "common/framing.h"

#include "common/crc32c.h"

namespace xupdate::framing {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(std::string_view data, size_t offset) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(data[offset + i]);
  }
  return v;
}

uint64_t GetU64(std::string_view data, size_t offset) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(data[offset + i]);
  }
  return v;
}

std::string EncodeFrame(std::string_view body) {
  std::string out;
  out.reserve(kHeaderSize + body.size());
  PutU32(&out, static_cast<uint32_t>(body.size()));
  PutU32(&out, MaskCrc32c(Crc32c(body)));
  out += body;
  return out;
}

Status DecodeFrame(std::string_view data, size_t* offset,
                   std::string_view* body, uint64_t max_body_bytes) {
  size_t pos = *offset;
  if (data.size() - pos < kHeaderSize) {
    return Status::ParseError("torn frame header");
  }
  uint32_t body_len = GetU32(data, pos);
  uint32_t masked_crc = GetU32(data, pos + 4);
  if (body_len > max_body_bytes) {
    return Status::ParseError("frame body of " + std::to_string(body_len) +
                              " bytes exceeds the " +
                              std::to_string(max_body_bytes) +
                              "-byte frame limit");
  }
  if (body_len > data.size() - pos - kHeaderSize) {
    return Status::ParseError("torn or oversized frame body");
  }
  std::string_view candidate = data.substr(pos + kHeaderSize, body_len);
  if (MaskCrc32c(Crc32c(candidate)) != masked_crc) {
    return Status::ParseError("frame CRC mismatch");
  }
  *body = candidate;
  *offset = pos + kHeaderSize + body_len;
  return Status::OK();
}

}  // namespace xupdate::framing
