#include "common/socket.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/framing.h"

namespace xupdate {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

// sun_path is a fixed ~108-byte array; a longer path cannot be bound.
Status FillAddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty()) {
    return Status::InvalidArgument("socket path is empty");
  }
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument(
        "socket path of " + std::to_string(path.size()) +
        " bytes exceeds the " + std::to_string(sizeof(addr->sun_path) - 1) +
        "-byte sun_path limit: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.data(), path.size());
  return Status::OK();
}

Status SetCloexec(int fd) {
  if (::fcntl(fd, F_SETFD, FD_CLOEXEC) != 0) {
    return Errno("fcntl(FD_CLOEXEC)");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// UnixSocket

UnixSocket::UnixSocket(UnixSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

UnixSocket& UnixSocket::operator=(UnixSocket&& other) noexcept {
  if (this != &other) {
    (void)Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

UnixSocket::~UnixSocket() { (void)Close(); }

Result<UnixSocket> UnixSocket::Connect(const std::string& path) {
  sockaddr_un addr;
  XUPDATE_RETURN_IF_ERROR(FillAddr(path, &addr));
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  UnixSocket sock;
  sock.fd_ = fd;
  XUPDATE_RETURN_IF_ERROR(SetCloexec(fd));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect to " + path);
  return sock;
}

Status UnixSocket::SendAll(std::string_view data) {
  if (fd_ < 0) return Status::IoError("send on closed socket");
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that disconnected mid-request must surface
    // as EPIPE here, not kill the process with SIGPIPE.
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status UnixSocket::SendFrame(std::string_view body) {
  return SendAll(framing::EncodeFrame(body));
}

Result<std::string> UnixSocket::RecvFrame(uint64_t max_body_bytes) {
  if (fd_ < 0) return Status::IoError("recv on closed socket");
  // Read the 8-byte header first; EOF on the very first byte is the
  // peer closing between messages, which callers treat as a clean end
  // of conversation rather than an error.
  char header[framing::kHeaderSize];
  size_t got = 0;
  while (got < sizeof(header)) {
    ssize_t n = ::recv(fd_, header + got, sizeof(header) - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0) return Status::NotFound("peer closed connection");
      return Status::IoError("peer closed connection mid-frame header");
    }
    got += static_cast<size_t>(n);
  }
  std::string_view hv(header, sizeof(header));
  uint32_t body_len = framing::GetU32(hv, 0);
  if (body_len > max_body_bytes) {
    // Framing is unrecoverable past an over-limit length prefix (the
    // declared body is not going to be read), so callers drop the
    // connection on this error.
    return Status::ParseError(
        "frame body of " + std::to_string(body_len) +
        " bytes exceeds the " + std::to_string(max_body_bytes) +
        "-byte frame limit");
  }
  std::string frame(hv);
  frame.resize(framing::kHeaderSize + body_len);
  got = 0;
  while (got < body_len) {
    ssize_t n = ::recv(fd_, frame.data() + framing::kHeaderSize + got,
                       body_len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      return Status::IoError("peer closed connection mid-frame body");
    }
    got += static_cast<size_t>(n);
  }
  // CRC-check through the shared codec so wire corruption and journal
  // corruption are caught by one code path.
  size_t offset = 0;
  std::string_view body;
  XUPDATE_RETURN_IF_ERROR(
      framing::DecodeFrame(frame, &offset, &body, max_body_bytes));
  return std::string(body);
}

Status UnixSocket::ShutdownBoth() {
  if (fd_ < 0) return Status::OK();
  if (::shutdown(fd_, SHUT_RDWR) != 0 && errno != ENOTCONN) {
    return Errno("shutdown");
  }
  return Status::OK();
}

Status UnixSocket::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// UnixListener

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    (void)Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

UnixListener::~UnixListener() { (void)Close(); }

Result<UnixListener> UnixListener::Bind(const std::string& path, int backlog) {
  sockaddr_un addr;
  XUPDATE_RETURN_IF_ERROR(FillAddr(path, &addr));
  // A socket file left by a crashed server would make bind() fail with
  // EADDRINUSE even though nothing is listening. Probe it: if a connect
  // succeeds a live server owns the path and we must not steal it;
  // ECONNREFUSED means stale, so unlink and proceed.
  if (UnixSocket::Connect(path).ok()) {
    return Status::InvalidArgument("a server is already listening on " + path);
  }
  (void)::unlink(path.c_str());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  UnixListener listener;
  listener.fd_ = fd;
  listener.path_ = path;
  XUPDATE_RETURN_IF_ERROR(SetCloexec(fd));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + path);
  }
  if (::listen(fd, backlog) != 0) {
    return Errno("listen " + path);
  }
  return listener;
}

Result<UnixSocket> UnixListener::AcceptWithTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::IoError("accept on closed listener");
  pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return UnixSocket();  // treat as a timeout tick
    return Errno("poll");
  }
  if (rc == 0) return UnixSocket();  // timeout: closed socket sentinel
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    // The pending connection can vanish between poll and accept.
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return UnixSocket();
    }
    return Errno("accept");
  }
  UnixSocket sock;
  sock.fd_ = fd;
  XUPDATE_RETURN_IF_ERROR(SetCloexec(fd));
  return sock;
}

Status UnixListener::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close listener");
  if (!path_.empty()) (void)::unlink(path_.c_str());
  return Status::OK();
}

}  // namespace xupdate
