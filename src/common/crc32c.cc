#include "common/crc32c.h"

#include <array>
#include <cstddef>

namespace xupdate {

namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // table[0] is the plain byte-at-a-time table; table[1..3] shift it so
  // four bytes can be folded with independent lookups (slice-by-4).
  std::array<std::array<uint32_t, 256>, 4> t{};

  constexpr Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

constexpr Tables kTables;

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, std::string_view data) {
  const auto& t = kTables.t;
  uint32_t c = ~crc;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  // Byte-align is unnecessary for correctness (loads below are
  // byte-wise), so slice in 4-byte gulps straight away.
  while (n >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = t[3][c & 0xff] ^ t[2][(c >> 8) & 0xff] ^ t[1][(c >> 16) & 0xff] ^
        t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    c = (c >> 8) ^ t[0][(c ^ *p) & 0xff];
    ++p;
    --n;
  }
  return ~c;
}

uint32_t Crc32c(std::string_view data) { return ExtendCrc32c(0, data); }

}  // namespace xupdate
