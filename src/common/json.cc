#include "common/json.h"

#include <cmath>
#include <cstdlib>

namespace xupdate::json {

namespace {

// Hostile inputs arrive over the wire (stat payloads); the recursion
// bound keeps a deeply nested document from overflowing the stack.
constexpr int kMaxDepth = 96;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    SkipWs();
    Value value;
    XUPDATE_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing content");
    return value;
  }

 private:
  Status Error(std::string_view what) const {
    return Status::ParseError("json: " + std::string(what) + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = Value::Kind::kString;
        return ParseString(&out->str);
      case 't':
        XUPDATE_RETURN_IF_ERROR(Expect("true"));
        out->kind = Value::Kind::kBool;
        out->boolean = true;
        return Status::OK();
      case 'f':
        XUPDATE_RETURN_IF_ERROR(Expect("false"));
        out->kind = Value::Kind::kBool;
        out->boolean = false;
        return Status::OK();
      case 'n':
        XUPDATE_RETURN_IF_ERROR(Expect("null"));
        out->kind = Value::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    out->kind = Value::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      XUPDATE_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      Value member;
      XUPDATE_RETURN_IF_ERROR(ParseValue(&member, depth + 1));
      out->members.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    out->kind = Value::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      Value item;
      XUPDATE_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->items.push_back(std::move(item));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A') + 10;
      } else {
        return Error("invalid \\u escape");
      }
      value = value * 16 + digit;
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp;
          XUPDATE_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t low;
            XUPDATE_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("unpaired surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    if (pos_ >= text_.size()) return Error("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      return Error("invalid number");
    }
    if (Consume('.')) {
      size_t digits = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == digits) return Error("invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t digits = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == digits) return Error("invalid number");
    }
    // The slice is a valid JSON number, which is also a valid strtod
    // input; the bounded copy keeps strtod off un-terminated memory.
    std::string token(text_.substr(start, pos_ - start));
    out->kind = Value::Kind::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out->number)) return Error("number out of range");
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace xupdate::json
