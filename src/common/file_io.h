#ifndef XUPDATE_COMMON_FILE_IO_H_
#define XUPDATE_COMMON_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xupdate {

// Thin POSIX file layer for the versioned store. Everything reports
// through Status/Result (kIoError with errno text); nothing throws.

// Reads the whole file into a string (binary, no translation).
Result<std::string> ReadFileToString(const std::string& path);

// Reads exactly `length` bytes starting at `offset` (pread); fails if
// the file is shorter.
Result<std::string> ReadFileRegion(const std::string& path, uint64_t offset,
                                   size_t length);

// Writes `content` to `path` atomically: a sidecar temp file is written,
// fsync'd, and renamed over `path`; the containing directory is fsync'd
// so the rename itself is durable. Readers never observe a torn file.
Status WriteFileAtomic(const std::string& path, std::string_view content);

// mkdir -p. OK if the directory already exists.
Status EnsureDirectory(const std::string& path);

// Non-recursive listing of the entry names (not paths) in `path`,
// sorted, "." and ".." excluded.
Result<std::vector<std::string>> ListDirectory(const std::string& path);

bool PathExists(const std::string& path);

Status RemoveFile(const std::string& path);

// Renames `from` over `to` and fsyncs the destination directory.
Status RenameFile(const std::string& from, const std::string& to);

// fsync on the directory fd — makes preceding creates/renames durable.
Status SyncDirectory(const std::string& path);

// Append-only file handle (the WAL's write side). The fd is CLOEXEC;
// Close() is idempotent and runs on destruction (without surfacing
// errors — call Close() explicitly when the status matters).
class AppendableFile {
 public:
  // Opens (creating if missing) for appending.
  static Result<AppendableFile> Open(const std::string& path);

  AppendableFile() = default;
  AppendableFile(AppendableFile&& other) noexcept;
  AppendableFile& operator=(AppendableFile&& other) noexcept;
  AppendableFile(const AppendableFile&) = delete;
  AppendableFile& operator=(const AppendableFile&) = delete;
  ~AppendableFile();

  Status Append(std::string_view data);
  // fdatasync.
  Status Sync();
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  // Bytes in the file (existing content plus everything appended).
  uint64_t size() const { return size_; }

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
};

// Truncates the file at `path` to `size` bytes and fsyncs it.
Status TruncateFile(const std::string& path, uint64_t size);

}  // namespace xupdate

#endif  // XUPDATE_COMMON_FILE_IO_H_
