#ifndef XUPDATE_COMMON_RESULT_H_
#define XUPDATE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace xupdate {

// A Status or a value of type T, in the style of arrow::Result /
// absl::StatusOr. `Result<T> r = F(); if (!r.ok()) return r.status();`
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or from a (non-ok) Status keeps
  // call sites terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "ok Status must carry a value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or dies; only for tests and examples where the
  // failure is a programming error.
  T ValueOrDie() && {
    if (!ok()) {
      // Examples/tests call this only on inputs known to be valid.
      assert(false && "ValueOrDie on error Result");
    }
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates the error of a Result expression, else assigns its value.
#define XUPDATE_ASSIGN_OR_RETURN(lhs, expr)            \
  XUPDATE_ASSIGN_OR_RETURN_IMPL(                       \
      XUPDATE_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define XUPDATE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define XUPDATE_CONCAT_NAME(a, b) XUPDATE_CONCAT_NAME_INNER(a, b)
#define XUPDATE_CONCAT_NAME_INNER(a, b) a##b

}  // namespace xupdate

#endif  // XUPDATE_COMMON_RESULT_H_
