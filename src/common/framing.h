#ifndef XUPDATE_COMMON_FRAMING_H_
#define XUPDATE_COMMON_FRAMING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xupdate::framing {

// The one length-prefixed, CRC-protected frame format of the tree:
//
//   frame := u32 body_len | u32 masked_crc32c(body) | body
//
// All integers little-endian, the CRC masked (common/crc32c.h) so a
// frame of zero bytes still carries a non-trivial checksum. The WAL
// journal, snapshot checkpoint files and the server wire protocol all
// speak exactly this frame — one encode/decode code path, one torn- or
// corrupt-frame detector.

inline constexpr size_t kHeaderSize = 8;  // len + masked crc

// Little-endian fixed-width integer helpers, shared by every binary
// encoder in the tree (frames keep the journal and the wire portable
// across hosts; nothing memcpy's structs).
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
uint32_t GetU32(std::string_view data, size_t offset);
uint64_t GetU64(std::string_view data, size_t offset);

// Frames `body` (header + copy of the body bytes).
std::string EncodeFrame(std::string_view body);

// Decodes the frame starting at `data[*offset]`. On success `*body`
// aliases the body bytes inside `data` and `*offset` advances past the
// frame. kParseError for a torn header, torn body, a body larger than
// `max_body_bytes`, or a CRC mismatch — the caller cannot trust
// anything at or beyond `*offset` afterwards (framing is lost).
Status DecodeFrame(std::string_view data, size_t* offset,
                   std::string_view* body,
                   uint64_t max_body_bytes = UINT32_MAX);

}  // namespace xupdate::framing

#endif  // XUPDATE_COMMON_FRAMING_H_
