#include "common/status.h"

namespace xupdate {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotApplicable:
      return "NotApplicable";
    case StatusCode::kIncompatible:
      return "Incompatible";
    case StatusCode::kUnresolvedConflict:
      return "UnresolvedConflict";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xupdate
