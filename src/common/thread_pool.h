#ifndef XUPDATE_COMMON_THREAD_POOL_H_
#define XUPDATE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace xupdate {

// Reusable fixed-size worker pool. Tasks are plain std::function<void()>
// closures; the library convention is exception-free, so a task reports
// failure by writing a Status into caller-owned state (see ParallelFor).
//
// Shutdown semantics: the destructor (and Shutdown()) first drains every
// task already submitted — work handed to the pool is never dropped —
// then joins the workers. Submit after shutdown is a no-op returning
// false so racing producers fail soft instead of deadlocking.
class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Enqueues `task`; returns false (without running it) if the pool is
  // shutting down.
  bool Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished executing.
  void Wait();

  // Drains pending tasks and joins the workers. Idempotent.
  void Shutdown();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0..n-1) across `pool`, blocking until all calls return, and
// returns the Status of the lowest failing index (OK if none fail).
// Every index runs even when an earlier one fails — shards must not be
// silently skipped. A null pool (or a pool of one worker) degrades to a
// plain sequential loop on the calling thread.
Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn);

}  // namespace xupdate

#endif  // XUPDATE_COMMON_THREAD_POOL_H_
