#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace xupdate {

std::string XmlEscape(std::string_view text, bool in_attribute) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        if (in_attribute) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string XmlUnescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    size_t semi = text.find(';', i);
    if (semi == std::string_view::npos || semi - i > 10) {
      out += text[i++];
      continue;
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      uint32_t cp = 0;
      bool valid = entity.size() > 1;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        for (size_t k = 2; k < entity.size(); ++k) {
          char c = entity[k];
          uint32_t digit;
          if (c >= '0' && c <= '9') {
            digit = static_cast<uint32_t>(c - '0');
          } else if (c >= 'a' && c <= 'f') {
            digit = static_cast<uint32_t>(c - 'a' + 10);
          } else if (c >= 'A' && c <= 'F') {
            digit = static_cast<uint32_t>(c - 'A' + 10);
          } else {
            valid = false;
            break;
          }
          cp = cp * 16 + digit;
        }
      } else {
        for (size_t k = 1; k < entity.size(); ++k) {
          if (!std::isdigit(static_cast<unsigned char>(entity[k]))) {
            valid = false;
            break;
          }
          cp = cp * 10 + static_cast<uint32_t>(entity[k] - '0');
        }
      }
      if (!valid || cp == 0 || cp > 0x10ffff) {
        out += text[i++];
        continue;
      }
      // UTF-8 encode.
      if (cp < 0x80) {
        out += static_cast<char>(cp);
      } else if (cp < 0x800) {
        out += static_cast<char>(0xc0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3f));
      } else if (cp < 0x10000) {
        out += static_cast<char>(0xe0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (cp & 0x3f));
      } else {
        out += static_cast<char>(0xf0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (cp & 0x3f));
      }
    } else {
      // Unknown entity: keep verbatim.
      out += text[i];
      ++i;
      continue;
    }
    i = semi + 1;
  }
  return out;
}

bool IsValidXmlName(std::string_view name) {
  if (name.empty()) return false;
  char c0 = name[0];
  if (!(std::isalpha(static_cast<unsigned char>(c0)) || c0 == '_' ||
        c0 == ':')) {
    return false;
  }
  for (char c : name.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_' || c == ':' || c == '-')) {
      return false;
    }
  }
  return true;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

int64_t ParseNonNegativeInt(std::string_view s) {
  if (s.empty()) return -1;
  int64_t value = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
    if (value > (INT64_MAX - 9) / 10) return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace xupdate
