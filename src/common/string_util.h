#ifndef XUPDATE_COMMON_STRING_UTIL_H_
#define XUPDATE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xupdate {

// Escapes &, <, > (text content) — and additionally " when `in_attribute`
// — per XML 1.0 character escaping rules.
std::string XmlEscape(std::string_view text, bool in_attribute = false);

// Resolves the five predefined XML entities plus decimal/hex character
// references. Unknown entities are left verbatim (non-validating).
std::string XmlUnescape(std::string_view text);

// True if `name` is a valid (namespace-less) XML element/attribute name
// for our non-validating subset: [A-Za-z_:][A-Za-z0-9._:-]*.
bool IsValidXmlName(std::string_view name);

// Escapes a string for embedding inside a JSON string literal: quote,
// backslash, \n \r \t, and \u00XX for the remaining control characters.
// Shared by Metrics::ToJson, the analysis reports and the obs sinks so
// every JSON emitter in the tree escapes identically.
std::string JsonEscape(std::string_view text);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

// Whitespace trim (space, tab, CR, LF) from both ends.
std::string_view Trim(std::string_view s);

// Parses a non-negative integer; returns -1 on malformed input.
int64_t ParseNonNegativeInt(std::string_view s);

}  // namespace xupdate

#endif  // XUPDATE_COMMON_STRING_UTIL_H_
