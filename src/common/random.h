#ifndef XUPDATE_COMMON_RANDOM_H_
#define XUPDATE_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xupdate {

// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
// Used by the XMark generator, the synthetic-PUL workload generator and
// the property tests so that every run is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t Next();

  // Uniform in [0, bound); bound must be > 0.
  uint64_t Below(uint64_t bound);

  // Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0,1]).
  bool Chance(double p);

  // Uniform double in [0, 1).
  double NextDouble();

  // Picks an index weighted by `weights` (all >= 0, not all zero).
  size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace xupdate

#endif  // XUPDATE_COMMON_RANDOM_H_
