#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace xupdate {

namespace {

size_t BucketOf(double seconds) {
  for (size_t b = 0; b < std::size(kLatencyBucketBounds); ++b) {
    if (seconds <= kLatencyBucketBounds[b]) return b;
  }
  return kNumLatencyBuckets - 1;  // overflow
}

void AppendFixed(std::string* out, double value) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.9f", value);
  *out += buf;
}

}  // namespace

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '/' ||
              c == '-';
    if (!ok) return false;
  }
  return true;
}

double PercentileFromBuckets(
    const std::array<uint64_t, kNumLatencyBuckets>& buckets, uint64_t count,
    double q, double max_clamp) {
  if (count == 0) return 0.0;
  auto rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumLatencyBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      if (b == kNumLatencyBuckets - 1) return max_clamp;
      return std::min(kLatencyBucketBounds[b], max_clamp);
    }
  }
  return max_clamp;
}

MetricsDelta DeltaSnapshots(const MetricsSnapshot& before,
                            const MetricsSnapshot& after) {
  MetricsDelta delta;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    uint64_t prior = it == before.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= prior ? value - prior : 0;
  }
  delta.gauges = after.gauges;
  for (const auto& [name, t] : after.timers) {
    auto it = before.timers.find(name);
    MetricsDelta::TimerDelta d;
    std::array<uint64_t, kNumLatencyBuckets> diff{};
    if (it == before.timers.end()) {
      d.count = t.count;
      d.seconds = t.seconds;
      diff = t.buckets;
    } else {
      const MetricsSnapshot::TimerState& prior = it->second;
      d.count = t.count >= prior.count ? t.count - prior.count : 0;
      d.seconds = t.seconds >= prior.seconds ? t.seconds - prior.seconds : 0.0;
      for (size_t b = 0; b < kNumLatencyBuckets; ++b) {
        diff[b] =
            t.buckets[b] >= prior.buckets[b] ? t.buckets[b] - prior.buckets[b]
                                             : 0;
      }
    }
    // The interval maximum is not tracked; clamp to the lifetime max,
    // which bounds every interval sample from above.
    d.p50 = PercentileFromBuckets(diff, d.count, 0.50, t.max);
    d.p95 = PercentileFromBuckets(diff, d.count, 0.95, t.max);
    d.p99 = PercentileFromBuckets(diff, d.count, 0.99, t.max);
    delta.timers[name] = d;
  }
  return delta;
}

std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : snapshot.timers) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"seconds\":";
    AppendFixed(&out, t.seconds);
    out += ",\"count\":";
    out += std::to_string(t.count);
    out += ",\"min\":";
    AppendFixed(&out, t.min);
    out += ",\"max\":";
    AppendFixed(&out, t.max);
    out += ",\"p50\":";
    AppendFixed(&out, PercentileFromBuckets(t.buckets, t.count, 0.50, t.max));
    out += ",\"p95\":";
    AppendFixed(&out, PercentileFromBuckets(t.buckets, t.count, 0.95, t.max));
    out += ",\"p99\":";
    AppendFixed(&out, PercentileFromBuckets(t.buckets, t.count, 0.99, t.max));
    out += ",\"buckets\":[";
    for (size_t b = 0; b < kNumLatencyBuckets; ++b) {
      if (b != 0) out += ',';
      out += std::to_string(t.buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

bool Metrics::CheckNameLocked(std::string_view name) {
  if (IsValidMetricName(name)) return true;
  auto it = counters_.find(kInvalidMetricNameCounter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(kInvalidMetricNameCounter), uint64_t{1});
  } else {
    it->second += 1;
  }
  return false;
}

void Metrics::AddCounter(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!CheckNameLocked(name)) return;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Metrics::SetGauge(std::string_view name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!CheckNameLocked(name)) return;
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Metrics::RecordDuration(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!CheckNameLocked(name)) return;
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), Timer{}).first;
  }
  Timer& t = it->second;
  t.seconds += seconds;
  if (t.count == 0) {
    t.min = seconds;
    t.max = seconds;
  } else {
    t.min = std::min(t.min, seconds);
    t.max = std::max(t.max, seconds);
  }
  t.count += 1;
  t.buckets[BucketOf(seconds)] += 1;
}

uint64_t Metrics::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t Metrics::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

double Metrics::total_seconds(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second.seconds;
}

Metrics::TimerSnapshot Metrics::timer(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  TimerSnapshot snap;
  if (it == timers_.end()) return snap;
  const Timer& t = it->second;
  snap.seconds = t.seconds;
  snap.count = t.count;
  snap.min = t.min;
  snap.max = t.max;
  snap.p50 = PercentileFromBuckets(t.buckets, t.count, 0.50, t.max);
  snap.p95 = PercentileFromBuckets(t.buckets, t.count, 0.95, t.max);
  snap.p99 = PercentileFromBuckets(t.buckets, t.count, 0.99, t.max);
  return snap;
}

MetricsSnapshot Metrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, t] : timers_) {
    MetricsSnapshot::TimerState state;
    state.seconds = t.seconds;
    state.count = t.count;
    state.min = t.min;
    state.max = t.max;
    state.buckets = t.buckets;
    snap.timers.emplace(name, state);
  }
  return snap;
}

std::string Metrics::ToJson() const { return MetricsSnapshotToJson(Snapshot()); }

void Metrics::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

}  // namespace xupdate
