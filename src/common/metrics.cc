#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace xupdate {

namespace {

size_t BucketOf(double seconds) {
  for (size_t b = 0; b < std::size(kLatencyBucketBounds); ++b) {
    if (seconds <= kLatencyBucketBounds[b]) return b;
  }
  return kNumLatencyBuckets - 1;  // overflow
}

}  // namespace

void Metrics::AddCounter(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Metrics::RecordDuration(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), Timer{}).first;
  }
  Timer& t = it->second;
  t.seconds += seconds;
  if (t.count == 0) {
    t.min = seconds;
    t.max = seconds;
  } else {
    t.min = std::min(t.min, seconds);
    t.max = std::max(t.max, seconds);
  }
  t.count += 1;
  t.buckets[BucketOf(seconds)] += 1;
}

uint64_t Metrics::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Metrics::total_seconds(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second.seconds;
}

double Metrics::Percentile(const Timer& timer, double q) {
  if (timer.count == 0) return 0.0;
  auto rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(timer.count)));
  if (rank < 1) rank = 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumLatencyBuckets; ++b) {
    cumulative += timer.buckets[b];
    if (cumulative >= rank) {
      if (b == kNumLatencyBuckets - 1) return timer.max;
      return std::min(kLatencyBucketBounds[b], timer.max);
    }
  }
  return timer.max;
}

Metrics::TimerSnapshot Metrics::timer(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  TimerSnapshot snap;
  if (it == timers_.end()) return snap;
  const Timer& t = it->second;
  snap.seconds = t.seconds;
  snap.count = t.count;
  snap.min = t.min;
  snap.max = t.max;
  snap.p50 = Percentile(t, 0.50);
  snap.p95 = Percentile(t, 0.95);
  snap.p99 = Percentile(t, 0.99);
  return snap;
}

std::string Metrics::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, timer] : timers_) {
    if (!first) out += ',';
    first = false;
    char buf[256];
    snprintf(buf, sizeof(buf),
             "{\"seconds\":%.9f,\"count\":%llu,\"min\":%.9f,\"max\":%.9f,"
             "\"p50\":%.9f,\"p95\":%.9f,\"p99\":%.9f}",
             timer.seconds, static_cast<unsigned long long>(timer.count),
             timer.min, timer.max, Percentile(timer, 0.50),
             Percentile(timer, 0.95), Percentile(timer, 0.99));
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += buf;
  }
  out += "}}";
  return out;
}

void Metrics::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  timers_.clear();
}

}  // namespace xupdate
