#include "common/metrics.h"

#include <cstdio>

namespace xupdate {

void Metrics::AddCounter(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Metrics::RecordDuration(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), Timer{}).first;
  }
  it->second.seconds += seconds;
  it->second.count += 1;
}

uint64_t Metrics::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Metrics::total_seconds(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second.seconds;
}

std::string Metrics::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, timer] : timers_) {
    if (!first) out += ',';
    first = false;
    char buf[64];
    snprintf(buf, sizeof(buf), "{\"seconds\":%.9f,\"count\":%llu}",
             timer.seconds, static_cast<unsigned long long>(timer.count));
    out += '"';
    out += name;
    out += "\":";
    out += buf;
  }
  out += "}}";
  return out;
}

void Metrics::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  timers_.clear();
}

}  // namespace xupdate
