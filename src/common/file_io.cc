#include "common/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace xupdate {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

// Writes the whole buffer, retrying on short writes and EINTR.
Status WriteAll(int fd, std::string_view data, const std::string& path) {
  const char* p = data.data();
  size_t n = data.size();
  while (n > 0) {
    ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Result<std::string> ReadFileRegion(const std::string& path, uint64_t offset,
                                   size_t length) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  std::string out(length, '\0');
  size_t done = 0;
  while (done < length) {
    ssize_t n = ::pread(fd, out.data() + done, length - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Errno("pread", path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      ::close(fd);
      return Status::IoError("short read in " + path + " at offset " +
                             std::to_string(offset + done));
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status status = WriteAll(fd, content, tmp);
  if (status.ok() && ::fsync(fd) != 0) status = Errno("fsync", tmp);
  if (::close(fd) != 0 && status.ok()) status = Errno("close", tmp);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  return RenameFile(tmp, path);
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Errno("mkdir", path);
}

Result<std::vector<std::string>> ListDirectory(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno("opendir", path);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    dirent* entry = ::readdir(dir);
    if (entry == nullptr) {
      if (errno != 0) {
        Status status = Errno("readdir", path);
        ::closedir(dir);
        return status;
      }
      break;
    }
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("rename", from + " -> " + to);
  }
  size_t slash = to.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : to.substr(0, slash);
  return SyncDirectory(dir);
}

Status SyncDirectory(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", path);
  Status status;
  if (::fsync(fd) != 0) status = Errno("fsync dir", path);
  ::close(fd);
  return status;
}

Result<AppendableFile> AppendableFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Errno("fstat", path);
    ::close(fd);
    return status;
  }
  AppendableFile file;
  file.fd_ = fd;
  file.size_ = static_cast<uint64_t>(st.st_size);
  return file;
}

AppendableFile::AppendableFile(AppendableFile&& other) noexcept
    : fd_(other.fd_), size_(other.size_) {
  other.fd_ = -1;
  other.size_ = 0;
}

AppendableFile& AppendableFile::operator=(AppendableFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    size_ = other.size_;
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

AppendableFile::~AppendableFile() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status AppendableFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::InvalidArgument("append on closed file");
  XUPDATE_RETURN_IF_ERROR(WriteAll(fd_, data, "<wal>"));
  size_ += data.size();
  return Status::OK();
}

Status AppendableFile::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("sync on closed file");
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(std::string("fdatasync: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status AppendableFile::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return Status::IoError(std::string("close: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  Status status;
  if (::fsync(fd) != 0) status = Errno("fsync", path);
  ::close(fd);
  return status;
}

}  // namespace xupdate
