#ifndef XUPDATE_COMMON_STATUS_H_
#define XUPDATE_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xupdate {

// Error category for a failed operation. Mirrors the dynamic-error
// taxonomy of the XQuery Update Facility processing model plus the usual
// systems-library codes.
enum class StatusCode : uint8_t {
  kOk = 0,
  // A PUL operation violates its applicability conditions (Table 2 of
  // the paper), e.g. inserting an attribute tree before a node.
  kNotApplicable = 1,
  // Two operations in one PUL are incompatible (Definition 3), e.g. two
  // renames of the same node.
  kIncompatible = 2,
  // Conflict resolution could not satisfy the producers' policies
  // (Algorithm 3 aborts).
  kUnresolvedConflict = 3,
  // Malformed input (XML text, serialized PUL, XQuery expression...).
  kParseError = 4,
  // A node id referenced by an operation does not exist.
  kNotFound = 5,
  // Caller misuse of an API (preconditions violated).
  kInvalidArgument = 6,
  // Filesystem failure.
  kIoError = 7,
  // Anything that indicates an internal invariant was broken.
  kInternal = 8,
};

// Returns a stable human-readable name, e.g. "NotApplicable".
std::string_view StatusCodeToString(StatusCode code);

// Value-semantic error carrier used across the whole library; the public
// API never throws. An ok status carries no message and no allocation.
// [[nodiscard]]: an ignored Status is silent data loss — every producer
// either checks it or explicitly voids it.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotApplicable(std::string msg) {
    return Status(StatusCode::kNotApplicable, std::move(msg));
  }
  static Status Incompatible(std::string msg) {
    return Status(StatusCode::kIncompatible, std::move(msg));
  }
  static Status UnresolvedConflict(std::string msg) {
    return Status(StatusCode::kUnresolvedConflict, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagates a non-ok Status out of the enclosing function.
#define XUPDATE_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::xupdate::Status _status = (expr);              \
    if (!_status.ok()) return _status;               \
  } while (false)

}  // namespace xupdate

#endif  // XUPDATE_COMMON_STATUS_H_
