#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace xupdate {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  task_ready_.notify_all();
  // Workers exit only once the queue is empty, so pending work drains.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    Status first;
    for (size_t i = 0; i < n; ++i) {
      Status s = fn(i);
      if (!s.ok() && first.ok()) first = std::move(s);
    }
    return first;
  }
  // Contiguous index blocks, a few per worker: one queue entry per
  // block keeps the submission cost bounded when n is in the tens of
  // thousands (one PUL shard per index) while leaving enough slack for
  // uneven block runtimes to balance out.
  size_t blocks = std::min(n, pool->size() * 4);
  size_t per_block = (n + blocks - 1) / blocks;
  std::vector<Status> results(blocks);
  for (size_t b = 0; b < blocks; ++b) {
    size_t begin = b * per_block;
    size_t end = std::min(n, begin + per_block);
    if (begin >= end) break;
    auto run_block = [&fn, &results, b, begin, end] {
      Status first;
      for (size_t i = begin; i < end; ++i) {
        Status s = fn(i);
        if (!s.ok() && first.ok()) first = std::move(s);
      }
      results[b] = std::move(first);
    };
    if (!pool->Submit(run_block)) {
      run_block();  // pool shutting down: run inline
    }
  }
  pool->Wait();
  for (Status& s : results) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

}  // namespace xupdate
