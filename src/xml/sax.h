#ifndef XUPDATE_XML_SAX_H_
#define XUPDATE_XML_SAX_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xupdate::xml {

// One attribute as seen by the SAX layer (value already unescaped).
struct SaxAttribute {
  std::string name;
  std::string value;
};

// Receiver of SAX events. The streaming PUL evaluator (§4.3 of the
// paper: "a specialized SAX parser and writer") is implemented as a
// SaxHandler that rewrites the event stream on the fly.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  virtual Status StartElement(std::string_view name,
                              std::span<const SaxAttribute> attributes) = 0;
  virtual Status EndElement(std::string_view name) = 0;
  virtual Status Text(std::string_view text) = 0;
  // Processing instruction <?target data?>. The id-annotated document
  // format uses <?xuid N?> to tag the following text node with its node
  // id; most handlers can ignore PIs (default: skip).
  virtual Status ProcessingInstruction(std::string_view target,
                                       std::string_view data) {
    (void)target;
    (void)data;
    return Status::OK();
  }
};

struct SaxOptions {
  // Drop text nodes consisting only of whitespace (data-centric XML).
  bool keep_whitespace_text = false;
};

// Non-validating single-pass parser over `input`. Element/attribute
// syntax, character data, CDATA, comments, processing instructions and a
// DOCTYPE prolog are recognized; namespaces are treated as plain colons
// in names. Stops at the first error or the first non-OK handler status.
Status ParseSax(std::string_view input, SaxHandler* handler,
                const SaxOptions& options = {});

// Serializes a stream of SAX events back to XML text.
class SaxWriter : public SaxHandler {
 public:
  explicit SaxWriter(bool pretty = false) : pretty_(pretty) {}

  Status StartElement(std::string_view name,
                      std::span<const SaxAttribute> attributes) override;
  Status EndElement(std::string_view name) override;
  Status Text(std::string_view text) override;
  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override;

  // Appends pre-serialized XML verbatim (used by the streaming PUL
  // evaluator to splice serialized parameter trees into the stream).
  void Raw(std::string_view xml_text);

  // The document produced so far. Call after the last EndElement.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void CloseOpenTag(bool self_close);
  void Indent();

  std::string out_;
  bool pretty_;
  bool tag_open_ = false;      // "<name ..." emitted, '>' pending
  bool just_text_ = false;     // last event was text (suppress indent)
  int depth_ = 0;
};

}  // namespace xupdate::xml

#endif  // XUPDATE_XML_SAX_H_
