#include "xml/sax.h"

#include <cassert>

#include "common/string_util.h"

namespace xupdate::xml {

namespace {

bool IsWhitespaceOnly(std::string_view s) {
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n') return false;
  }
  return true;
}

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '.' || c == '-';
}

// Cursor over the input with 1-based line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
  bool Consume(std::string_view expected) {
    if (input_.substr(pos_, expected.size()) != expected) return false;
    for (size_t i = 0; i < expected.size(); ++i) Advance();
    return true;
  }
  // Advances past `delim`, returning the text before it.
  Status SkipUntil(std::string_view delim, std::string_view what) {
    size_t found = input_.find(delim, pos_);
    if (found == std::string_view::npos) {
      return Error(std::string("unterminated ") + std::string(what));
    }
    while (pos_ < found + delim.size()) Advance();
    return Status::OK();
  }
  std::string_view TextUntil(char stop) {
    size_t found = input_.find(stop, pos_);
    if (found == std::string_view::npos) found = input_.size();
    std::string_view out = input_.substr(pos_, found - pos_);
    while (pos_ < found) Advance();
    return out;
  }
  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\r' ||
                        Peek() == '\n')) {
      Advance();
    }
  }
  std::string_view ReadName() {
    size_t begin = pos_;
    if (!AtEnd() && IsNameStart(Peek())) {
      Advance();
      while (!AtEnd() && IsNameChar(Peek())) Advance();
    }
    return input_.substr(begin, pos_ - begin);
  }
  Status Error(std::string message) const {
    return Status::ParseError("line " + std::to_string(line_) + ": " +
                              std::move(message));
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

Status ParseAttributes(Cursor& cur, std::vector<SaxAttribute>* attrs) {
  attrs->clear();
  for (;;) {
    cur.SkipWhitespace();
    if (cur.AtEnd()) return cur.Error("unterminated start tag");
    char c = cur.Peek();
    if (c == '>' || c == '/') return Status::OK();
    std::string_view name = cur.ReadName();
    if (name.empty()) return cur.Error("expected attribute name");
    cur.SkipWhitespace();
    if (cur.AtEnd() || cur.Peek() != '=') {
      return cur.Error("expected '=' after attribute name");
    }
    cur.Advance();
    cur.SkipWhitespace();
    if (cur.AtEnd() || (cur.Peek() != '"' && cur.Peek() != '\'')) {
      return cur.Error("expected quoted attribute value");
    }
    char quote = cur.Peek();
    cur.Advance();
    std::string_view raw = cur.TextUntil(quote);
    if (cur.AtEnd()) return cur.Error("unterminated attribute value");
    cur.Advance();  // closing quote
    attrs->push_back({std::string(name), XmlUnescape(raw)});
  }
}

}  // namespace

Status ParseSax(std::string_view input, SaxHandler* handler,
                const SaxOptions& options) {
  Cursor cur(input);
  std::vector<std::string> open_elements;
  std::vector<SaxAttribute> attrs;
  bool seen_root = false;

  while (!cur.AtEnd()) {
    if (cur.Peek() != '<') {
      std::string_view raw = cur.TextUntil('<');
      if (open_elements.empty()) {
        if (!IsWhitespaceOnly(raw)) {
          return cur.Error("character data outside the root element");
        }
        continue;
      }
      if (options.keep_whitespace_text || !IsWhitespaceOnly(raw)) {
        XUPDATE_RETURN_IF_ERROR(handler->Text(XmlUnescape(raw)));
      }
      continue;
    }
    // A markup construct.
    if (cur.Consume("<!--")) {
      XUPDATE_RETURN_IF_ERROR(cur.SkipUntil("-->", "comment"));
      continue;
    }
    if (cur.Consume("<![CDATA[")) {
      // CDATA content is literal text.
      size_t before = 0;
      (void)before;
      std::string text;
      for (;;) {
        if (cur.AtEnd()) return cur.Error("unterminated CDATA section");
        if (cur.Consume("]]>")) break;
        text += cur.Peek();
        cur.Advance();
      }
      if (open_elements.empty()) {
        return cur.Error("CDATA outside the root element");
      }
      XUPDATE_RETURN_IF_ERROR(handler->Text(text));
      continue;
    }
    if (cur.Consume("<!")) {
      // DOCTYPE or other declaration: skip to '>' (internal subsets with
      // nested brackets are not supported by this subset).
      XUPDATE_RETURN_IF_ERROR(cur.SkipUntil(">", "declaration"));
      continue;
    }
    if (cur.Consume("<?")) {
      std::string_view target = cur.ReadName();
      cur.SkipWhitespace();
      std::string data;
      for (;;) {
        if (cur.AtEnd()) {
          return cur.Error("unterminated processing instruction");
        }
        if (cur.Consume("?>")) break;
        data += cur.Peek();
        cur.Advance();
      }
      if (!target.empty() && target != "xml") {
        XUPDATE_RETURN_IF_ERROR(
            handler->ProcessingInstruction(target, data));
      }
      continue;
    }
    if (cur.Consume("</")) {
      std::string_view name = cur.ReadName();
      cur.SkipWhitespace();
      if (!cur.Consume(">")) return cur.Error("malformed end tag");
      if (open_elements.empty()) {
        return cur.Error("unmatched end tag </" + std::string(name) + ">");
      }
      if (open_elements.back() != name) {
        return cur.Error("end tag </" + std::string(name) +
                         "> does not match <" + open_elements.back() + ">");
      }
      open_elements.pop_back();
      XUPDATE_RETURN_IF_ERROR(handler->EndElement(name));
      continue;
    }
    cur.Advance();  // consume '<'
    std::string_view name = cur.ReadName();
    if (name.empty()) return cur.Error("expected element name after '<'");
    if (open_elements.empty() && seen_root) {
      return cur.Error("multiple root elements");
    }
    XUPDATE_RETURN_IF_ERROR(ParseAttributes(cur, &attrs));
    bool self_close = false;
    if (cur.Peek() == '/') {
      cur.Advance();
      self_close = true;
    }
    if (cur.AtEnd() || cur.Peek() != '>') {
      return cur.Error("malformed start tag <" + std::string(name) + ">");
    }
    cur.Advance();
    seen_root = true;
    XUPDATE_RETURN_IF_ERROR(handler->StartElement(name, attrs));
    if (self_close) {
      XUPDATE_RETURN_IF_ERROR(handler->EndElement(name));
    } else {
      open_elements.emplace_back(name);
    }
  }
  if (!open_elements.empty()) {
    return Status::ParseError("unclosed element <" + open_elements.back() +
                              "> at end of input");
  }
  if (!seen_root) return Status::ParseError("no root element");
  return Status::OK();
}

void SaxWriter::CloseOpenTag(bool self_close) {
  if (tag_open_) {
    out_ += self_close ? "/>" : ">";
    tag_open_ = false;
  }
}

void SaxWriter::Indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(static_cast<size_t>(depth_) * 2, ' ');
}

Status SaxWriter::StartElement(std::string_view name,
                               std::span<const SaxAttribute> attributes) {
  CloseOpenTag(false);
  if (!out_.empty() && !just_text_) Indent();
  out_ += '<';
  out_ += name;
  for (const SaxAttribute& attr : attributes) {
    out_ += ' ';
    out_ += attr.name;
    out_ += "=\"";
    out_ += XmlEscape(attr.value, /*in_attribute=*/true);
    out_ += '"';
  }
  tag_open_ = true;
  just_text_ = false;
  ++depth_;
  return Status::OK();
}

Status SaxWriter::EndElement(std::string_view name) {
  --depth_;
  if (tag_open_) {
    CloseOpenTag(true);
    just_text_ = false;
    return Status::OK();
  }
  if (!just_text_) Indent();
  out_ += "</";
  out_ += name;
  out_ += '>';
  just_text_ = false;
  return Status::OK();
}

Status SaxWriter::Text(std::string_view text) {
  CloseOpenTag(false);
  out_ += XmlEscape(text, /*in_attribute=*/false);
  just_text_ = true;
  return Status::OK();
}

void SaxWriter::Raw(std::string_view xml_text) {
  CloseOpenTag(false);
  out_ += xml_text;
  just_text_ = true;
}

Status SaxWriter::ProcessingInstruction(std::string_view target,
                                        std::string_view data) {
  CloseOpenTag(false);
  out_ += "<?";
  out_ += target;
  if (!data.empty()) {
    out_ += ' ';
    out_ += data;
  }
  out_ += "?>";
  // A PI between text runs must not trigger indentation, or the
  // <?xuid N?> markers would split text with whitespace.
  just_text_ = true;
  return Status::OK();
}

}  // namespace xupdate::xml
