#include "xml/document.h"

#include <algorithm>
#include <cassert>

namespace xupdate::xml {

char NodeTypeToChar(NodeType type) {
  switch (type) {
    case NodeType::kElement:
      return 'e';
    case NodeType::kAttribute:
      return 'a';
    case NodeType::kText:
      return 't';
  }
  return '?';
}

bool NodeTypeFromChar(char c, NodeType* out) {
  switch (c) {
    case 'e':
      *out = NodeType::kElement;
      return true;
    case 'a':
      *out = NodeType::kAttribute;
      return true;
    case 't':
      *out = NodeType::kText;
      return true;
    default:
      return false;
  }
}

std::string_view NodeTypeToString(NodeType type) {
  switch (type) {
    case NodeType::kElement:
      return "element";
    case NodeType::kAttribute:
      return "attribute";
    case NodeType::kText:
      return "text";
  }
  return "unknown";
}

NodeId Document::Allocate(NodeType type, std::string_view name,
                          std::string_view value) {
  NodeId id = next_id_++;
  NodeRecord rec;
  rec.type = type;
  rec.alive = true;
  rec.name = name.empty() ? 0 : names_.Intern(name);
  rec.value = std::string(value);
  nodes_.emplace(id, std::move(rec));
  return id;
}

NodeId Document::NewElement(std::string_view name) {
  return Allocate(NodeType::kElement, name, "");
}

NodeId Document::NewText(std::string_view value) {
  return Allocate(NodeType::kText, "", value);
}

NodeId Document::NewAttribute(std::string_view name,
                              std::string_view value) {
  return Allocate(NodeType::kAttribute, name, value);
}

Status Document::CreateWithId(NodeId id, NodeType type,
                              std::string_view name,
                              std::string_view value) {
  if (id == kInvalidNode) {
    return Status::InvalidArgument("node id 0 is reserved");
  }
  if (Exists(id)) {
    return Status::InvalidArgument("node id already in use: " +
                                   std::to_string(id));
  }
  NodeRecord rec;
  rec.type = type;
  rec.alive = true;
  rec.name = name.empty() ? 0 : names_.Intern(name);
  rec.value = std::string(value);
  nodes_.emplace(id, std::move(rec));
  if (id >= next_id_) next_id_ = id + 1;
  return Status::OK();
}

Status Document::SetRoot(NodeId id) {
  if (!Exists(id)) return Status::NotFound("root id does not exist");
  if (Get(id).parent != kInvalidNode) {
    return Status::InvalidArgument("root must be detached");
  }
  root_ = id;
  return Status::OK();
}

Status Document::CheckInsertable(NodeId node) const {
  if (!Exists(node)) return Status::NotFound("inserted node not found");
  if (Get(node).parent != kInvalidNode) {
    return Status::InvalidArgument("inserted node must be detached");
  }
  return Status::OK();
}

Status Document::AppendChild(NodeId parent, NodeId child) {
  if (!Exists(parent)) return Status::NotFound("parent not found");
  if (Get(parent).type != NodeType::kElement) {
    return Status::NotApplicable("children can only attach to elements");
  }
  XUPDATE_RETURN_IF_ERROR(CheckInsertable(child));
  if (Get(child).type == NodeType::kAttribute) {
    return Status::NotApplicable("attribute cannot be a child");
  }
  Get(parent).children.push_back(child);
  Get(child).parent = parent;
  return Status::OK();
}

Status Document::PrependChild(NodeId parent, NodeId child) {
  if (!Exists(parent)) return Status::NotFound("parent not found");
  if (Get(parent).type != NodeType::kElement) {
    return Status::NotApplicable("children can only attach to elements");
  }
  XUPDATE_RETURN_IF_ERROR(CheckInsertable(child));
  if (Get(child).type == NodeType::kAttribute) {
    return Status::NotApplicable("attribute cannot be a child");
  }
  auto& kids = Get(parent).children;
  kids.insert(kids.begin(), child);
  Get(child).parent = parent;
  return Status::OK();
}

Status Document::InsertBefore(NodeId ref, NodeId node) {
  if (!Exists(ref)) return Status::NotFound("reference node not found");
  NodeId parent = Get(ref).parent;
  if (parent == kInvalidNode) {
    return Status::NotApplicable("reference node has no parent");
  }
  if (Get(ref).type == NodeType::kAttribute) {
    return Status::NotApplicable("cannot insert siblings of an attribute");
  }
  XUPDATE_RETURN_IF_ERROR(CheckInsertable(node));
  if (Get(node).type == NodeType::kAttribute) {
    return Status::NotApplicable("attribute cannot be a sibling");
  }
  auto& kids = Get(parent).children;
  auto it = std::find(kids.begin(), kids.end(), ref);
  assert(it != kids.end());
  kids.insert(it, node);
  Get(node).parent = parent;
  return Status::OK();
}

Status Document::InsertAfter(NodeId ref, NodeId node) {
  if (!Exists(ref)) return Status::NotFound("reference node not found");
  NodeId parent = Get(ref).parent;
  if (parent == kInvalidNode) {
    return Status::NotApplicable("reference node has no parent");
  }
  if (Get(ref).type == NodeType::kAttribute) {
    return Status::NotApplicable("cannot insert siblings of an attribute");
  }
  XUPDATE_RETURN_IF_ERROR(CheckInsertable(node));
  if (Get(node).type == NodeType::kAttribute) {
    return Status::NotApplicable("attribute cannot be a sibling");
  }
  auto& kids = Get(parent).children;
  auto it = std::find(kids.begin(), kids.end(), ref);
  assert(it != kids.end());
  kids.insert(it + 1, node);
  Get(node).parent = parent;
  return Status::OK();
}

Status Document::AddAttribute(NodeId element, NodeId attribute) {
  if (!Exists(element)) return Status::NotFound("element not found");
  if (Get(element).type != NodeType::kElement) {
    return Status::NotApplicable("attributes can only attach to elements");
  }
  XUPDATE_RETURN_IF_ERROR(CheckInsertable(attribute));
  if (Get(attribute).type != NodeType::kAttribute) {
    return Status::NotApplicable("node is not an attribute");
  }
  Get(element).attributes.push_back(attribute);
  Get(attribute).parent = element;
  return Status::OK();
}

Status Document::Detach(NodeId id) {
  if (!Exists(id)) return Status::NotFound("node not found");
  NodeId parent = Get(id).parent;
  if (parent == kInvalidNode) {
    if (root_ == id) root_ = kInvalidNode;
    return Status::OK();
  }
  auto& rec = Get(parent);
  auto& list = Get(id).type == NodeType::kAttribute ? rec.attributes
                                                    : rec.children;
  auto it = std::find(list.begin(), list.end(), id);
  assert(it != list.end());
  list.erase(it);
  Get(id).parent = kInvalidNode;
  return Status::OK();
}

Status Document::DeleteSubtree(NodeId id) {
  XUPDATE_RETURN_IF_ERROR(Detach(id));
  // Erase records bottom-up; ids are never reused because next_id_ only
  // grows.
  std::vector<NodeId> stack = {id};
  std::vector<NodeId> order;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    const auto& rec = Get(v);
    for (NodeId a : rec.attributes) stack.push_back(a);
    for (NodeId c : rec.children) stack.push_back(c);
  }
  for (NodeId v : order) nodes_.erase(v);
  return Status::OK();
}

Status Document::Rename(NodeId id, std::string_view name) {
  if (!Exists(id)) return Status::NotFound("node not found");
  if (Get(id).type == NodeType::kText) {
    return Status::NotApplicable("text nodes have no name");
  }
  Get(id).name = names_.Intern(name);
  return Status::OK();
}

Status Document::SetValue(NodeId id, std::string_view value) {
  if (!Exists(id)) return Status::NotFound("node not found");
  if (Get(id).type == NodeType::kElement) {
    return Status::NotApplicable("element nodes have no direct value");
  }
  Get(id).value = std::string(value);
  return Status::OK();
}

Status Document::ReplaceNode(NodeId target,
                             std::span<const NodeId> replacements) {
  if (!Exists(target)) return Status::NotFound("target not found");
  NodeId parent = Get(target).parent;
  bool is_attr = Get(target).type == NodeType::kAttribute;
  for (NodeId r : replacements) {
    XUPDATE_RETURN_IF_ERROR(CheckInsertable(r));
    bool r_attr = Get(r).type == NodeType::kAttribute;
    if (r_attr != is_attr) {
      return Status::NotApplicable(
          "replacement kind must match target kind (attribute vs not)");
    }
  }
  if (parent == kInvalidNode) {
    // Replacing a detached tree root (aggregation rule D6 on a parameter
    // tree): only meaningful through ReplaceDetachedRoot handling at the
    // caller; here we just delete the target.
    if (!replacements.empty()) {
      return Status::NotApplicable(
          "cannot replace a parentless node with new content");
    }
    return DeleteSubtree(target);
  }
  auto& rec = Get(parent);
  auto& list = is_attr ? rec.attributes : rec.children;
  auto it = std::find(list.begin(), list.end(), target);
  assert(it != list.end());
  size_t pos = static_cast<size_t>(it - list.begin());
  XUPDATE_RETURN_IF_ERROR(DeleteSubtree(target));
  auto& list2 = is_attr ? Get(parent).attributes : Get(parent).children;
  list2.insert(list2.begin() + static_cast<ptrdiff_t>(pos),
               replacements.begin(), replacements.end());
  for (NodeId r : replacements) Get(r).parent = parent;
  return Status::OK();
}

Status Document::ReplaceChildren(NodeId element,
                                 std::span<const NodeId> replacements) {
  if (!Exists(element)) return Status::NotFound("element not found");
  if (Get(element).type != NodeType::kElement) {
    return Status::NotApplicable("repC target must be an element");
  }
  for (NodeId r : replacements) {
    XUPDATE_RETURN_IF_ERROR(CheckInsertable(r));
    if (Get(r).type == NodeType::kAttribute) {
      return Status::NotApplicable("attribute cannot be a child");
    }
  }
  std::vector<NodeId> old_children = Get(element).children;
  for (NodeId c : old_children) XUPDATE_RETURN_IF_ERROR(DeleteSubtree(c));
  for (NodeId r : replacements) {
    XUPDATE_RETURN_IF_ERROR(AppendChild(element, r));
  }
  return Status::OK();
}

Result<NodeId> Document::AdoptSubtree(
    const Document& src, NodeId src_root, bool preserve_ids,
    std::unordered_map<NodeId, NodeId>* id_map) {
  if (!src.Exists(src_root)) {
    return Status::NotFound("source subtree root not found");
  }
  // Iterative copy preserving child/attribute order.
  struct Frame {
    NodeId src;
    NodeId dst_parent;
    bool as_attribute;
  };
  NodeId new_root = kInvalidNode;
  std::vector<Frame> stack = {{src_root, kInvalidNode, false}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const NodeRecord& rec = src.Get(f.src);
    std::string_view nm = src.names_.Get(rec.name);
    NodeId dst;
    if (preserve_ids) {
      XUPDATE_RETURN_IF_ERROR(CreateWithId(f.src, rec.type, nm, rec.value));
      dst = f.src;
    } else {
      dst = Allocate(rec.type, nm, rec.value);
    }
    if (id_map != nullptr) (*id_map)[f.src] = dst;
    if (f.dst_parent != kInvalidNode) {
      if (f.as_attribute) {
        XUPDATE_RETURN_IF_ERROR(AddAttribute(f.dst_parent, dst));
      } else {
        XUPDATE_RETURN_IF_ERROR(AppendChild(f.dst_parent, dst));
      }
    } else {
      new_root = dst;
    }
    // Push children in reverse so they pop in order; attributes likewise.
    for (auto it = rec.children.rbegin(); it != rec.children.rend(); ++it) {
      stack.push_back({*it, dst, false});
    }
    for (auto it = rec.attributes.rbegin(); it != rec.attributes.rend();
         ++it) {
      stack.push_back({*it, dst, true});
    }
  }
  return new_root;
}

int Document::Level(NodeId id) const {
  int level = 0;
  NodeId cur = Get(id).parent;
  while (cur != kInvalidNode) {
    ++level;
    cur = Get(cur).parent;
  }
  return level;
}

bool Document::IsAncestor(NodeId anc, NodeId desc) const {
  if (!Exists(anc) || !Exists(desc)) return false;
  NodeId cur = Get(desc).parent;
  while (cur != kInvalidNode) {
    if (cur == anc) return true;
    cur = Get(cur).parent;
  }
  return false;
}

std::vector<NodeId> Document::PathToRoot(NodeId id) const {
  std::vector<NodeId> path;
  NodeId cur = id;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    cur = Get(cur).parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int Document::Compare(NodeId a, NodeId b) const {
  if (a == b) return 0;
  std::vector<NodeId> pa = PathToRoot(a);
  std::vector<NodeId> pb = PathToRoot(b);
  if (pa.front() != pb.front()) {
    // Different detached trees: order by root id (arbitrary but total).
    return pa.front() < pb.front() ? -1 : 1;
  }
  size_t i = 0;
  while (i < pa.size() && i < pb.size() && pa[i] == pb[i]) ++i;
  if (i == pa.size()) return -1;  // a is an ancestor of b
  if (i == pb.size()) return 1;   // b is an ancestor of a
  // Divergence below the common ancestor pa[i-1].
  NodeId anc = pa[i - 1];
  NodeId ca = pa[i];
  NodeId cb = pb[i];
  const NodeRecord& rec = Get(anc);
  bool ca_attr = Get(ca).type == NodeType::kAttribute;
  bool cb_attr = Get(cb).type == NodeType::kAttribute;
  // An element's attributes precede its children in our total order.
  if (ca_attr != cb_attr) return ca_attr ? -1 : 1;
  const auto& list = ca_attr ? rec.attributes : rec.children;
  for (NodeId c : list) {
    if (c == ca) return -1;
    if (c == cb) return 1;
  }
  assert(false && "siblings not found under common ancestor");
  return 0;
}

int Document::ChildIndex(NodeId id) const {
  NodeId parent = Get(id).parent;
  if (parent == kInvalidNode) return -1;
  if (Get(id).type == NodeType::kAttribute) return -1;
  const auto& kids = Get(parent).children;
  for (size_t i = 0; i < kids.size(); ++i) {
    if (kids[i] == id) return static_cast<int>(i);
  }
  return -1;
}

void Document::Visit(NodeId start,
                     const std::function<bool(NodeId)>& visitor) const {
  std::vector<NodeId> stack = {start};
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    if (!visitor(v)) return;
    const NodeRecord& rec = Get(v);
    for (auto it = rec.children.rbegin(); it != rec.children.rend(); ++it) {
      stack.push_back(*it);
    }
    for (auto it = rec.attributes.rbegin(); it != rec.attributes.rend();
         ++it) {
      stack.push_back(*it);
    }
  }
}

std::vector<NodeId> Document::AllNodesInOrder() const {
  std::vector<NodeId> out;
  if (root_ == kInvalidNode) return out;
  out.reserve(nodes_.size());
  Visit(root_, [&](NodeId v) {
    out.push_back(v);
    return true;
  });
  return out;
}

Status Document::Validate() const {
  for (const auto& [id, rec] : nodes_) {
    if (!rec.alive) {
      return Status::Internal("dead record retained for node " +
                              std::to_string(id));
    }
    if (rec.parent != kInvalidNode) {
      auto it = nodes_.find(rec.parent);
      if (it == nodes_.end()) {
        return Status::Internal("dangling parent for node " +
                                std::to_string(id));
      }
      const auto& plist = rec.type == NodeType::kAttribute
                              ? it->second.attributes
                              : it->second.children;
      if (std::find(plist.begin(), plist.end(), id) == plist.end()) {
        return Status::Internal("parent does not list node " +
                                std::to_string(id));
      }
    }
    for (NodeId c : rec.children) {
      auto it = nodes_.find(c);
      if (it == nodes_.end() || it->second.parent != id) {
        return Status::Internal("child link broken at node " +
                                std::to_string(id));
      }
      if (it->second.type == NodeType::kAttribute) {
        return Status::Internal("attribute stored as child of node " +
                                std::to_string(id));
      }
    }
    for (NodeId a : rec.attributes) {
      auto it = nodes_.find(a);
      if (it == nodes_.end() || it->second.parent != id ||
          it->second.type != NodeType::kAttribute) {
        return Status::Internal("attribute link broken at node " +
                                std::to_string(id));
      }
    }
    if (rec.type != NodeType::kElement &&
        (!rec.children.empty() || !rec.attributes.empty())) {
      return Status::Internal("non-element node with children");
    }
  }
  if (root_ != kInvalidNode) {
    auto it = nodes_.find(root_);
    if (it == nodes_.end() || it->second.parent != kInvalidNode) {
      return Status::Internal("invalid document root");
    }
  }
  return Status::OK();
}

bool Document::SubtreeEquals(const Document& a, NodeId ra,
                             const Document& b, NodeId rb,
                             bool compare_ids) {
  if (!a.Exists(ra) || !b.Exists(rb)) return false;
  if (compare_ids && ra != rb) return false;
  const NodeRecord& na = a.Get(ra);
  const NodeRecord& nb = b.Get(rb);
  if (na.type != nb.type) return false;
  if (a.names_.Get(na.name) != b.names_.Get(nb.name)) return false;
  if (na.value != nb.value) return false;
  if (na.children.size() != nb.children.size()) return false;
  if (na.attributes.size() != nb.attributes.size()) return false;
  for (size_t i = 0; i < na.children.size(); ++i) {
    if (!SubtreeEquals(a, na.children[i], b, nb.children[i], compare_ids)) {
      return false;
    }
  }
  // Attribute order is irrelevant: match by name.
  for (NodeId aa : na.attributes) {
    bool matched = false;
    for (NodeId ba : nb.attributes) {
      if (a.names_.Get(a.Get(aa).name) != b.names_.Get(b.Get(ba).name)) {
        continue;
      }
      if (SubtreeEquals(a, aa, b, ba, compare_ids)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

void Document::ReserveIdsBelow(NodeId floor) {
  if (next_id_ < floor) next_id_ = floor;
}

}  // namespace xupdate::xml
