#ifndef XUPDATE_XML_SERIALIZER_H_
#define XUPDATE_XML_SERIALIZER_H_

#include <string>

#include "common/result.h"
#include "xml/document.h"

namespace xupdate::xml {

struct SerializeOptions {
  // Human-readable indentation. Machine round-trips use false.
  bool pretty = false;
  // Embed node identifiers so a later parse reconstructs the exact id
  // assignment (paper §4.1/§4.3: "node identifiers and labeling have
  // been stored within the related documents"). Per element a reserved
  // attribute `xu:ids="<element-id>[;<attr-id>,...]"`; each text node is
  // preceded by a `<?xuid N?>` processing instruction. Both annotations
  // can be produced by a single forward pass (streaming execution).
  bool with_ids = false;
  // Serialize attributes in name order (attribute order is semantically
  // irrelevant); used for canonical comparison of documents.
  bool canonical_attributes = false;
};

// Serializes the subtree rooted at `root` (must be an element).
Result<std::string> SerializeSubtree(const Document& doc, NodeId root,
                                     const SerializeOptions& options = {});

// Serializes the whole rooted document.
Result<std::string> SerializeDocument(const Document& doc,
                                      const SerializeOptions& options = {});

// Name of the reserved id-annotation attribute.
inline constexpr char kIdsAttributeName[] = "xu:ids";

}  // namespace xupdate::xml

#endif  // XUPDATE_XML_SERIALIZER_H_
