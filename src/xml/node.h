#ifndef XUPDATE_XML_NODE_H_
#define XUPDATE_XML_NODE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xupdate::xml {

// Unique, immutable, never-reused node identifier (paper §4.1). Id 0 is
// reserved as "invalid / unassigned".
using NodeId = uint64_t;
inline constexpr NodeId kInvalidNode = 0;

// Node kinds of the paper's tree model (§2.1): elements, attributes and
// text nodes. Coherently with XDM, an attribute's value is a property of
// the attribute node, while element text content is a separate node.
enum class NodeType : uint8_t {
  kElement = 0,
  kAttribute = 1,
  kText = 2,
};

// Single-character type tags used in serialized labels ("e", "a", "t"),
// matching the paper's τ function.
char NodeTypeToChar(NodeType type);
bool NodeTypeFromChar(char c, NodeType* out);
std::string_view NodeTypeToString(NodeType type);

// Storage record for one node. `name` is an interned id into the owning
// document's NamePool (0 when the node kind has no name).
struct NodeRecord {
  NodeType type = NodeType::kElement;
  bool alive = false;
  NodeId parent = kInvalidNode;
  uint32_t name = 0;
  std::string value;             // text / attribute value
  std::vector<NodeId> children;  // ordered element+text children
  std::vector<NodeId> attributes;
};

}  // namespace xupdate::xml

#endif  // XUPDATE_XML_NODE_H_
