#ifndef XUPDATE_XML_NAME_POOL_H_
#define XUPDATE_XML_NAME_POOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xupdate::xml {

// Interns element/attribute names. XML documents repeat a handful of tag
// names millions of times; storing a 4-byte id per node instead of a
// std::string keeps big in-memory documents affordable.
class NamePool {
 public:
  NamePool() { names_.emplace_back(); }  // id 0 = empty name

  // Returns the id for `name`, interning it on first use.
  uint32_t Intern(std::string_view name) {
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  std::string_view Get(uint32_t id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  // deque: growth never moves stored strings, so Get()'s string_views
  // stay valid for the pool's lifetime.
  std::deque<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace xupdate::xml

#endif  // XUPDATE_XML_NAME_POOL_H_
