#ifndef XUPDATE_XML_DOCUMENT_H_
#define XUPDATE_XML_DOCUMENT_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "xml/name_pool.h"
#include "xml/node.h"

namespace xupdate::xml {

// Mutable XML document / forest following the paper's tree model
// D = (V, γ, λ, ν) (§2.1):
//  * V       — the set of live nodes (elements, attributes, texts);
//  * γ       — children(), attributes();
//  * λ, ν    — name(), value().
//
// Identity rules (paper §4.1): every node has a unique id, ids are never
// reused, and deleting a node does not free its id. A Document may hold
// several detached trees at once (update-operation parameters are forests
// living in the producer's id space), but at most one node is designated
// as *the* root.
//
// The class is copyable: obtainable-set enumeration (Definition 2) and
// the aggregation rule D6 both need independent snapshots.
class Document {
 public:
  Document() = default;

  Document(const Document&) = default;
  Document& operator=(const Document&) = default;
  Document(Document&&) noexcept = default;
  Document& operator=(Document&&) noexcept = default;

  // --- Node creation -----------------------------------------------------

  // Creates a detached node with a fresh id.
  NodeId NewElement(std::string_view name);
  NodeId NewText(std::string_view value);
  NodeId NewAttribute(std::string_view name, std::string_view value);

  // Creates a detached node with a caller-chosen id (used when
  // materializing PUL parameter trees whose ids were assigned by a
  // producer). Fails if the id is 0 or already present.
  Status CreateWithId(NodeId id, NodeType type, std::string_view name,
                      std::string_view value);

  // --- Root --------------------------------------------------------------

  Status SetRoot(NodeId id);
  NodeId root() const { return root_; }

  // --- Accessors ----------------------------------------------------------

  bool Exists(NodeId id) const { return nodes_.count(id) != 0; }
  NodeType type(NodeId id) const { return Get(id).type; }
  NodeId parent(NodeId id) const { return Get(id).parent; }
  std::string_view name(NodeId id) const {
    return names_.Get(Get(id).name);
  }
  const std::string& value(NodeId id) const { return Get(id).value; }
  const std::vector<NodeId>& children(NodeId id) const {
    return Get(id).children;
  }
  const std::vector<NodeId>& attributes(NodeId id) const {
    return Get(id).attributes;
  }
  size_t node_count() const { return nodes_.size(); }

  // --- Structural edits ---------------------------------------------------
  // All edits require `child`/`node` to exist; insertion requires the
  // inserted node to be detached (no parent).

  Status AppendChild(NodeId parent, NodeId child);
  Status PrependChild(NodeId parent, NodeId child);
  // Inserts `node` as sibling immediately before/after `ref`.
  Status InsertBefore(NodeId ref, NodeId node);
  Status InsertAfter(NodeId ref, NodeId node);
  Status AddAttribute(NodeId element, NodeId attribute);

  // Unlinks `id` from its parent; the subtree stays alive and detached.
  Status Detach(NodeId id);
  // Detaches and erases the whole subtree (ids are never reused).
  Status DeleteSubtree(NodeId id);

  Status Rename(NodeId id, std::string_view name);
  Status SetValue(NodeId id, std::string_view value);

  // Replaces `target` with the detached nodes in `replacements`
  // (possibly none), preserving position; the old subtree is erased.
  Status ReplaceNode(NodeId target, std::span<const NodeId> replacements);

  // Deletes all children (not attributes) of `element` and appends the
  // detached `replacements`. The spec's repC takes a single optional text
  // node; we accept a list (see DESIGN.md on the repC generalization).
  Status ReplaceChildren(NodeId element,
                         std::span<const NodeId> replacements);

  // --- Cross-document copies ----------------------------------------------

  // Deep-copies the subtree rooted at `src_root` of `src` into this
  // document. If `preserve_ids` is true the source ids are kept (fails on
  // clash); otherwise fresh ids are assigned. `id_map`, when non-null,
  // receives src-id -> new-id for every copied node. Returns the new root.
  Result<NodeId> AdoptSubtree(const Document& src, NodeId src_root,
                              bool preserve_ids,
                              std::unordered_map<NodeId, NodeId>* id_map);

  // --- Order and structure queries (ground truth for label predicates) ----

  // 0-based depth of `id`; 0 for a tree root.
  int Level(NodeId id) const;
  // True if `anc` is a proper ancestor of `desc`.
  bool IsAncestor(NodeId anc, NodeId desc) const;
  // Document order: -1 if a < b, 0 if a == b, +1 if a > b. An element
  // precedes its attributes, which precede its children. Nodes in
  // different detached trees are ordered by their tree roots' ids.
  int Compare(NodeId a, NodeId b) const;
  // Index of `id` within its parent's child list, or -1 if detached /
  // an attribute.
  int ChildIndex(NodeId id) const;

  // --- Traversal -----------------------------------------------------------

  // Preorder visit of the subtree at `start` (element, then its
  // attributes, then children). Visitor returns false to stop early.
  void Visit(NodeId start,
             const std::function<bool(NodeId)>& visitor) const;

  // All live node ids of the tree rooted at root() in document order.
  std::vector<NodeId> AllNodesInOrder() const;

  // --- Validation / equality -----------------------------------------------

  // Checks internal invariants (parent/child symmetry, liveness, root);
  // used by tests and debug assertions.
  Status Validate() const;

  // Structural equality of two subtrees, optionally also requiring node
  // ids to match. Attribute order is irrelevant (paper Fig. 1).
  static bool SubtreeEquals(const Document& a, NodeId ra,
                            const Document& b, NodeId rb,
                            bool compare_ids);

  // Upper bound on ids handed out so far; fresh ids are > this.
  NodeId max_assigned_id() const { return next_id_ - 1; }

  // Makes this document allocate ids starting at `floor` (if beyond the
  // current counter). Producers use disjoint id spaces (§4.1).
  void ReserveIdsBelow(NodeId floor);

 private:
  const NodeRecord& Get(NodeId id) const { return nodes_.at(id); }
  NodeRecord& Get(NodeId id) { return nodes_.at(id); }

  NodeId Allocate(NodeType type, std::string_view name,
                  std::string_view value);
  Status CheckInsertable(NodeId node) const;
  // Root-to-node path (inclusive).
  std::vector<NodeId> PathToRoot(NodeId id) const;

  std::unordered_map<NodeId, NodeRecord> nodes_;
  NamePool names_;
  NodeId root_ = kInvalidNode;
  NodeId next_id_ = 1;
};

}  // namespace xupdate::xml

#endif  // XUPDATE_XML_DOCUMENT_H_
