#include "xml/serializer.h"

#include <algorithm>
#include <string>
#include <vector>

#include "xml/sax.h"

namespace xupdate::xml {

namespace {

// Builds the xu:ids annotation for `element`; `attrs` is the attribute
// list in the order it is being serialized (the annotation is
// positional). Text-child ids are emitted separately as <?xuid N?>
// markers so the format can be produced by a streaming writer.
std::string BuildIdsAnnotation(NodeId element,
                               const std::vector<NodeId>& attrs) {
  std::string out = std::to_string(element);
  if (!attrs.empty()) {
    out += ';';
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(attrs[i]);
    }
  }
  return out;
}

Status EmitSubtree(const Document& doc, NodeId node, SaxWriter* writer,
                   const SerializeOptions& options) {
  if (doc.type(node) == NodeType::kText) {
    if (options.with_ids) {
      XUPDATE_RETURN_IF_ERROR(
          writer->ProcessingInstruction("xuid", std::to_string(node)));
    }
    return writer->Text(doc.value(node));
  }
  if (doc.type(node) != NodeType::kElement) {
    return Status::InvalidArgument(
        "only element and text nodes serialize inline");
  }
  std::vector<SaxAttribute> attrs;
  std::vector<NodeId> attr_ids(doc.attributes(node).begin(),
                               doc.attributes(node).end());
  if (options.canonical_attributes) {
    std::sort(attr_ids.begin(), attr_ids.end(),
              [&](NodeId a, NodeId b) { return doc.name(a) < doc.name(b); });
  }
  for (NodeId a : attr_ids) {
    attrs.push_back({std::string(doc.name(a)), doc.value(a)});
  }
  if (options.with_ids) {
    attrs.push_back({kIdsAttributeName, BuildIdsAnnotation(node, attr_ids)});
  }
  XUPDATE_RETURN_IF_ERROR(writer->StartElement(doc.name(node), attrs));
  for (NodeId c : doc.children(node)) {
    XUPDATE_RETURN_IF_ERROR(EmitSubtree(doc, c, writer, options));
  }
  return writer->EndElement(doc.name(node));
}

}  // namespace

Result<std::string> SerializeSubtree(const Document& doc, NodeId root,
                                     const SerializeOptions& options) {
  if (!doc.Exists(root)) return Status::NotFound("subtree root not found");
  if (doc.type(root) != NodeType::kElement) {
    return Status::InvalidArgument("subtree root must be an element");
  }
  SaxWriter writer(options.pretty);
  XUPDATE_RETURN_IF_ERROR(EmitSubtree(doc, root, &writer, options));
  return writer.TakeString();
}

Result<std::string> SerializeDocument(const Document& doc,
                                      const SerializeOptions& options) {
  if (doc.root() == kInvalidNode) {
    return Status::InvalidArgument("document has no root");
  }
  return SerializeSubtree(doc, doc.root(), options);
}

}  // namespace xupdate::xml
