#ifndef XUPDATE_XML_PARSER_H_
#define XUPDATE_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/document.h"
#include "xml/sax.h"

namespace xupdate::xml {

struct ParseOptions {
  SaxOptions sax;
  // Honor `xu:ids` annotations (see SerializeOptions::with_ids),
  // reconstructing the exact node-id assignment; the annotation
  // attribute itself is not materialized as a document node. Documents
  // must be either fully annotated or not annotated at all — a clash
  // between an explicit id and an auto-assigned one is a parse error.
  bool read_ids = true;
};

// Parses `input` into a Document (the root element becomes the document
// root).
Result<Document> ParseDocument(std::string_view input,
                               const ParseOptions& options = {});

// Parses `input` as a standalone fragment into `doc` without touching
// doc's root; returns the id of the fragment's (detached) root element.
Result<NodeId> ParseFragment(Document* doc, std::string_view input,
                             const ParseOptions& options = {});

}  // namespace xupdate::xml

#endif  // XUPDATE_XML_PARSER_H_
