#include "xml/parser.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"
#include "xml/serializer.h"

namespace xupdate::xml {

namespace {

// Parsed form of one xu:ids annotation.
struct IdsAnnotation {
  NodeId self = kInvalidNode;
  std::vector<NodeId> attribute_ids;  // positional
};

Status ParseIdsAnnotation(std::string_view text, IdsAnnotation* out) {
  std::vector<std::string_view> fields;
  size_t pos = 0;
  while (fields.size() < 2) {
    size_t semi = text.find(';', pos);
    if (semi == std::string_view::npos) {
      fields.push_back(text.substr(pos));
      break;
    }
    fields.push_back(text.substr(pos, semi - pos));
    pos = semi + 1;
  }
  int64_t self = ParseNonNegativeInt(fields[0]);
  if (self <= 0) return Status::ParseError("bad xu:ids self id");
  out->self = static_cast<NodeId>(self);
  if (fields.size() > 1 && !fields[1].empty()) {
    std::string_view rest = fields[1];
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view item = rest.substr(0, comma);
      int64_t id = ParseNonNegativeInt(item);
      if (id <= 0) return Status::ParseError("bad xu:ids attribute id");
      out->attribute_ids.push_back(static_cast<NodeId>(id));
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
    }
  }
  return Status::OK();
}

// SAX handler that builds a Document subtree.
class DomBuilder : public SaxHandler {
 public:
  DomBuilder(Document* doc, bool read_ids)
      : doc_(doc), read_ids_(read_ids) {}

  NodeId root() const { return root_; }

  Status StartElement(std::string_view name,
                      std::span<const SaxAttribute> attributes) override {
    IdsAnnotation ids;
    bool annotated = false;
    if (read_ids_) {
      for (const SaxAttribute& a : attributes) {
        if (a.name == kIdsAttributeName) {
          XUPDATE_RETURN_IF_ERROR(ParseIdsAnnotation(a.value, &ids));
          annotated = true;
          break;
        }
      }
    }
    NodeId element;
    if (annotated) {
      XUPDATE_RETURN_IF_ERROR(
          doc_->CreateWithId(ids.self, NodeType::kElement, name, ""));
      element = ids.self;
    } else {
      element = doc_->NewElement(name);
    }
    size_t attr_pos = 0;
    for (const SaxAttribute& a : attributes) {
      if (read_ids_ && a.name == kIdsAttributeName) continue;
      NodeId attr;
      if (annotated && attr_pos < ids.attribute_ids.size()) {
        attr = ids.attribute_ids[attr_pos];
        XUPDATE_RETURN_IF_ERROR(doc_->CreateWithId(
            attr, NodeType::kAttribute, a.name, a.value));
      } else {
        attr = doc_->NewAttribute(a.name, a.value);
      }
      XUPDATE_RETURN_IF_ERROR(doc_->AddAttribute(element, attr));
      ++attr_pos;
    }
    if (stack_.empty()) {
      root_ = element;
    } else {
      XUPDATE_RETURN_IF_ERROR(doc_->AppendChild(stack_.back(), element));
    }
    stack_.push_back(element);
    pending_text_id_ = kInvalidNode;
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    stack_.pop_back();
    pending_text_id_ = kInvalidNode;
    return Status::OK();
  }

  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override {
    if (!read_ids_ || target != "xuid") return Status::OK();
    int64_t id = ParseNonNegativeInt(Trim(data));
    if (id <= 0) return Status::ParseError("bad <?xuid?> id");
    pending_text_id_ = static_cast<NodeId>(id);
    return Status::OK();
  }

  Status Text(std::string_view text) override {
    if (stack_.empty()) {
      return Status::ParseError("text outside the root element");
    }
    NodeId node;
    if (pending_text_id_ != kInvalidNode) {
      XUPDATE_RETURN_IF_ERROR(
          doc_->CreateWithId(pending_text_id_, NodeType::kText, "", text));
      node = pending_text_id_;
      pending_text_id_ = kInvalidNode;
    } else {
      node = doc_->NewText(text);
    }
    return doc_->AppendChild(stack_.back(), node);
  }

 private:
  Document* doc_;
  bool read_ids_;
  NodeId root_ = kInvalidNode;
  std::vector<NodeId> stack_;
  NodeId pending_text_id_ = kInvalidNode;
};

}  // namespace

Result<Document> ParseDocument(std::string_view input,
                               const ParseOptions& options) {
  Document doc;
  DomBuilder builder(&doc, options.read_ids);
  XUPDATE_RETURN_IF_ERROR(ParseSax(input, &builder, options.sax));
  XUPDATE_RETURN_IF_ERROR(doc.SetRoot(builder.root()));
  return doc;
}

Result<NodeId> ParseFragment(Document* doc, std::string_view input,
                             const ParseOptions& options) {
  DomBuilder builder(doc, options.read_ids);
  XUPDATE_RETURN_IF_ERROR(ParseSax(input, &builder, options.sax));
  return builder.root();
}

}  // namespace xupdate::xml
