#include "store/compact.h"

#include <map>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/invert.h"
#include "core/reduce.h"
#include "pul/apply.h"
#include "pul/pul_io.h"
#include "xml/document.h"

namespace xupdate::store {

namespace {

// Replacement frames for one compacted segment (from, to]: the
// aggregate, then undos for to .. from+1.
struct Replacement {
  uint64_t from = 0;
  uint64_t to = 0;
  std::vector<WalFrame> frames;
};

// Builds the replacement for segment (from, to] whose plain PULs are
// `puls` (versions from+1 .. to, in order). Returns kNotApplicable when
// a byte-identity check fails — the caller skips the segment; any other
// error is real.
Result<Replacement> BuildReplacement(const VersionStore& store,
                                     const StoreOptions& options,
                                     uint64_t from, uint64_t to,
                                     std::vector<pul::Pul> puls,
                                     size_t* input_ops, size_t* output_ops,
                                     obs::TraceLane* lane) {
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, store.Checkout(from));
  XUPDATE_ASSIGN_OR_RETURN(std::string base_bytes,
                           VersionStore::SerializeAnnotated(doc));
  // Forward replay, recording the reference serialization of every
  // version and computing + byte-checking the undo delta of every edge.
  std::vector<std::string> refs;  // refs[v - from] = bytes of doc_v
  refs.push_back(std::move(base_bytes));
  std::vector<pul::Pul> undos;  // undos[v - from - 1] takes v -> v-1
  for (uint64_t v = from + 1; v <= to; ++v) {
    const pul::Pul& pul = puls[static_cast<size_t>(v - from - 1)];
    *input_ops += pul.size();
    // Same formula as VersionStore::UndoFor, so rollback chains agree
    // byte-for-byte whether or not the segment is compacted.
    Result<pul::Pul> undo = VersionStore::ComputeUndo(doc, pul, options);
    if (!undo.ok()) {
      return Status::NotApplicable("invert failed for version " +
                                   std::to_string(v) + ": " +
                                   undo.status().message());
    }
    XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, pul));
    XUPDATE_ASSIGN_OR_RETURN(std::string after,
                             VersionStore::SerializeAnnotated(doc));
    xml::Document scratch = doc;
    Status undone = pul::ApplyPul(&scratch, *undo);
    if (!undone.ok()) {
      return Status::NotApplicable("undo for version " + std::to_string(v) +
                                   " not applicable: " + undone.message());
    }
    XUPDATE_ASSIGN_OR_RETURN(std::string walked,
                             VersionStore::SerializeAnnotated(scratch));
    if (walked != refs.back()) {
      return Status::NotApplicable("undo for version " + std::to_string(v) +
                                   " does not reproduce its parent");
    }
    refs.push_back(std::move(after));
    undos.push_back(std::move(*undo));
  }
  // Fold the whole segment (Algorithm 2, then canonical reduction) and
  // byte-check it against doc_to before trusting it.
  std::vector<const pul::Pul*> pointers;
  pointers.reserve(puls.size());
  for (const pul::Pul& pul : puls) pointers.push_back(&pul);
  core::AggregateOptions aggregate_options;
  aggregate_options.metrics = options.metrics;
  Result<pul::Pul> folded = core::Aggregate(pointers, aggregate_options);
  if (!folded.ok()) {
    return Status::NotApplicable("aggregate failed: " +
                                 folded.status().message());
  }
  core::ReduceOptions canonical;
  canonical.mode = core::ReduceMode::kCanonical;
  canonical.parallelism = options.parallelism;
  canonical.metrics = options.metrics;
  Result<pul::Pul> reduced = core::Reduce(*folded, canonical);
  if (!reduced.ok()) {
    return Status::NotApplicable("canonical reduction failed: " +
                                 reduced.status().message());
  }
  *output_ops += reduced->size();
  {
    XUPDATE_ASSIGN_OR_RETURN(xml::Document scratch, store.Checkout(from));
    Status applied = pul::ApplyPul(&scratch, *reduced);
    if (!applied.ok()) {
      return Status::NotApplicable("aggregate not applicable: " +
                                   applied.message());
    }
    XUPDATE_ASSIGN_OR_RETURN(std::string walked,
                             VersionStore::SerializeAnnotated(scratch));
    if (walked != refs.back()) {
      return Status::NotApplicable("aggregate does not reproduce version " +
                                   std::to_string(to));
    }
  }
  if (lane != nullptr && lane->enabled()) {
    lane->Emit(obs::EventKind::kNote, "segment-verified", {}, "",
               "(" + std::to_string(from) + "," + std::to_string(to) +
                   "] edges=" + std::to_string(undos.size()));
  }
  Replacement replacement;
  replacement.from = from;
  replacement.to = to;
  WalFrame aggregate_frame;
  aggregate_frame.type = FrameType::kAggregate;
  aggregate_frame.version = to;
  aggregate_frame.aux = from;
  XUPDATE_ASSIGN_OR_RETURN(aggregate_frame.payload,
                           pul::SerializePul(*reduced));
  replacement.frames.push_back(std::move(aggregate_frame));
  for (uint64_t v = to; v > from; --v) {
    WalFrame undo_frame;
    undo_frame.type = FrameType::kUndo;
    undo_frame.version = v;
    XUPDATE_ASSIGN_OR_RETURN(
        undo_frame.payload,
        pul::SerializePul(undos[static_cast<size_t>(v - from - 1)]));
    replacement.frames.push_back(std::move(undo_frame));
  }
  // These frames bypass Wal::Append (the rewrite encodes them straight
  // into the new journal), so bound-check the payloads here.
  for (const WalFrame& frame : replacement.frames) {
    if (frame.payload.size() > Wal::kMaxPayloadBytes) {
      return Status::NotApplicable("replacement frame payload exceeds "
                                   "the journal frame limit");
    }
  }
  return replacement;
}

}  // namespace

Status CompactImpl(VersionStore* store, CompactStats* stats) {
  const StoreOptions& options = store->options_;
  ScopedTimer timer(options.metrics, "store.compact.seconds");
  obs::TraceLane lane;
  if (options.tracer != nullptr) {
    lane = options.tracer->Lane(options.tracer->NextPhase(), 0, "store");
  }
  obs::TraceSpan span(&lane, "compact");
  CompactStats local;
  local.frames_before = store->wal_.frames().size();
  local.journal_bytes_before = store->wal_.size_bytes();
  // Eligible segments: consecutive checkpointed versions with only
  // plain kPul frames in between, folding >= 2 versions.
  std::map<uint64_t, Replacement> replacements;  // by `from`
  const std::vector<uint64_t>& checkpoints = store->snapshots().versions();
  for (size_t i = 0; i + 1 < checkpoints.size(); ++i) {
    uint64_t from = checkpoints[i];
    uint64_t to = checkpoints[i + 1];
    if (to > store->head() || to - from < 2) continue;
    std::vector<pul::Pul> puls;
    bool plain = true;
    for (uint64_t v = from + 1; v <= to && plain; ++v) {
      auto it = store->pul_frames_.find(v);
      if (it == store->pul_frames_.end()) {
        plain = false;
        break;
      }
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, store->ReadPul(it->second));
      puls.push_back(std::move(pul));
    }
    if (!plain) continue;
    ++local.segments_considered;
    size_t input_ops = 0;
    size_t output_ops = 0;
    Result<Replacement> replacement =
        BuildReplacement(*store, options, from, to, std::move(puls),
                         &input_ops, &output_ops, &lane);
    if (!replacement.ok()) {
      if (replacement.status().code() != StatusCode::kNotApplicable) {
        return replacement.status();
      }
      ++local.segments_skipped;
      if (lane.enabled()) {
        lane.Emit(obs::EventKind::kNote, "segment-skipped", {}, "",
                  "(" + std::to_string(from) + "," + std::to_string(to) +
                      "] " + replacement.status().message());
      }
      continue;
    }
    local.input_ops += input_ops;
    local.output_ops += output_ops;
    ++local.segments_compacted;
    replacements[from] = std::move(*replacement);
  }
  if (!replacements.empty()) {
    // Rewrite the journal: frames outside compacted segments are copied
    // byte-for-byte; each compacted run of kPul frames is replaced by
    // its aggregate + undo block. The new journal is installed
    // atomically, then re-opened and re-indexed.
    std::string content(Wal::kMagic, Wal::kMagicSize);
    for (const WalFrameInfo& info : store->wal_.frames()) {
      const Replacement* owner = nullptr;
      if (info.type == FrameType::kPul) {
        // Owner segment (from, to]: the one with the largest from < v —
        // lower_bound, not upper_bound, so a version equal to a later
        // segment's base still resolves to the segment it closes.
        auto it = replacements.lower_bound(info.version);
        if (it != replacements.begin()) {
          --it;
          if (info.version > it->second.from &&
              info.version <= it->second.to) {
            owner = &it->second;
          }
        }
      }
      if (owner != nullptr) {
        if (info.version == owner->from + 1) {
          for (const WalFrame& frame : owner->frames) {
            content += Wal::EncodeFrame(frame);
          }
        }
        continue;  // other frames of the segment are folded away
      }
      XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, store->wal_.ReadFrame(info));
      content += Wal::EncodeFrame(frame);
    }
    std::string path = store->wal_.path();
    XUPDATE_RETURN_IF_ERROR(store->wal_.Close());
    XUPDATE_RETURN_IF_ERROR(WriteFileAtomic(path, content));
    WalOptions wal_options;
    wal_options.fsync = options.fsync;
    wal_options.batch_interval = options.batch_interval;
    wal_options.fail_after_bytes = options.fail_after_bytes;
    wal_options.metrics = options.metrics;
    XUPDATE_ASSIGN_OR_RETURN(store->wal_, Wal::Open(path, wal_options));
    XUPDATE_RETURN_IF_ERROR(store->BuildIndex());
    // The journal shrank; rebase the byte-cadence marker so the next
    // commit does not spuriously checkpoint.
    store->wal_bytes_at_checkpoint_ = store->wal_.size_bytes();
  }
  local.frames_after = store->wal_.frames().size();
  local.journal_bytes_after = store->wal_.size_bytes();
  if (options.metrics != nullptr) {
    options.metrics->AddCounter("store.compact.count");
    options.metrics->AddCounter("store.compact.segments",
                                local.segments_compacted);
    options.metrics->AddCounter("store.compact.segments_skipped",
                                local.segments_skipped);
    if (local.journal_bytes_before > local.journal_bytes_after) {
      options.metrics->AddCounter(
          "store.compact.bytes_saved",
          local.journal_bytes_before - local.journal_bytes_after);
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace xupdate::store
