#ifndef XUPDATE_STORE_RECORDS_H_
#define XUPDATE_STORE_RECORDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "pul/pul.h"

namespace xupdate::store {

// Binary payload codecs for the branch subsystem's journal frames
// (store/wal.h). Two frame types carry them:
//
//   kMerge       payload = MergeRecord — a merge commit on one branch.
//   kBranchMeta  payload = u8 kind | record:
//                  kind 0  BranchMetaRecord (first frame of a branch
//                          journal: identity + fork + policies)
//                  kind 1  SyncRecord (branches.log: marks a two-sided
//                          merge as committed — the crash-atomicity
//                          anchor for cross-journal merges)
//                  kind 2  RebaseRecord (branches.log: a branch's
//                          history was rewritten; earlier sync records
//                          naming it are void)
//
// All integers little-endian via common/framing.h helpers; strings are
// u32 length + bytes. Every decoder is total: truncated or trailing
// bytes are kParseError, never UB.

// Identity frame of a branch journal (branch-<name>.log). The branch's
// version space extends its parent's: the first commit on the branch is
// version fork + 1, and versions <= fork resolve through the parent
// chain (which is how branches share the mainline's snapshots at the
// fork point).
struct BranchMetaRecord {
  std::string name;
  std::string parent;       // "main" or another branch
  uint64_t fork = 0;        // version on the parent at which it forked
  pul::Policies policies;   // the branch's reconciliation policies
};

// Payload of a kMerge frame on branch B producing version `frame.version`
// (local parent = frame.aux, B's pre-merge head). `chain` applied in
// order to B's state at frame.aux lands byte-exactly on the merged
// state: first the per-version undo PULs rewinding B to the merge base,
// then the reconciled merge PUL. Both parents of the merge are
// (B, frame.aux) and (other, other_parent) — both strictly below their
// branches' post-merge heads, so they stay resolvable after any
// torn-tail recovery.
struct MergeRecord {
  std::string other;            // the other parent branch
  uint64_t other_parent = 0;    // its pre-merge head
  uint64_t base_own = 0;        // merge base, on this branch's chain
  uint64_t base_other = 0;      // merge base, on the other's chain
  std::vector<std::string> chain;  // serialized PULs (pul/pul_io.h)
};

// One committed sync between two branches, appended to branches.log
// only after every merge frame of the sync is durable in its journal.
// Recovery treats a branch journal's *tail* kMerge frame as effective
// iff a SyncRecord names it (branch + version + side flag); an unnamed
// tail merge frame is a torn sync and is truncated.
struct SyncRecord {
  std::string branch_a;
  uint64_t version_a = 0;  // a's head after the sync
  std::string branch_b;
  uint64_t version_b = 0;  // b's head after the sync
  bool frame_a = false;    // a committed a merge frame (false: a was
                           // already at the merged state)
  bool frame_b = false;
};

// Appended to branches.log when a branch's journal is atomically
// rewritten by rebase. Sync records appended before it that name the
// branch are void: the versions they reference no longer mean the same
// states.
struct RebaseRecord {
  std::string branch;
  uint64_t old_fork = 0;
  uint64_t new_fork = 0;
};

std::string EncodeBranchMeta(const BranchMetaRecord& record);
std::string EncodeMergeRecord(const MergeRecord& record);
std::string EncodeSyncRecord(const SyncRecord& record);
std::string EncodeRebaseRecord(const RebaseRecord& record);

// A decoded branches.log frame: exactly one of sync/rebase is set.
struct BranchLogRecord {
  uint8_t kind = 0;  // 1 = sync, 2 = rebase
  SyncRecord sync;
  RebaseRecord rebase;
};

Result<BranchMetaRecord> DecodeBranchMeta(std::string_view payload);
Result<MergeRecord> DecodeMergeRecord(std::string_view payload);
// Decodes any branches.log kBranchMeta payload (kind 1 or 2).
Result<BranchLogRecord> DecodeBranchLogRecord(std::string_view payload);

// Valid branch name: [A-Za-z0-9_-]{1,64} and not "main" (the mainline's
// reserved name — it has no branch journal).
Status ValidateBranchName(const std::string& name);

}  // namespace xupdate::store

#endif  // XUPDATE_STORE_RECORDS_H_
