#include "store/wal.h"

#include <cstring>
#include <utility>

#include "common/framing.h"

namespace xupdate::store {

namespace {

using framing::GetU64;
using framing::PutU64;

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kPul) &&
         type <= static_cast<uint8_t>(FrameType::kBranchMeta);
}

}  // namespace

bool FsyncPolicyFromName(std::string_view name, FsyncPolicy* out) {
  if (name == "always") {
    *out = FsyncPolicy::kAlways;
  } else if (name == "batch") {
    *out = FsyncPolicy::kBatch;
  } else if (name == "never") {
    *out = FsyncPolicy::kNever;
  } else {
    return false;
  }
  return true;
}

std::string_view FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

std::string Wal::EncodeFrame(const WalFrame& frame) {
  std::string body;
  body.reserve(kFrameBodyFixedSize + frame.payload.size());
  body.push_back(static_cast<char>(frame.type));
  PutU64(&body, frame.version);
  PutU64(&body, frame.aux);
  body += frame.payload;
  return framing::EncodeFrame(body);
}

Result<WalFrame> Wal::DecodeFrame(std::string_view data, size_t* offset) {
  size_t pos = *offset;
  std::string_view body;
  XUPDATE_RETURN_IF_ERROR(framing::DecodeFrame(data, offset, &body));
  if (body.size() < kFrameBodyFixedSize) {
    *offset = pos;
    return Status::ParseError("torn or oversized frame body");
  }
  uint8_t type = static_cast<uint8_t>(body[0]);
  if (!ValidFrameType(type)) {
    // The CRC already passed, so this is not a torn tail or a bit flip:
    // the frame is intact but written by a format this build does not
    // understand. Report it as a distinct, named condition — callers
    // must not mistake it for corruption and truncate real data.
    *offset = pos;
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type) + " at offset " +
                                   std::to_string(pos) +
                                   " (CRC-valid frame; not corruption)");
  }
  WalFrame frame;
  frame.type = static_cast<FrameType>(type);
  frame.version = GetU64(body, 1);
  frame.aux = GetU64(body, 9);
  frame.payload = std::string(body.substr(kFrameBodyFixedSize));
  return frame;
}

Result<Wal> Wal::Create(const std::string& path, const WalOptions& options) {
  if (PathExists(path)) {
    return Status::InvalidArgument("journal already exists: " + path);
  }
  Wal wal;
  wal.path_ = path;
  wal.options_ = options;
  XUPDATE_ASSIGN_OR_RETURN(wal.file_, AppendableFile::Open(path));
  XUPDATE_RETURN_IF_ERROR(
      wal.file_.Append(std::string_view(kMagic, kMagicSize)));
  XUPDATE_RETURN_IF_ERROR(wal.file_.Sync());
  wal.size_bytes_ = kMagicSize;
  return wal;
}

Result<Wal> Wal::Open(const std::string& path, const WalOptions& options,
                      WalRecovery* recovery) {
  XUPDATE_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (data.size() < kMagicSize ||
      std::memcmp(data.data(), kMagic, kMagicSize) != 0) {
    return Status::ParseError("bad journal magic in " + path);
  }
  Wal wal;
  wal.path_ = path;
  wal.options_ = options;
  // Scan every frame; stop (and truncate) at the first torn or corrupt
  // one. A frame that fails its CRC mid-file also truncates — bytes
  // after a broken frame cannot be trusted to be frame-aligned. A
  // CRC-valid frame with an unknown type byte is NOT corruption
  // (DecodeFrame reports it as kInvalidArgument, not kParseError):
  // truncating it would silently destroy data written by a newer
  // format, so Open fails with the named error instead.
  size_t offset = kMagicSize;
  while (offset < data.size()) {
    size_t frame_start = offset;
    Result<WalFrame> frame = DecodeFrame(data, &offset);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        return Status::InvalidArgument("journal " + path + ": " +
                                       frame.status().message());
      }
      break;
    }
    WalFrameInfo info;
    info.type = frame->type;
    info.version = frame->version;
    info.aux = frame->aux;
    info.offset = frame_start;
    info.payload_bytes = static_cast<uint32_t>(frame->payload.size());
    wal.frames_.push_back(info);
  }
  uint64_t valid_bytes = wal.frames_.empty()
                             ? kMagicSize
                             : wal.frames_.back().offset + kFrameHeaderSize +
                                   kFrameBodyFixedSize +
                                   wal.frames_.back().payload_bytes;
  uint64_t torn = data.size() - valid_bytes;
  if (torn > 0) {
    XUPDATE_RETURN_IF_ERROR(TruncateFile(path, valid_bytes));
    // Make the truncation itself durable before the store accepts new
    // commits, mirroring WriteFileAtomic: TruncateFile fsyncs the file,
    // but the inode change is only safely ordered once the containing
    // directory is synced too. Recovery is idempotent either way (a
    // lost truncate just re-runs this scan), but a commit appended
    // after a non-durable truncate could land beyond resurrected torn
    // bytes after a second crash.
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    XUPDATE_RETURN_IF_ERROR(SyncDirectory(dir));
  }
  if (recovery != nullptr) {
    recovery->frames = wal.frames_.size();
    recovery->valid_bytes = valid_bytes;
    recovery->truncated_bytes = torn;
  }
  if (options.metrics != nullptr) {
    options.metrics->AddCounter("store.wal.open.frames",
                                wal.frames_.size());
    options.metrics->AddCounter("store.wal.open.truncated_bytes", torn);
  }
  XUPDATE_ASSIGN_OR_RETURN(wal.file_, AppendableFile::Open(path));
  wal.size_bytes_ = valid_bytes;
  return wal;
}

Status Wal::Append(const WalFrame& frame, bool defer_sync) {
  if (poisoned_) {
    return Status::IoError(
        "append refused: journal poisoned by earlier write failure: " +
        path_);
  }
  if (frame.payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds the journal frame limit");
  }
  std::string encoded = EncodeFrame(frame);
  // Fault injection: write the prefix that fits under the byte budget,
  // then fail — the torn tail Open() must recover from.
  if (options_.fail_after_bytes >= 0) {
    uint64_t budget = static_cast<uint64_t>(options_.fail_after_bytes);
    if (appended_bytes_ + encoded.size() > budget) {
      poisoned_ = true;
      size_t fits = budget > appended_bytes_
                        ? static_cast<size_t>(budget - appended_bytes_)
                        : 0;
      if (fits > 0) {
        XUPDATE_RETURN_IF_ERROR(
            file_.Append(std::string_view(encoded).substr(0, fits)));
        (void)file_.Sync();
        appended_bytes_ += fits;
        size_bytes_ += fits;
      }
      return Status::IoError("injected write failure after " +
                             std::to_string(appended_bytes_) + " bytes");
    }
  }
  {
    ScopedTimer timer(options_.metrics, "store.wal.append.seconds");
    Status appended = file_.Append(encoded);
    if (!appended.ok()) {
      // A prefix of the frame may be on disk; nothing appended after
      // it would be frame-aligned, so the handle is write-dead until a
      // reopen truncates the torn tail.
      poisoned_ = true;
      return appended;
    }
  }
  appended_bytes_ += encoded.size();
  size_bytes_ += encoded.size();
  ++appends_since_sync_;
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.wal.append.bytes", encoded.size());
    options_.metrics->AddCounter("store.wal.append.frames");
  }
  WalFrameInfo info;
  info.type = frame.type;
  info.version = frame.version;
  info.aux = frame.aux;
  info.offset = size_bytes_ - encoded.size();
  info.payload_bytes = static_cast<uint32_t>(frame.payload.size());
  frames_.push_back(info);
  // A deferred append leaves the policy sync to the caller (the
  // group-commit path appends a whole batch, then issues one Sync).
  if (defer_sync) return Status::OK();
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      return Sync();
    case FsyncPolicy::kBatch:
      if (appends_since_sync_ >= options_.batch_interval) return Sync();
      return Status::OK();
    case FsyncPolicy::kNever:
      return Status::OK();
  }
  return Status::OK();
}

Status Wal::Sync() {
  ScopedTimer timer(options_.metrics, "store.wal.fsync.seconds");
  Status synced = file_.Sync();
  if (!synced.ok()) {
    // After a failed fdatasync the kernel may have dropped the dirty
    // pages, so the tail's durability is unknowable; stop appending.
    poisoned_ = true;
    return synced;
  }
  appends_since_sync_ = 0;
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.wal.fsync.count");
  }
  return Status::OK();
}

Status Wal::Close() {
  if (!file_.is_open()) return Status::OK();
  // A poisoned journal is not synced on close: its tail is already
  // suspect and the close must not mask the original failure status.
  if (!poisoned_ && options_.fsync != FsyncPolicy::kNever &&
      appends_since_sync_ > 0) {
    XUPDATE_RETURN_IF_ERROR(Sync());
  }
  return file_.Close();
}

Result<WalFrame> Wal::ReadFrame(const WalFrameInfo& info) const {
  // Re-read just the frame's region: the store deliberately does not
  // cache payloads (journals outgrow memory; the OS page cache serves
  // hot replays).
  size_t frame_size =
      kFrameHeaderSize + kFrameBodyFixedSize + info.payload_bytes;
  XUPDATE_ASSIGN_OR_RETURN(std::string data,
                           ReadFileRegion(path_, info.offset, frame_size));
  size_t offset = 0;
  XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, DecodeFrame(data, &offset));
  if (frame.version != info.version || frame.type != info.type) {
    return Status::Internal("frame directory out of sync with journal");
  }
  return frame;
}

}  // namespace xupdate::store
