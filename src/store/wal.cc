#include "store/wal.h"

#include <cstring>
#include <utility>

#include "common/crc32c.h"

namespace xupdate::store {

namespace {

// Little-endian fixed-width encoding keeps the journal portable across
// hosts; the store never memcpy's structs to disk.
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(std::string_view data, size_t offset) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(data[offset + i]);
  }
  return v;
}

uint64_t GetU64(std::string_view data, size_t offset) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(data[offset + i]);
  }
  return v;
}

bool ValidFrameType(uint8_t type) {
  return type == static_cast<uint8_t>(FrameType::kPul) ||
         type == static_cast<uint8_t>(FrameType::kAggregate) ||
         type == static_cast<uint8_t>(FrameType::kUndo) ||
         type == static_cast<uint8_t>(FrameType::kSnapshot);
}

}  // namespace

bool FsyncPolicyFromName(std::string_view name, FsyncPolicy* out) {
  if (name == "always") {
    *out = FsyncPolicy::kAlways;
  } else if (name == "batch") {
    *out = FsyncPolicy::kBatch;
  } else if (name == "never") {
    *out = FsyncPolicy::kNever;
  } else {
    return false;
  }
  return true;
}

std::string_view FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

std::string Wal::EncodeFrame(const WalFrame& frame) {
  std::string body;
  body.reserve(kFrameBodyFixedSize + frame.payload.size());
  body.push_back(static_cast<char>(frame.type));
  PutU64(&body, frame.version);
  PutU64(&body, frame.aux);
  body += frame.payload;
  std::string out;
  out.reserve(kFrameHeaderSize + body.size());
  PutU32(&out, static_cast<uint32_t>(body.size()));
  PutU32(&out, MaskCrc32c(Crc32c(body)));
  out += body;
  return out;
}

Result<WalFrame> Wal::DecodeFrame(std::string_view data, size_t* offset) {
  size_t pos = *offset;
  if (data.size() - pos < kFrameHeaderSize) {
    return Status::ParseError("torn frame header");
  }
  uint32_t body_len = GetU32(data, pos);
  uint32_t masked_crc = GetU32(data, pos + 4);
  if (body_len < kFrameBodyFixedSize ||
      body_len > data.size() - pos - kFrameHeaderSize) {
    return Status::ParseError("torn or oversized frame body");
  }
  std::string_view body = data.substr(pos + kFrameHeaderSize, body_len);
  if (MaskCrc32c(Crc32c(body)) != masked_crc) {
    return Status::ParseError("frame CRC mismatch");
  }
  uint8_t type = static_cast<uint8_t>(body[0]);
  if (!ValidFrameType(type)) {
    return Status::ParseError("unknown frame type");
  }
  WalFrame frame;
  frame.type = static_cast<FrameType>(type);
  frame.version = GetU64(body, 1);
  frame.aux = GetU64(body, 9);
  frame.payload = std::string(body.substr(kFrameBodyFixedSize));
  *offset = pos + kFrameHeaderSize + body_len;
  return frame;
}

Result<Wal> Wal::Create(const std::string& path, const WalOptions& options) {
  if (PathExists(path)) {
    return Status::InvalidArgument("journal already exists: " + path);
  }
  Wal wal;
  wal.path_ = path;
  wal.options_ = options;
  XUPDATE_ASSIGN_OR_RETURN(wal.file_, AppendableFile::Open(path));
  XUPDATE_RETURN_IF_ERROR(
      wal.file_.Append(std::string_view(kMagic, kMagicSize)));
  XUPDATE_RETURN_IF_ERROR(wal.file_.Sync());
  wal.size_bytes_ = kMagicSize;
  return wal;
}

Result<Wal> Wal::Open(const std::string& path, const WalOptions& options,
                      WalRecovery* recovery) {
  XUPDATE_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (data.size() < kMagicSize ||
      std::memcmp(data.data(), kMagic, kMagicSize) != 0) {
    return Status::ParseError("bad journal magic in " + path);
  }
  Wal wal;
  wal.path_ = path;
  wal.options_ = options;
  // Scan every frame; stop (and truncate) at the first torn or corrupt
  // one. A frame that fails its CRC mid-file also truncates — bytes
  // after a broken frame cannot be trusted to be frame-aligned.
  size_t offset = kMagicSize;
  while (offset < data.size()) {
    size_t frame_start = offset;
    Result<WalFrame> frame = DecodeFrame(data, &offset);
    if (!frame.ok()) break;
    WalFrameInfo info;
    info.type = frame->type;
    info.version = frame->version;
    info.aux = frame->aux;
    info.offset = frame_start;
    info.payload_bytes = static_cast<uint32_t>(frame->payload.size());
    wal.frames_.push_back(info);
  }
  uint64_t valid_bytes = wal.frames_.empty()
                             ? kMagicSize
                             : wal.frames_.back().offset + kFrameHeaderSize +
                                   kFrameBodyFixedSize +
                                   wal.frames_.back().payload_bytes;
  uint64_t torn = data.size() - valid_bytes;
  if (torn > 0) {
    XUPDATE_RETURN_IF_ERROR(TruncateFile(path, valid_bytes));
  }
  if (recovery != nullptr) {
    recovery->frames = wal.frames_.size();
    recovery->valid_bytes = valid_bytes;
    recovery->truncated_bytes = torn;
  }
  if (options.metrics != nullptr) {
    options.metrics->AddCounter("store.wal.open.frames",
                                wal.frames_.size());
    options.metrics->AddCounter("store.wal.open.truncated_bytes", torn);
  }
  XUPDATE_ASSIGN_OR_RETURN(wal.file_, AppendableFile::Open(path));
  wal.size_bytes_ = valid_bytes;
  return wal;
}

Status Wal::Append(const WalFrame& frame) {
  if (poisoned_) {
    return Status::IoError(
        "append refused: journal poisoned by earlier write failure: " +
        path_);
  }
  if (frame.payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds the journal frame limit");
  }
  std::string encoded = EncodeFrame(frame);
  // Fault injection: write the prefix that fits under the byte budget,
  // then fail — the torn tail Open() must recover from.
  if (options_.fail_after_bytes >= 0) {
    uint64_t budget = static_cast<uint64_t>(options_.fail_after_bytes);
    if (appended_bytes_ + encoded.size() > budget) {
      poisoned_ = true;
      size_t fits = budget > appended_bytes_
                        ? static_cast<size_t>(budget - appended_bytes_)
                        : 0;
      if (fits > 0) {
        XUPDATE_RETURN_IF_ERROR(
            file_.Append(std::string_view(encoded).substr(0, fits)));
        (void)file_.Sync();
        appended_bytes_ += fits;
        size_bytes_ += fits;
      }
      return Status::IoError("injected write failure after " +
                             std::to_string(appended_bytes_) + " bytes");
    }
  }
  {
    ScopedTimer timer(options_.metrics, "store.wal.append.seconds");
    Status appended = file_.Append(encoded);
    if (!appended.ok()) {
      // A prefix of the frame may be on disk; nothing appended after
      // it would be frame-aligned, so the handle is write-dead until a
      // reopen truncates the torn tail.
      poisoned_ = true;
      return appended;
    }
  }
  appended_bytes_ += encoded.size();
  size_bytes_ += encoded.size();
  ++appends_since_sync_;
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.wal.append.bytes", encoded.size());
    options_.metrics->AddCounter("store.wal.append.frames");
  }
  WalFrameInfo info;
  info.type = frame.type;
  info.version = frame.version;
  info.aux = frame.aux;
  info.offset = size_bytes_ - encoded.size();
  info.payload_bytes = static_cast<uint32_t>(frame.payload.size());
  frames_.push_back(info);
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      return Sync();
    case FsyncPolicy::kBatch:
      if (appends_since_sync_ >= options_.batch_interval) return Sync();
      return Status::OK();
    case FsyncPolicy::kNever:
      return Status::OK();
  }
  return Status::OK();
}

Status Wal::Sync() {
  ScopedTimer timer(options_.metrics, "store.wal.fsync.seconds");
  Status synced = file_.Sync();
  if (!synced.ok()) {
    // After a failed fdatasync the kernel may have dropped the dirty
    // pages, so the tail's durability is unknowable; stop appending.
    poisoned_ = true;
    return synced;
  }
  appends_since_sync_ = 0;
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.wal.fsync.count");
  }
  return Status::OK();
}

Status Wal::Close() {
  if (!file_.is_open()) return Status::OK();
  // A poisoned journal is not synced on close: its tail is already
  // suspect and the close must not mask the original failure status.
  if (!poisoned_ && options_.fsync != FsyncPolicy::kNever &&
      appends_since_sync_ > 0) {
    XUPDATE_RETURN_IF_ERROR(Sync());
  }
  return file_.Close();
}

Result<WalFrame> Wal::ReadFrame(const WalFrameInfo& info) const {
  // Re-read just the frame's region: the store deliberately does not
  // cache payloads (journals outgrow memory; the OS page cache serves
  // hot replays).
  size_t frame_size =
      kFrameHeaderSize + kFrameBodyFixedSize + info.payload_bytes;
  XUPDATE_ASSIGN_OR_RETURN(std::string data,
                           ReadFileRegion(path_, info.offset, frame_size));
  size_t offset = 0;
  XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, DecodeFrame(data, &offset));
  if (frame.version != info.version || frame.type != info.type) {
    return Status::Internal("frame directory out of sync with journal");
  }
  return frame;
}

}  // namespace xupdate::store
