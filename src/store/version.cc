#include "store/version.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/invert.h"
#include "core/reduce.h"
#include "pul/apply.h"
#include "pul/pul_io.h"
#include "store/compact.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xupdate::store {

namespace {

constexpr char kJournalName[] = "wal.log";
constexpr char kBranchLogName[] = "branches.log";

WalOptions ToWalOptions(const StoreOptions& options) {
  WalOptions wal;
  wal.fsync = options.fsync;
  wal.batch_interval = options.batch_interval;
  wal.fail_after_bytes = options.fail_after_bytes;
  wal.metrics = options.metrics;
  return wal;
}

// Kinds a same-target repN/del overrides (O1's overridable set; mirrors
// core/invert.cc, which enforces exactly these as preconditions).
bool IsO1Overridable(pul::OpKind kind) {
  switch (kind) {
    case pul::OpKind::kRename:
    case pul::OpKind::kReplaceValue:
    case pul::OpKind::kReplaceChildren:
    case pul::OpKind::kDelete:
    case pul::OpKind::kInsFirst:
    case pul::OpKind::kInsLast:
    case pul::OpKind::kInsInto:
    case pul::OpKind::kInsAttributes:
      return true;
    default:
      return false;
  }
}

// Drops every operation the O-rules override, judged against the
// pre-state document instead of the operation labels: labels inside an
// aggregated PUL can predate the document state and miss ancestor
// relations the document itself exhibits. Overridden operations have no
// effect on Apply, so the filtered PUL is Apply-equivalent; it exists so
// core/invert's O-irreducibility precondition holds.
Result<pul::Pul> DropOverriddenOps(const xml::Document& doc,
                                   const pul::Pul& pul) {
  const auto& ops = pul.ops();
  std::vector<bool> drop(ops.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    // Same-target overrides (O1, and repC vs child insertions).
    std::unordered_map<xml::NodeId, std::vector<size_t>> by_target;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!drop[i]) by_target[ops[i].target].push_back(i);
    }
    for (const auto& [target, indexes] : by_target) {
      size_t killer = ops.size();
      bool has_repc = false;
      for (size_t i : indexes) {
        if (ops[i].kind == pul::OpKind::kDelete ||
            ops[i].kind == pul::OpKind::kReplaceNode) {
          killer = i;
        }
        if (ops[i].kind == pul::OpKind::kReplaceChildren) has_repc = true;
      }
      for (size_t i : indexes) {
        if (killer != ops.size() && i != killer &&
            IsO1Overridable(ops[i].kind)) {
          drop[i] = true;
          changed = true;
        }
        if (has_repc && (ops[i].kind == pul::OpKind::kInsFirst ||
                         ops[i].kind == pul::OpKind::kInsInto ||
                         ops[i].kind == pul::OpKind::kInsLast)) {
          drop[i] = true;
          changed = true;
        }
      }
    }
    // Nested overrides: operations inside a killed subtree (del/repN)
    // or under a surviving repC target (attributes of the target itself
    // excepted, matching core/invert.cc).
    for (size_t k = 0; k < ops.size(); ++k) {
      if (drop[k]) continue;
      bool kills_subtree = ops[k].kind == pul::OpKind::kDelete ||
                           ops[k].kind == pul::OpKind::kReplaceNode;
      bool is_repc = ops[k].kind == pul::OpKind::kReplaceChildren;
      if (!kills_subtree && !is_repc) continue;
      for (size_t i = 0; i < ops.size(); ++i) {
        if (drop[i] || i == k) continue;
        if (!doc.IsAncestor(ops[k].target, ops[i].target)) continue;
        if (is_repc && doc.parent(ops[i].target) == ops[k].target &&
            doc.type(ops[i].target) == xml::NodeType::kAttribute) {
          continue;
        }
        drop[i] = true;
        changed = true;
      }
    }
  }
  if (std::find(drop.begin(), drop.end(), true) == drop.end()) return pul;
  pul::Pul out;
  out.set_policies(pul.policies());
  for (size_t i = 0; i < ops.size(); ++i) {
    if (drop[i]) continue;
    pul::UpdateOp op = ops[i];
    for (xml::NodeId& root : op.param_trees) {
      XUPDATE_ASSIGN_OR_RETURN(
          root, out.forest().AdoptSubtree(pul.forest(), root,
                                          /*preserve_ids=*/true, nullptr));
    }
    XUPDATE_RETURN_IF_ERROR(out.AddOp(std::move(op)));
  }
  return out;
}

}  // namespace

Result<std::string> VersionStore::SerializeAnnotated(
    const xml::Document& doc) {
  xml::SerializeOptions options;
  options.with_ids = true;
  return xml::SerializeDocument(doc, options);
}

Status VersionStore::Init(const std::string& dir,
                          std::string_view initial_xml,
                          const StoreOptions& options) {
  XUPDATE_RETURN_IF_ERROR(EnsureDirectory(dir));
  std::string journal = dir + "/" + kJournalName;
  if (PathExists(journal)) {
    return Status::InvalidArgument("store already initialized: " + dir);
  }
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc,
                           xml::ParseDocument(initial_xml));
  XUPDATE_ASSIGN_OR_RETURN(std::string annotated, SerializeAnnotated(doc));
  XUPDATE_ASSIGN_OR_RETURN(SnapshotStore snapshots,
                           SnapshotStore::Open(dir, options.metrics));
  XUPDATE_RETURN_IF_ERROR(snapshots.Write(0, annotated));
  XUPDATE_ASSIGN_OR_RETURN(Wal wal,
                           Wal::Create(journal, ToWalOptions(options)));
  return wal.Close();
}

Result<VersionStore> VersionStore::Open(const std::string& dir,
                                        const StoreOptions& options,
                                        OpenReport* report) {
  ScopedTimer timer(options.metrics, "store.open.seconds");
  VersionStore store;
  store.dir_ = dir;
  store.options_ = options;
  // branches.log first: its sync records decide whether a tail merge
  // frame of any journal (the mainline's included) is effective.
  std::string branch_log_path = dir + "/" + kBranchLogName;
  if (PathExists(branch_log_path)) {
    XUPDATE_ASSIGN_OR_RETURN(
        store.branch_log_,
        Wal::Open(branch_log_path, ToWalOptions(options)));
    store.has_branch_log_ = true;
    for (const WalFrameInfo& info : store.branch_log_.frames()) {
      if (info.type != FrameType::kBranchMeta) {
        return Status::ParseError(
            "branches.log holds a non-metadata frame at offset " +
            std::to_string(info.offset));
      }
      XUPDATE_ASSIGN_OR_RETURN(WalFrame frame,
                               store.branch_log_.ReadFrame(info));
      XUPDATE_ASSIGN_OR_RETURN(BranchLogRecord record,
                               DecodeBranchLogRecord(frame.payload));
      store.branch_log_records_.push_back(std::move(record));
    }
  }
  WalRecovery recovery;
  XUPDATE_ASSIGN_OR_RETURN(
      store.wal_,
      Wal::Open(dir + "/" + kJournalName, ToWalOptions(options), &recovery));
  size_t merges_rolled_back = 0;
  XUPDATE_RETURN_IF_ERROR(
      store.RollBackTornSyncs(&store.wal_, "main", &merges_rolled_back));
  XUPDATE_ASSIGN_OR_RETURN(store.snapshots_,
                           SnapshotStore::Open(dir, options.metrics));
  XUPDATE_RETURN_IF_ERROR(store.BuildIndex());
  // Checkpoints above the recovered head outlived a journal tail lost
  // in a crash (possible under fsync=batch/never). Delete them — kept
  // around, a later commit past their version would make
  // NearestAtOrBelow hand Checkout pre-crash bytes as a replay base.
  XUPDATE_ASSIGN_OR_RETURN(size_t stale_snapshots,
                           store.snapshots_.RemoveAbove(store.head_));
  XUPDATE_ASSIGN_OR_RETURN(store.doc_, store.Checkout(store.head_));
  uint64_t nearest = 0;
  if (!store.snapshots_.NearestAtOrBelow(store.head_, &nearest)) {
    return Status::ParseError("store has no base checkpoint: " + dir);
  }
  store.last_checkpoint_version_ = nearest;
  store.wal_bytes_at_checkpoint_ = store.wal_.size_bytes();
  OpenReport branch_report;
  XUPDATE_RETURN_IF_ERROR(store.OpenBranches(&branch_report));
  if (report != nullptr) {
    report->wal = recovery;
    report->head = store.head_;
    report->snapshots = store.snapshots_.versions().size();
    report->snapshots_ignored =
        store.snapshots_.skipped_files() + stale_snapshots;
    report->branches = branch_report.branches;
    report->merges_rolled_back =
        merges_rolled_back + branch_report.merges_rolled_back;
  }
  if (options.tracer != nullptr) {
    obs::TraceLane lane =
        options.tracer->Lane(options.tracer->NextPhase(), 0, "store");
    lane.Emit(obs::EventKind::kNote, "open", {}, "",
              "head=" + std::to_string(store.head_) +
                  " frames=" + std::to_string(recovery.frames) +
                  " truncated_bytes=" +
                  std::to_string(recovery.truncated_bytes) +
                  " snapshots=" +
                  std::to_string(store.snapshots_.versions().size()));
  }
  return store;
}

Status VersionStore::BuildIndex() {
  pul_frames_.clear();
  merge_frames_.clear();
  segments_.clear();
  const std::vector<WalFrameInfo>& frames = wal_.frames();
  uint64_t cur = 0;
  size_t i = 0;
  while (i < frames.size()) {
    const WalFrameInfo& info = frames[i];
    switch (info.type) {
      case FrameType::kPul: {
        if (info.version != cur + 1) {
          return Status::ParseError(
              "journal gap: PUL frame for version " +
              std::to_string(info.version) + " after version " +
              std::to_string(cur));
        }
        pul_frames_[info.version] = info;
        cur = info.version;
        ++i;
        break;
      }
      case FrameType::kMerge: {
        if (info.version != cur + 1 || info.aux != cur) {
          return Status::ParseError(
              "journal gap: merge frame for version " +
              std::to_string(info.version) + " (parent " +
              std::to_string(info.aux) + ") after version " +
              std::to_string(cur));
        }
        merge_frames_[info.version] = info;
        cur = info.version;
        ++i;
        break;
      }
      case FrameType::kAggregate: {
        if (info.aux != cur || info.version <= cur) {
          return Status::ParseError(
              "journal gap: aggregate frame (" + std::to_string(info.aux) +
              ", " + std::to_string(info.version) + "] after version " +
              std::to_string(cur));
        }
        Segment segment;
        segment.from = info.aux;
        segment.to = info.version;
        segment.aggregate = info;
        ++i;
        // Undo frames for to .. from+1, descending, immediately after.
        for (uint64_t w = segment.to; w > segment.from; --w) {
          if (i >= frames.size() || frames[i].type != FrameType::kUndo ||
              frames[i].version != w) {
            return Status::ParseError(
                "journal structure: missing undo frame for version " +
                std::to_string(w));
          }
          segment.undos[w] = frames[i];
          ++i;
        }
        cur = segment.to;
        segments_.push_back(std::move(segment));
        break;
      }
      case FrameType::kUndo:
        return Status::ParseError(
            "journal structure: stray undo frame for version " +
            std::to_string(info.version));
      case FrameType::kSnapshot:
        return Status::ParseError(
            "journal structure: snapshot frame inside journal");
      case FrameType::kBranchMeta:
        return Status::ParseError(
            "journal structure: branch metadata frame inside the "
            "mainline journal");
      default:
        // Wal::Open fails on unknown frame types before BuildIndex can
        // run; this is a second, independent guard against silently
        // skipping a frame a future format might add.
        return Status::InvalidArgument(
            "journal structure: unknown frame type " +
            std::to_string(static_cast<int>(info.type)) +
            " for version " + std::to_string(info.version));
    }
  }
  head_ = cur;
  return Status::OK();
}

Result<pul::Pul> VersionStore::ReadPul(const WalFrameInfo& info) const {
  XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, wal_.ReadFrame(info));
  return pul::ParsePul(frame.payload);
}

Result<xml::Document> VersionStore::Checkout(uint64_t v) const {
  if (v > head_) {
    return Status::InvalidArgument(
        "version " + std::to_string(v) + " beyond head " +
        std::to_string(head_));
  }
  ScopedTimer timer(options_.metrics, "store.checkout.seconds");
  uint64_t base = 0;
  if (!snapshots_.NearestAtOrBelow(v, &base)) {
    return Status::ParseError("no checkpoint at or below version " +
                              std::to_string(v));
  }
  XUPDATE_ASSIGN_OR_RETURN(std::string annotated, snapshots_.Read(base));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc,
                           xml::ParseDocument(annotated));
  uint64_t cur = base;
  uint64_t replayed = 0;
  while (cur < v) {
    auto it = pul_frames_.find(cur + 1);
    if (it != pul_frames_.end()) {
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, ReadPul(it->second));
      XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, pul));
      ++cur;
      ++replayed;
      continue;
    }
    auto mit = merge_frames_.find(cur + 1);
    if (mit != merge_frames_.end()) {
      // A merge commit replays as its chain: the undo PULs down to the
      // merge base, then the reconciled merge PUL (store/records.h).
      XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, wal_.ReadFrame(mit->second));
      XUPDATE_ASSIGN_OR_RETURN(MergeRecord record,
                               DecodeMergeRecord(frame.payload));
      for (const std::string& text : record.chain) {
        XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
        XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, pul));
      }
      ++cur;
      ++replayed;
      continue;
    }
    // The next version lives in a compacted segment based at `cur`.
    const Segment* segment = nullptr;
    for (const Segment& s : segments_) {
      if (s.from == cur) {
        segment = &s;
        break;
      }
    }
    if (segment == nullptr) {
      return Status::ParseError("journal gap above version " +
                                std::to_string(cur));
    }
    XUPDATE_ASSIGN_OR_RETURN(pul::Pul aggregate,
                             ReadPul(segment->aggregate));
    XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, aggregate));
    cur = segment->to;
    ++replayed;
    // Interior version: walk the undo chain back down from `to`.
    for (uint64_t w = cur; w > v; --w) {
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul undo,
                               ReadPul(segment->undos.at(w)));
      XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, undo));
      ++replayed;
    }
    cur = std::min(cur, v);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.checkout.count");
    options_.metrics->AddCounter("store.checkout.replayed_frames",
                                 replayed);
  }
  return doc;
}

Result<std::string> VersionStore::CheckoutXml(uint64_t v) const {
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, Checkout(v));
  return SerializeAnnotated(doc);
}

Result<uint64_t> VersionStore::Commit(const pul::Pul& pul) {
  ScopedTimer timer(options_.metrics, "store.commit.seconds");
  XUPDATE_RETURN_IF_ERROR(pul::CheckPulApplicable(doc_, pul));
  XUPDATE_ASSIGN_OR_RETURN(std::string payload, pul::SerializePul(pul));
  WalFrame frame;
  frame.type = FrameType::kPul;
  frame.version = head_ + 1;
  frame.payload = std::move(payload);
  // WAL-first: if the append (or its fsync) fails, the in-memory state
  // is untouched and the torn tail is recovered on the next Open.
  XUPDATE_RETURN_IF_ERROR(wal_.Append(frame));
  XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc_, pul));
  ++head_;
  pul_frames_[head_] = wal_.frames().back();
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.commit.count");
  }
  // The version is already durable and applied; a failed checkpoint
  // only costs replay time on later Checkouts (the cadence triggers
  // stay armed, so the next commit retries). Failing the commit here
  // would make callers treat a committed version as lost.
  Status checkpoint = MaybeCheckpoint();
  if (!checkpoint.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter("store.checkpoint.failures");
    }
    if (options_.tracer != nullptr) {
      obs::TraceLane lane =
          options_.tracer->Lane(options_.tracer->NextPhase(), 0, "store");
      lane.Emit(obs::EventKind::kNote, "checkpoint-failed", {}, "",
                "version=" + std::to_string(head_) + " " +
                    checkpoint.message());
    }
  }
  return head_;
}

Result<size_t> VersionStore::CommitBatch(
    const std::vector<const pul::Pul*>& puls,
    std::vector<CommitOutcome>* outcomes, BatchCommitStats* stats) {
  ScopedTimer timer(options_.metrics, "store.commit_batch.seconds");
  using Clock = std::chrono::steady_clock;
  Clock::time_point stage_start;
  if (stats != nullptr) stage_start = Clock::now();
  auto stage_seconds = [&stage_start] {
    Clock::time_point now = Clock::now();
    double elapsed =
        std::chrono::duration<double>(now - stage_start).count();
    stage_start = now;
    return elapsed;
  };
  std::vector<CommitOutcome> local_outcomes;  // caller passed nullptr
  if (outcomes == nullptr) outcomes = &local_outcomes;
  outcomes->assign(puls.size(), CommitOutcome{});
  // Stage 1: validate each PUL against the state its predecessors in
  // the batch produce, on a scratch copy — nothing durable or visible
  // happens until the whole batch's frames are on disk.
  xml::Document scratch = doc_;
  uint64_t version = head_;
  std::vector<std::pair<size_t, WalFrame>> accepted;  // index into puls
  accepted.reserve(puls.size());
  for (size_t i = 0; i < puls.size(); ++i) {
    CommitOutcome& out = (*outcomes)[i];
    if (puls[i] == nullptr) {
      out.status = Status::InvalidArgument("null PUL in batch");
      continue;
    }
    Status applicable = pul::CheckPulApplicable(scratch, *puls[i]);
    if (!applicable.ok()) {
      out.status = std::move(applicable);
      continue;
    }
    Status applied = pul::ApplyPul(&scratch, *puls[i]);
    if (!applied.ok()) {
      out.status = std::move(applied);
      continue;
    }
    Result<std::string> payload = pul::SerializePul(*puls[i]);
    if (!payload.ok()) {
      // Serialization failed after the scratch apply went through; the
      // scratch doc now includes this PUL, so later PULs in the batch
      // would be validated against state we cannot journal. Abort —
      // nothing has touched disk yet.
      return payload.status();
    }
    WalFrame frame;
    frame.type = FrameType::kPul;
    frame.version = ++version;
    frame.payload = std::move(*payload);
    accepted.emplace_back(i, std::move(frame));
  }
  if (stats != nullptr) stats->validate_seconds = stage_seconds();
  // Stage 2: WAL-first, one sync. Deferred appends skip the per-frame
  // policy sync; the single Sync() below makes the whole batch durable
  // at once — this is the coalescing that group commit buys.
  for (auto& [index, frame] : accepted) {
    Status appended = wal_.Append(frame, /*defer_sync=*/true);
    if (!appended.ok()) {
      // The journal may end in a torn frame and the handle is poisoned;
      // in-memory state (doc_, head_) is untouched, so the store still
      // serves reads. No outcome can claim success: a frame appended
      // before the failure was never synced and recovery will keep or
      // drop it based on what reached disk.
      for (CommitOutcome& out : *outcomes) out.status = appended;
      return appended;
    }
  }
  if (stats != nullptr) stage_start = Clock::now();
  if (!accepted.empty() && options_.fsync != FsyncPolicy::kNever) {
    Status synced = wal_.Sync();
    if (!synced.ok()) {
      for (CommitOutcome& out : *outcomes) out.status = synced;
      return synced;
    }
  }
  if (stats != nullptr) stats->fsync_seconds = stage_seconds();
  // Stage 3: install. The frames are durable; adopt the scratch doc and
  // index the new frames.
  size_t frame_base = wal_.frames().size() - accepted.size();
  for (size_t j = 0; j < accepted.size(); ++j) {
    const WalFrame& frame = accepted[j].second;
    (*outcomes)[accepted[j].first] =
        CommitOutcome{Status::OK(), frame.version};
    pul_frames_[frame.version] = wal_.frames()[frame_base + j];
  }
  doc_ = std::move(scratch);
  head_ = version;
  if (options_.metrics != nullptr && !accepted.empty()) {
    options_.metrics->AddCounter("store.commit.count", accepted.size());
    options_.metrics->AddCounter("store.commit_batch.count");
    options_.metrics->AddCounter("store.commit_batch.committed",
                                 accepted.size());
  }
  // Same contract as Commit(): the versions are durable, so a failed
  // checkpoint is reported via metrics/trace, not as a batch failure.
  Status checkpoint = MaybeCheckpoint();
  if (!checkpoint.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter("store.checkpoint.failures");
    }
    if (options_.tracer != nullptr) {
      obs::TraceLane lane =
          options_.tracer->Lane(options_.tracer->NextPhase(), 0, "store");
      lane.Emit(obs::EventKind::kNote, "checkpoint-failed", {}, "",
                "version=" + std::to_string(head_) + " " +
                    checkpoint.message());
    }
  }
  if (stats != nullptr) {
    stats->apply_seconds = stage_seconds();
    stats->wal_bytes = wal_.size_bytes();
  }
  return accepted.size();
}

Status VersionStore::MaybeCheckpoint() {
  bool version_trigger =
      options_.snapshot_every > 0 &&
      head_ - last_checkpoint_version_ >= options_.snapshot_every;
  bool byte_trigger =
      options_.snapshot_bytes > 0 &&
      wal_.size_bytes() - wal_bytes_at_checkpoint_ >=
          options_.snapshot_bytes;
  if (!version_trigger && !byte_trigger) return Status::OK();
  XUPDATE_ASSIGN_OR_RETURN(std::string annotated, SerializeAnnotated(doc_));
  XUPDATE_RETURN_IF_ERROR(snapshots_.Write(head_, annotated));
  last_checkpoint_version_ = head_;
  wal_bytes_at_checkpoint_ = wal_.size_bytes();
  if (options_.tracer != nullptr) {
    obs::TraceLane lane =
        options_.tracer->Lane(options_.tracer->NextPhase(), 0, "store");
    lane.Emit(obs::EventKind::kNote, "checkpoint", {}, "",
              "version=" + std::to_string(head_) + " trigger=" +
                  (version_trigger ? "versions" : "bytes"));
  }
  return Status::OK();
}

Result<pul::Pul> VersionStore::UndoFor(uint64_t v) const {
  for (const Segment& segment : segments_) {
    if (v > segment.from && v <= segment.to) {
      XUPDATE_ASSIGN_OR_RETURN(WalFrame frame,
                               wal_.ReadFrame(segment.undos.at(v)));
      return pul::ParsePul(frame.payload);
    }
  }
  auto it = pul_frames_.find(v);
  if (it != pul_frames_.end()) {
    XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, ReadPul(it->second));
    XUPDATE_ASSIGN_OR_RETURN(xml::Document prev, Checkout(v - 1));
    return ComputeUndo(prev, pul, options_);
  }
  if (merge_frames_.count(v) != 0) {
    // A merge version has no single-PUL undo (its chain can delete and
    // re-create the same node id, which one PUL cannot express under
    // the staged apply order); callers rewind through UndoChainRange,
    // which expands the chain into one exact inverse per member.
    return Status::Internal("version " + std::to_string(v) +
                            " is a merge commit; rewind through its chain");
  }
  return Status::Internal("no frame for version " + std::to_string(v));
}

Result<pul::Pul> VersionStore::ComputeUndo(const xml::Document& pre,
                                           const pul::Pul& pul,
                                           const StoreOptions& options) {
  core::ReduceOptions reduce_options;
  reduce_options.mode = core::ReduceMode::kDeterministic;
  reduce_options.parallelism = options.parallelism;
  reduce_options.metrics = options.metrics;
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul reduced,
                           core::Reduce(pul, reduce_options));
  XUPDATE_ASSIGN_OR_RETURN(pul::Pul filtered,
                           DropOverriddenOps(pre, reduced));
  label::Labeling labeling = label::Labeling::Build(pre);
  return core::Invert(pre, labeling, filtered);
}

Result<uint64_t> VersionStore::Rollback(uint64_t to) {
  if (to >= head_) {
    return Status::InvalidArgument(
        "rollback target " + std::to_string(to) +
        " is not below head " + std::to_string(head_));
  }
  ScopedTimer timer(options_.metrics, "store.rollback.seconds");
  XUPDATE_ASSIGN_OR_RETURN(std::string target, CheckoutXml(to));
  std::vector<pul::Pul> undos;
  undos.reserve(static_cast<size_t>(head_ - to));
  // A merge version contributes one undo per chain member, so the
  // chain may be longer than head - to.
  XUPDATE_RETURN_IF_ERROR(UndoChainRange("main", head_, to, &undos));
  // The chain is the ground truth: applying it must land on the target
  // bytes before anything is committed.
  {
    xml::Document scratch = doc_;
    for (const pul::Pul& undo : undos) {
      XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&scratch, undo));
    }
    XUPDATE_ASSIGN_OR_RETURN(std::string bytes,
                             SerializeAnnotated(scratch));
    if (bytes != target) {
      return Status::Internal(
          "rollback chain does not reproduce version " +
          std::to_string(to));
    }
  }
  // Prefer a single aggregated commit; fall back to the verified chain
  // when aggregation or its byte-check fails.
  bool aggregated = false;
  pul::Pul folded;
  if (undos.size() == 1) {
    folded = undos.front();
    aggregated = true;
  } else {
    std::vector<const pul::Pul*> pointers;
    pointers.reserve(undos.size());
    for (const pul::Pul& undo : undos) pointers.push_back(&undo);
    core::AggregateOptions aggregate_options;
    aggregate_options.metrics = options_.metrics;
    aggregate_options.tracer = options_.tracer;
    Result<pul::Pul> fold = core::Aggregate(pointers, aggregate_options);
    if (fold.ok()) {
      core::ReduceOptions reduce_options;
      reduce_options.mode = core::ReduceMode::kCanonical;
      reduce_options.parallelism = options_.parallelism;
      reduce_options.metrics = options_.metrics;
      Result<pul::Pul> reduced = core::Reduce(*fold, reduce_options);
      if (reduced.ok()) {
        xml::Document scratch = doc_;
        if (pul::ApplyPul(&scratch, *reduced).ok()) {
          Result<std::string> bytes = SerializeAnnotated(scratch);
          if (bytes.ok() && *bytes == target) {
            folded = std::move(*reduced);
            aggregated = true;
          }
        }
      }
    }
  }
  if (aggregated) {
    XUPDATE_ASSIGN_OR_RETURN(uint64_t version, Commit(folded));
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter("store.rollback.count");
    }
    return version;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.rollback.chain_fallback");
  }
  uint64_t version = head_;
  for (const pul::Pul& undo : undos) {
    XUPDATE_ASSIGN_OR_RETURN(version, Commit(undo));
  }
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.rollback.count");
  }
  return version;
}

Status VersionStore::Compact(CompactStats* stats) {
  return CompactImpl(this, stats);
}

Result<VerifyReport> VersionStore::Verify() const {
  ScopedTimer timer(options_.metrics, "store.verify.seconds");
  VerifyReport report;
  report.head = head_;
  report.snapshots = snapshots_.versions().size();
  // Structural re-scan: every byte of the journal must decode into
  // CRC-clean frames with no trailing garbage.
  XUPDATE_ASSIGN_OR_RETURN(std::string data,
                           ReadFileToString(wal_.path()));
  if (data.size() < Wal::kMagicSize ||
      data.compare(0, Wal::kMagicSize, Wal::kMagic, Wal::kMagicSize) != 0) {
    return Status::ParseError("bad journal magic");
  }
  size_t offset = Wal::kMagicSize;
  while (offset < data.size()) {
    XUPDATE_ASSIGN_OR_RETURN(WalFrame frame,
                             Wal::DecodeFrame(data, &offset));
    (void)frame;
    ++report.frames;
  }
  if (report.frames != wal_.frames().size()) {
    return Status::ParseError("journal frame directory out of sync");
  }
  // Forward replay from the base checkpoint: every checkpointed version
  // must serialize to exactly its checkpoint bytes, and every compacted
  // segment's undo chain must walk back down onto the segment base.
  XUPDATE_ASSIGN_OR_RETURN(std::string base_xml, snapshots_.Read(0));
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc,
                           xml::ParseDocument(base_xml));
  ++report.snapshots_checked;
  uint64_t cur = 0;
  std::string segment_base_bytes;  // serialized doc at each segment base
  while (cur < head_) {
    auto it = pul_frames_.find(cur + 1);
    auto mit = merge_frames_.find(cur + 1);
    if (it != pul_frames_.end()) {
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, ReadPul(it->second));
      XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, pul));
      ++cur;
      ++report.replayed_versions;
    } else if (mit != merge_frames_.end()) {
      XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, wal_.ReadFrame(mit->second));
      XUPDATE_ASSIGN_OR_RETURN(MergeRecord record,
                               DecodeMergeRecord(frame.payload));
      for (const std::string& text : record.chain) {
        XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
        XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, pul));
      }
      // Both parents must stay resolvable, and the sync record that
      // made this merge effective must exist.
      XUPDATE_RETURN_IF_ERROR(
          VerifyMergeFrame("main", mit->second.version, mit->second.aux,
                           record));
      ++cur;
      ++report.replayed_versions;
      ++report.merges_checked;
    } else {
      const Segment* segment = nullptr;
      for (const Segment& s : segments_) {
        if (s.from == cur) {
          segment = &s;
          break;
        }
      }
      if (segment == nullptr) {
        return Status::ParseError("journal gap above version " +
                                  std::to_string(cur));
      }
      XUPDATE_ASSIGN_OR_RETURN(segment_base_bytes,
                               SerializeAnnotated(doc));
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul aggregate,
                               ReadPul(segment->aggregate));
      XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, aggregate));
      cur = segment->to;
      report.replayed_versions +=
          static_cast<size_t>(segment->to - segment->from);
      // Undo chain: to -> from must land on the segment-base bytes.
      xml::Document scratch = doc;
      for (uint64_t w = segment->to; w > segment->from; --w) {
        XUPDATE_ASSIGN_OR_RETURN(pul::Pul undo,
                                 ReadPul(segment->undos.at(w)));
        XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&scratch, undo));
      }
      XUPDATE_ASSIGN_OR_RETURN(std::string walked,
                               SerializeAnnotated(scratch));
      if (walked != segment_base_bytes) {
        return Status::ParseError(
            "undo chain of segment (" + std::to_string(segment->from) +
            ", " + std::to_string(segment->to) +
            "] does not reproduce its base");
      }
      ++report.undo_chains_checked;
    }
    if (snapshots_.Has(cur)) {
      XUPDATE_ASSIGN_OR_RETURN(std::string expect, snapshots_.Read(cur));
      XUPDATE_ASSIGN_OR_RETURN(std::string got, SerializeAnnotated(doc));
      if (got != expect) {
        return Status::ParseError(
            "checkpoint for version " + std::to_string(cur) +
            " does not match replay");
      }
      ++report.snapshots_checked;
    }
  }
  // Every branch journal gets the same treatment: structural re-scan,
  // forward replay from the fork point, merge-frame resolution.
  for (const auto& [name, branch] : branches_) {
    XUPDATE_ASSIGN_OR_RETURN(BranchVerifyResult result, VerifyBranch(name));
    report.branches.push_back(std::move(result));
  }
  return report;
}

std::vector<LogEntry> VersionStore::Log() const {
  std::vector<LogEntry> entries;
  entries.reserve(wal_.frames().size());
  for (const WalFrameInfo& info : wal_.frames()) {
    LogEntry entry;
    entry.type = info.type;
    entry.version = info.version;
    entry.aux = info.aux;
    entry.offset = info.offset;
    entry.payload_bytes = info.payload_bytes;
    entries.push_back(entry);
  }
  return entries;
}

Status VersionStore::Close() {
  Status status = wal_.Close();
  for (auto& [name, branch] : branches_) {
    Status closed = branch.wal.Close();
    if (status.ok() && !closed.ok()) status = closed;
  }
  if (has_branch_log_) {
    Status closed = branch_log_.Close();
    if (status.ok() && !closed.ok()) status = closed;
  }
  return status;
}

}  // namespace xupdate::store
