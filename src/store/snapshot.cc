#include "store/snapshot.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace xupdate::store {

namespace {

constexpr char kPrefix[] = "snap-";
constexpr char kSuffix[] = ".snap";
constexpr size_t kDigits = 20;

// snap-<20 digits>.snap -> version; false for any other name.
bool ParseName(const std::string& name, uint64_t* version) {
  const size_t expect =
      sizeof(kPrefix) - 1 + kDigits + sizeof(kSuffix) - 1;
  if (name.size() != expect) return false;
  if (name.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  if (name.compare(expect - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                   kSuffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = sizeof(kPrefix) - 1; i < sizeof(kPrefix) - 1 + kDigits;
       ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *version = v;
  return true;
}

}  // namespace

std::string SnapshotStore::FileName(uint64_t version) {
  std::string digits = std::to_string(version);
  return std::string(kPrefix) +
         std::string(kDigits - digits.size(), '0') + digits + kSuffix;
}

Result<SnapshotStore> SnapshotStore::Open(const std::string& dir,
                                          Metrics* metrics) {
  SnapshotStore store;
  store.dir_ = dir;
  store.metrics_ = metrics;
  XUPDATE_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           ListDirectory(dir));
  for (const std::string& name : names) {
    uint64_t version = 0;
    if (!ParseName(name, &version)) continue;
    // Probe the file now so a torn checkpoint is ignored up front
    // instead of failing a later Checkout.
    SnapshotStore probe;
    probe.dir_ = dir;
    probe.versions_.push_back(version);
    if (!probe.Read(version).ok()) {
      ++store.skipped_files_;
      continue;
    }
    store.versions_.push_back(version);
  }
  std::sort(store.versions_.begin(), store.versions_.end());
  if (metrics != nullptr) {
    metrics->AddCounter("store.snapshot.open.count",
                        store.versions_.size());
    metrics->AddCounter("store.snapshot.open.skipped",
                        store.skipped_files_);
  }
  return store;
}

Status SnapshotStore::Write(uint64_t version,
                            std::string_view annotated_xml) {
  ScopedTimer timer(metrics_, "store.snapshot.write.seconds");
  if (annotated_xml.size() > Wal::kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "snapshot of " + std::to_string(annotated_xml.size()) +
        " bytes exceeds the frame limit");
  }
  WalFrame frame;
  frame.type = FrameType::kSnapshot;
  frame.version = version;
  frame.payload = std::string(annotated_xml);
  std::string content(kSnapshotMagic, kSnapshotMagicSize);
  content += Wal::EncodeFrame(frame);
  XUPDATE_RETURN_IF_ERROR(
      WriteFileAtomic(dir_ + "/" + FileName(version), content));
  if (!Has(version)) {
    versions_.insert(
        std::upper_bound(versions_.begin(), versions_.end(), version),
        version);
  }
  if (metrics_ != nullptr) {
    metrics_->AddCounter("store.snapshot.write.count");
    metrics_->AddCounter("store.snapshot.write.bytes", content.size());
  }
  return Status::OK();
}

Result<size_t> SnapshotStore::RemoveAbove(uint64_t version) {
  size_t removed = 0;
  while (!versions_.empty() && versions_.back() > version) {
    XUPDATE_RETURN_IF_ERROR(
        RemoveFile(dir_ + "/" + FileName(versions_.back())));
    versions_.pop_back();
    ++removed;
  }
  if (removed > 0) {
    XUPDATE_RETURN_IF_ERROR(SyncDirectory(dir_));
    if (metrics_ != nullptr) {
      metrics_->AddCounter("store.snapshot.removed_stale", removed);
    }
  }
  return removed;
}

Result<std::string> SnapshotStore::Read(uint64_t version) const {
  std::string path = dir_ + "/" + FileName(version);
  XUPDATE_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (data.size() < kSnapshotMagicSize ||
      std::memcmp(data.data(), kSnapshotMagic, kSnapshotMagicSize) != 0) {
    return Status::ParseError("bad snapshot magic in " + path);
  }
  size_t offset = kSnapshotMagicSize;
  XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, Wal::DecodeFrame(data, &offset));
  if (frame.type != FrameType::kSnapshot || frame.version != version ||
      offset != data.size()) {
    return Status::ParseError("malformed snapshot file " + path);
  }
  return std::move(frame.payload);
}

bool SnapshotStore::NearestAtOrBelow(uint64_t v, uint64_t* out) const {
  auto it = std::upper_bound(versions_.begin(), versions_.end(), v);
  if (it == versions_.begin()) return false;
  *out = *(it - 1);
  return true;
}

bool SnapshotStore::Has(uint64_t version) const {
  return std::binary_search(versions_.begin(), versions_.end(), version);
}

}  // namespace xupdate::store
