#ifndef XUPDATE_STORE_WAL_H_
#define XUPDATE_STORE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/file_io.h"
#include "common/metrics.h"
#include "common/result.h"
#include "obs/trace.h"

namespace xupdate::store {

// Write-ahead journal of serialized PULs — the durable half of the
// versioned update store. The file is a fixed 8-byte magic header
// followed by length-prefixed, CRC32C-framed records:
//
//   file   := "XUWAL001" frame*
//   frame  := u32 body_len | u32 masked_crc32c(body) | body
//   body   := u8 type | u64 version | u64 aux | payload
//
// All integers little-endian. The CRC is masked (common/crc32c.h) and
// covers the whole body, so a bit flip in the type/version words is
// caught, not only in the payload. Frame types:
//
//   kPul        one committed PUL; `version` is the version it produces
//               (its parent is version - 1), `aux` is 0.
//   kAggregate  a compacted segment: the payload PUL takes the document
//               from version `aux` directly to version `version`
//               (core/aggregate folded, core/reduce canonicalized).
//   kUndo       backward delta kept by compaction so interior versions
//               of a folded segment stay addressable: the payload PUL
//               takes version `version` back to version - 1
//               (computed via core/invert and byte-verified before the
//               compacted journal is installed).
//
// Torn-tail discipline: a crash mid-append leaves a trailing partial
// frame. Open() scans the file front to back and truncates it at the
// first offset where a complete, CRC-clean frame cannot be read — the
// classic "recover to the last valid frame" WAL contract. The
// truncation itself is fsync'd, so `store verify` reports a clean
// journal immediately after recovery.
//
// Write-failure discipline: a failed append (e.g. ENOSPC) can leave a
// torn prefix of the frame on disk, and a failed fdatasync leaves the
// tail's durability unknown — in both cases nothing after the failure
// point can be trusted to be frame-aligned, so the handle poisons
// itself and refuses every further Append. The caller reopens the
// journal, which truncates back to the last clean frame.
//
// Fsync policy trades durability for commit throughput:
//   kAlways  fdatasync after every append (default; no committed
//            version is ever lost);
//   kBatch   fdatasync every `batch_interval` appends and on Close();
//   kNever   leave flushing to the OS (benchmark baseline).

enum class FsyncPolicy { kAlways, kBatch, kNever };

// "always" / "batch" / "never"; false if `name` is not a policy.
bool FsyncPolicyFromName(std::string_view name, FsyncPolicy* out);
std::string_view FsyncPolicyName(FsyncPolicy policy);

// kSnapshot never appears in the journal — it is the single frame of a
// snapshot checkpoint file (magic + frame, same CRC discipline).
//
//   kMerge      a merge commit on a branch journal: the payload is a
//               store/records.h MergeRecord (the other parent branch,
//               both parents' pre-merge versions, the merge base, and
//               the exact PUL chain that takes this branch's pre-merge
//               head to the merged state). `version` is the version it
//               produces on this branch; `aux` is this branch's
//               pre-merge head (the local parent).
//   kBranchMeta branch metadata records (store/records.h): the first
//               frame of every branch journal (kind 0, the branch's
//               name/parent/fork/policies) and every frame of
//               branches.log (kind 1 sync-commit markers, kind 2
//               rebase markers). `version`/`aux` are record-defined.
enum class FrameType : uint8_t {
  kPul = 1,
  kAggregate = 2,
  kUndo = 3,
  kSnapshot = 4,
  kMerge = 5,
  kBranchMeta = 6,
};

struct WalFrame {
  FrameType type = FrameType::kPul;
  uint64_t version = 0;
  uint64_t aux = 0;
  std::string payload;
};

// Where a frame sits in the file; enough to re-read it lazily.
struct WalFrameInfo {
  FrameType type = FrameType::kPul;
  uint64_t version = 0;
  uint64_t aux = 0;
  uint64_t offset = 0;        // of the frame header
  uint32_t payload_bytes = 0;
};

// What Open() found (and possibly repaired).
struct WalRecovery {
  size_t frames = 0;
  uint64_t valid_bytes = 0;      // file size after recovery
  uint64_t truncated_bytes = 0;  // torn/corrupt tail dropped
};

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  size_t batch_interval = 16;
  // Fault injection: after this many appended bytes (counted across the
  // Wal's lifetime, header included), Append() writes only the prefix
  // that fits and fails — simulating a crash that tears the last frame.
  // Negative disables. Wired to the CLI via XUPDATE_STORE_FAIL_AFTER_BYTES.
  int64_t fail_after_bytes = -1;
  Metrics* metrics = nullptr;
};

class Wal {
 public:
  // Creates an empty journal (header only). Fails if the file exists.
  static Result<Wal> Create(const std::string& path,
                            const WalOptions& options);

  // Opens an existing journal, scanning every frame and truncating a
  // torn tail. The scan result (frame directory) is retained for
  // index building; payloads are not kept in memory.
  static Result<Wal> Open(const std::string& path, const WalOptions& options,
                          WalRecovery* recovery = nullptr);

  // A default-constructed Wal is closed; use Create()/Open().
  Wal() = default;
  Wal(Wal&&) noexcept = default;
  Wal& operator=(Wal&&) noexcept = default;

  // Appends one frame, honoring the fsync policy. After any append or
  // fsync failure the handle is poisoned: every later Append is refused
  // (kIoError) until the journal is reopened and its tail recovered.
  // With `defer_sync` the policy sync is skipped — the group-commit
  // path appends a batch of frames this way and then calls Sync() once,
  // coalescing N commits into a single fdatasync.
  Status Append(const WalFrame& frame, bool defer_sync = false);

  // Forces an fdatasync regardless of policy.
  Status Sync();

  // Flushes (per policy) and closes the append handle.
  Status Close();

  // Re-reads and CRC-checks the frame at `info.offset`.
  Result<WalFrame> ReadFrame(const WalFrameInfo& info) const;

  // Frame directory in file order: the Open() scan plus every
  // successful Append() since.
  const std::vector<WalFrameInfo>& frames() const { return frames_; }

  uint64_t size_bytes() const { return size_bytes_; }
  const std::string& path() const { return path_; }

  // Serializes one frame to its on-disk bytes (shared with snapshot
  // files, which are a magic header plus a single frame).
  static std::string EncodeFrame(const WalFrame& frame);

  // Decodes the frame starting at `data[offset]`; advances `offset` past
  // it. Returns kParseError for a torn or corrupt frame.
  static Result<WalFrame> DecodeFrame(std::string_view data, size_t* offset);

  static constexpr char kMagic[] = "XUWAL001";  // 8 bytes, no NUL on disk
  static constexpr size_t kMagicSize = 8;
  static constexpr size_t kFrameHeaderSize = 8;   // len + crc
  static constexpr size_t kFrameBodyFixedSize = 17;  // type + version + aux
  // Largest payload a frame can carry: the body (fixed fields +
  // payload) must fit the u32 length prefix. Append rejects anything
  // larger up front — silently wrapping the length would corrupt the
  // journal.
  static constexpr uint64_t kMaxPayloadBytes =
      UINT32_MAX - kFrameBodyFixedSize;

 private:
  std::string path_;
  AppendableFile file_;
  WalOptions options_;
  std::vector<WalFrameInfo> frames_;
  uint64_t size_bytes_ = 0;
  uint64_t appended_bytes_ = 0;   // for fault injection accounting
  size_t appends_since_sync_ = 0;
  // Set by a failed append/fsync; Append refuses once set (the file may
  // end in torn bytes that only a reopen's tail recovery can clear).
  bool poisoned_ = false;
};

}  // namespace xupdate::store

#endif  // XUPDATE_STORE_WAL_H_
