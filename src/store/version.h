#ifndef XUPDATE_STORE_VERSION_H_
#define XUPDATE_STORE_VERSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "label/labeling.h"
#include "obs/trace.h"
#include "pul/pul.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "xml/document.h"

namespace xupdate::store {

// The durable versioned update store: a linear version history where
// version 0 is the initial document and each later version is its
// parent plus one committed PUL. On disk a store directory holds
//
//   wal.log        the journal (store/wal.h)
//   snap-*.snap    snapshot checkpoints (store/snapshot.h)
//
// and nothing else — there is no manifest; the whole state is derived
// by scanning both at Open(). Commit is WAL-first: the serialized PUL
// is appended (and fsync'd per policy) before it is applied in memory,
// so a crash at any byte leaves a journal that recovers to the last
// complete version. Checkout(v) materializes any historical version by
// replaying from the nearest checkpoint at or below v; compaction
// (store/compact.h, VersionStore::Compact) folds journal segments
// between consecutive checkpoints into one aggregated PUL plus
// per-version undo deltas, preserving Checkout byte-identity for every
// version — verified against forward-replay serializations before the
// rewritten journal is installed.

struct StoreOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  size_t batch_interval = 16;
  // Checkpoint cadence: snapshot after this many versions since the
  // last checkpoint (0 disables the version trigger) ...
  uint64_t snapshot_every = 8;
  // ... or after this many journal bytes since it (0 disables).
  uint64_t snapshot_bytes = 1 << 20;
  // Reduce parallelism used by compaction and rollback. The reduction
  // engine is byte-deterministic across parallelism levels, so this
  // never changes store contents.
  int parallelism = 1;
  // Fault injection (see WalOptions::fail_after_bytes).
  int64_t fail_after_bytes = -1;
  Metrics* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

// Per-PUL result of a CommitBatch: the version the PUL produced, or
// why it was rejected (the batch skips it and moves on).
struct CommitOutcome {
  Status status;
  uint64_t version = 0;
};

// Timing/size decomposition of one CommitBatch call, captured only when
// the caller asks for it (the serving layer's per-request telemetry).
struct BatchCommitStats {
  double validate_seconds = 0.0;  // stage 1: scratch applicability+apply
  double fsync_seconds = 0.0;     // stage 2: the single wal Sync()
  double apply_seconds = 0.0;     // stage 3: install + checkpoint
  uint64_t wal_bytes = 0;         // journal size after the batch
};

// One journal frame, as reported by Log().
struct LogEntry {
  FrameType type = FrameType::kPul;
  uint64_t version = 0;
  uint64_t aux = 0;  // kAggregate: the segment's base version
  uint64_t offset = 0;
  uint32_t payload_bytes = 0;
};

// What Open() found and repaired.
struct OpenReport {
  WalRecovery wal;
  uint64_t head = 0;
  size_t snapshots = 0;
  // Checkpoint files not usable: torn files skipped by the scan, plus
  // checkpoints above the recovered head (a crash under fsync=batch/
  // never can leave these behind). Stale ones are deleted at Open so a
  // later commit past their version can never replay pre-crash bytes.
  size_t snapshots_ignored = 0;
};

struct VerifyReport {
  size_t frames = 0;
  size_t snapshots = 0;
  uint64_t head = 0;
  // Versions re-materialized by forward replay during verification.
  size_t replayed_versions = 0;
  // Checkpoints whose bytes were matched against the replay.
  size_t snapshots_checked = 0;
  // Undo chains of compacted segments walked back to a checkpoint.
  size_t undo_chains_checked = 0;
};

struct CompactStats {
  size_t segments_considered = 0;
  size_t segments_compacted = 0;
  // Segments left alone because an aggregated or undo replay failed the
  // byte-identity check (the store stays on the plain frames).
  size_t segments_skipped = 0;
  size_t frames_before = 0;
  size_t frames_after = 0;
  uint64_t journal_bytes_before = 0;
  uint64_t journal_bytes_after = 0;
  size_t input_ops = 0;   // across compacted segments
  size_t output_ops = 0;  // aggregate ops across compacted segments
};

class VersionStore {
 public:
  // Creates a store directory: parses `initial_xml` as version 0,
  // writes its checkpoint and an empty journal. Fails if a journal
  // already exists there.
  static Status Init(const std::string& dir, std::string_view initial_xml,
                     const StoreOptions& options = {});

  // Opens an existing store: recovers the journal tail, indexes frames
  // and checkpoints, and materializes the head document.
  static Result<VersionStore> Open(const std::string& dir,
                                   const StoreOptions& options = {},
                                   OpenReport* report = nullptr);

  VersionStore(VersionStore&&) noexcept = default;
  VersionStore& operator=(VersionStore&&) noexcept = default;

  // Commits one PUL as version head()+1. WAL-first: applicability is
  // checked, the frame is appended (honoring the fsync policy), and
  // only then is the PUL applied to the head document. A checkpoint is
  // written when the cadence triggers fire.
  Result<uint64_t> Commit(const pul::Pul& pul);

  // Group commit: commits the PULs in order as consecutive versions,
  // with ONE fdatasync for the whole batch instead of one per commit
  // (the server's group-commit path; under fsync=always a batch of N
  // costs 1 fsync, not N). Each PUL is validated against the state its
  // predecessors in the batch produced; an inapplicable PUL gets its
  // failure recorded in `outcomes` and the batch continues without it.
  // `outcomes` (parallel to `puls`) is always resized and filled, and
  // may be null when the caller only wants the count. An
  // append/fsync failure fails the whole call: the journal may hold a
  // torn tail, in-memory state is untouched, and every outcome is
  // overwritten with the I/O error. Returns the number of PULs
  // committed. `stats`, when non-null, receives the per-stage timing
  // decomposition (a null pointer costs nothing on the hot path).
  Result<size_t> CommitBatch(const std::vector<const pul::Pul*>& puls,
                             std::vector<CommitOutcome>* outcomes,
                             BatchCommitStats* stats = nullptr);

  // Materializes the document at version `v` by replaying from the
  // nearest checkpoint at or below v (forward over kPul/kAggregate
  // frames, then down a compacted segment's kUndo chain for interior
  // versions).
  Result<xml::Document> Checkout(uint64_t v) const;

  // Id-annotated serialization of Checkout(v) — the store's canonical
  // byte representation of a version.
  Result<std::string> CheckoutXml(uint64_t v) const;

  // Rolls the store back to version `to` *by committing forward*: the
  // undo deltas head..to+1 (stored kUndo frames where compaction kept
  // them, otherwise recomputed by the same invert-of-reduction formula)
  // are aggregated into a single PUL; if applying it reproduces
  // Checkout(to) byte-for-byte it is committed as one new version,
  // otherwise the per-version deltas are committed as a chain. Either
  // way history is preserved and the result is identical on compacted
  // and uncompacted stores. Returns the new head.
  Result<uint64_t> Rollback(uint64_t to);

  // Folds every eligible journal segment (the kPul frames strictly
  // between two consecutive checkpointed versions) into one kAggregate
  // frame plus kUndo frames, then atomically rewrites the journal.
  // Implemented in store/compact.cc; see that file for the
  // byte-identity verification protocol.
  Status Compact(CompactStats* stats = nullptr);

  // Full offline audit: structural re-scan of the journal (every CRC),
  // forward replay of every version, byte-comparison against every
  // checkpoint, and a walk down every compacted segment's undo chain.
  Result<VerifyReport> Verify() const;

  // Journal frames in file order.
  std::vector<LogEntry> Log() const;

  uint64_t head() const { return head_; }

  // Journal size on disk — the serving layer exposes it as a gauge.
  uint64_t wal_bytes() const { return wal_.size_bytes(); }
  const xml::Document& head_doc() const { return doc_; }
  const std::string& dir() const { return dir_; }
  const SnapshotStore& snapshots() const { return snapshots_; }

  // Flushes and closes the journal handle.
  Status Close();

  // Serialization shared by checkpoints, verification and the CLI: the
  // id-annotated non-pretty form (the store's canonical bytes).
  static Result<std::string> SerializeAnnotated(const xml::Document& doc);

  // The store's canonical undo formula, shared by rollback and
  // compaction so their deltas agree byte-for-byte: deterministic
  // reduction of `pul`, a document-grounded drop of operations the
  // O-rules override (labels inside an aggregated PUL can be too stale
  // for the label-based engine to see every override; the pre-state
  // document is ground truth and overridden operations have no effect
  // on Apply), then core/invert against `pre`.
  static Result<pul::Pul> ComputeUndo(const xml::Document& pre,
                                      const pul::Pul& pul,
                                      const StoreOptions& options);

 private:
  friend Status CompactImpl(VersionStore* store, CompactStats* stats);

  VersionStore() = default;

  // A compacted journal segment (from, to]: one aggregate frame plus
  // undo frames for versions to .. from+1.
  struct Segment {
    uint64_t from = 0;
    uint64_t to = 0;
    WalFrameInfo aggregate;
    std::map<uint64_t, WalFrameInfo> undos;
  };

  // Rebuilds pul_frames_ / segments_ / head_ from wal_.frames();
  // enforces the contiguous-version journal structure.
  Status BuildIndex();

  Result<pul::Pul> ReadPul(const WalFrameInfo& info) const;

  // Undo delta taking doc_v back to doc_{v-1}: the stored kUndo frame
  // when a compacted segment kept one, else Invert(doc_{v-1},
  // Reduce_det(pul_v)) — the same deterministic formula compaction
  // uses, so rollback chains agree across compaction states.
  Result<pul::Pul> UndoFor(uint64_t v) const;

  // Writes a checkpoint for the current head if a cadence trigger fired.
  Status MaybeCheckpoint();

  std::string dir_;
  StoreOptions options_;
  Wal wal_;
  SnapshotStore snapshots_;
  xml::Document doc_;  // at head_
  uint64_t head_ = 0;

  std::map<uint64_t, WalFrameInfo> pul_frames_;  // by produced version
  std::vector<Segment> segments_;                // ascending by `from`

  uint64_t last_checkpoint_version_ = 0;
  uint64_t wal_bytes_at_checkpoint_ = 0;
};

}  // namespace xupdate::store

#endif  // XUPDATE_STORE_VERSION_H_
