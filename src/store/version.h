#ifndef XUPDATE_STORE_VERSION_H_
#define XUPDATE_STORE_VERSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "label/labeling.h"
#include "obs/trace.h"
#include "pul/pul.h"
#include "store/records.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "xml/document.h"

namespace xupdate::store {

// The durable versioned update store: a linear version history where
// version 0 is the initial document and each later version is its
// parent plus one committed PUL. On disk a store directory holds
//
//   wal.log        the journal (store/wal.h)
//   snap-*.snap    snapshot checkpoints (store/snapshot.h)
//
// plus, when branches exist (see "Branches" below),
//
//   branch-<name>.log   one journal per named branch
//   branches.log        sync-commit + rebase markers (store/records.h)
//
// and nothing else — there is no manifest; the whole state is derived
// by scanning both at Open(). Commit is WAL-first: the serialized PUL
// is appended (and fsync'd per policy) before it is applied in memory,
// so a crash at any byte leaves a journal that recovers to the last
// complete version. Checkout(v) materializes any historical version by
// replaying from the nearest checkpoint at or below v; compaction
// (store/compact.h, VersionStore::Compact) folds journal segments
// between consecutive checkpoints into one aggregated PUL plus
// per-version undo deltas, preserving Checkout byte-identity for every
// version — verified against forward-replay serializations before the
// rewritten journal is installed.

struct StoreOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  size_t batch_interval = 16;
  // Checkpoint cadence: snapshot after this many versions since the
  // last checkpoint (0 disables the version trigger) ...
  uint64_t snapshot_every = 8;
  // ... or after this many journal bytes since it (0 disables).
  uint64_t snapshot_bytes = 1 << 20;
  // Reduce parallelism used by compaction and rollback. The reduction
  // engine is byte-deterministic across parallelism levels, so this
  // never changes store contents.
  int parallelism = 1;
  // Fault injection (see WalOptions::fail_after_bytes).
  int64_t fail_after_bytes = -1;
  Metrics* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

// Per-PUL result of a CommitBatch: the version the PUL produced, or
// why it was rejected (the batch skips it and moves on).
struct CommitOutcome {
  Status status;
  uint64_t version = 0;
};

// Timing/size decomposition of one CommitBatch call, captured only when
// the caller asks for it (the serving layer's per-request telemetry).
struct BatchCommitStats {
  double validate_seconds = 0.0;  // stage 1: scratch applicability+apply
  double fsync_seconds = 0.0;     // stage 2: the single wal Sync()
  double apply_seconds = 0.0;     // stage 3: install + checkpoint
  uint64_t wal_bytes = 0;         // journal size after the batch
};

// One journal frame, as reported by Log() / LogBranch().
struct LogEntry {
  FrameType type = FrameType::kPul;
  uint64_t version = 0;
  uint64_t aux = 0;  // kAggregate: the segment's base version;
                     // kMerge: the local parent version
  uint64_t offset = 0;
  uint32_t payload_bytes = 0;
  // Operation count of the frame's payload (kMerge: total across its
  // chain). Filled only by LogBranch(..., with_op_counts=true); plain
  // Log() leaves it 0 — counting requires parsing every payload.
  uint64_t ops = 0;
};

// What Open() found and repaired.
struct OpenReport {
  WalRecovery wal;
  uint64_t head = 0;
  size_t snapshots = 0;
  // Checkpoint files not usable: torn files skipped by the scan, plus
  // checkpoints above the recovered head (a crash under fsync=batch/
  // never can leave these behind). Stale ones are deleted at Open so a
  // later commit past their version can never replay pre-crash bytes.
  size_t snapshots_ignored = 0;
  // Branch journals recovered.
  size_t branches = 0;
  // Tail merge frames truncated because their sync-commit record never
  // reached branches.log (a crash mid-sync; see CommitMerge).
  size_t merges_rolled_back = 0;
};

// Per-branch slice of a Verify() run.
struct BranchVerifyResult {
  std::string name;
  size_t frames = 0;       // journal frames (meta frame included)
  uint64_t head = 0;
  size_t replayed_versions = 0;
  size_t merges_checked = 0;  // merge frames whose parents + sync
                              // record were resolved
};

struct VerifyReport {
  size_t frames = 0;
  size_t snapshots = 0;
  uint64_t head = 0;
  // Versions re-materialized by forward replay during verification.
  size_t replayed_versions = 0;
  // Checkpoints whose bytes were matched against the replay.
  size_t snapshots_checked = 0;
  // Undo chains of compacted segments walked back to a checkpoint.
  size_t undo_chains_checked = 0;
  // Merge frames on the mainline whose parents + sync record resolved.
  size_t merges_checked = 0;
  // Every branch journal, in name order (empty when no branches exist).
  std::vector<BranchVerifyResult> branches;
};

// A branch as reported by GetBranch()/BranchNames(). For "main":
// parent is empty, fork is 0, policies default.
struct BranchInfo {
  std::string name;
  std::string parent;
  uint64_t fork = 0;
  pul::Policies policies;
  uint64_t head = 0;
};

// The merge base of a branch pair: a version on each side's chain at
// which the two materialize byte-identical documents (the fork point,
// or the pair's last committed sync).
struct SyncPoint {
  uint64_t base_a = 0;
  uint64_t base_b = 0;
};

// A fully-computed merge handed to CommitMerge: each side's chain,
// applied in order to that side's head, must land byte-exactly on one
// shared merged state (CommitMerge verifies this before any journal
// write). An empty chain means that side is already at the merged
// state and gets no frame — a fast-forward for the other side.
struct MergePlan {
  std::string branch_a;
  std::string branch_b;
  uint64_t base_a = 0;  // merge base on a's chain
  uint64_t base_b = 0;
  std::vector<pul::Pul> chain_a;
  std::vector<pul::Pul> chain_b;
};

struct MergeCommitResult {
  uint64_t head_a = 0;  // post-merge heads
  uint64_t head_b = 0;
  bool committed_a = false;  // a merge frame landed on that side
  bool committed_b = false;
};

struct CompactStats {
  size_t segments_considered = 0;
  size_t segments_compacted = 0;
  // Segments left alone because an aggregated or undo replay failed the
  // byte-identity check (the store stays on the plain frames).
  size_t segments_skipped = 0;
  size_t frames_before = 0;
  size_t frames_after = 0;
  uint64_t journal_bytes_before = 0;
  uint64_t journal_bytes_after = 0;
  size_t input_ops = 0;   // across compacted segments
  size_t output_ops = 0;  // aggregate ops across compacted segments
};

class VersionStore {
 public:
  // Creates a store directory: parses `initial_xml` as version 0,
  // writes its checkpoint and an empty journal. Fails if a journal
  // already exists there.
  static Status Init(const std::string& dir, std::string_view initial_xml,
                     const StoreOptions& options = {});

  // Opens an existing store: recovers the journal tail, indexes frames
  // and checkpoints, and materializes the head document.
  static Result<VersionStore> Open(const std::string& dir,
                                   const StoreOptions& options = {},
                                   OpenReport* report = nullptr);

  VersionStore(VersionStore&&) noexcept = default;
  VersionStore& operator=(VersionStore&&) noexcept = default;

  // Commits one PUL as version head()+1. WAL-first: applicability is
  // checked, the frame is appended (honoring the fsync policy), and
  // only then is the PUL applied to the head document. A checkpoint is
  // written when the cadence triggers fire.
  Result<uint64_t> Commit(const pul::Pul& pul);

  // Group commit: commits the PULs in order as consecutive versions,
  // with ONE fdatasync for the whole batch instead of one per commit
  // (the server's group-commit path; under fsync=always a batch of N
  // costs 1 fsync, not N). Each PUL is validated against the state its
  // predecessors in the batch produced; an inapplicable PUL gets its
  // failure recorded in `outcomes` and the batch continues without it.
  // `outcomes` (parallel to `puls`) is always resized and filled, and
  // may be null when the caller only wants the count. An
  // append/fsync failure fails the whole call: the journal may hold a
  // torn tail, in-memory state is untouched, and every outcome is
  // overwritten with the I/O error. Returns the number of PULs
  // committed. `stats`, when non-null, receives the per-stage timing
  // decomposition (a null pointer costs nothing on the hot path).
  Result<size_t> CommitBatch(const std::vector<const pul::Pul*>& puls,
                             std::vector<CommitOutcome>* outcomes,
                             BatchCommitStats* stats = nullptr);

  // Materializes the document at version `v` by replaying from the
  // nearest checkpoint at or below v (forward over kPul/kAggregate
  // frames, then down a compacted segment's kUndo chain for interior
  // versions).
  Result<xml::Document> Checkout(uint64_t v) const;

  // Id-annotated serialization of Checkout(v) — the store's canonical
  // byte representation of a version.
  Result<std::string> CheckoutXml(uint64_t v) const;

  // Rolls the store back to version `to` *by committing forward*: the
  // undo deltas head..to+1 (stored kUndo frames where compaction kept
  // them, otherwise recomputed by the same invert-of-reduction formula)
  // are aggregated into a single PUL; if applying it reproduces
  // Checkout(to) byte-for-byte it is committed as one new version,
  // otherwise the per-version deltas are committed as a chain. Either
  // way history is preserved and the result is identical on compacted
  // and uncompacted stores. Returns the new head.
  Result<uint64_t> Rollback(uint64_t to);

  // Folds every eligible journal segment (the kPul frames strictly
  // between two consecutive checkpointed versions) into one kAggregate
  // frame plus kUndo frames, then atomically rewrites the journal.
  // Implemented in store/compact.cc; see that file for the
  // byte-identity verification protocol.
  Status Compact(CompactStats* stats = nullptr);

  // Full offline audit: structural re-scan of the journal (every CRC),
  // forward replay of every version, byte-comparison against every
  // checkpoint, and a walk down every compacted segment's undo chain.
  Result<VerifyReport> Verify() const;

  // Journal frames in file order.
  std::vector<LogEntry> Log() const;

  // --- Branches (store/records.h; merge/rebase logic in src/branch/) ---
  //
  // A branch is a journal of its own (branch-<name>.log) whose version
  // space extends its parent's: it forks at version `fork` of the
  // parent, its first commit is fork + 1, and versions <= fork resolve
  // through the parent chain — which is how every branch shares the
  // mainline's snapshot checkpoints at its fork point. The mainline is
  // addressable as branch "main" in every branch-taking method.
  //
  // Cross-journal merges are made crash-atomic by the sync protocol:
  // CommitMerge appends each side's kMerge frame (fsync'd regardless
  // of policy), then a SyncRecord to branches.log, then installs in
  // memory. Open() treats a journal's tail kMerge frame with no
  // SyncRecord as a torn sync and truncates it — both journals of the
  // torn sync roll back independently to their pre-merge heads, so
  // both parents of every surviving merge stay resolvable.

  // Creates branch `name` forking from `parent` (a branch or "main")
  // at `at` (<= the parent's head). Forces the parent journal durable
  // first so the fork point can never outlive its base in a crash.
  Status CreateBranch(const std::string& name, const std::string& parent,
                      uint64_t at, const pul::Policies& policies = {});

  // Branch names in sorted order, "main" excluded.
  std::vector<std::string> BranchNames() const;

  Result<BranchInfo> GetBranch(const std::string& name) const;

  // Commit/Checkout addressed to a branch; "main" delegates to the
  // mainline methods. Branch commits are WAL-first like Commit() but
  // never write checkpoints (branches replay from the fork point).
  Result<uint64_t> CommitOnBranch(const std::string& branch,
                                  const pul::Pul& pul);
  Result<xml::Document> CheckoutBranch(const std::string& branch,
                                       uint64_t v) const;
  Result<std::string> CheckoutXmlBranch(const std::string& branch,
                                        uint64_t v) const;

  // Branch head document (the mainline's for "main").
  Result<const xml::Document*> BranchHeadDoc(const std::string& branch) const;

  // Journal frames of a branch in file order (the branch's meta frame
  // included). With `with_op_counts` every payload is parsed and
  // LogEntry::ops filled.
  Result<std::vector<LogEntry>> LogBranch(const std::string& branch,
                                          bool with_op_counts) const;

  // The pair's merge base: their last committed sync still valid (no
  // later rebase of either side), else the fork point of their chains.
  Result<SyncPoint> MergeBase(const std::string& a,
                              const std::string& b) const;

  // The PULs whose in-order application takes the state at version
  // `from` of `branch`'s chain to the branch head: one per kPul frame,
  // a compacted segment's aggregate where the range aligns (an error if
  // `from` falls strictly inside one), and a merge frame's full chain.
  Result<std::vector<pul::Pul>> SuffixPuls(const std::string& branch,
                                           uint64_t from) const;

  // SuffixPuls generalized to an explicit upper bound: the PULs taking
  // version `from` to version `to` of `branch`'s chain.
  Result<std::vector<pul::Pul>> RangePuls(const std::string& branch,
                                          uint64_t from, uint64_t to) const;

  // Undo PULs rewinding `branch` from its head down to version
  // `down_to`, in application order (head first). Byte-exact: stored
  // kUndo frames where compaction kept them, the ComputeUndo formula
  // elsewhere; merge frames rewind through their verified flattened
  // chain.
  Result<std::vector<pul::Pul>> UndoChain(const std::string& branch,
                                          uint64_t down_to) const;

  // Commits a computed merge under the sync protocol described above.
  Result<MergeCommitResult> CommitMerge(const MergePlan& plan);

  // Atomically replaces `name`'s journal with `commits` replayed on
  // fork point `new_fork` (rebase's installation step): a RebaseRecord
  // voiding the branch's old sync records is made durable first, then
  // the rewritten journal is renamed into place and the in-memory
  // state rebuilt.
  Status RewriteBranch(const std::string& name, uint64_t new_fork,
                       const std::vector<pul::Pul>& commits);

  uint64_t head() const { return head_; }

  // Journal size on disk — the serving layer exposes it as a gauge.
  uint64_t wal_bytes() const { return wal_.size_bytes(); }
  const xml::Document& head_doc() const { return doc_; }
  const std::string& dir() const { return dir_; }
  const SnapshotStore& snapshots() const { return snapshots_; }

  // Flushes and closes the journal handle.
  Status Close();

  // Serialization shared by checkpoints, verification and the CLI: the
  // id-annotated non-pretty form (the store's canonical bytes).
  static Result<std::string> SerializeAnnotated(const xml::Document& doc);

  // The store's canonical undo formula, shared by rollback and
  // compaction so their deltas agree byte-for-byte: deterministic
  // reduction of `pul`, a document-grounded drop of operations the
  // O-rules override (labels inside an aggregated PUL can be too stale
  // for the label-based engine to see every override; the pre-state
  // document is ground truth and overridden operations have no effect
  // on Apply), then core/invert against `pre`.
  static Result<pul::Pul> ComputeUndo(const xml::Document& pre,
                                      const pul::Pul& pul,
                                      const StoreOptions& options);

 private:
  friend Status CompactImpl(VersionStore* store, CompactStats* stats);

  VersionStore() = default;

  // In-memory state of one branch journal.
  struct BranchState {
    BranchMetaRecord meta;
    Wal wal;
    std::map<uint64_t, WalFrameInfo> pul_frames;    // kPul by version
    std::map<uint64_t, WalFrameInfo> merge_frames;  // kMerge by version
    xml::Document doc;  // at head
    uint64_t head = 0;  // == meta.fork when the branch has no commits
  };

  // A compacted journal segment (from, to]: one aggregate frame plus
  // undo frames for versions to .. from+1.
  struct Segment {
    uint64_t from = 0;
    uint64_t to = 0;
    WalFrameInfo aggregate;
    std::map<uint64_t, WalFrameInfo> undos;
  };

  // Rebuilds pul_frames_ / merge_frames_ / segments_ / head_ from
  // wal_.frames(); enforces the contiguous-version journal structure.
  Status BuildIndex();

  Result<pul::Pul> ReadPul(const WalFrameInfo& info) const;

  // Undo delta taking doc_v back to doc_{v-1}: the stored kUndo frame
  // when a compacted segment kept one, else Invert(doc_{v-1},
  // Reduce_det(pul_v)) — the same deterministic formula compaction
  // uses, so rollback chains agree across compaction states.
  Result<pul::Pul> UndoFor(uint64_t v) const;

  // Writes a checkpoint for the current head if a cadence trigger fired.
  Status MaybeCheckpoint();

  // --- Branch internals (store/branch.cc) ---

  // Appends one exact inverse per member of a merge frame's chain to
  // `out`, in rewind order (last member's undo first), starting from
  // the pre-merge document. Optionally hands back the post-merge state.
  // A merge has no single-PUL undo in general: its chain can delete
  // and re-create the same node id, which the staged apply order
  // (insertions before deletions) cannot express inside one PUL.
  Status AppendChainUndos(const xml::Document& pre, const WalFrameInfo& info,
                          const Wal& wal, std::vector<pul::Pul>* out,
                          xml::Document* post) const;

  // Parses the frames of a branch journal (after the meta frame) into
  // the branch's indexes; enforces contiguity from the fork point.
  static Status BuildBranchIndex(BranchState* branch);

  // Truncates unnamed tail kMerge frames of a journal (the torn-sync
  // recovery rule); reopens the journal in place. `branch_name` is
  // "main" for wal.log. Increments *rolled_back per frame dropped.
  Status RollBackTornSyncs(Wal* wal, const std::string& branch_name,
                           size_t* rolled_back);

  // Loads branches.log + every branch-*.log (called from Open).
  Status OpenBranches(OpenReport* report);

  // True iff a committed sync record names (branch, version) on a
  // flagged side.
  bool SyncRecordNames(const std::string& branch, uint64_t version) const;

  // Checks a merge frame's parents are resolvable and its sync record
  // exists (shared by mainline and branch verification).
  Status VerifyMergeFrame(const std::string& branch, uint64_t version,
                          uint64_t local_parent,
                          const MergeRecord& record) const;

  // Per-branch slice of Verify().
  Result<BranchVerifyResult> VerifyBranch(const std::string& name) const;

  // Appends one record frame to branches.log, creating it on first
  // use, and mirrors it into branch_log_records_. Always fsync'd.
  Status AppendBranchLogRecord(const std::string& payload);

  // Collects the forward PULs for versions (from, to] of `branch`'s
  // chain (recursing into the parent below the fork point).
  Status CollectPuls(const std::string& branch, uint64_t from, uint64_t to,
                     std::vector<pul::Pul>* out) const;

  // UndoChain generalized to rewind from `top` instead of the head
  // (recursing into the parent below the fork point).
  Status UndoChainRange(const std::string& branch, uint64_t top,
                        uint64_t down_to, std::vector<pul::Pul>* out) const;

  // Lineage of a branch up to the mainline: [(name, head-or-fork
  // bound), ...] — helper for MergeBase's fork-point fallback.
  Result<std::vector<std::pair<std::string, uint64_t>>> Lineage(
      const std::string& branch) const;

  std::string BranchJournalPath(const std::string& name) const;

  std::string dir_;
  StoreOptions options_;
  Wal wal_;
  SnapshotStore snapshots_;
  xml::Document doc_;  // at head_
  uint64_t head_ = 0;

  std::map<uint64_t, WalFrameInfo> pul_frames_;  // by produced version
  std::map<uint64_t, WalFrameInfo> merge_frames_;  // mainline kMerge
  std::vector<Segment> segments_;                // ascending by `from`

  std::map<std::string, BranchState> branches_;  // by name; no "main"
  Wal branch_log_;  // branches.log; open iff has_branch_log_
  bool has_branch_log_ = false;
  std::vector<BranchLogRecord> branch_log_records_;  // in file order

  uint64_t last_checkpoint_version_ = 0;
  uint64_t wal_bytes_at_checkpoint_ = 0;
};

}  // namespace xupdate::store

#endif  // XUPDATE_STORE_VERSION_H_
