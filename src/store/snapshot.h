#ifndef XUPDATE_STORE_SNAPSHOT_H_
#define XUPDATE_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "store/wal.h"

namespace xupdate::store {

// Snapshot checkpoints for the versioned store: full id-annotated
// serializations of the document at selected versions, so Checkout(v)
// replays from the nearest checkpoint instead of from version 0.
//
// One file per checkpoint, `snap-<version, 20 decimal digits>.snap`,
// containing the magic "XUSNP001" followed by a single WAL-encoded
// frame (type kSnapshot, version = checkpointed version, payload = the
// annotated XML). Files are written atomically (temp + fsync + rename +
// directory fsync), so a crash mid-checkpoint leaves either no file or
// a complete one — Open() CRC-rejects anything else.

inline constexpr char kSnapshotMagic[] = "XUSNP001";
inline constexpr size_t kSnapshotMagicSize = 8;

class SnapshotStore {
 public:
  // A default-constructed store is empty; use Open().
  SnapshotStore() = default;

  // Scans `dir` for snapshot files. Unreadable or torn files are
  // skipped (and counted), not fatal: the journal can always rebuild.
  static Result<SnapshotStore> Open(const std::string& dir,
                                    Metrics* metrics = nullptr);

  // Writes the checkpoint for `version` atomically and registers it.
  Status Write(uint64_t version, std::string_view annotated_xml);

  // Reads and CRC-verifies the checkpoint for `version`.
  Result<std::string> Read(uint64_t version) const;

  // Deletes every checkpoint strictly above `version` — file and index
  // entry — and fsyncs the directory; returns how many were removed.
  // VersionStore::Open uses this to purge checkpoints that outlived a
  // journal tail lost in a crash: left in place, a later commit past
  // their version would let NearestAtOrBelow hand Checkout pre-crash
  // bytes as a replay base.
  Result<size_t> RemoveAbove(uint64_t version);

  // Largest checkpointed version <= v; false if none (version 0 is
  // always checkpointed by VersionStore::Init, so this only fails on a
  // damaged store).
  bool NearestAtOrBelow(uint64_t v, uint64_t* out) const;

  bool Has(uint64_t version) const;

  // Checkpointed versions, ascending.
  const std::vector<uint64_t>& versions() const { return versions_; }

  // Files skipped by Open() because they failed magic/CRC/name checks.
  size_t skipped_files() const { return skipped_files_; }

  static std::string FileName(uint64_t version);

 private:
  std::string dir_;
  std::vector<uint64_t> versions_;
  size_t skipped_files_ = 0;
  Metrics* metrics_ = nullptr;
};

}  // namespace xupdate::store

#endif  // XUPDATE_STORE_SNAPSHOT_H_
