#include "store/records.h"

#include <cctype>

#include "common/framing.h"

namespace xupdate::store {

namespace {

using framing::GetU32;
using framing::GetU64;
using framing::PutU32;
using framing::PutU64;

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  *out += s;
}

Status GetString(std::string_view data, size_t* offset, std::string* out) {
  if (*offset + 4 > data.size()) {
    return Status::ParseError("truncated string length in branch record");
  }
  uint32_t len = GetU32(data, *offset);
  *offset += 4;
  if (*offset + len > data.size()) {
    return Status::ParseError("truncated string in branch record");
  }
  out->assign(data.substr(*offset, len));
  *offset += len;
  return Status::OK();
}

Status GetU64At(std::string_view data, size_t* offset, uint64_t* out) {
  if (*offset + 8 > data.size()) {
    return Status::ParseError("truncated integer in branch record");
  }
  *out = GetU64(data, *offset);
  *offset += 8;
  return Status::OK();
}

Status GetByte(std::string_view data, size_t* offset, uint8_t* out) {
  if (*offset + 1 > data.size()) {
    return Status::ParseError("truncated byte in branch record");
  }
  *out = static_cast<uint8_t>(data[*offset]);
  *offset += 1;
  return Status::OK();
}

uint8_t PolicyBits(const pul::Policies& p) {
  return static_cast<uint8_t>((p.preserve_insertion_order ? 1 : 0) |
                              (p.preserve_inserted_data ? 2 : 0) |
                              (p.preserve_removed_data ? 4 : 0));
}

pul::Policies PoliciesFromBits(uint8_t bits) {
  pul::Policies p;
  p.preserve_insertion_order = (bits & 1) != 0;
  p.preserve_inserted_data = (bits & 2) != 0;
  p.preserve_removed_data = (bits & 4) != 0;
  return p;
}

Status CheckExhausted(std::string_view data, size_t offset,
                      const char* what) {
  if (offset != data.size()) {
    return Status::ParseError(std::string("trailing bytes after ") + what);
  }
  return Status::OK();
}

}  // namespace

Status ValidateBranchName(const std::string& name) {
  if (name.empty() || name.size() > 64) {
    return Status::InvalidArgument(
        "branch name must be 1..64 characters: \"" + name + "\"");
  }
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
              c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "branch name may only contain [A-Za-z0-9_-]: \"" + name + "\"");
    }
  }
  if (name == "main") {
    return Status::InvalidArgument(
        "\"main\" is the reserved mainline name; it cannot be created");
  }
  return Status::OK();
}

std::string EncodeBranchMeta(const BranchMetaRecord& record) {
  std::string out;
  out.push_back(static_cast<char>(0));  // kind
  PutString(&out, record.name);
  PutString(&out, record.parent);
  PutU64(&out, record.fork);
  out.push_back(static_cast<char>(PolicyBits(record.policies)));
  return out;
}

Result<BranchMetaRecord> DecodeBranchMeta(std::string_view payload) {
  size_t offset = 0;
  uint8_t kind = 0;
  XUPDATE_RETURN_IF_ERROR(GetByte(payload, &offset, &kind));
  if (kind != 0) {
    return Status::ParseError("branch journal meta frame has kind " +
                              std::to_string(kind) + ", expected 0");
  }
  BranchMetaRecord record;
  XUPDATE_RETURN_IF_ERROR(GetString(payload, &offset, &record.name));
  XUPDATE_RETURN_IF_ERROR(GetString(payload, &offset, &record.parent));
  XUPDATE_RETURN_IF_ERROR(GetU64At(payload, &offset, &record.fork));
  uint8_t bits = 0;
  XUPDATE_RETURN_IF_ERROR(GetByte(payload, &offset, &bits));
  record.policies = PoliciesFromBits(bits);
  XUPDATE_RETURN_IF_ERROR(CheckExhausted(payload, offset, "branch meta"));
  return record;
}

std::string EncodeMergeRecord(const MergeRecord& record) {
  std::string out;
  PutString(&out, record.other);
  PutU64(&out, record.other_parent);
  PutU64(&out, record.base_own);
  PutU64(&out, record.base_other);
  PutU32(&out, static_cast<uint32_t>(record.chain.size()));
  for (const std::string& pul : record.chain) PutString(&out, pul);
  return out;
}

Result<MergeRecord> DecodeMergeRecord(std::string_view payload) {
  size_t offset = 0;
  MergeRecord record;
  XUPDATE_RETURN_IF_ERROR(GetString(payload, &offset, &record.other));
  XUPDATE_RETURN_IF_ERROR(GetU64At(payload, &offset, &record.other_parent));
  XUPDATE_RETURN_IF_ERROR(GetU64At(payload, &offset, &record.base_own));
  XUPDATE_RETURN_IF_ERROR(GetU64At(payload, &offset, &record.base_other));
  if (offset + 4 > payload.size()) {
    return Status::ParseError("truncated chain count in merge record");
  }
  uint32_t count = GetU32(payload, offset);
  offset += 4;
  record.chain.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string pul;
    XUPDATE_RETURN_IF_ERROR(GetString(payload, &offset, &pul));
    record.chain.push_back(std::move(pul));
  }
  XUPDATE_RETURN_IF_ERROR(CheckExhausted(payload, offset, "merge record"));
  return record;
}

std::string EncodeSyncRecord(const SyncRecord& record) {
  std::string out;
  out.push_back(static_cast<char>(1));  // kind
  uint8_t flags = static_cast<uint8_t>((record.frame_a ? 1 : 0) |
                                       (record.frame_b ? 2 : 0));
  out.push_back(static_cast<char>(flags));
  PutString(&out, record.branch_a);
  PutU64(&out, record.version_a);
  PutString(&out, record.branch_b);
  PutU64(&out, record.version_b);
  return out;
}

std::string EncodeRebaseRecord(const RebaseRecord& record) {
  std::string out;
  out.push_back(static_cast<char>(2));  // kind
  PutString(&out, record.branch);
  PutU64(&out, record.old_fork);
  PutU64(&out, record.new_fork);
  return out;
}

Result<BranchLogRecord> DecodeBranchLogRecord(std::string_view payload) {
  size_t offset = 0;
  BranchLogRecord out;
  XUPDATE_RETURN_IF_ERROR(GetByte(payload, &offset, &out.kind));
  switch (out.kind) {
    case 1: {
      uint8_t flags = 0;
      XUPDATE_RETURN_IF_ERROR(GetByte(payload, &offset, &flags));
      out.sync.frame_a = (flags & 1) != 0;
      out.sync.frame_b = (flags & 2) != 0;
      XUPDATE_RETURN_IF_ERROR(
          GetString(payload, &offset, &out.sync.branch_a));
      XUPDATE_RETURN_IF_ERROR(
          GetU64At(payload, &offset, &out.sync.version_a));
      XUPDATE_RETURN_IF_ERROR(
          GetString(payload, &offset, &out.sync.branch_b));
      XUPDATE_RETURN_IF_ERROR(
          GetU64At(payload, &offset, &out.sync.version_b));
      return CheckExhausted(payload, offset, "sync record").ok()
                 ? Result<BranchLogRecord>(std::move(out))
                 : Result<BranchLogRecord>(
                       Status::ParseError("trailing bytes after sync record"));
    }
    case 2: {
      XUPDATE_RETURN_IF_ERROR(
          GetString(payload, &offset, &out.rebase.branch));
      XUPDATE_RETURN_IF_ERROR(
          GetU64At(payload, &offset, &out.rebase.old_fork));
      XUPDATE_RETURN_IF_ERROR(
          GetU64At(payload, &offset, &out.rebase.new_fork));
      XUPDATE_RETURN_IF_ERROR(
          CheckExhausted(payload, offset, "rebase record"));
      return out;
    }
    default:
      return Status::ParseError("unknown branch log record kind " +
                                std::to_string(out.kind));
  }
}

}  // namespace xupdate::store
