#ifndef XUPDATE_STORE_COMPACT_H_
#define XUPDATE_STORE_COMPACT_H_

#include "common/result.h"
#include "store/version.h"

namespace xupdate::store {

// Journal compaction (VersionStore::Compact forwards here).
//
// A segment (a, b] is eligible when a and b are consecutive
// checkpointed versions, every version in between is still a plain
// kPul frame, and the segment folds at least two versions. For each
// eligible segment compaction builds
//
//   - one kAggregate frame: Reduce_canonical(Aggregate(pul_{a+1} ..
//     pul_b)) — Algorithm 2 cumulation followed by canonical reduction,
//     taking doc_a directly to doc_b;
//   - one kUndo frame per interior version v in b .. a+1:
//     Invert(doc_{v-1}, Reduce_det(pul_v)), taking doc_v back to
//     doc_{v-1}.
//
// Verify-before-install: during the forward replay of the segment the
// id-annotated serialization of every version is recorded, and every
// produced frame is byte-checked against those references — the
// aggregate must land exactly on doc_b's bytes, each undo exactly on
// doc_{v-1}'s. A segment failing any check is skipped (kept on its
// plain frames, counted in CompactStats::segments_skipped); the store
// never trades correctness for journal size. The rewritten journal is
// installed atomically (temp + fsync + rename), so a crash during
// compaction leaves either the old or the new journal, both valid.
Status CompactImpl(VersionStore* store, CompactStats* stats);

}  // namespace xupdate::store

#endif  // XUPDATE_STORE_COMPACT_H_
