// Branch subsystem of the versioned store: named branch journals, the
// cross-journal merge-commit (sync) protocol, crash recovery of torn
// syncs, and the suffix/undo-chain extraction the merge and rebase
// engines (src/branch/) are built on. See version.h "Branches" and
// records.h for the on-disk formats.

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "pul/apply.h"
#include "pul/pul_io.h"
#include "store/version.h"

namespace xupdate::store {

namespace {

constexpr char kBranchLogName[] = "branches.log";
constexpr char kBranchJournalPrefix[] = "branch-";
constexpr char kBranchJournalSuffix[] = ".log";

WalOptions BranchWalOptions(const StoreOptions& options) {
  WalOptions wal;
  wal.fsync = options.fsync;
  wal.batch_interval = options.batch_interval;
  wal.fail_after_bytes = options.fail_after_bytes;
  wal.metrics = options.metrics;
  return wal;
}

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

// Truncates `wal` (closing, cutting, dir-syncing, reopening in place)
// back to `size` bytes.
Status TruncateWalTo(Wal* wal, uint64_t size, const WalOptions& options) {
  std::string path = wal->path();
  XUPDATE_RETURN_IF_ERROR(wal->Close());
  XUPDATE_RETURN_IF_ERROR(TruncateFile(path, size));
  XUPDATE_RETURN_IF_ERROR(SyncDirectory(DirOf(path)));
  XUPDATE_ASSIGN_OR_RETURN(*wal, Wal::Open(path, options));
  return Status::OK();
}

Result<std::vector<pul::Pul>> ParseChain(const MergeRecord& record) {
  std::vector<pul::Pul> chain;
  chain.reserve(record.chain.size());
  for (const std::string& text : record.chain) {
    XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(text));
    chain.push_back(std::move(pul));
  }
  return chain;
}

}  // namespace

std::string VersionStore::BranchJournalPath(const std::string& name) const {
  return dir_ + "/" + kBranchJournalPrefix + name + kBranchJournalSuffix;
}

// --- Creation / lookup ----------------------------------------------------

Status VersionStore::CreateBranch(const std::string& name,
                                  const std::string& parent, uint64_t at,
                                  const pul::Policies& policies) {
  XUPDATE_RETURN_IF_ERROR(ValidateBranchName(name));
  if (branches_.count(name) != 0) {
    return Status::InvalidArgument("branch already exists: " + name);
  }
  std::string path = BranchJournalPath(name);
  if (PathExists(path)) {
    return Status::InvalidArgument("branch journal already exists: " + path);
  }
  uint64_t parent_head = 0;
  if (parent == "main") {
    parent_head = head_;
    // The fork point must not outlive its base in a crash: force the
    // parent journal durable before the branch journal names it.
    XUPDATE_RETURN_IF_ERROR(wal_.Sync());
  } else {
    auto it = branches_.find(parent);
    if (it == branches_.end()) {
      return Status::NotFound("parent branch not found: " + parent);
    }
    parent_head = it->second.head;
    XUPDATE_RETURN_IF_ERROR(it->second.wal.Sync());
  }
  if (at > parent_head) {
    return Status::InvalidArgument(
        "fork version " + std::to_string(at) + " beyond head " +
        std::to_string(parent_head) + " of branch " + parent);
  }
  BranchState branch;
  branch.meta.name = name;
  branch.meta.parent = parent;
  branch.meta.fork = at;
  branch.meta.policies = policies;
  // Fork document before the journal: once the journal is durable the
  // branch materializes at the next Open, so every fallible step must
  // precede it (a failure here leaves nothing behind to clean up).
  XUPDATE_ASSIGN_OR_RETURN(branch.doc, CheckoutBranch(parent, at));
  XUPDATE_ASSIGN_OR_RETURN(
      branch.wal, Wal::Create(path, BranchWalOptions(options_)));
  WalFrame meta_frame;
  meta_frame.type = FrameType::kBranchMeta;
  meta_frame.payload = EncodeBranchMeta(branch.meta);
  Status written = branch.wal.Append(meta_frame);
  if (written.ok()) written = branch.wal.Sync();
  if (written.ok()) written = SyncDirectory(dir_);
  if (!written.ok()) {
    // A half-written journal would fail in-session retries with
    // "already exists" and materialize the branch at the next Open.
    (void)branch.wal.Close();
    (void)RemoveFile(path);
    (void)SyncDirectory(dir_);
    return written;
  }
  branch.head = at;
  branches_.emplace(name, std::move(branch));
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.branch.create.count");
  }
  return Status::OK();
}

std::vector<std::string> VersionStore::BranchNames() const {
  std::vector<std::string> names;
  names.reserve(branches_.size());
  for (const auto& [name, branch] : branches_) names.push_back(name);
  return names;  // std::map keeps them sorted
}

Result<BranchInfo> VersionStore::GetBranch(const std::string& name) const {
  BranchInfo info;
  if (name == "main") {
    info.name = "main";
    info.head = head_;
    return info;
  }
  auto it = branches_.find(name);
  if (it == branches_.end()) {
    return Status::NotFound("branch not found: " + name);
  }
  info.name = it->second.meta.name;
  info.parent = it->second.meta.parent;
  info.fork = it->second.meta.fork;
  info.policies = it->second.meta.policies;
  info.head = it->second.head;
  return info;
}

Result<const xml::Document*> VersionStore::BranchHeadDoc(
    const std::string& branch) const {
  if (branch == "main") return &doc_;
  auto it = branches_.find(branch);
  if (it == branches_.end()) {
    return Status::NotFound("branch not found: " + branch);
  }
  return &it->second.doc;
}

// --- Commit / checkout ----------------------------------------------------

Result<uint64_t> VersionStore::CommitOnBranch(const std::string& branch,
                                              const pul::Pul& pul) {
  if (branch == "main") return Commit(pul);
  auto it = branches_.find(branch);
  if (it == branches_.end()) {
    return Status::NotFound("branch not found: " + branch);
  }
  BranchState& b = it->second;
  ScopedTimer timer(options_.metrics, "store.branch.commit.seconds");
  XUPDATE_RETURN_IF_ERROR(pul::CheckPulApplicable(b.doc, pul));
  XUPDATE_ASSIGN_OR_RETURN(std::string payload, pul::SerializePul(pul));
  WalFrame frame;
  frame.type = FrameType::kPul;
  frame.version = b.head + 1;
  frame.payload = std::move(payload);
  XUPDATE_RETURN_IF_ERROR(b.wal.Append(frame));
  XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&b.doc, pul));
  ++b.head;
  b.pul_frames[b.head] = b.wal.frames().back();
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.branch.commit.count");
  }
  return b.head;
}

Result<xml::Document> VersionStore::CheckoutBranch(const std::string& branch,
                                                   uint64_t v) const {
  if (branch == "main") return Checkout(v);
  auto it = branches_.find(branch);
  if (it == branches_.end()) {
    return Status::NotFound("branch not found: " + branch);
  }
  const BranchState& b = it->second;
  if (v > b.head) {
    return Status::InvalidArgument(
        "version " + std::to_string(v) + " beyond head " +
        std::to_string(b.head) + " of branch " + branch);
  }
  // Versions at or below the fork live on the parent chain — this is
  // where a branch borrows the mainline's snapshot checkpoints.
  if (v <= b.meta.fork) return CheckoutBranch(b.meta.parent, v);
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc,
                           CheckoutBranch(b.meta.parent, b.meta.fork));
  for (uint64_t cur = b.meta.fork; cur < v; ++cur) {
    auto pit = b.pul_frames.find(cur + 1);
    if (pit != b.pul_frames.end()) {
      XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, b.wal.ReadFrame(pit->second));
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(frame.payload));
      XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, pul));
      continue;
    }
    auto mit = b.merge_frames.find(cur + 1);
    if (mit == b.merge_frames.end()) {
      return Status::Internal("branch " + branch +
                              " journal gap above version " +
                              std::to_string(cur));
    }
    XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, b.wal.ReadFrame(mit->second));
    XUPDATE_ASSIGN_OR_RETURN(MergeRecord record,
                             DecodeMergeRecord(frame.payload));
    XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> chain,
                             ParseChain(record));
    for (const pul::Pul& pul : chain) {
      XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, pul));
    }
  }
  return doc;
}

Result<std::string> VersionStore::CheckoutXmlBranch(const std::string& branch,
                                                    uint64_t v) const {
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, CheckoutBranch(branch, v));
  return SerializeAnnotated(doc);
}

// --- Log ------------------------------------------------------------------

Result<std::vector<LogEntry>> VersionStore::LogBranch(
    const std::string& branch, bool with_op_counts) const {
  const Wal* wal = nullptr;
  if (branch == "main") {
    wal = &wal_;
  } else {
    auto it = branches_.find(branch);
    if (it == branches_.end()) {
      return Status::NotFound("branch not found: " + branch);
    }
    wal = &it->second.wal;
  }
  std::vector<LogEntry> entries;
  entries.reserve(wal->frames().size());
  for (const WalFrameInfo& info : wal->frames()) {
    LogEntry entry;
    entry.type = info.type;
    entry.version = info.version;
    entry.aux = info.aux;
    entry.offset = info.offset;
    entry.payload_bytes = info.payload_bytes;
    if (with_op_counts) {
      switch (info.type) {
        case FrameType::kPul:
        case FrameType::kAggregate:
        case FrameType::kUndo: {
          XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, wal->ReadFrame(info));
          XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul,
                                   pul::ParsePul(frame.payload));
          entry.ops = pul.size();
          break;
        }
        case FrameType::kMerge: {
          XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, wal->ReadFrame(info));
          XUPDATE_ASSIGN_OR_RETURN(MergeRecord record,
                                   DecodeMergeRecord(frame.payload));
          XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> chain,
                                   ParseChain(record));
          for (const pul::Pul& pul : chain) entry.ops += pul.size();
          break;
        }
        default:
          break;  // kBranchMeta carries no operations
      }
    }
    entries.push_back(entry);
  }
  return entries;
}

// --- Merge base / lineage -------------------------------------------------

Result<std::vector<std::pair<std::string, uint64_t>>> VersionStore::Lineage(
    const std::string& branch) const {
  std::vector<std::pair<std::string, uint64_t>> out;
  std::set<std::string> seen;
  std::string cur = branch;
  uint64_t bound = UINT64_MAX;
  while (true) {
    if (!seen.insert(cur).second) {
      return Status::Internal("branch parent cycle through " + cur);
    }
    out.emplace_back(cur, bound);
    if (cur == "main") break;
    auto it = branches_.find(cur);
    if (it == branches_.end()) {
      return Status::NotFound("branch not found in lineage: " + cur);
    }
    bound = std::min(bound, it->second.meta.fork);
    cur = it->second.meta.parent;
  }
  return out;
}

Result<SyncPoint> VersionStore::MergeBase(const std::string& a,
                                          const std::string& b) const {
  if (a == b) {
    return Status::InvalidArgument("cannot merge branch " + a +
                                   " with itself");
  }
  // Last committed sync of the pair, unless a later rebase of either
  // side voided it.
  for (auto it = branch_log_records_.rbegin();
       it != branch_log_records_.rend(); ++it) {
    if (it->kind == 2 &&
        (it->rebase.branch == a || it->rebase.branch == b)) {
      break;  // older sync records reference rewritten history
    }
    if (it->kind != 1) continue;
    const SyncRecord& sync = it->sync;
    if (sync.branch_a == a && sync.branch_b == b) {
      return SyncPoint{sync.version_a, sync.version_b};
    }
    if (sync.branch_a == b && sync.branch_b == a) {
      return SyncPoint{sync.version_b, sync.version_a};
    }
  }
  // Fork-point fallback: the deepest common ancestor of the two
  // lineages, at the smaller of the two cut versions. Version numbering
  // is shared along a parent chain, so the base version is addressable
  // on both branches directly.
  XUPDATE_ASSIGN_OR_RETURN(auto lineage_a, Lineage(a));
  XUPDATE_ASSIGN_OR_RETURN(auto lineage_b, Lineage(b));
  for (const auto& [name_a, bound_a] : lineage_a) {
    for (const auto& [name_b, bound_b] : lineage_b) {
      if (name_a != name_b) continue;
      uint64_t base = std::min(bound_a, bound_b);
      return SyncPoint{base, base};
    }
  }
  return Status::Internal("branches " + a + " and " + b +
                          " share no lineage");
}

// --- Suffix / undo-chain extraction ---------------------------------------

Status VersionStore::CollectPuls(const std::string& branch, uint64_t from,
                                 uint64_t to,
                                 std::vector<pul::Pul>* out) const {
  if (from > to) {
    return Status::InvalidArgument(
        "suffix range (" + std::to_string(from) + ", " +
        std::to_string(to) + "] is inverted");
  }
  if (from == to) return Status::OK();
  if (branch != "main") {
    auto it = branches_.find(branch);
    if (it == branches_.end()) {
      return Status::NotFound("branch not found: " + branch);
    }
    const BranchState& b = it->second;
    if (to > b.head) {
      return Status::InvalidArgument(
          "suffix end " + std::to_string(to) + " beyond head " +
          std::to_string(b.head) + " of branch " + branch);
    }
    if (from < b.meta.fork) {
      XUPDATE_RETURN_IF_ERROR(CollectPuls(
          b.meta.parent, from, std::min(to, b.meta.fork), out));
    }
    for (uint64_t cur = std::max(from, b.meta.fork); cur < to; ++cur) {
      auto pit = b.pul_frames.find(cur + 1);
      if (pit != b.pul_frames.end()) {
        XUPDATE_ASSIGN_OR_RETURN(WalFrame frame,
                                 b.wal.ReadFrame(pit->second));
        XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul,
                                 pul::ParsePul(frame.payload));
        out->push_back(std::move(pul));
        continue;
      }
      auto mit = b.merge_frames.find(cur + 1);
      if (mit == b.merge_frames.end()) {
        return Status::Internal("branch " + branch +
                                " journal gap above version " +
                                std::to_string(cur));
      }
      XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, b.wal.ReadFrame(mit->second));
      XUPDATE_ASSIGN_OR_RETURN(MergeRecord record,
                               DecodeMergeRecord(frame.payload));
      XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> chain,
                               ParseChain(record));
      for (pul::Pul& pul : chain) out->push_back(std::move(pul));
    }
    return Status::OK();
  }
  // Mainline: kPul and kMerge frames plus whole compacted segments.
  if (to > head_) {
    return Status::InvalidArgument("suffix end " + std::to_string(to) +
                                   " beyond head " + std::to_string(head_));
  }
  uint64_t cur = from;
  while (cur < to) {
    auto pit = pul_frames_.find(cur + 1);
    if (pit != pul_frames_.end()) {
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, ReadPul(pit->second));
      out->push_back(std::move(pul));
      ++cur;
      continue;
    }
    auto mit = merge_frames_.find(cur + 1);
    if (mit != merge_frames_.end()) {
      XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, wal_.ReadFrame(mit->second));
      XUPDATE_ASSIGN_OR_RETURN(MergeRecord record,
                               DecodeMergeRecord(frame.payload));
      XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> chain,
                               ParseChain(record));
      for (pul::Pul& pul : chain) out->push_back(std::move(pul));
      ++cur;
      continue;
    }
    const Segment* owner = nullptr;
    for (const Segment& s : segments_) {
      if (cur >= s.from && cur < s.to) {
        owner = &s;
        break;
      }
    }
    if (owner == nullptr) {
      return Status::Internal("journal gap above version " +
                              std::to_string(cur));
    }
    if (cur != owner->from || owner->to > to) {
      return Status::InvalidArgument(
          "suffix (" + std::to_string(from) + ", " + std::to_string(to) +
          "] cuts compacted segment (" + std::to_string(owner->from) +
          ", " + std::to_string(owner->to) + "] — compact after merging, "
          "or merge from a segment boundary");
    }
    XUPDATE_ASSIGN_OR_RETURN(pul::Pul aggregate, ReadPul(owner->aggregate));
    out->push_back(std::move(aggregate));
    cur = owner->to;
  }
  return Status::OK();
}

Result<std::vector<pul::Pul>> VersionStore::SuffixPuls(
    const std::string& branch, uint64_t from) const {
  XUPDATE_ASSIGN_OR_RETURN(BranchInfo info, GetBranch(branch));
  return RangePuls(branch, from, info.head);
}

Result<std::vector<pul::Pul>> VersionStore::RangePuls(
    const std::string& branch, uint64_t from, uint64_t to) const {
  std::vector<pul::Pul> out;
  XUPDATE_RETURN_IF_ERROR(CollectPuls(branch, from, to, &out));
  return out;
}

Status VersionStore::AppendChainUndos(const xml::Document& pre,
                                      const WalFrameInfo& info,
                                      const Wal& wal,
                                      std::vector<pul::Pul>* out,
                                      xml::Document* post) const {
  XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, wal.ReadFrame(info));
  XUPDATE_ASSIGN_OR_RETURN(MergeRecord record,
                           DecodeMergeRecord(frame.payload));
  XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> chain, ParseChain(record));
  if (chain.empty()) {
    return Status::ParseError("merge frame for version " +
                              std::to_string(info.version) +
                              " carries an empty chain");
  }
  // One exact inverse per chain member, reversed into rewind order. No
  // single-PUL undo exists in general: a chain that rewinds below the
  // merge base and re-applies an operation deletes and re-creates the
  // same node id, and the staged apply order (insertions before
  // deletions) cannot express that pair inside one PUL.
  xml::Document state = pre;
  std::vector<pul::Pul> undos;
  undos.reserve(chain.size());
  for (const pul::Pul& member : chain) {
    XUPDATE_ASSIGN_OR_RETURN(pul::Pul undo,
                             ComputeUndo(state, member, options_));
    XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&state, member));
    undos.push_back(std::move(undo));
  }
  for (auto it = undos.rbegin(); it != undos.rend(); ++it) {
    out->push_back(std::move(*it));
  }
  if (post != nullptr) *post = std::move(state);
  return Status::OK();
}

Status VersionStore::UndoChainRange(const std::string& branch, uint64_t top,
                                    uint64_t down_to,
                                    std::vector<pul::Pul>* out) const {
  if (down_to > top) {
    return Status::InvalidArgument(
        "undo range " + std::to_string(top) + " down to " +
        std::to_string(down_to) + " is inverted");
  }
  if (down_to == top) return Status::OK();
  if (branch == "main") {
    for (uint64_t v = top; v > down_to; --v) {
      auto mit = merge_frames_.find(v);
      if (mit != merge_frames_.end()) {
        XUPDATE_ASSIGN_OR_RETURN(xml::Document prev, Checkout(v - 1));
        XUPDATE_RETURN_IF_ERROR(
            AppendChainUndos(prev, mit->second, wal_, out, nullptr));
      } else {
        XUPDATE_ASSIGN_OR_RETURN(pul::Pul undo, UndoFor(v));
        out->push_back(std::move(undo));
      }
    }
    return Status::OK();
  }
  auto it = branches_.find(branch);
  if (it == branches_.end()) {
    return Status::NotFound("branch not found: " + branch);
  }
  const BranchState& b = it->second;
  if (top > b.head) {
    return Status::InvalidArgument(
        "undo start " + std::to_string(top) + " beyond head " +
        std::to_string(b.head) + " of branch " + branch);
  }
  // Branch-local part (above the fork): one forward pass computing each
  // version's pre-state, then the per-version undo groups reversed into
  // rewind order (a merge version contributes one undo per chain member).
  uint64_t local_from = std::max(down_to, b.meta.fork);
  if (top > local_from) {
    XUPDATE_ASSIGN_OR_RETURN(xml::Document doc,
                             CheckoutBranch(branch, local_from));
    std::vector<std::vector<pul::Pul>> local;
    local.reserve(static_cast<size_t>(top - local_from));
    for (uint64_t v = local_from + 1; v <= top; ++v) {
      std::vector<pul::Pul> undos_v;
      auto pit = b.pul_frames.find(v);
      if (pit != b.pul_frames.end()) {
        XUPDATE_ASSIGN_OR_RETURN(WalFrame frame,
                                 b.wal.ReadFrame(pit->second));
        XUPDATE_ASSIGN_OR_RETURN(pul::Pul effective,
                                 pul::ParsePul(frame.payload));
        XUPDATE_ASSIGN_OR_RETURN(pul::Pul undo,
                                 ComputeUndo(doc, effective, options_));
        XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, effective));
        undos_v.push_back(std::move(undo));
      } else {
        auto mit = b.merge_frames.find(v);
        if (mit == b.merge_frames.end()) {
          return Status::Internal("branch " + branch +
                                  " has no frame for version " +
                                  std::to_string(v));
        }
        xml::Document post;
        XUPDATE_RETURN_IF_ERROR(
            AppendChainUndos(doc, mit->second, b.wal, &undos_v, &post));
        doc = std::move(post);
      }
      local.push_back(std::move(undos_v));
    }
    for (auto it = local.rbegin(); it != local.rend(); ++it) {
      for (pul::Pul& undo : *it) out->push_back(std::move(undo));
    }
  }
  // Ancestor part (below the fork): rewind the parent chain.
  if (down_to < b.meta.fork) {
    XUPDATE_RETURN_IF_ERROR(
        UndoChainRange(b.meta.parent, b.meta.fork, down_to, out));
  }
  return Status::OK();
}

Result<std::vector<pul::Pul>> VersionStore::UndoChain(
    const std::string& branch, uint64_t down_to) const {
  XUPDATE_ASSIGN_OR_RETURN(BranchInfo info, GetBranch(branch));
  std::vector<pul::Pul> out;
  XUPDATE_RETURN_IF_ERROR(UndoChainRange(branch, info.head, down_to, &out));
  return out;
}

// --- The sync (merge-commit) protocol -------------------------------------

bool VersionStore::SyncRecordNames(const std::string& branch,
                                   uint64_t version) const {
  for (const BranchLogRecord& record : branch_log_records_) {
    if (record.kind != 1) continue;
    const SyncRecord& sync = record.sync;
    if (sync.frame_a && sync.branch_a == branch && sync.version_a == version) {
      return true;
    }
    if (sync.frame_b && sync.branch_b == branch && sync.version_b == version) {
      return true;
    }
  }
  return false;
}

Status VersionStore::AppendBranchLogRecord(const std::string& payload) {
  if (!has_branch_log_) {
    XUPDATE_ASSIGN_OR_RETURN(
        branch_log_, Wal::Create(dir_ + "/" + kBranchLogName,
                                 BranchWalOptions(options_)));
    XUPDATE_RETURN_IF_ERROR(SyncDirectory(dir_));
    has_branch_log_ = true;
  }
  WalFrame frame;
  frame.type = FrameType::kBranchMeta;
  frame.payload = payload;
  XUPDATE_RETURN_IF_ERROR(branch_log_.Append(frame, /*defer_sync=*/true));
  XUPDATE_RETURN_IF_ERROR(branch_log_.Sync());
  XUPDATE_ASSIGN_OR_RETURN(BranchLogRecord record,
                           DecodeBranchLogRecord(payload));
  branch_log_records_.push_back(std::move(record));
  return Status::OK();
}

Result<MergeCommitResult> VersionStore::CommitMerge(const MergePlan& plan) {
  ScopedTimer timer(options_.metrics, "store.merge.commit.seconds");
  if (plan.branch_a == plan.branch_b) {
    return Status::InvalidArgument("merge of a branch with itself");
  }
  // Side handles, "main" included.
  struct Side {
    std::string name;
    uint64_t head = 0;
    const xml::Document* doc = nullptr;
    Wal* wal = nullptr;
    const std::vector<pul::Pul>* chain = nullptr;
    uint64_t base = 0;
    xml::Document merged;        // head doc + chain, when chain nonempty
    std::string merged_bytes;
    uint64_t pre_size = 0;       // journal bytes before the sync
    bool appended = false;
  };
  auto bind = [this](const std::string& name, Side* side) -> Status {
    side->name = name;
    if (name == "main") {
      side->head = head_;
      side->doc = &doc_;
      side->wal = &wal_;
      return Status::OK();
    }
    auto it = branches_.find(name);
    if (it == branches_.end()) {
      return Status::NotFound("branch not found: " + name);
    }
    side->head = it->second.head;
    side->doc = &it->second.doc;
    side->wal = &it->second.wal;
    return Status::OK();
  };
  Side a, b;
  XUPDATE_RETURN_IF_ERROR(bind(plan.branch_a, &a));
  XUPDATE_RETURN_IF_ERROR(bind(plan.branch_b, &b));
  a.chain = &plan.chain_a;
  b.chain = &plan.chain_b;
  a.base = plan.base_a;
  b.base = plan.base_b;
  if (a.chain->empty() && b.chain->empty()) {
    return MergeCommitResult{a.head, b.head, false, false};
  }
  // Both chains must land byte-exactly on one shared merged state
  // before anything touches a journal.
  for (Side* side : {&a, &b}) {
    if (side->chain->empty()) {
      XUPDATE_ASSIGN_OR_RETURN(side->merged_bytes,
                               SerializeAnnotated(*side->doc));
      continue;
    }
    side->merged = *side->doc;
    for (const pul::Pul& pul : *side->chain) {
      XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&side->merged, pul));
    }
    XUPDATE_ASSIGN_OR_RETURN(side->merged_bytes,
                             SerializeAnnotated(side->merged));
  }
  if (a.merged_bytes != b.merged_bytes) {
    return Status::Internal(
        "merge chains of " + a.name + " and " + b.name +
        " do not land on one state");
  }
  // Journal phase. Frames are fsync'd unconditionally — the recovery
  // rule (an unnamed tail merge frame is truncated) requires that a
  // sync record on disk implies its frames are on disk.
  auto roll_back_frames = [this, &a, &b](const Status& cause) -> Status {
    for (Side* side : {&a, &b}) {
      if (!side->appended) continue;
      Status undone = TruncateWalTo(side->wal, side->pre_size,
                                    BranchWalOptions(options_));
      if (!undone.ok()) {
        return Status::IoError(
            "merge journal write failed (" + cause.message() +
            ") and rolling back " + side->name +
            " also failed (" + undone.message() +
            "); reopen the store to recover");
      }
    }
    return cause;
  };
  for (Side* side : {&a, &b}) {
    if (side->chain->empty()) continue;
    const Side& other = (side == &a) ? b : a;
    MergeRecord record;
    record.other = other.name;
    record.other_parent = other.head;
    record.base_own = side->base;
    record.base_other = other.base;
    record.chain.reserve(side->chain->size());
    for (const pul::Pul& pul : *side->chain) {
      XUPDATE_ASSIGN_OR_RETURN(std::string text, pul::SerializePul(pul));
      record.chain.push_back(std::move(text));
    }
    WalFrame frame;
    frame.type = FrameType::kMerge;
    frame.version = side->head + 1;
    frame.aux = side->head;
    frame.payload = EncodeMergeRecord(record);
    side->pre_size = side->wal->size_bytes();
    Status appended = side->wal->Append(frame, /*defer_sync=*/true);
    if (!appended.ok()) return roll_back_frames(appended);
    side->appended = true;
    Status synced = side->wal->Sync();
    if (!synced.ok()) return roll_back_frames(synced);
  }
  // Commit point: the sync record. Until it is durable the merge does
  // not exist — Open truncates the frames above.
  SyncRecord sync;
  sync.branch_a = a.name;
  sync.branch_b = b.name;
  sync.frame_a = !a.chain->empty();
  sync.frame_b = !b.chain->empty();
  sync.version_a = a.head + (sync.frame_a ? 1 : 0);
  sync.version_b = b.head + (sync.frame_b ? 1 : 0);
  Status recorded = AppendBranchLogRecord(EncodeSyncRecord(sync));
  if (!recorded.ok()) return roll_back_frames(recorded);
  // Install in memory.
  for (Side* side : {&a, &b}) {
    if (side->chain->empty()) continue;
    if (side->name == "main") {
      doc_ = std::move(side->merged);
      ++head_;
      merge_frames_[head_] = wal_.frames().back();
      Status checkpoint = MaybeCheckpoint();
      if (!checkpoint.ok() && options_.metrics != nullptr) {
        options_.metrics->AddCounter("store.checkpoint.failures");
      }
    } else {
      BranchState& state = branches_.at(side->name);
      state.doc = std::move(side->merged);
      ++state.head;
      state.merge_frames[state.head] = state.wal.frames().back();
    }
  }
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.merge.commit.count");
  }
  return MergeCommitResult{sync.version_a, sync.version_b, sync.frame_a,
                           sync.frame_b};
}

// --- Rebase installation --------------------------------------------------

Status VersionStore::RewriteBranch(const std::string& name,
                                   uint64_t new_fork,
                                   const std::vector<pul::Pul>& commits) {
  auto it = branches_.find(name);
  if (it == branches_.end()) {
    return Status::NotFound("branch not found: " + name);
  }
  // Children resolve versions through this journal; a rewrite changes
  // what they check out and can strand a child's fork point beyond the
  // rewritten head (failing the fork <= parent_head check at Open).
  for (const auto& [other_name, other] : branches_) {
    if (other_name != name && other.meta.parent == name) {
      return Status::InvalidArgument(
          "branch " + name + " cannot be rewritten: child branch " +
          other_name + " forks from it");
    }
  }
  BranchState& b = it->second;
  uint64_t parent_head = 0;
  if (b.meta.parent == "main") {
    parent_head = head_;
  } else {
    auto pit = branches_.find(b.meta.parent);
    if (pit == branches_.end()) {
      return Status::NotFound("parent branch not found: " + b.meta.parent);
    }
    parent_head = pit->second.head;
  }
  if (new_fork > parent_head) {
    return Status::InvalidArgument(
        "new fork " + std::to_string(new_fork) + " beyond head " +
        std::to_string(parent_head) + " of branch " + b.meta.parent);
  }
  // Void the branch's sync records FIRST: if the rewrite below never
  // lands (crash), the old journal is still self-consistent and merge
  // bases just fall back to the fork point.
  RebaseRecord marker;
  marker.branch = name;
  marker.old_fork = b.meta.fork;
  marker.new_fork = new_fork;
  XUPDATE_RETURN_IF_ERROR(AppendBranchLogRecord(EncodeRebaseRecord(marker)));
  // Build the rewritten journal and rename it into place atomically.
  BranchMetaRecord meta = b.meta;
  meta.fork = new_fork;
  std::string content(Wal::kMagic, Wal::kMagicSize);
  WalFrame meta_frame;
  meta_frame.type = FrameType::kBranchMeta;
  meta_frame.payload = EncodeBranchMeta(meta);
  content += Wal::EncodeFrame(meta_frame);
  for (size_t i = 0; i < commits.size(); ++i) {
    WalFrame frame;
    frame.type = FrameType::kPul;
    frame.version = new_fork + 1 + i;
    XUPDATE_ASSIGN_OR_RETURN(frame.payload, pul::SerializePul(commits[i]));
    content += Wal::EncodeFrame(frame);
  }
  std::string path = BranchJournalPath(name);
  XUPDATE_RETURN_IF_ERROR(b.wal.Close());
  XUPDATE_RETURN_IF_ERROR(WriteFileAtomic(path, content));
  XUPDATE_ASSIGN_OR_RETURN(b.wal,
                           Wal::Open(path, BranchWalOptions(options_)));
  XUPDATE_RETURN_IF_ERROR(BuildBranchIndex(&b));
  XUPDATE_ASSIGN_OR_RETURN(b.doc, CheckoutBranch(name, b.head));
  if (options_.metrics != nullptr) {
    options_.metrics->AddCounter("store.branch.rewrite.count");
  }
  return Status::OK();
}

// --- Open-time recovery ---------------------------------------------------

Status VersionStore::BuildBranchIndex(BranchState* branch) {
  branch->pul_frames.clear();
  branch->merge_frames.clear();
  const std::vector<WalFrameInfo>& frames = branch->wal.frames();
  if (frames.empty() || frames[0].type != FrameType::kBranchMeta) {
    return Status::ParseError("branch journal " + branch->wal.path() +
                              " does not start with a metadata frame");
  }
  XUPDATE_ASSIGN_OR_RETURN(WalFrame meta_frame,
                           branch->wal.ReadFrame(frames[0]));
  XUPDATE_ASSIGN_OR_RETURN(branch->meta,
                           DecodeBranchMeta(meta_frame.payload));
  uint64_t cur = branch->meta.fork;
  for (size_t i = 1; i < frames.size(); ++i) {
    const WalFrameInfo& info = frames[i];
    switch (info.type) {
      case FrameType::kPul:
        if (info.version != cur + 1) {
          return Status::ParseError(
              "branch " + branch->meta.name + " journal gap: version " +
              std::to_string(info.version) + " after " +
              std::to_string(cur));
        }
        branch->pul_frames[info.version] = info;
        cur = info.version;
        break;
      case FrameType::kMerge:
        if (info.version != cur + 1 || info.aux != cur) {
          return Status::ParseError(
              "branch " + branch->meta.name +
              " journal gap: merge frame for version " +
              std::to_string(info.version) + " after " +
              std::to_string(cur));
        }
        branch->merge_frames[info.version] = info;
        cur = info.version;
        break;
      default:
        return Status::ParseError(
            "branch " + branch->meta.name +
            " journal holds an unexpected frame type " +
            std::to_string(static_cast<int>(info.type)) + " at offset " +
            std::to_string(info.offset));
    }
  }
  branch->head = cur;
  return Status::OK();
}

Status VersionStore::RollBackTornSyncs(Wal* wal,
                                       const std::string& branch_name,
                                       size_t* rolled_back) {
  while (!wal->frames().empty()) {
    const WalFrameInfo& last = wal->frames().back();
    if (last.type != FrameType::kMerge) break;
    if (SyncRecordNames(branch_name, last.version)) break;
    // A merge frame with no committed sync record is a torn sync:
    // physically drop it so the journal rolls back to the pre-merge
    // head (its twin on the other journal gets the same treatment).
    uint64_t cut = last.offset;
    XUPDATE_RETURN_IF_ERROR(
        TruncateWalTo(wal, cut, BranchWalOptions(options_)));
    ++*rolled_back;
    if (options_.metrics != nullptr) {
      options_.metrics->AddCounter("store.merge.rolled_back");
    }
  }
  return Status::OK();
}

Status VersionStore::OpenBranches(OpenReport* report) {
  XUPDATE_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                           ListDirectory(dir_));
  size_t prefix_len = sizeof(kBranchJournalPrefix) - 1;
  size_t suffix_len = sizeof(kBranchJournalSuffix) - 1;
  for (const std::string& entry : entries) {
    if (entry.size() <= prefix_len + suffix_len) continue;
    if (entry.compare(0, prefix_len, kBranchJournalPrefix) != 0) continue;
    if (entry.compare(entry.size() - suffix_len, suffix_len,
                      kBranchJournalSuffix) != 0) {
      continue;
    }
    std::string name =
        entry.substr(prefix_len, entry.size() - prefix_len - suffix_len);
    BranchState branch;
    XUPDATE_ASSIGN_OR_RETURN(
        branch.wal,
        Wal::Open(dir_ + "/" + entry, BranchWalOptions(options_)));
    XUPDATE_RETURN_IF_ERROR(BuildBranchIndex(&branch));
    if (branch.meta.name != name) {
      return Status::ParseError(
          "branch journal " + entry + " declares name \"" +
          branch.meta.name + "\"");
    }
    XUPDATE_RETURN_IF_ERROR(ValidateBranchName(name));
    XUPDATE_RETURN_IF_ERROR(
        RollBackTornSyncs(&branch.wal, name, &report->merges_rolled_back));
    XUPDATE_RETURN_IF_ERROR(BuildBranchIndex(&branch));
    branches_.emplace(name, std::move(branch));
  }
  // Parent links: every branch must chain to the mainline and fork at
  // or below its parent's recovered head.
  for (const auto& [name, branch] : branches_) {
    XUPDATE_RETURN_IF_ERROR(Lineage(name).status());
    uint64_t parent_head = 0;
    if (branch.meta.parent == "main") {
      parent_head = head_;
    } else {
      auto pit = branches_.find(branch.meta.parent);
      if (pit == branches_.end()) {
        return Status::ParseError("branch " + name +
                                  " references unknown parent " +
                                  branch.meta.parent);
      }
      parent_head = pit->second.head;
    }
    if (branch.meta.fork > parent_head) {
      return Status::ParseError(
          "branch " + name + " forks at version " +
          std::to_string(branch.meta.fork) + " beyond recovered head " +
          std::to_string(parent_head) + " of " + branch.meta.parent);
    }
  }
  // Head documents (order-free: checkout never reads another branch's
  // cached head document).
  for (auto& [name, branch] : branches_) {
    XUPDATE_ASSIGN_OR_RETURN(branch.doc, CheckoutBranch(name, branch.head));
  }
  report->branches = branches_.size();
  return Status::OK();
}

// --- Verification ---------------------------------------------------------

Status VersionStore::VerifyMergeFrame(const std::string& branch,
                                      uint64_t version,
                                      uint64_t local_parent,
                                      const MergeRecord& record) const {
  if (local_parent + 1 != version) {
    return Status::ParseError(
        "merge frame for version " + std::to_string(version) +
        " on " + branch + " declares parent " +
        std::to_string(local_parent));
  }
  if (!SyncRecordNames(branch, version)) {
    return Status::ParseError(
        "merge frame for version " + std::to_string(version) + " on " +
        branch + " has no committed sync record");
  }
  XUPDATE_ASSIGN_OR_RETURN(BranchInfo other, GetBranch(record.other));
  // A later rebase of the other branch may legitimately have shrunk its
  // head below our recorded parent; without one the parent must still
  // be addressable.
  bool other_rebased = false;
  for (const BranchLogRecord& log_record : branch_log_records_) {
    if (log_record.kind == 2 && log_record.rebase.branch == record.other) {
      other_rebased = true;
      break;
    }
  }
  if (!other_rebased && record.other_parent > other.head) {
    return Status::ParseError(
        "merge frame for version " + std::to_string(version) + " on " +
        branch + " references parent " +
        std::to_string(record.other_parent) + " beyond head " +
        std::to_string(other.head) + " of " + record.other);
  }
  return Status::OK();
}

Result<BranchVerifyResult> VersionStore::VerifyBranch(
    const std::string& name) const {
  auto it = branches_.find(name);
  if (it == branches_.end()) {
    return Status::NotFound("branch not found: " + name);
  }
  const BranchState& b = it->second;
  BranchVerifyResult result;
  result.name = name;
  result.head = b.head;
  // Structural re-scan: every frame must decode CRC-clean with no
  // trailing garbage.
  XUPDATE_ASSIGN_OR_RETURN(std::string data,
                           ReadFileToString(b.wal.path()));
  if (data.size() < Wal::kMagicSize ||
      data.compare(0, Wal::kMagicSize, Wal::kMagic, Wal::kMagicSize) != 0) {
    return Status::ParseError("bad journal magic in " + b.wal.path());
  }
  size_t offset = Wal::kMagicSize;
  while (offset < data.size()) {
    XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, Wal::DecodeFrame(data, &offset));
    (void)frame;
    ++result.frames;
  }
  if (result.frames != b.wal.frames().size()) {
    return Status::ParseError("branch " + name +
                              " frame directory out of sync");
  }
  // Forward replay from the fork point must land on the in-memory head
  // document byte-for-byte; every merge frame must resolve.
  XUPDATE_ASSIGN_OR_RETURN(xml::Document doc,
                           CheckoutBranch(b.meta.parent, b.meta.fork));
  for (uint64_t v = b.meta.fork + 1; v <= b.head; ++v) {
    auto pit = b.pul_frames.find(v);
    if (pit != b.pul_frames.end()) {
      XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, b.wal.ReadFrame(pit->second));
      XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, pul::ParsePul(frame.payload));
      XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, pul));
    } else {
      auto mit = b.merge_frames.find(v);
      if (mit == b.merge_frames.end()) {
        return Status::ParseError("branch " + name +
                                  " has no frame for version " +
                                  std::to_string(v));
      }
      XUPDATE_ASSIGN_OR_RETURN(WalFrame frame, b.wal.ReadFrame(mit->second));
      XUPDATE_ASSIGN_OR_RETURN(MergeRecord record,
                               DecodeMergeRecord(frame.payload));
      XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> chain,
                               ParseChain(record));
      for (const pul::Pul& pul : chain) {
        XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&doc, pul));
      }
      XUPDATE_RETURN_IF_ERROR(
          VerifyMergeFrame(name, v, mit->second.aux, record));
      ++result.merges_checked;
    }
    ++result.replayed_versions;
  }
  XUPDATE_ASSIGN_OR_RETURN(std::string replayed, SerializeAnnotated(doc));
  XUPDATE_ASSIGN_OR_RETURN(std::string head_bytes,
                           SerializeAnnotated(b.doc));
  if (replayed != head_bytes) {
    return Status::ParseError("branch " + name +
                              " replay diverges from its head document");
  }
  return result;
}

}  // namespace xupdate::store
