#ifndef XUPDATE_WORKLOAD_PUL_GENERATOR_H_
#define XUPDATE_WORKLOAD_PUL_GENERATOR_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "label/labeling.h"
#include "pul/pul.h"
#include "xml/document.h"

namespace xupdate::workload {

// Synthetic-PUL generator reproducing the workloads of the paper's
// evaluation (§4.3): operations "equally distributed among the operation
// types" over random document nodes, with knobs for reducible-pair
// density (Fig. 6b), conflict injection (Fig. 6e) and operations on
// nodes inserted by earlier PULs of a sequence (Fig. 6c/d).
class PulGenerator {
 public:
  // `doc` and `labeling` must outlive the generator.
  PulGenerator(const xml::Document& doc, const label::Labeling& labeling,
               uint64_t seed);

  struct PulOptions {
    size_t num_ops = 1000;
    // Fraction of operations emitted as designed-to-reduce pairs: 0.2
    // yields roughly one successful rule application per 10 operations
    // (one application per pair), the paper's Fig. 6b setting.
    double reducible_fraction = 0.0;
    // First id assigned to parameter-tree nodes (0: after doc ids).
    xml::NodeId id_base = 0;
  };

  // One PUL applicable on the base document.
  Result<pul::Pul> Generate(const PulOptions& options);

  struct SequenceOptions {
    size_t num_puls = 5;
    size_t ops_per_pul = 1000;
    // Fraction of operations (in PULs after the first) whose target is a
    // node inserted by an earlier PUL of the sequence.
    double new_node_fraction = 0.5;
  };

  // A sequence Delta_1..Delta_n where Delta_k applies to the document
  // updated by Delta_1..Delta_{k-1} (the Fig. 6c/6d workload).
  Result<std::vector<pul::Pul>> GenerateSequence(
      const SequenceOptions& options);

  struct ConflictOptions {
    size_t num_puls = 10;
    size_t ops_per_pul = 1000;
    // Fraction of all operations that belong to some conflict.
    double conflicting_fraction = 0.5;
    // Operations per conflict (spread over distinct PULs).
    size_t ops_per_conflict = 5;
    // Fraction of conflicts designed to dissolve when another conflict's
    // resolution excludes their operations (the paper ensures 1/5).
    double chained_fraction = 0.2;
  };

  // Parallel PULs over the same document state with injected conflicts
  // of all five types in equal proportion (the Fig. 6e workload).
  Result<std::vector<pul::Pul>> GenerateConflicting(
      const ConflictOptions& options);

 private:
  struct NodePools {
    std::vector<xml::NodeId> elements;      // non-root, parented
    std::vector<xml::NodeId> texts;
    std::vector<xml::NodeId> attributes;
  };

  // Emits one random operation applicable on `doc` (the document the
  // pools were collected from); returns false if no suitable target was
  // found in a few attempts.
  bool EmitRandomOp(pul::Pul* pul, const xml::Document& doc,
                    const NodePools& pools, const label::Labeling& labeling,
                    std::set<std::pair<xml::NodeId, int>>* used_rep,
                    int* fresh);
  // Emits a pair of operations guaranteed to trigger one reduction rule.
  bool EmitReduciblePair(pul::Pul* pul, const NodePools& pools,
                         const label::Labeling& labeling,
                         std::set<std::pair<xml::NodeId, int>>* used_rep,
                         int* fresh);

  static NodePools CollectPools(const xml::Document& doc);

  const xml::Document& doc_;
  const label::Labeling& labeling_;
  Rng rng_;
};

}  // namespace xupdate::workload

#endif  // XUPDATE_WORKLOAD_PUL_GENERATOR_H_
