#include "workload/pul_generator.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "pul/apply.h"

namespace xupdate::workload {

namespace {

using label::Labeling;
using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using xml::Document;
using xml::kInvalidNode;
using xml::NodeId;
using xml::NodeType;

constexpr size_t kIdBlock = 1 << 20;  // per-producer id space stride

}  // namespace

PulGenerator::PulGenerator(const Document& doc, const Labeling& labeling,
                           uint64_t seed)
    : doc_(doc), labeling_(labeling), rng_(seed) {}

PulGenerator::NodePools PulGenerator::CollectPools(const Document& doc) {
  NodePools pools;
  for (NodeId id : doc.AllNodesInOrder()) {
    switch (doc.type(id)) {
      case NodeType::kElement:
        if (doc.parent(id) != kInvalidNode) pools.elements.push_back(id);
        break;
      case NodeType::kText:
        pools.texts.push_back(id);
        break;
      case NodeType::kAttribute:
        pools.attributes.push_back(id);
        break;
    }
  }
  return pools;
}

bool PulGenerator::EmitRandomOp(
    Pul* pul, const Document& doc, const NodePools& pools,
    const Labeling& labeling, std::set<std::pair<NodeId, int>>* used_rep,
    int* fresh) {
  auto pick = [&](const std::vector<NodeId>& pool) -> NodeId {
    if (pool.empty()) return kInvalidNode;
    return pool[static_cast<size_t>(rng_.Below(pool.size()))];
  };
  auto frag = [&](Pul* p) {
    int n = (*fresh)++;
    auto r = p->AddFragment("<w" + std::to_string(n) + ">gen</w" +
                            std::to_string(n) + ">");
    return *r;
  };
  for (int attempt = 0; attempt < 8; ++attempt) {
    OpKind kind = static_cast<OpKind>(rng_.Below(pul::kNumOpKinds));
    switch (kind) {
      case OpKind::kInsBefore:
      case OpKind::kInsAfter: {
        NodeId target = rng_.Chance(0.8) ? pick(pools.elements)
                                         : pick(pools.texts);
        if (target == kInvalidNode) continue;
        return pul->AddTreeOp(kind, target, labeling, {frag(pul)}).ok();
      }
      case OpKind::kInsFirst:
      case OpKind::kInsLast:
      case OpKind::kInsInto: {
        NodeId target = pick(pools.elements);
        if (target == kInvalidNode) continue;
        return pul->AddTreeOp(kind, target, labeling, {frag(pul)}).ok();
      }
      case OpKind::kInsAttributes: {
        NodeId target = pick(pools.elements);
        if (target == kInvalidNode) continue;
        std::string name = "w" + std::to_string((*fresh)++);
        // The fresh counter restarts per PUL, so a previous commit (or a
        // merged-in edit) may already have put this name on the element;
        // inserting it again would make the PUL inapplicable.
        bool taken = false;
        for (NodeId a : doc.attributes(target)) {
          if (doc.name(a) == name) {
            taken = true;
            break;
          }
        }
        if (taken) continue;
        NodeId attr = pul->NewAttributeParam(name, "v");
        return pul->AddTreeOp(kind, target, labeling, {attr}).ok();
      }
      case OpKind::kDelete: {
        NodeId target = rng_.Chance(0.6) ? pick(pools.texts)
                                         : pick(pools.attributes);
        if (target == kInvalidNode) continue;
        return pul->AddDelete(target, labeling).ok();
      }
      case OpKind::kReplaceNode: {
        NodeId target = pick(pools.texts);
        if (target == kInvalidNode) continue;
        if (!used_rep->insert({target, static_cast<int>(kind)}).second) {
          continue;
        }
        NodeId t = pul->NewTextParam("rep" + std::to_string((*fresh)++));
        return pul->AddTreeOp(kind, target, labeling, {t}).ok();
      }
      case OpKind::kReplaceValue: {
        NodeId target = rng_.Chance(0.5) ? pick(pools.texts)
                                         : pick(pools.attributes);
        if (target == kInvalidNode) continue;
        if (!used_rep->insert({target, static_cast<int>(kind)}).second) {
          continue;
        }
        return pul
            ->AddStringOp(kind, target, labeling,
                          "val" + std::to_string((*fresh)++))
            .ok();
      }
      case OpKind::kReplaceChildren: {
        NodeId target = pick(pools.elements);
        if (target == kInvalidNode) continue;
        if (!used_rep->insert({target, static_cast<int>(kind)}).second) {
          continue;
        }
        NodeId t = pul->NewTextParam("content" +
                                     std::to_string((*fresh)++));
        return pul->AddTreeOp(kind, target, labeling, {t}).ok();
      }
      case OpKind::kRename: {
        NodeId target = rng_.Chance(0.8) ? pick(pools.elements)
                                         : pick(pools.attributes);
        if (target == kInvalidNode) continue;
        if (!used_rep->insert({target, static_cast<int>(kind)}).second) {
          continue;
        }
        return pul
            ->AddStringOp(kind, target, labeling,
                          "n" + std::to_string((*fresh)++))
            .ok();
      }
    }
  }
  return false;
}

bool PulGenerator::EmitReduciblePair(
    Pul* pul, const NodePools& pools, const Labeling& labeling,
    std::set<std::pair<NodeId, int>>* used_rep, int* fresh) {
  if (pools.elements.empty()) return false;
  NodeId target = pools.elements[static_cast<size_t>(
      rng_.Below(pools.elements.size()))];
  auto frag = [&]() {
    int n = (*fresh)++;
    auto r = pul->AddFragment("<w" + std::to_string(n) + ">gen</w" +
                              std::to_string(n) + ">");
    return *r;
  };
  switch (rng_.Below(4)) {
    case 0: {
      // I5: two same-kind insertions on the same node.
      OpKind kind = rng_.Chance(0.5) ? OpKind::kInsLast : OpKind::kInsFirst;
      return pul->AddTreeOp(kind, target, labeling, {frag()}).ok() &&
             pul->AddTreeOp(kind, target, labeling, {frag()}).ok();
    }
    case 1:
      // O1: a rename overridden by a delete of the same node.
      if (!used_rep->insert({target, static_cast<int>(OpKind::kRename)})
               .second) {
        return false;
      }
      return pul
                 ->AddStringOp(OpKind::kRename, target, labeling,
                               "o" + std::to_string((*fresh)++))
                 .ok() &&
             pul->AddDelete(target, labeling).ok();
    case 2: {
      // I6: insInto + insFirst on the same node.
      return pul->AddTreeOp(OpKind::kInsInto, target, labeling, {frag()})
                 .ok() &&
             pul->AddTreeOp(OpKind::kInsFirst, target, labeling, {frag()})
                 .ok();
    }
    default: {
      // O2: a child insertion overridden by a repC on the same node.
      if (!used_rep
               ->insert({target, static_cast<int>(OpKind::kReplaceChildren)})
               .second) {
        return false;
      }
      NodeId t = pul->NewTextParam("rc" + std::to_string((*fresh)++));
      return pul->AddTreeOp(OpKind::kInsLast, target, labeling, {frag()})
                 .ok() &&
             pul->AddTreeOp(OpKind::kReplaceChildren, target, labeling, {t})
                 .ok();
    }
  }
}

Result<Pul> PulGenerator::Generate(const PulOptions& options) {
  NodePools pools = CollectPools(doc_);
  if (pools.elements.empty()) {
    return Status::InvalidArgument("document too small for a workload");
  }
  Pul pul;
  pul.BindIdSpace(options.id_base != 0 ? options.id_base
                                       : doc_.max_assigned_id() + 1);
  std::set<std::pair<NodeId, int>> used_rep;
  int fresh = 0;
  int guard = 0;
  while (pul.size() < options.num_ops &&
         ++guard < static_cast<int>(options.num_ops) * 16 + 64) {
    if (options.reducible_fraction > 0 &&
        rng_.Chance(options.reducible_fraction / 2)) {
      // One pair counts as two operations and one rule application.
      EmitReduciblePair(&pul, pools, labeling_, &used_rep, &fresh);
    } else {
      EmitRandomOp(&pul, doc_, pools, labeling_, &used_rep, &fresh);
    }
  }
  if (pul.size() < options.num_ops) {
    return Status::Internal("could not generate the requested op count");
  }
  return pul;
}

Result<std::vector<Pul>> PulGenerator::GenerateSequence(
    const SequenceOptions& options) {
  std::vector<Pul> out;
  Document working = doc_;
  Labeling working_labeling = labeling_;
  std::vector<NodeId> new_elements;
  std::vector<NodeId> new_texts;
  NodeId base = doc_.max_assigned_id() + 1;

  for (size_t k = 0; k < options.num_puls; ++k) {
    NodePools pools = CollectPools(working);
    Pul pul;
    pul.BindIdSpace(base + k * kIdBlock);
    std::set<std::pair<NodeId, int>> used_rep;
    int fresh = 0;
    int guard = 0;
    // Prune new-node lists to nodes still present.
    auto prune = [&](std::vector<NodeId>& pool) {
      pool.erase(std::remove_if(pool.begin(), pool.end(),
                                [&](NodeId id) {
                                  return !working.Exists(id) ||
                                         working.parent(id) == kInvalidNode;
                                }),
                 pool.end());
    };
    prune(new_elements);
    prune(new_texts);
    while (pul.size() < options.ops_per_pul &&
           ++guard < static_cast<int>(options.ops_per_pul) * 16 + 64) {
      bool on_new = k > 0 && rng_.Chance(options.new_node_fraction) &&
                    !(new_elements.empty() && new_texts.empty());
      if (on_new) {
        // Insertion into / value update of a node added by an earlier
        // PUL (exercises aggregation rule D6).
        bool use_element =
            !new_elements.empty() &&
            (new_texts.empty() || rng_.Chance(0.7));
        if (use_element) {
          NodeId target = new_elements[static_cast<size_t>(
              rng_.Below(new_elements.size()))];
          int n = fresh++;
          auto f = pul.AddFragment("<nn" + std::to_string(n) + ">x</nn" +
                                   std::to_string(n) + ">");
          OpKind kind =
              rng_.Chance(0.5) ? OpKind::kInsLast : OpKind::kInsFirst;
          if (!pul.AddTreeOp(kind, target, working_labeling, {*f}).ok()) {
            continue;
          }
        } else {
          NodeId target = new_texts[static_cast<size_t>(
              rng_.Below(new_texts.size()))];
          if (!used_rep
                   .insert({target,
                            static_cast<int>(OpKind::kReplaceValue)})
                   .second) {
            continue;
          }
          if (!pul.AddStringOp(OpKind::kReplaceValue, target,
                               working_labeling,
                               "seq" + std::to_string(fresh++))
                   .ok()) {
            continue;
          }
        }
      } else {
        EmitRandomOp(&pul, working, pools, working_labeling, &used_rep,
                     &fresh);
      }
    }
    if (pul.size() < options.ops_per_pul) {
      return Status::Internal("could not generate the requested op count");
    }
    // Record the nodes this PUL inserts, then apply it so the next PUL
    // sees the updated document.
    for (const UpdateOp& op : pul.ops()) {
      for (NodeId root : op.param_trees) {
        pul.forest().Visit(root, [&](NodeId v) {
          switch (pul.forest().type(v)) {
            case NodeType::kElement:
              new_elements.push_back(v);
              break;
            case NodeType::kText:
              new_texts.push_back(v);
              break;
            default:
              break;
          }
          return true;
        });
      }
    }
    pul::ApplyOptions apply_options;
    apply_options.labeling = &working_labeling;
    XUPDATE_RETURN_IF_ERROR(pul::ApplyPul(&working, pul, apply_options));
    out.push_back(std::move(pul));
  }
  return out;
}

Result<std::vector<Pul>> PulGenerator::GenerateConflicting(
    const ConflictOptions& options) {
  if (options.num_puls < 2) {
    return Status::InvalidArgument("conflicts need at least two PULs");
  }
  NodePools pools = CollectPools(doc_);
  NodeId base = doc_.max_assigned_id() + 1;
  std::vector<Pul> puls(options.num_puls);
  std::vector<int> fresh(options.num_puls, 0);
  for (size_t i = 0; i < puls.size(); ++i) {
    puls[i].BindIdSpace(base + i * kIdBlock);
  }

  // Targets drawn without replacement keep the injected conflict counts
  // exact: operations on distinct nodes never conflict unless related by
  // ancestry, and the conflict-free fillers avoid del/repN/repC. The
  // used-set also covers nodes a recipe touches *besides* its drawn
  // target (a type-5 child, a chained parent) so no node ever receives
  // two same-kind modifications from one PUL.
  std::vector<NodeId> element_pool = pools.elements;
  rng_.Shuffle(element_pool);
  std::set<NodeId> used;
  size_t next_target = 0;
  auto take_target = [&]() -> NodeId {
    while (next_target < element_pool.size()) {
      NodeId candidate = element_pool[next_target++];
      if (used.insert(candidate).second) return candidate;
    }
    return kInvalidNode;
  };

  size_t total_ops = options.num_puls * options.ops_per_pul;
  size_t conflict_ops =
      static_cast<size_t>(static_cast<double>(total_ops) *
                          options.conflicting_fraction);
  size_t group = std::max<size_t>(2, options.ops_per_conflict);
  size_t num_conflicts = conflict_ops / group;
  size_t chained = static_cast<size_t>(static_cast<double>(num_conflicts) *
                                       options.chained_fraction);

  // Round-robin the participating PULs.
  size_t rotor = 0;
  auto pul_at = [&](size_t offset) -> size_t {
    return (rotor + offset) % options.num_puls;
  };
  static constexpr OpKind kOverridden[] = {
      OpKind::kRename, OpKind::kInsFirst, OpKind::kInsLast,
      OpKind::kInsInto, OpKind::kInsAttributes};

  auto add_overridden = [&](Pul* pul, NodeId target, size_t slot,
                            int* fresh_ctr) -> Status {
    OpKind kind = kOverridden[slot % 5];
    switch (kind) {
      case OpKind::kRename:
        return pul->AddStringOp(kind, target, labeling_,
                                "cf" + std::to_string((*fresh_ctr)++));
      case OpKind::kInsAttributes: {
        NodeId attr = pul->NewAttributeParam(
            "cfa" + std::to_string((*fresh_ctr)++), "v");
        return pul->AddTreeOp(kind, target, labeling_, {attr});
      }
      default: {
        auto f = pul->AddFragment("<cf" + std::to_string((*fresh_ctr)++) +
                                  "/>");
        return pul->AddTreeOp(kind, target, labeling_, {*f});
      }
    }
  };

  for (size_t c = 0; c < num_conflicts; ++c, ++rotor) {
    NodeId target = take_target();
    if (target == kInvalidNode) {
      return Status::InvalidArgument(
          "document too small for the requested conflict count");
    }
    size_t members = std::min(group, puls.size());
    int type = static_cast<int>(c % 5) + 1;
    switch (type) {
      case 1:  // repeated modification: same-kind renames
        for (size_t m = 0; m < members; ++m) {
          size_t p = pul_at(m);
          XUPDATE_RETURN_IF_ERROR(puls[p].AddStringOp(
              OpKind::kRename, target, labeling_,
              "t1v" + std::to_string(fresh[p]++)));
        }
        break;
      case 2:  // repeated attribute insertion: shared attribute name
        for (size_t m = 0; m < members; ++m) {
          size_t p = pul_at(m);
          NodeId attr = puls[p].NewAttributeParam(
              "shared" + std::to_string(c), "v" + std::to_string(m));
          XUPDATE_RETURN_IF_ERROR(puls[p].AddTreeOp(
              OpKind::kInsAttributes, target, labeling_, {attr}));
        }
        break;
      case 3:  // insertion order: same-kind sibling insertions
        for (size_t m = 0; m < members; ++m) {
          size_t p = pul_at(m);
          auto f = puls[p].AddFragment(
              "<t3n" + std::to_string(fresh[p]++) + "/>");
          XUPDATE_RETURN_IF_ERROR(puls[p].AddTreeOp(
              OpKind::kInsBefore, target, labeling_, {*f}));
        }
        break;
      case 4:  // local override: one delete vs. overridable ops
        XUPDATE_RETURN_IF_ERROR(
            puls[pul_at(0)].AddDelete(target, labeling_));
        for (size_t m = 1; m < members; ++m) {
          size_t p = pul_at(m);
          XUPDATE_RETURN_IF_ERROR(
              add_overridden(&puls[p], target, m - 1, &fresh[p]));
        }
        break;
      case 5: {  // non-local override: delete an ancestor
        NodeId child = kInvalidNode;
        for (NodeId cand : doc_.children(target)) {
          if (doc_.type(cand) == NodeType::kElement &&
              used.insert(cand).second) {
            child = cand;
            break;
          }
        }
        if (child == kInvalidNode) {
          // No element child: degrade to a local override.
          XUPDATE_RETURN_IF_ERROR(
              puls[pul_at(0)].AddDelete(target, labeling_));
          for (size_t m = 1; m < members; ++m) {
            size_t p = pul_at(m);
            XUPDATE_RETURN_IF_ERROR(
                add_overridden(&puls[p], target, m - 1, &fresh[p]));
          }
          break;
        }
        XUPDATE_RETURN_IF_ERROR(
            puls[pul_at(0)].AddDelete(target, labeling_));
        for (size_t m = 1; m < members; ++m) {
          size_t p = pul_at(m);
          XUPDATE_RETURN_IF_ERROR(
              add_overridden(&puls[p], child, m - 1, &fresh[p]));
        }
        break;
      }
    }
    if (type == 1 && chained > 0) {
      // Chain: a delete of the target's parent dissolves this conflict
      // once the non-local override is solved first. Skip huge
      // containers — deleting one would (realistically but unhelpfully)
      // override a large share of the whole workload and distort the
      // controlled conflict mix.
      NodeId parent = doc_.parent(target);
      if (parent != kInvalidNode && doc_.parent(parent) != kInvalidNode &&
          doc_.children(parent).size() <= 32 &&
          used.insert(parent).second) {
        size_t p = pul_at(members);
        XUPDATE_RETURN_IF_ERROR(puls[p].AddDelete(parent, labeling_));
        --chained;
      }
    }
  }

  // Conflict-free fillers. Targets are sampled (with replacement) from
  // the part of the pool no conflict consumed; only insInto (exempt from
  // order conflicts) and uniquely-named insA are used, so fillers never
  // conflict with each other even on shared targets.
  if (next_target >= element_pool.size()) {
    return Status::InvalidArgument(
        "document too small for the requested conflict count");
  }
  std::span<const NodeId> filler_pool(element_pool.data() + next_target,
                                      element_pool.size() - next_target);
  for (size_t p = 0; p < puls.size(); ++p) {
    while (puls[p].size() < options.ops_per_pul) {
      NodeId target =
          filler_pool[static_cast<size_t>(rng_.Below(filler_pool.size()))];
      if (rng_.Chance(0.25)) {
        NodeId attr = puls[p].NewAttributeParam(
            "fa" + std::to_string(p) + "_" + std::to_string(fresh[p]++),
            "v");
        XUPDATE_RETURN_IF_ERROR(puls[p].AddTreeOp(
            OpKind::kInsAttributes, target, labeling_, {attr}));
      } else {
        auto f = puls[p].AddFragment("<fl" + std::to_string(fresh[p]++) +
                                     "/>");
        XUPDATE_RETURN_IF_ERROR(puls[p].AddTreeOp(OpKind::kInsInto, target,
                                                  labeling_, {*f}));
      }
    }
  }
  return puls;
}

}  // namespace xupdate::workload
