#ifndef XUPDATE_WORKLOAD_WORKLOAD_H_
#define XUPDATE_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace xupdate::workload {

// Typed request stream for driving the reasoning daemon: a fully
// materialized, deterministic sequence of items the load generator
// replays over a connection. Every byte is derived from the seed up
// front — PULs are pre-generated as per-tenant applicable chains — so
// the driver can verify server responses against locally recomputed
// results (byte identity with the one-shot CLI path).

enum class ItemType : uint8_t {
  kCommit = 0,    // commit pul_xml on the tenant; FIFO order makes the
                  // produced version deterministic (expected_version)
  kCheckout = 1,  // check out `version` (the tenant's commit count at
                  // this point in the stream — a deterministic state)
  kReduce = 2,    // reduce pul_xml (deterministic mode), stateless
  kStat = 3,      // metrics probe
};

struct WorkloadItem {
  // Stable stream ordinal (0-based position in Workload::items), so
  // drivers can correlate a response, an error message or a server-side
  // slow-request line back to the exact generated item.
  uint64_t id = 0;
  ItemType type = ItemType::kCommit;
  size_t tenant = 0;  // index into Workload::tenants
  std::string pul_xml;
  uint64_t version = 0;           // kCheckout target
  uint64_t expected_version = 0;  // kCommit: version it must produce
  // Open-loop arrival offset from stream start (0 everywhere for a
  // closed loop): exponential inter-arrival times at `arrival_rate`,
  // i.e. Poisson arrivals that do not slow down when the server does.
  double arrival_seconds = 0.0;
};

struct WorkloadOptions {
  size_t num_tenants = 4;
  size_t num_items = 64;
  size_t ops_per_pul = 8;
  // Approximate plain-serialization size of each tenant's XMark base
  // document.
  size_t doc_bytes = 1 << 14;
  // Tenant skew: tenant ranked r gets weight 1/(r+1)^theta. 0 is
  // uniform; 0.99 the classic YCSB-style hot-tenant skew.
  double zipf_theta = 0.99;
  // Operation mix (weights, not probabilities; any non-negative values
  // with a positive sum).
  double commit_weight = 0.6;
  double checkout_weight = 0.2;
  double reduce_weight = 0.15;
  double stat_weight = 0.05;
  // Open-loop arrival rate in items/second; 0 = closed loop.
  double arrival_rate = 0.0;
  // Reducible-pair density of the kReduce payloads (see PulGenerator).
  double reducible_fraction = 0.2;
  uint64_t seed = 42;
};

struct Workload {
  std::vector<std::string> tenants;      // names, "t0".."tN-1"
  std::vector<std::string> initial_xml;  // per tenant, id-annotated
  std::vector<WorkloadItem> items;       // stream order
};

Result<Workload> GenerateWorkload(const WorkloadOptions& options);

}  // namespace xupdate::workload

#endif  // XUPDATE_WORKLOAD_WORKLOAD_H_
