#include "workload/workload.h"

#include <cmath>
#include <utility>

#include "common/random.h"
#include "label/labeling.h"
#include "pul/pul_io.h"
#include "workload/pul_generator.h"
#include "xmark/generator.h"
#include "xml/parser.h"

namespace xupdate::workload {

namespace {

// Mixes a tenant index into the stream seed so tenants get independent
// but reproducible generators.
uint64_t TenantSeed(uint64_t seed, size_t tenant, uint64_t salt) {
  return seed ^ (0x9e3779b97f4a7c15ull * (tenant + 1)) ^ salt;
}

}  // namespace

Result<Workload> GenerateWorkload(const WorkloadOptions& options) {
  if (options.num_tenants == 0) {
    return Status::InvalidArgument("workload needs at least one tenant");
  }
  if (options.num_items == 0) {
    return Status::InvalidArgument("workload needs at least one item");
  }
  double mix_sum = options.commit_weight + options.checkout_weight +
                   options.reduce_weight + options.stat_weight;
  if (!(options.commit_weight >= 0) || !(options.checkout_weight >= 0) ||
      !(options.reduce_weight >= 0) || !(options.stat_weight >= 0) ||
      !(mix_sum > 0)) {
    return Status::InvalidArgument(
        "operation mix weights must be non-negative with a positive sum");
  }
  if (options.arrival_rate < 0 || !std::isfinite(options.arrival_rate)) {
    return Status::InvalidArgument("arrival rate must be >= 0");
  }
  if (options.zipf_theta < 0 || !std::isfinite(options.zipf_theta)) {
    return Status::InvalidArgument("zipf theta must be >= 0");
  }

  Rng rng(options.seed);
  std::vector<double> tenant_weights(options.num_tenants);
  for (size_t r = 0; r < options.num_tenants; ++r) {
    tenant_weights[r] = 1.0 / std::pow(static_cast<double>(r + 1),
                                       options.zipf_theta);
  }
  const std::vector<double> mix = {options.commit_weight,
                                   options.checkout_weight,
                                   options.reduce_weight,
                                   options.stat_weight};

  // Pass 1: shape of the stream — tenant, type, arrival — so each
  // tenant's commit count is known before its PUL chain is generated.
  Workload out;
  out.items.resize(options.num_items);
  std::vector<size_t> commits_per_tenant(options.num_tenants, 0);
  std::vector<size_t> reduces_per_tenant(options.num_tenants, 0);
  double clock = 0.0;
  uint64_t next_id = 0;
  for (WorkloadItem& item : out.items) {
    item.id = next_id++;
    item.tenant = rng.WeightedIndex(tenant_weights);
    item.type = static_cast<ItemType>(rng.WeightedIndex(mix));
    if (options.arrival_rate > 0) {
      clock += -std::log(1.0 - rng.NextDouble()) / options.arrival_rate;
    }
    item.arrival_seconds = clock;
    switch (item.type) {
      case ItemType::kCommit:
        item.expected_version = ++commits_per_tenant[item.tenant];
        break;
      case ItemType::kCheckout:
        // The tenant's state after the commits already in the stream —
        // deterministic under FIFO request order on one connection.
        item.version = commits_per_tenant[item.tenant];
        break;
      case ItemType::kReduce:
        ++reduces_per_tenant[item.tenant];
        break;
      case ItemType::kStat:
        break;
    }
  }

  // Pass 2: per-tenant documents and PUL chains.
  out.tenants.reserve(options.num_tenants);
  out.initial_xml.reserve(options.num_tenants);
  std::vector<std::vector<std::string>> commit_chains(options.num_tenants);
  std::vector<std::vector<std::string>> reduce_puls(options.num_tenants);
  for (size_t t = 0; t < options.num_tenants; ++t) {
    out.tenants.push_back("t" + std::to_string(t));
    xmark::Config config;
    config.seed = TenantSeed(options.seed, t, 0);
    config.target_bytes = options.doc_bytes;
    XUPDATE_ASSIGN_OR_RETURN(std::string text,
                             xmark::GenerateDocumentText(config));
    // Parse the serialized form back — the exact bytes the server's
    // kOpen will parse — so driver-side replays see identical node ids.
    XUPDATE_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseDocument(text));
    out.initial_xml.push_back(std::move(text));
    label::Labeling labeling = label::Labeling::Build(doc);

    if (commits_per_tenant[t] > 0) {
      PulGenerator generator(doc, labeling, TenantSeed(options.seed, t, 1));
      PulGenerator::SequenceOptions seq;
      seq.num_puls = commits_per_tenant[t];
      seq.ops_per_pul = options.ops_per_pul;
      XUPDATE_ASSIGN_OR_RETURN(std::vector<pul::Pul> chain,
                               generator.GenerateSequence(seq));
      commit_chains[t].reserve(chain.size());
      for (const pul::Pul& pul : chain) {
        XUPDATE_ASSIGN_OR_RETURN(std::string xml, pul::SerializePul(pul));
        commit_chains[t].push_back(std::move(xml));
      }
    }
    if (reduces_per_tenant[t] > 0) {
      PulGenerator generator(doc, labeling, TenantSeed(options.seed, t, 2));
      PulGenerator::PulOptions popts;
      popts.num_ops = options.ops_per_pul;
      popts.reducible_fraction = options.reducible_fraction;
      reduce_puls[t].reserve(reduces_per_tenant[t]);
      for (size_t i = 0; i < reduces_per_tenant[t]; ++i) {
        XUPDATE_ASSIGN_OR_RETURN(pul::Pul pul, generator.Generate(popts));
        XUPDATE_ASSIGN_OR_RETURN(std::string xml, pul::SerializePul(pul));
        reduce_puls[t].push_back(std::move(xml));
      }
    }
  }

  // Pass 3: attach the payloads in stream order.
  std::vector<size_t> commit_cursor(options.num_tenants, 0);
  std::vector<size_t> reduce_cursor(options.num_tenants, 0);
  for (WorkloadItem& item : out.items) {
    if (item.type == ItemType::kCommit) {
      item.pul_xml = commit_chains[item.tenant][commit_cursor[item.tenant]++];
    } else if (item.type == ItemType::kReduce) {
      item.pul_xml = reduce_puls[item.tenant][reduce_cursor[item.tenant]++];
    }
  }
  return out;
}

}  // namespace xupdate::workload
