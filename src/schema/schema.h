#ifndef XUPDATE_SCHEMA_SCHEMA_H_
#define XUPDATE_SCHEMA_SCHEMA_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xupdate::schema {

// Dense bitset over small integer universes (element-type ids, or the
// 3-atoms-per-type universe of summary.h). Fixed capacity chosen at
// construction; all set algebra is word-wise.
class TypeSet {
 public:
  TypeSet() = default;
  explicit TypeSet(size_t capacity) : words_((capacity + 63) / 64) {}

  size_t capacity() const { return words_.size() * 64; }

  void Set(size_t i) { words_[i / 64] |= uint64_t{1} << (i % 64); }
  bool Test(size_t i) const {
    return i < capacity() &&
           (words_[i / 64] >> (i % 64) & uint64_t{1}) != 0;
  }

  bool Intersects(const TypeSet& other) const {
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t w = 0; w < n; ++w) {
      if ((words_[w] & other.words_[w]) != 0) return true;
    }
    return false;
  }

  void UnionWith(const TypeSet& other) {
    if (other.words_.size() > words_.size()) {
      words_.resize(other.words_.size(), 0);
    }
    for (size_t w = 0; w < other.words_.size(); ++w) {
      words_[w] |= other.words_[w];
    }
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  size_t Count() const;

  friend bool operator==(const TypeSet& a, const TypeSet& b);

 private:
  std::vector<uint64_t> words_;
};

// One attribute declaration of an element type.
struct AttributeDecl {
  std::string name;
  bool required = false;
};

// A DTD-style schema: element types, one content-model automaton per
// type (a Thompson NFA over the child-element alphabet, built from the
// declaration's regular expression), attribute lists, and the derived
// tables the reasoning tier consumes — allowed/required children and
// the per-depth element-type sets.
//
// The supported DTD subset (ParseDtd):
//   <!ELEMENT name EMPTY | ANY | (#PCDATA) | (#PCDATA|a|b)* | regex>
//     with regex over names, `,` `|` `?` `*` `+` and parentheses;
//   <!ATTLIST name (attr CDATA|(tok|...) #REQUIRED|#IMPLIED|#FIXED "v"|"v")+>
// Comments (<!-- -->) are skipped. The root type is the first declared
// element. Child names referenced but never declared get an implicit
// ANY declaration (an unconstrained over-approximation, which keeps
// every derived verdict sound).
class Schema {
 public:
  // The XMark auction DTD matching src/xmark/generator.cc.
  static Schema BuiltinXmark();

  static Result<Schema> ParseDtd(std::string_view text);

  int num_types() const { return static_cast<int>(types_.size()); }
  int root_type() const { return root_type_; }
  // -1 when the name is not a declared (or referenced) element type.
  int TypeId(std::string_view name) const;
  std::string_view TypeName(int type) const { return types_[type].name; }

  bool AllowsText(int type) const { return types_[type].allows_text; }
  bool AllowsAny(int type) const { return types_[type].allows_any; }
  // Whether a conforming document may hold a text child / an attribute
  // on a node of `type`. ANY content admits character data, and
  // referenced-but-undeclared types are implicit ANY with unknown
  // attribute lists — both stay conservatively true.
  bool MayHaveText(int type) const {
    return types_[type].allows_text || types_[type].allows_any;
  }
  bool MayHaveAttributes(int type) const {
    return !types_[type].attributes.empty() || types_[type].allows_any;
  }
  // True when `child` may occur in `parent`'s content model (alphabet
  // membership; ANY admits every declared type).
  bool AllowsChild(int parent, int child) const;
  bool AllowsChildName(int parent, std::string_view child_name) const;
  // True when every word of `parent`'s content language contains
  // `child`: the accepting state is unreachable once child-labelled
  // transitions are removed. Always false under ANY.
  bool IsRequiredChild(int parent, int child) const;
  // Allowed child types of `parent`, ascending; all types under ANY.
  const std::vector<int>& Children(int parent) const {
    return types_[parent].child_list;
  }
  const std::vector<AttributeDecl>& Attributes(int type) const {
    return types_[type].attributes;
  }
  // True when `type` declares an attribute called `name`.
  bool HasAttribute(int type, std::string_view name) const;

  // Runs the content-model automaton of `type` over an ordered child
  // sequence (element names; text children are validated separately via
  // AllowsText and must not appear in `children`).
  bool AcceptsChildren(int type, const std::vector<std::string>& children)
      const;

  // Element types that can appear at depth `level` of a conforming
  // document (root = level 0). Exact for levels below the computed
  // table; a sound over-approximation (all types reachable from the
  // deepest tabulated set) past it. An empty set means the schema
  // admits no element at that depth.
  const TypeSet& ElementTypesAtLevel(uint32_t level) const;

  // Element types that can appear strictly below a node whose type is
  // in `types`: the closure of the child relation seeded with the
  // children of `types`. ANY members pull in every type.
  TypeSet ProperDescendantTypes(const TypeSet& types) const;

 private:
  // Thompson NFA over child-type symbols; edge symbol -1 is epsilon.
  struct Nfa {
    struct Edge {
      int symbol = -1;
      int to = 0;
    };
    std::vector<std::vector<Edge>> states;
    int start = 0;
    int accept = 0;

    int AddState() {
      states.emplace_back();
      return static_cast<int>(states.size()) - 1;
    }
    // Accept-state reachability using epsilon edges and any symbol for
    // which `allowed` returns true.
    template <typename Pred>
    bool AcceptReachable(Pred allowed) const;
  };

  struct ElementType {
    std::string name;
    bool declared = false;     // false: referenced only (implicit ANY)
    bool allows_text = false;  // (#PCDATA ...) mixed content
    bool allows_any = false;   // ANY (or implicit declaration)
    Nfa automaton;
    std::vector<int> child_list;  // alphabet, ascending type ids
    TypeSet child_set;
    std::vector<AttributeDecl> attributes;
  };

  friend class DtdParser;

  int Intern(std::string_view name);
  // Computes child lists/sets, required children and the level table.
  void Finalize();

  std::vector<ElementType> types_;
  std::map<std::string, int, std::less<>> type_ids_;
  int root_type_ = -1;
  // required_[parent] bit `child` — precomputed IsRequiredChild.
  std::vector<TypeSet> required_;
  std::vector<TypeSet> level_sets_;
  TypeSet deep_set_;  // over-approximation for levels past the table
};

}  // namespace xupdate::schema

#endif  // XUPDATE_SCHEMA_SCHEMA_H_
