#include "schema/schema.h"

#include <bit>
#include <cctype>
#include <deque>

#include "common/status.h"

namespace xupdate::schema {

size_t TypeSet::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool operator==(const TypeSet& a, const TypeSet& b) {
  size_t n = std::max(a.words_.size(), b.words_.size());
  for (size_t w = 0; w < n; ++w) {
    uint64_t wa = w < a.words_.size() ? a.words_[w] : 0;
    uint64_t wb = w < b.words_.size() ? b.words_[w] : 0;
    if (wa != wb) return false;
  }
  return true;
}

template <typename Pred>
bool Schema::Nfa::AcceptReachable(Pred allowed) const {
  std::vector<char> seen(states.size(), 0);
  std::deque<int> frontier = {start};
  seen[start] = 1;
  while (!frontier.empty()) {
    int s = frontier.front();
    frontier.pop_front();
    if (s == accept) return true;
    for (const Edge& e : states[s]) {
      if (e.symbol != -1 && !allowed(e.symbol)) continue;
      if (!seen[e.to]) {
        seen[e.to] = 1;
        frontier.push_back(e.to);
      }
    }
  }
  return false;
}

int Schema::TypeId(std::string_view name) const {
  auto it = type_ids_.find(name);
  return it == type_ids_.end() ? -1 : it->second;
}

int Schema::Intern(std::string_view name) {
  auto it = type_ids_.find(name);
  if (it != type_ids_.end()) return it->second;
  int id = static_cast<int>(types_.size());
  ElementType type;
  type.name = std::string(name);
  types_.push_back(std::move(type));
  type_ids_.emplace(std::string(name), id);
  if (root_type_ < 0) root_type_ = id;
  return id;
}

bool Schema::AllowsChild(int parent, int child) const {
  const ElementType& p = types_[parent];
  return p.allows_any || p.child_set.Test(static_cast<size_t>(child));
}

bool Schema::AllowsChildName(int parent, std::string_view child_name) const {
  if (types_[parent].allows_any) return true;
  int child = TypeId(child_name);
  return child >= 0 && AllowsChild(parent, child);
}

bool Schema::IsRequiredChild(int parent, int child) const {
  return required_[parent].Test(static_cast<size_t>(child));
}

bool Schema::HasAttribute(int type, std::string_view name) const {
  for (const AttributeDecl& attr : types_[type].attributes) {
    if (attr.name == name) return true;
  }
  return false;
}

bool Schema::AcceptsChildren(int type,
                             const std::vector<std::string>& children) const {
  const ElementType& t = types_[type];
  if (t.allows_any) return true;
  // Subset simulation over the Thompson NFA.
  const Nfa& nfa = t.automaton;
  std::vector<char> current(nfa.states.size(), 0);
  auto close = [&nfa](std::vector<char>* set) {
    std::deque<int> frontier;
    for (size_t s = 0; s < set->size(); ++s) {
      if ((*set)[s]) frontier.push_back(static_cast<int>(s));
    }
    while (!frontier.empty()) {
      int s = frontier.front();
      frontier.pop_front();
      for (const Nfa::Edge& e : nfa.states[s]) {
        if (e.symbol == -1 && !(*set)[e.to]) {
          (*set)[e.to] = 1;
          frontier.push_back(e.to);
        }
      }
    }
  };
  current[nfa.start] = 1;
  close(&current);
  for (const std::string& child : children) {
    int symbol = TypeId(child);
    if (symbol < 0) return false;
    std::vector<char> next(nfa.states.size(), 0);
    bool any = false;
    for (size_t s = 0; s < current.size(); ++s) {
      if (!current[s]) continue;
      for (const Nfa::Edge& e : nfa.states[s]) {
        if (e.symbol == symbol && !next[e.to]) {
          next[e.to] = 1;
          any = true;
        }
      }
    }
    if (!any) return false;
    close(&next);
    current.swap(next);
  }
  return current[nfa.accept] != 0;
}

const TypeSet& Schema::ElementTypesAtLevel(uint32_t level) const {
  if (level < level_sets_.size()) return level_sets_[level];
  return deep_set_;
}

TypeSet Schema::ProperDescendantTypes(const TypeSet& types) const {
  TypeSet result(static_cast<size_t>(num_types()));
  std::deque<int> frontier;
  auto push_children = [this, &result, &frontier](int type) {
    if (types_[type].allows_any) {
      // ANY admits every declared type; pull them all in.
      for (int t = 0; t < num_types(); ++t) {
        if (!result.Test(static_cast<size_t>(t))) {
          result.Set(static_cast<size_t>(t));
          frontier.push_back(t);
        }
      }
      return;
    }
    for (int child : types_[type].child_list) {
      if (!result.Test(static_cast<size_t>(child))) {
        result.Set(static_cast<size_t>(child));
        frontier.push_back(child);
      }
    }
  };
  for (int t = 0; t < num_types(); ++t) {
    if (types.Test(static_cast<size_t>(t))) push_children(t);
  }
  while (!frontier.empty()) {
    int t = frontier.front();
    frontier.pop_front();
    push_children(t);
  }
  return result;
}

void Schema::Finalize() {
  // Child alphabets: collect every symbol with an edge in the automaton
  // (the Thompson build emits one symbol edge per regex leaf).
  for (ElementType& type : types_) {
    type.child_set = TypeSet(static_cast<size_t>(num_types()));
    if (type.allows_any) {
      for (int t = 0; t < num_types(); ++t) {
        type.child_set.Set(static_cast<size_t>(t));
        type.child_list.push_back(t);
      }
      continue;
    }
    for (const auto& state : type.automaton.states) {
      for (const Nfa::Edge& e : state) {
        if (e.symbol >= 0 && !type.child_set.Test(static_cast<size_t>(
                                 e.symbol))) {
          type.child_set.Set(static_cast<size_t>(e.symbol));
          type.child_list.push_back(e.symbol);
        }
      }
    }
    std::sort(type.child_list.begin(), type.child_list.end());
  }

  // Required children: child c is required by t iff the accepting state
  // is unreachable once c-labelled transitions are removed.
  required_.assign(static_cast<size_t>(num_types()),
                   TypeSet(static_cast<size_t>(num_types())));
  for (int t = 0; t < num_types(); ++t) {
    const ElementType& type = types_[static_cast<size_t>(t)];
    if (type.allows_any) continue;
    for (int child : type.child_list) {
      if (!type.automaton.AcceptReachable(
              [child](int symbol) { return symbol != child; })) {
        required_[static_cast<size_t>(t)].Set(static_cast<size_t>(child));
      }
    }
  }

  // Per-depth element-type sets: level 0 = {root}, level L+1 = union of
  // the level-L members' child alphabets. The iteration stops at the
  // empty set (all deeper levels are empty — exact for non-recursive
  // DTDs) or at a conservative cap, past which deep_set_ — everything
  // reachable from the deepest tabulated set, plus that set itself —
  // over-approximates every deeper level.
  constexpr size_t kMaxTabulatedLevels = 128;
  level_sets_.clear();
  deep_set_ = TypeSet(static_cast<size_t>(num_types()));
  if (root_type_ < 0) return;
  TypeSet current(static_cast<size_t>(num_types()));
  current.Set(static_cast<size_t>(root_type_));
  while (!current.Empty() && level_sets_.size() < kMaxTabulatedLevels) {
    level_sets_.push_back(current);
    TypeSet next(static_cast<size_t>(num_types()));
    for (int t = 0; t < num_types(); ++t) {
      if (!current.Test(static_cast<size_t>(t))) continue;
      next.UnionWith(types_[static_cast<size_t>(t)].child_set);
    }
    current = std::move(next);
  }
  if (!current.Empty()) {
    deep_set_ = current;
    deep_set_.UnionWith(ProperDescendantTypes(current));
  }
}

// --- DTD parsing -----------------------------------------------------------

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

}  // namespace

// Recursive-descent parser over the DTD subset documented in schema.h.
// Content models parse into Thompson NFAs directly (one fragment per
// regex node, composed bottom-up).
class DtdParser {
 public:
  explicit DtdParser(std::string_view text) : text_(text) {}

  Result<Schema> Parse() {
    for (;;) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) break;
      if (!Consume("<!")) {
        return Err("expected '<!ELEMENT' or '<!ATTLIST'");
      }
      if (Consume("ELEMENT")) {
        XUPDATE_RETURN_IF_ERROR(ParseElement());
      } else if (Consume("ATTLIST")) {
        XUPDATE_RETURN_IF_ERROR(ParseAttlist());
      } else {
        return Err("unsupported declaration (only ELEMENT and ATTLIST)");
      }
    }
    if (schema_.root_type_ < 0) {
      return Status::InvalidArgument("DTD declares no element types");
    }
    // Referenced-but-undeclared names become implicit ANY so every
    // derived judgment stays a sound over-approximation.
    for (auto& type : schema_.types_) {
      if (!type.declared) type.allows_any = true;
    }
    schema_.Finalize();
    return std::move(schema_);
  }

 private:
  using Nfa = Schema::Nfa;

  // An NFA fragment under construction: entry/exit states inside
  // `nfa_`'s state vector.
  struct Frag {
    int start = 0;
    int accept = 0;
  };

  Status Err(const std::string& message) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::InvalidArgument("DTD line " + std::to_string(line) +
                                   ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  void SkipSpaceAndComments() {
    for (;;) {
      SkipSpace();
      if (text_.substr(pos_).rfind("<!--", 0) == 0) {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      return;
    }
  }

  bool Consume(std::string_view token) {
    if (text_.substr(pos_).rfind(token, 0) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Result<std::string> ParseName() {
    SkipSpace();
    if (pos_ >= text_.size() || !IsNameStart(text_[pos_])) {
      return Err("expected a name");
    }
    size_t begin = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(begin, pos_ - begin));
  }

  // NOTE: parsing a content model interns the referenced names, which
  // may grow (and reallocate) schema_.types_ — so the declared type is
  // addressed by index and re-looked-up after each parse step, never
  // held by reference across an Intern.
  Status ParseElement() {
    XUPDATE_ASSIGN_OR_RETURN(std::string name, ParseName());
    size_t type = static_cast<size_t>(schema_.Intern(name));
    if (schema_.types_[type].declared) {
      return Err("duplicate <!ELEMENT " + name + ">");
    }
    schema_.types_[type].declared = true;
    SkipSpace();
    if (Consume("EMPTY")) {
      schema_.types_[type].automaton = EmptyAutomaton();
    } else if (Consume("ANY")) {
      schema_.types_[type].allows_any = true;
      schema_.types_[type].automaton = EmptyAutomaton();
    } else if (Peek() == '(') {
      size_t mark = pos_;
      ++pos_;  // consume '('
      SkipSpace();
      if (Consume("#PCDATA")) {
        XUPDATE_RETURN_IF_ERROR(ParseMixed(type));
      } else {
        pos_ = mark;
        nfa_ = Nfa();
        XUPDATE_ASSIGN_OR_RETURN(Frag frag, ParseChoice());
        nfa_.start = frag.start;
        nfa_.accept = frag.accept;
        schema_.types_[type].automaton = std::move(nfa_);
      }
    } else {
      return Err("expected EMPTY, ANY or '(' after element name");
    }
    if (!ConsumeChar('>')) return Err("expected '>'");
    return Status::OK();
  }

  // Inside "(#PCDATA"; parses the optional "|name" alternatives, the
  // closing ")" and the optional trailing "*".
  Status ParseMixed(size_t type) {
    schema_.types_[type].allows_text = true;
    std::vector<int> alternatives;
    while (ConsumeChar('|')) {
      XUPDATE_ASSIGN_OR_RETURN(std::string name, ParseName());
      alternatives.push_back(schema_.Intern(name));
    }
    if (!ConsumeChar(')')) return Err("expected ')' after #PCDATA");
    bool starred = ConsumeChar('*');
    if (!alternatives.empty() && !starred) {
      return Err("mixed content with elements must end in ')*'");
    }
    // (#PCDATA|a|b)* over elements only is (a|b)*.
    nfa_ = Nfa();
    int state = nfa_.AddState();
    for (int symbol : alternatives) {
      nfa_.states[state].push_back({symbol, state});
    }
    nfa_.start = state;
    nfa_.accept = state;
    schema_.types_[type].automaton = std::move(nfa_);
    return Status::OK();
  }

  // choice := seq ('|' seq)*
  Result<Frag> ParseChoice() {
    XUPDATE_ASSIGN_OR_RETURN(Frag left, ParseSeq());
    while (Peek() == '|') {
      ++pos_;
      XUPDATE_ASSIGN_OR_RETURN(Frag right, ParseSeq());
      Frag both;
      both.start = nfa_.AddState();
      both.accept = nfa_.AddState();
      nfa_.states[both.start].push_back({-1, left.start});
      nfa_.states[both.start].push_back({-1, right.start});
      nfa_.states[left.accept].push_back({-1, both.accept});
      nfa_.states[right.accept].push_back({-1, both.accept});
      left = both;
    }
    return left;
  }

  // seq := atom (',' atom)*
  Result<Frag> ParseSeq() {
    XUPDATE_ASSIGN_OR_RETURN(Frag left, ParseAtom());
    while (Peek() == ',') {
      ++pos_;
      XUPDATE_ASSIGN_OR_RETURN(Frag right, ParseAtom());
      nfa_.states[left.accept].push_back({-1, right.start});
      left.accept = right.accept;
    }
    return left;
  }

  // atom := (name | '(' choice ')') ('?' | '*' | '+')?
  Result<Frag> ParseAtom() {
    Frag frag;
    if (ConsumeChar('(')) {
      XUPDATE_ASSIGN_OR_RETURN(frag, ParseChoice());
      if (!ConsumeChar(')')) return Err("expected ')'");
    } else {
      XUPDATE_ASSIGN_OR_RETURN(std::string name, ParseName());
      int symbol = schema_.Intern(name);
      frag.start = nfa_.AddState();
      frag.accept = nfa_.AddState();
      nfa_.states[frag.start].push_back({symbol, frag.accept});
    }
    char suffix = Peek();
    if (suffix == '?' || suffix == '*' || suffix == '+') {
      ++pos_;
      Frag wrapped;
      wrapped.start = nfa_.AddState();
      wrapped.accept = nfa_.AddState();
      nfa_.states[wrapped.start].push_back({-1, frag.start});
      nfa_.states[frag.accept].push_back({-1, wrapped.accept});
      if (suffix != '+') {
        nfa_.states[wrapped.start].push_back({-1, wrapped.accept});
      }
      if (suffix != '?') {
        nfa_.states[frag.accept].push_back({-1, frag.start});
      }
      frag = wrapped;
    }
    return frag;
  }

  Status ParseAttlist() {
    XUPDATE_ASSIGN_OR_RETURN(std::string element, ParseName());
    int type = schema_.Intern(element);
    while (Peek() != '>' && Peek() != '\0') {
      AttributeDecl attr;
      XUPDATE_ASSIGN_OR_RETURN(attr.name, ParseName());
      // Attribute type: a single token (CDATA, ID, ...) or an
      // enumeration "(a|b|c)" — the tier only needs the name.
      SkipSpace();
      if (ConsumeChar('(')) {
        while (Peek() != ')' && Peek() != '\0') ++pos_;
        if (!ConsumeChar(')')) return Err("unterminated enumeration");
      } else {
        Result<std::string> attr_type = ParseName();
        if (!attr_type.ok()) return attr_type.status();
      }
      SkipSpace();
      if (Consume("#REQUIRED")) {
        attr.required = true;
      } else if (Consume("#IMPLIED")) {
        attr.required = false;
      } else {
        if (Consume("#FIXED")) SkipSpace();
        XUPDATE_RETURN_IF_ERROR(ParseQuoted());
      }
      schema_.types_[static_cast<size_t>(type)].attributes.push_back(
          std::move(attr));
    }
    if (!ConsumeChar('>')) return Err("expected '>'");
    return Status::OK();
  }

  Status ParseQuoted() {
    SkipSpace();
    if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
      return Err("expected a quoted default value");
    }
    char quote = text_[pos_++];
    size_t end = text_.find(quote, pos_);
    if (end == std::string_view::npos) return Err("unterminated literal");
    pos_ = end + 1;
    return Status::OK();
  }

  Nfa EmptyAutomaton() {
    Nfa nfa;
    int state = nfa.AddState();
    nfa.start = state;
    nfa.accept = state;
    return nfa;
  }

  std::string_view text_;
  size_t pos_ = 0;
  Schema schema_;
  Nfa nfa_;  // automaton of the content model currently being parsed
};

Result<Schema> Schema::ParseDtd(std::string_view text) {
  return DtdParser(text).Parse();
}

Schema Schema::BuiltinXmark() {
  // Mirrors src/xmark/generator.cc exactly: same elements, same child
  // orders, same attributes.
  static constexpr std::string_view kXmarkDtd = R"dtd(
<!-- XMark auction schema, as emitted by xmark::GenerateDocument. -->
<!ELEMENT site (regions, categories, people, open_auctions,
                closed_auctions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT item (location, name, payment, description, quantity)>
<!ATTLIST item id CDATA #REQUIRED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (text)>
<!ELEMENT text (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT categories (category*)>
<!ELEMENT category (name, description)>
<!ATTLIST category id CDATA #REQUIRED>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?)>
<!ATTLIST person id CDATA #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, bidder*, current, itemref)>
<!ATTLIST open_auction id CDATA #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT bidder (time, personref, increase)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT personref EMPTY>
<!ATTLIST personref person CDATA #REQUIRED>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item CDATA #REQUIRED>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date,
                          annotation)>
<!ATTLIST closed_auction id CDATA #REQUIRED>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person CDATA #REQUIRED>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person CDATA #REQUIRED>
<!ELEMENT price (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT annotation (text)>
)dtd";
  Result<Schema> parsed = ParseDtd(kXmarkDtd);
  // The DTD above is a compile-time constant; a parse failure is a
  // programming error caught by the unit tests.
  return std::move(parsed).ValueOrDie();
}

}  // namespace xupdate::schema
