#ifndef XUPDATE_SCHEMA_SUMMARY_H_
#define XUPDATE_SCHEMA_SUMMARY_H_

#include <string_view>

#include "pul/pul.h"
#include "schema/schema.h"

namespace xupdate::schema {

// The summary universe has three atoms per element type: the element
// nodes of that type, their attribute nodes and their text children.
// A summary talks about *sets* of atoms because a PUL carries only the
// structural label of each target — type, level — never the element
// name (names live in the document, which reasoning must not touch);
// the level is mapped through the schema's per-depth type sets to the
// candidate types a conforming document can hold there.
inline constexpr int kAtomsPerType = 3;
inline size_t ElemAtom(int type) {
  return static_cast<size_t>(type) * kAtomsPerType;
}
inline size_t AttrAtom(int type) {
  return static_cast<size_t>(type) * kAtomsPerType + 1;
}
inline size_t TextAtom(int type) {
  return static_cast<size_t>(type) * kAtomsPerType + 2;
}

// Touched-type summary of one PUL (atom sets over the schema):
//   targets — atoms that may contain a target node of the PUL;
//   killed  — atoms that may lie strictly inside a subtree the PUL
//             deletes or replaces (del / repN / repC overriders, the
//             type-5 conflict sources; attributes of a repC target
//             survive and are excluded, mirroring the dynamic rule).
// `unknown` poisons the summary: some op's target cannot be typed (no
// label — a node created by an earlier PUL — or a depth the schema
// admits no element at), so no verdict may be derived from it.
struct TypeSummary {
  TypeSet targets;
  TypeSet killed;
  bool unknown = false;
};

// Verdict of the type-level tier. There is deliberately no
// "proven-conflicting": the tier only ever short-circuits the exact
// analyzer, never contradicts it.
enum class SchemaVerdict : int {
  kProvenIndependent = 0,
  kUnknown = 1,
};

std::string_view SchemaVerdictName(SchemaVerdict verdict);

// Maps every op target through (level, node type) to its candidate
// atom set and closes deletion/replacement effects over the content
// models (ProperDescendantTypes). O(ops * schema).
[[nodiscard]] TypeSummary InferTouchedTypes(const Schema& schema,
                                            const pul::Pul& pul);

// kProvenIndependent iff both summaries are known, their target atom
// sets are disjoint, and neither PUL's killed set meets the other's
// targets. Sound relative to documents conforming to the schema: a
// proven pair is one analysis::AnalyzeIndependence reports
// kIndependent for (see DESIGN.md §10 for the argument).
[[nodiscard]] SchemaVerdict DecideIndependence(const TypeSummary& a,
                                               const TypeSummary& b);

}  // namespace xupdate::schema

#endif  // XUPDATE_SCHEMA_SUMMARY_H_
