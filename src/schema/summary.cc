#include "schema/summary.h"

namespace xupdate::schema {

std::string_view SchemaVerdictName(SchemaVerdict verdict) {
  switch (verdict) {
    case SchemaVerdict::kProvenIndependent:
      return "proven-independent";
    case SchemaVerdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

namespace {

// Attribute/text atoms are filtered against the schema: a conforming
// document holds a text child of type t only when t's content model
// admits character data, and an attribute only when t declares one
// (ANY / undeclared types stay conservatively included on both counts).
void AddAtoms(const Schema& schema, const TypeSet& types, bool elem,
              bool attr, bool text, TypeSet* atoms) {
  for (int t = 0; t < schema.num_types(); ++t) {
    if (!types.Test(static_cast<size_t>(t))) continue;
    if (elem) atoms->Set(ElemAtom(t));
    if (attr && schema.MayHaveAttributes(t)) atoms->Set(AttrAtom(t));
    if (text && schema.MayHaveText(t)) atoms->Set(TextAtom(t));
  }
}

// Whether at least one candidate type can hold a node of `node_type`
// (element: always — candidates are element types; attr/text: after the
// MayHave* filter).
bool AnyCandidateAdmits(const Schema& schema, const TypeSet& candidates,
                        xml::NodeType node_type) {
  if (node_type == xml::NodeType::kElement) return true;
  for (int t = 0; t < schema.num_types(); ++t) {
    if (!candidates.Test(static_cast<size_t>(t))) continue;
    if (node_type == xml::NodeType::kAttribute
            ? schema.MayHaveAttributes(t)
            : schema.MayHaveText(t)) {
      return true;
    }
  }
  return false;
}

}  // namespace

TypeSummary InferTouchedTypes(const Schema& schema, const pul::Pul& pul) {
  size_t atom_capacity =
      static_cast<size_t>(schema.num_types()) * kAtomsPerType;
  TypeSummary summary;
  summary.targets = TypeSet(atom_capacity);
  summary.killed = TypeSet(atom_capacity);

  for (const pul::UpdateOp& op : pul.ops()) {
    const label::NodeLabel& target = op.target_label;
    if (!target.valid()) {
      // Target created by an earlier PUL of an aggregation sequence:
      // its position in the document — and hence its type — is unknown.
      summary.unknown = true;
      return summary;
    }
    // Candidate element types: the target itself for element targets,
    // the owning element for attribute/text targets (one level up).
    bool is_element = target.type == xml::NodeType::kElement;
    if (!is_element && target.level == 0) {
      summary.unknown = true;
      return summary;
    }
    uint32_t element_level = is_element ? target.level : target.level - 1;
    const TypeSet& candidates = schema.ElementTypesAtLevel(element_level);
    if (candidates.Empty()) {
      // The schema admits no element at this depth; a conforming
      // document cannot hold this target, so the summary abstains.
      summary.unknown = true;
      return summary;
    }
    if (!AnyCandidateAdmits(schema, candidates, target.type)) {
      // Every candidate was filtered out (e.g. a text target at a depth
      // where no type admits character data): the document does not
      // conform to the schema, so the summary abstains rather than
      // claim the op touches nothing.
      summary.unknown = true;
      return summary;
    }
    switch (target.type) {
      case xml::NodeType::kElement:
        AddAtoms(schema, candidates, true, false, false, &summary.targets);
        break;
      case xml::NodeType::kAttribute:
        AddAtoms(schema, candidates, false, true, false, &summary.targets);
        break;
      case xml::NodeType::kText:
        AddAtoms(schema, candidates, false, false, true, &summary.targets);
        break;
    }

    // Deletion/replacement effect closure: everything strictly inside
    // the overridden subtree may be a type-5 victim. Only element
    // targets have strict descendants.
    bool overrides_subtree = op.kind == pul::OpKind::kDelete ||
                             op.kind == pul::OpKind::kReplaceNode ||
                             op.kind == pul::OpKind::kReplaceChildren;
    if (overrides_subtree && is_element) {
      TypeSet below = schema.ProperDescendantTypes(candidates);
      AddAtoms(schema, below, true, true, true, &summary.killed);
      // The target's own attributes and text children are strict
      // descendants too — except that repC leaves the attributes in
      // place (the dynamic non-local-override rule exempts them).
      bool keeps_attributes = op.kind == pul::OpKind::kReplaceChildren;
      AddAtoms(schema, candidates, false, !keeps_attributes, true,
               &summary.killed);
    }
  }
  return summary;
}

SchemaVerdict DecideIndependence(const TypeSummary& a,
                                 const TypeSummary& b) {
  if (a.unknown || b.unknown) return SchemaVerdict::kUnknown;
  if (a.targets.Intersects(b.targets)) return SchemaVerdict::kUnknown;
  if (a.killed.Intersects(b.targets)) return SchemaVerdict::kUnknown;
  if (b.killed.Intersects(a.targets)) return SchemaVerdict::kUnknown;
  return SchemaVerdict::kProvenIndependent;
}

}  // namespace xupdate::schema
