#ifndef XUPDATE_XQUERY_AST_H_
#define XUPDATE_XQUERY_AST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xupdate::xquery {

// Node test of one path step.
struct NameTest {
  enum class Kind {
    kElement,       // name
    kAnyElement,    // *
    kAttribute,     // @name
    kAnyAttribute,  // @*
    kText,          // text()
  };
  Kind kind = Kind::kElement;
  std::string name;
};

// Step predicate: [3], [last()], [rel/path],
// [rel/path = "value"] or [rel/path != "value"].
struct Predicate {
  enum class Kind { kPosition, kLast, kExists, kEquals, kNotEquals };
  Kind kind = Kind::kPosition;
  int64_t position = 0;               // kPosition (1-based)
  std::vector<NameTest> rel_path;     // kExists / kEquals
  std::string value;                  // kEquals
};

// One step: axis (child or descendant-or-self shorthand //), node test,
// predicates.
struct Step {
  bool descendant = false;  // true when reached via "//"
  NameTest test;
  std::vector<Predicate> predicates;
};

// Absolute location path.
struct PathExpr {
  std::vector<Step> steps;
};

// The five XQuery Update Facility updating expressions, with the
// insertion-position variants spelled out.
enum class UpdateVerb {
  kInsertInto,
  kInsertFirst,
  kInsertLast,
  kInsertBefore,
  kInsertAfter,
  kInsertAttributes,
  kDelete,
  kReplaceNode,
  kReplaceValue,  // "replace value of node": repV, or repC on elements
  kRename,
};

struct UpdateExpr {
  UpdateVerb verb = UpdateVerb::kDelete;
  PathExpr path;
  // Raw XML of the content sequence for the tree-insertion verbs and
  // replace-node (re-parsed per target so every target gets its own
  // fresh-id clone, per the XQUF content-cloning semantics).
  std::string content_xml;
  // Name/value pairs for "insert attributes".
  std::vector<std::pair<std::string, std::string>> attributes;
  // replace-value / rename argument.
  std::string string_arg;
};

// A comma-separated sequence of updating expressions, evaluated with
// snapshot semantics: all paths resolve against the original document
// and the per-expression PULs merge into one.
struct UpdateScript {
  std::vector<UpdateExpr> expressions;
};

}  // namespace xupdate::xquery

#endif  // XUPDATE_XQUERY_AST_H_
