#include "xquery/parser.h"

#include "xquery/lexer.h"

namespace xupdate::xquery {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : lexer_(input) {}

  Result<UpdateScript> ParseScript();
  Result<PathExpr> ParseWholePath();

 private:
  Result<UpdateExpr> ParseExpr();
  Result<UpdateExpr> ParseInsert();
  Result<UpdateExpr> ParseDelete();
  Result<UpdateExpr> ParseReplace();
  Result<UpdateExpr> ParseRename();
  Result<PathExpr> ParsePathExpr();
  Result<Step> ParseStep(bool descendant);
  Result<Predicate> ParsePredicate();
  Result<std::vector<NameTest>> ParseRelPath();
  // Content: XML constructors or a quoted string (one text node).
  Result<std::string> ParseContent(bool* is_text, std::string* text_value);
  Status Expect(std::string_view keyword);

  Lexer lexer_;
};

Status Parser::Expect(std::string_view keyword) {
  if (!lexer_.ConsumeKeyword(keyword)) {
    return lexer_.ErrorHere("expected '" + std::string(keyword) + "'");
  }
  return Status::OK();
}

Result<std::string> Parser::ParseContent(bool* is_text,
                                         std::string* text_value) {
  if (lexer_.AtXmlContent()) {
    *is_text = false;
    return lexer_.ScanXmlContent();
  }
  XUPDATE_ASSIGN_OR_RETURN(Token token, lexer_.Peek());
  if (token.kind == TokenKind::kString) {
    (void)lexer_.Next();
    *is_text = true;
    *text_value = token.text;
    return std::string();
  }
  return lexer_.ErrorHere("expected XML content or string literal");
}

Result<UpdateExpr> Parser::ParseInsert() {
  UpdateExpr expr;
  if (lexer_.ConsumeKeyword("attribute") ||
      lexer_.ConsumeKeyword("attributes")) {
    expr.verb = UpdateVerb::kInsertAttributes;
    for (;;) {
      XUPDATE_ASSIGN_OR_RETURN(Token token, lexer_.Peek());
      if (token.kind != TokenKind::kName || token.text == "into") break;
      (void)lexer_.Next();
      if (!lexer_.ConsumeKind(TokenKind::kEquals)) {
        return lexer_.ErrorHere("expected '=' after attribute name");
      }
      XUPDATE_ASSIGN_OR_RETURN(Token value, lexer_.Next());
      if (value.kind != TokenKind::kString) {
        return lexer_.ErrorHere("expected quoted attribute value");
      }
      expr.attributes.emplace_back(token.text, value.text);
    }
    if (expr.attributes.empty()) {
      return lexer_.ErrorHere("expected at least one attribute");
    }
    XUPDATE_RETURN_IF_ERROR(Expect("into"));
    XUPDATE_ASSIGN_OR_RETURN(expr.path, ParsePathExpr());
    return expr;
  }
  if (!lexer_.ConsumeKeyword("node") && !lexer_.ConsumeKeyword("nodes")) {
    return lexer_.ErrorHere("expected 'node', 'nodes' or 'attributes'");
  }
  bool is_text = false;
  std::string text_value;
  XUPDATE_ASSIGN_OR_RETURN(expr.content_xml,
                           ParseContent(&is_text, &text_value));
  if (is_text) {
    // Represent a text content sequence through string_arg.
    expr.string_arg = text_value;
  }
  if (lexer_.ConsumeKeyword("into")) {
    expr.verb = UpdateVerb::kInsertInto;
  } else if (lexer_.ConsumeKeyword("as")) {
    if (lexer_.ConsumeKeyword("first")) {
      expr.verb = UpdateVerb::kInsertFirst;
    } else if (lexer_.ConsumeKeyword("last")) {
      expr.verb = UpdateVerb::kInsertLast;
    } else {
      return lexer_.ErrorHere("expected 'first' or 'last'");
    }
    XUPDATE_RETURN_IF_ERROR(Expect("into"));
  } else if (lexer_.ConsumeKeyword("before")) {
    expr.verb = UpdateVerb::kInsertBefore;
  } else if (lexer_.ConsumeKeyword("after")) {
    expr.verb = UpdateVerb::kInsertAfter;
  } else {
    return lexer_.ErrorHere(
        "expected 'into', 'as first into', 'as last into', 'before' or "
        "'after'");
  }
  XUPDATE_ASSIGN_OR_RETURN(expr.path, ParsePathExpr());
  return expr;
}

Result<UpdateExpr> Parser::ParseDelete() {
  UpdateExpr expr;
  expr.verb = UpdateVerb::kDelete;
  if (!lexer_.ConsumeKeyword("node") && !lexer_.ConsumeKeyword("nodes")) {
    return lexer_.ErrorHere("expected 'node' or 'nodes'");
  }
  XUPDATE_ASSIGN_OR_RETURN(expr.path, ParsePathExpr());
  return expr;
}

Result<UpdateExpr> Parser::ParseReplace() {
  UpdateExpr expr;
  if (lexer_.ConsumeKeyword("value")) {
    XUPDATE_RETURN_IF_ERROR(Expect("of"));
    XUPDATE_RETURN_IF_ERROR(Expect("node"));
    expr.verb = UpdateVerb::kReplaceValue;
    XUPDATE_ASSIGN_OR_RETURN(expr.path, ParsePathExpr());
    XUPDATE_RETURN_IF_ERROR(Expect("with"));
    XUPDATE_ASSIGN_OR_RETURN(Token value, lexer_.Next());
    if (value.kind != TokenKind::kString) {
      return lexer_.ErrorHere("expected string value");
    }
    expr.string_arg = value.text;
    return expr;
  }
  XUPDATE_RETURN_IF_ERROR(Expect("node"));
  expr.verb = UpdateVerb::kReplaceNode;
  XUPDATE_ASSIGN_OR_RETURN(expr.path, ParsePathExpr());
  XUPDATE_RETURN_IF_ERROR(Expect("with"));
  bool is_text = false;
  std::string text_value;
  XUPDATE_ASSIGN_OR_RETURN(expr.content_xml,
                           ParseContent(&is_text, &text_value));
  if (is_text) expr.string_arg = text_value;
  return expr;
}

Result<UpdateExpr> Parser::ParseRename() {
  UpdateExpr expr;
  expr.verb = UpdateVerb::kRename;
  XUPDATE_RETURN_IF_ERROR(Expect("node"));
  XUPDATE_ASSIGN_OR_RETURN(expr.path, ParsePathExpr());
  XUPDATE_RETURN_IF_ERROR(Expect("as"));
  XUPDATE_ASSIGN_OR_RETURN(Token name, lexer_.Next());
  if (name.kind != TokenKind::kString && name.kind != TokenKind::kName) {
    return lexer_.ErrorHere("expected new name");
  }
  expr.string_arg = name.text;
  return expr;
}

Result<UpdateExpr> Parser::ParseExpr() {
  if (lexer_.ConsumeKeyword("insert")) return ParseInsert();
  if (lexer_.ConsumeKeyword("delete")) return ParseDelete();
  if (lexer_.ConsumeKeyword("replace")) return ParseReplace();
  if (lexer_.ConsumeKeyword("rename")) return ParseRename();
  return lexer_.ErrorHere(
      "expected 'insert', 'delete', 'replace' or 'rename'");
}

Result<std::vector<NameTest>> Parser::ParseRelPath() {
  std::vector<NameTest> out;
  for (;;) {
    NameTest test;
    XUPDATE_ASSIGN_OR_RETURN(Token token, lexer_.Peek());
    if (token.kind == TokenKind::kAt) {
      (void)lexer_.Next();
      XUPDATE_ASSIGN_OR_RETURN(Token name, lexer_.Next());
      if (name.kind == TokenKind::kStar) {
        test.kind = NameTest::Kind::kAnyAttribute;
      } else if (name.kind == TokenKind::kName) {
        test.kind = NameTest::Kind::kAttribute;
        test.name = name.text;
      } else {
        return lexer_.ErrorHere("expected attribute name after '@'");
      }
    } else if (token.kind == TokenKind::kTextTest) {
      (void)lexer_.Next();
      test.kind = NameTest::Kind::kText;
    } else if (token.kind == TokenKind::kStar) {
      (void)lexer_.Next();
      test.kind = NameTest::Kind::kAnyElement;
    } else if (token.kind == TokenKind::kName) {
      (void)lexer_.Next();
      test.kind = NameTest::Kind::kElement;
      test.name = token.text;
    } else {
      return lexer_.ErrorHere("expected a step in predicate path");
    }
    out.push_back(std::move(test));
    if (!lexer_.ConsumeKind(TokenKind::kSlash)) break;
  }
  return out;
}

Result<Predicate> Parser::ParsePredicate() {
  Predicate pred;
  XUPDATE_ASSIGN_OR_RETURN(Token token, lexer_.Peek());
  if (token.kind == TokenKind::kInteger) {
    (void)lexer_.Next();
    pred.kind = Predicate::Kind::kPosition;
    pred.position = token.number;
    if (pred.position < 1) {
      return lexer_.ErrorHere("positions are 1-based");
    }
  } else if (token.kind == TokenKind::kLastTest) {
    (void)lexer_.Next();
    pred.kind = Predicate::Kind::kLast;
  } else {
    XUPDATE_ASSIGN_OR_RETURN(pred.rel_path, ParseRelPath());
    bool equals = lexer_.ConsumeKind(TokenKind::kEquals);
    bool not_equals = !equals && lexer_.ConsumeKind(TokenKind::kNotEquals);
    if (equals || not_equals) {
      XUPDATE_ASSIGN_OR_RETURN(Token value, lexer_.Next());
      if (value.kind != TokenKind::kString) {
        return lexer_.ErrorHere(
            "expected string after comparison in predicate");
      }
      pred.kind = equals ? Predicate::Kind::kEquals
                         : Predicate::Kind::kNotEquals;
      pred.value = value.text;
    } else {
      pred.kind = Predicate::Kind::kExists;
    }
  }
  if (!lexer_.ConsumeKind(TokenKind::kRBracket)) {
    return lexer_.ErrorHere("expected ']'");
  }
  return pred;
}

Result<Step> Parser::ParseStep(bool descendant) {
  Step step;
  step.descendant = descendant;
  XUPDATE_ASSIGN_OR_RETURN(Token token, lexer_.Next());
  switch (token.kind) {
    case TokenKind::kName:
      step.test.kind = NameTest::Kind::kElement;
      step.test.name = token.text;
      break;
    case TokenKind::kStar:
      step.test.kind = NameTest::Kind::kAnyElement;
      break;
    case TokenKind::kTextTest:
      step.test.kind = NameTest::Kind::kText;
      break;
    case TokenKind::kAt: {
      XUPDATE_ASSIGN_OR_RETURN(Token name, lexer_.Next());
      if (name.kind == TokenKind::kStar) {
        step.test.kind = NameTest::Kind::kAnyAttribute;
      } else if (name.kind == TokenKind::kName) {
        step.test.kind = NameTest::Kind::kAttribute;
        step.test.name = name.text;
      } else {
        return lexer_.ErrorHere("expected attribute name after '@'");
      }
      break;
    }
    default:
      return lexer_.ErrorHere("expected a path step");
  }
  while (lexer_.ConsumeKind(TokenKind::kLBracket)) {
    XUPDATE_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate());
    step.predicates.push_back(std::move(pred));
  }
  return step;
}

Result<PathExpr> Parser::ParsePathExpr() {
  PathExpr path;
  bool descendant;
  if (lexer_.ConsumeKind(TokenKind::kDoubleSlash)) {
    descendant = true;
  } else if (lexer_.ConsumeKind(TokenKind::kSlash)) {
    descendant = false;
  } else {
    return lexer_.ErrorHere("paths must start with '/' or '//'");
  }
  for (;;) {
    XUPDATE_ASSIGN_OR_RETURN(Step step, ParseStep(descendant));
    path.steps.push_back(std::move(step));
    if (lexer_.ConsumeKind(TokenKind::kDoubleSlash)) {
      descendant = true;
    } else if (lexer_.ConsumeKind(TokenKind::kSlash)) {
      descendant = false;
    } else {
      break;
    }
  }
  return path;
}

Result<UpdateScript> Parser::ParseScript() {
  UpdateScript script;
  for (;;) {
    XUPDATE_ASSIGN_OR_RETURN(UpdateExpr expr, ParseExpr());
    script.expressions.push_back(std::move(expr));
    if (!lexer_.ConsumeKind(TokenKind::kComma)) break;
  }
  XUPDATE_ASSIGN_OR_RETURN(Token token, lexer_.Peek());
  if (token.kind != TokenKind::kEnd) {
    return lexer_.ErrorHere("trailing input after update script");
  }
  return script;
}

Result<PathExpr> Parser::ParseWholePath() {
  XUPDATE_ASSIGN_OR_RETURN(PathExpr path, ParsePathExpr());
  XUPDATE_ASSIGN_OR_RETURN(Token token, lexer_.Peek());
  if (token.kind != TokenKind::kEnd) {
    return lexer_.ErrorHere("trailing input after path");
  }
  return path;
}

}  // namespace

Result<UpdateScript> ParseUpdate(std::string_view input) {
  Parser parser(input);
  return parser.ParseScript();
}

Result<PathExpr> ParsePath(std::string_view input) {
  Parser parser(input);
  return parser.ParseWholePath();
}

}  // namespace xupdate::xquery
