#ifndef XUPDATE_XQUERY_EVAL_H_
#define XUPDATE_XQUERY_EVAL_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "label/labeling.h"
#include "pul/pul.h"
#include "xml/document.h"
#include "xquery/ast.h"

namespace xupdate::xquery {

// Evaluates an absolute path over `doc`, returning the matching nodes in
// document order (deduplicated).
Result<std::vector<xml::NodeId>> EvaluatePath(const xml::Document& doc,
                                              const PathExpr& path);

// A producer session: the document replica the producer checked out,
// its label table and its assigned id space (§4.1).
struct ProducerContext {
  const xml::Document* doc = nullptr;
  const label::Labeling* labeling = nullptr;
  // First id this producer may assign to nodes it creates; 0 means
  // "right after the document's ids".
  xml::NodeId id_base = 0;
  // Desiderata attached to the produced PULs (§4.2).
  pul::Policies policies;
};

// Evaluates an update script with XQUF snapshot semantics: every path is
// resolved against the unmodified document, one primitive is emitted per
// target node (content is cloned per target with fresh producer-space
// ids), and the per-expression lists merge into the returned PUL.
// Fails if the merge would contain incompatible operations, mirroring
// upd:mergeUpdates.
Result<pul::Pul> EvaluateUpdate(const UpdateScript& script,
                                const ProducerContext& context);

// Convenience: parse + evaluate.
Result<pul::Pul> ProducePul(std::string_view update_text,
                            const ProducerContext& context);

}  // namespace xupdate::xquery

#endif  // XUPDATE_XQUERY_EVAL_H_
