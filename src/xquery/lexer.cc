#include "xquery/lexer.h"

#include <cctype>

namespace xupdate::xquery {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '.' || c == '-';
}

}  // namespace

void Lexer::SkipWhitespace() {
  while (pos_ < input_.size() &&
         (input_[pos_] == ' ' || input_[pos_] == '\t' ||
          input_[pos_] == '\r' || input_[pos_] == '\n')) {
    ++pos_;
  }
}

Status Lexer::ErrorHere(std::string message) const {
  size_t at = has_token_ ? token_start_ : pos_;
  return Status::ParseError(message + " at offset " + std::to_string(at) +
                            " of update expression");
}

Status Lexer::Scan() {
  SkipWhitespace();
  token_start_ = pos_;
  current_ = Token();
  if (pos_ >= input_.size()) {
    current_.kind = TokenKind::kEnd;
    has_token_ = true;
    return Status::OK();
  }
  char c = input_[pos_];
  if (c == '/') {
    ++pos_;
    if (pos_ < input_.size() && input_[pos_] == '/') {
      ++pos_;
      current_.kind = TokenKind::kDoubleSlash;
    } else {
      current_.kind = TokenKind::kSlash;
    }
  } else if (c == '@') {
    ++pos_;
    current_.kind = TokenKind::kAt;
  } else if (c == '*') {
    ++pos_;
    current_.kind = TokenKind::kStar;
  } else if (c == '[') {
    ++pos_;
    current_.kind = TokenKind::kLBracket;
  } else if (c == ']') {
    ++pos_;
    current_.kind = TokenKind::kRBracket;
  } else if (c == '=') {
    ++pos_;
    current_.kind = TokenKind::kEquals;
  } else if (c == '!' && pos_ + 1 < input_.size() &&
             input_[pos_ + 1] == '=') {
    pos_ += 2;
    current_.kind = TokenKind::kNotEquals;
  } else if (c == ',') {
    ++pos_;
    current_.kind = TokenKind::kComma;
  } else if (c == '"' || c == '\'') {
    char quote = c;
    ++pos_;
    std::string text;
    while (pos_ < input_.size() && input_[pos_] != quote) {
      text += input_[pos_++];
    }
    if (pos_ >= input_.size()) {
      return Status::ParseError("unterminated string literal at offset " +
                                std::to_string(token_start_));
    }
    ++pos_;  // closing quote
    current_.kind = TokenKind::kString;
    current_.text = std::move(text);
  } else if (std::isdigit(static_cast<unsigned char>(c))) {
    int64_t value = 0;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      value = value * 10 + (input_[pos_++] - '0');
    }
    current_.kind = TokenKind::kInteger;
    current_.number = value;
  } else if (IsNameStart(c)) {
    std::string name;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) {
      name += input_[pos_++];
    }
    // Recognize the node-test function forms.
    if ((name == "text" || name == "last") && pos_ + 1 < input_.size() &&
        input_[pos_] == '(' && input_[pos_ + 1] == ')') {
      pos_ += 2;
      current_.kind =
          name == "text" ? TokenKind::kTextTest : TokenKind::kLastTest;
    } else {
      current_.kind = TokenKind::kName;
      current_.text = std::move(name);
    }
  } else {
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(pos_));
  }
  has_token_ = true;
  return Status::OK();
}

Result<Token> Lexer::Peek() {
  if (!has_token_) {
    XUPDATE_RETURN_IF_ERROR(Scan());
  }
  return current_;
}

Result<Token> Lexer::Next() {
  XUPDATE_ASSIGN_OR_RETURN(Token token, Peek());
  has_token_ = false;
  return token;
}

bool Lexer::ConsumeKeyword(std::string_view keyword) {
  auto token = Peek();
  if (!token.ok()) return false;
  if (token->kind == TokenKind::kName && token->text == keyword) {
    has_token_ = false;
    return true;
  }
  return false;
}

bool Lexer::ConsumeKind(TokenKind kind) {
  auto token = Peek();
  if (!token.ok()) return false;
  if (token->kind == kind) {
    has_token_ = false;
    return true;
  }
  return false;
}

bool Lexer::AtXmlContent() {
  if (has_token_) return false;  // a token was already scanned past '<'
  size_t save = pos_;
  SkipWhitespace();
  bool at = pos_ < input_.size() && input_[pos_] == '<';
  pos_ = save;
  return at;
}

Result<std::string> Lexer::ScanXmlContent() {
  if (has_token_) {
    return Status::ParseError("internal: token lookahead before content");
  }
  SkipWhitespace();
  if (pos_ >= input_.size() || input_[pos_] != '<') {
    return ErrorHere("expected XML content");
  }
  size_t begin = pos_;
  int depth = 0;
  bool any_element = false;
  while (pos_ < input_.size()) {
    char c = input_[pos_];
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos_;
      while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
      if (pos_ >= input_.size()) {
        return Status::ParseError("unterminated quote in XML content");
      }
      ++pos_;
      continue;
    }
    if (c == '<') {
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
        --depth;
        while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
        if (pos_ >= input_.size()) {
          return Status::ParseError("unterminated end tag in XML content");
        }
        ++pos_;
      } else {
        any_element = true;
        // Start tag: scan to '>' honoring quotes; detect self-closing.
        ++pos_;
        bool self_close = false;
        while (pos_ < input_.size() && input_[pos_] != '>') {
          char d = input_[pos_];
          if (d == '"' || d == '\'') {
            ++pos_;
            while (pos_ < input_.size() && input_[pos_] != d) ++pos_;
            if (pos_ >= input_.size()) {
              return Status::ParseError(
                  "unterminated attribute in XML content");
            }
          }
          self_close = input_[pos_] == '/';
          ++pos_;
        }
        if (pos_ >= input_.size()) {
          return Status::ParseError("unterminated start tag in XML content");
        }
        ++pos_;  // '>'
        if (!self_close) ++depth;
      }
      if (depth == 0) {
        // A complete element just closed; continue only if another
        // sibling constructor follows immediately.
        size_t save = pos_;
        SkipWhitespace();
        if (pos_ < input_.size() && input_[pos_] == '<' &&
            pos_ + 1 < input_.size() && input_[pos_ + 1] != '/') {
          continue;
        }
        pos_ = save;
        break;
      }
      continue;
    }
    if (depth == 0) break;
    ++pos_;
  }
  if (depth != 0 || !any_element) {
    return Status::ParseError("unbalanced XML content in update expression");
  }
  return std::string(input_.substr(begin, pos_ - begin));
}

}  // namespace xupdate::xquery
