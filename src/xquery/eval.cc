#include "xquery/eval.h"

#include <algorithm>
#include <set>
#include <string>

#include "xml/parser.h"
#include "xquery/parser.h"

namespace xupdate::xquery {

namespace {

using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using xml::Document;
using xml::NodeId;
using xml::NodeType;

bool MatchesTest(const Document& doc, NodeId node, const NameTest& test) {
  switch (test.kind) {
    case NameTest::Kind::kElement:
      return doc.type(node) == NodeType::kElement &&
             doc.name(node) == test.name;
    case NameTest::Kind::kAnyElement:
      return doc.type(node) == NodeType::kElement;
    case NameTest::Kind::kAttribute:
      return doc.type(node) == NodeType::kAttribute &&
             doc.name(node) == test.name;
    case NameTest::Kind::kAnyAttribute:
      return doc.type(node) == NodeType::kAttribute;
    case NameTest::Kind::kText:
      return doc.type(node) == NodeType::kText;
  }
  return false;
}

// Candidate nodes of one step from one context node, in document order.
std::vector<NodeId> StepCandidates(const Document& doc, NodeId context,
                                   const Step& step) {
  std::vector<NodeId> out;
  bool want_attr = step.test.kind == NameTest::Kind::kAttribute ||
                   step.test.kind == NameTest::Kind::kAnyAttribute;
  if (!step.descendant) {
    if (doc.type(context) != NodeType::kElement) return out;
    const auto& pool = want_attr ? doc.attributes(context)
                                 : doc.children(context);
    for (NodeId c : pool) {
      if (MatchesTest(doc, c, step.test)) out.push_back(c);
    }
    return out;
  }
  // Descendant-or-self axis shorthand: every node strictly below the
  // context (attributes included for @ tests).
  if (doc.type(context) != NodeType::kElement) return out;
  doc.Visit(context, [&](NodeId v) {
    if (v != context && MatchesTest(doc, v, step.test)) out.push_back(v);
    return true;
  });
  return out;
}

// String value of a node (concatenated text content for elements).
std::string StringValue(const Document& doc, NodeId node) {
  switch (doc.type(node)) {
    case NodeType::kText:
    case NodeType::kAttribute:
      return doc.value(node);
    case NodeType::kElement: {
      std::string out;
      doc.Visit(node, [&](NodeId v) {
        if (doc.type(v) == NodeType::kText) out += doc.value(v);
        return true;
      });
      return out;
    }
  }
  return std::string();
}

// Evaluates a predicate's relative path from `node`.
std::vector<NodeId> EvalRelPath(const Document& doc, NodeId node,
                                const std::vector<NameTest>& rel_path) {
  std::vector<NodeId> current = {node};
  for (const NameTest& test : rel_path) {
    std::vector<NodeId> next;
    bool want_attr = test.kind == NameTest::Kind::kAttribute ||
                     test.kind == NameTest::Kind::kAnyAttribute;
    for (NodeId c : current) {
      if (doc.type(c) != NodeType::kElement) continue;
      const auto& pool = want_attr ? doc.attributes(c) : doc.children(c);
      for (NodeId n : pool) {
        if (MatchesTest(doc, n, test)) next.push_back(n);
      }
    }
    current = std::move(next);
  }
  return current;
}

bool PredicateHolds(const Document& doc, NodeId node,
                    const Predicate& pred, size_t position, size_t count) {
  switch (pred.kind) {
    case Predicate::Kind::kPosition:
      return static_cast<int64_t>(position) == pred.position;
    case Predicate::Kind::kLast:
      return position == count;
    case Predicate::Kind::kExists:
      return !EvalRelPath(doc, node, pred.rel_path).empty();
    case Predicate::Kind::kEquals: {
      for (NodeId n : EvalRelPath(doc, node, pred.rel_path)) {
        if (StringValue(doc, n) == pred.value) return true;
      }
      return false;
    }
    case Predicate::Kind::kNotEquals: {
      // XPath general-comparison semantics: true if *some* selected
      // node's string value differs.
      for (NodeId n : EvalRelPath(doc, node, pred.rel_path)) {
        if (StringValue(doc, n) != pred.value) return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

Result<std::vector<NodeId>> EvaluatePath(const Document& doc,
                                         const PathExpr& path) {
  if (doc.root() == xml::kInvalidNode) {
    return Status::InvalidArgument("document has no root");
  }
  // The initial context is the (virtual) document node; its only child
  // is the root element. "//x" additionally matches the root itself.
  std::vector<NodeId> current;
  bool first = true;
  for (const Step& step : path.steps) {
    std::vector<NodeId> next;
    std::set<NodeId> seen;
    auto add_filtered = [&](const std::vector<NodeId>& candidates) {
      // Predicates see positions within this context's candidate list.
      size_t count = candidates.size();
      for (size_t i = 0; i < candidates.size(); ++i) {
        NodeId node = candidates[i];
        bool keep = true;
        for (const Predicate& pred : step.predicates) {
          if (!PredicateHolds(doc, node, pred, i + 1, count)) {
            keep = false;
            break;
          }
        }
        if (keep && seen.insert(node).second) next.push_back(node);
      }
    };
    if (first) {
      std::vector<NodeId> candidates;
      if (!step.descendant) {
        if (MatchesTest(doc, doc.root(), step.test)) {
          candidates.push_back(doc.root());
        }
      } else {
        doc.Visit(doc.root(), [&](NodeId v) {
          if (MatchesTest(doc, v, step.test)) candidates.push_back(v);
          return true;
        });
      }
      add_filtered(candidates);
      first = false;
    } else {
      for (NodeId context : current) {
        add_filtered(StepCandidates(doc, context, step));
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  // Document order.
  std::sort(current.begin(), current.end(),
            [&](NodeId a, NodeId b) { return doc.Compare(a, b) < 0; });
  return current;
}

namespace {

// Materializes the expression's content sequence into `pul`'s forest and
// returns the (detached) parameter roots — fresh ids per call, so each
// target receives its own clone.
Result<std::vector<NodeId>> MaterializeContent(const UpdateExpr& expr,
                                               Pul* pul) {
  std::vector<NodeId> roots;
  if (!expr.content_xml.empty()) {
    // The content sequence may hold several sibling elements; wrap it so
    // the fragment parser sees a single root, then detach the children.
    std::string wrapped = "<xq-wrap>" + expr.content_xml + "</xq-wrap>";
    XUPDATE_ASSIGN_OR_RETURN(NodeId wrapper,
                             pul->AddFragment(wrapped));
    std::vector<NodeId> children = pul->forest().children(wrapper);
    for (NodeId c : children) {
      XUPDATE_RETURN_IF_ERROR(pul->forest().Detach(c));
      roots.push_back(c);
    }
    XUPDATE_RETURN_IF_ERROR(pul->forest().DeleteSubtree(wrapper));
  } else if (!expr.string_arg.empty() ||
             expr.verb == UpdateVerb::kReplaceNode) {
    roots.push_back(pul->NewTextParam(expr.string_arg));
  }
  return roots;
}

Status EmitOps(const UpdateExpr& expr, const ProducerContext& context,
               Pul* pul) {
  XUPDATE_ASSIGN_OR_RETURN(std::vector<NodeId> targets,
                           EvaluatePath(*context.doc, expr.path));
  if (targets.empty()) {
    // XQUF: an empty target sequence raises an error for single-node
    // verbs; we accept it as a no-op for 'nodes' forms. Be strict: the
    // caller asked to update something that is not there.
    return Status::NotFound("update path selected no nodes");
  }
  const Document& doc = *context.doc;
  for (NodeId target : targets) {
    UpdateOp op;
    op.target = target;
    if (const label::NodeLabel* lab = context.labeling->Find(target)) {
      op.target_label = *lab;
    } else {
      return Status::NotFound("target node has no label: " +
                              std::to_string(target));
    }
    switch (expr.verb) {
      case UpdateVerb::kInsertInto:
        op.kind = OpKind::kInsInto;
        break;
      case UpdateVerb::kInsertFirst:
        op.kind = OpKind::kInsFirst;
        break;
      case UpdateVerb::kInsertLast:
        op.kind = OpKind::kInsLast;
        break;
      case UpdateVerb::kInsertBefore:
        op.kind = OpKind::kInsBefore;
        break;
      case UpdateVerb::kInsertAfter:
        op.kind = OpKind::kInsAfter;
        break;
      case UpdateVerb::kInsertAttributes:
        op.kind = OpKind::kInsAttributes;
        for (const auto& [name, value] : expr.attributes) {
          op.param_trees.push_back(pul->NewAttributeParam(name, value));
        }
        break;
      case UpdateVerb::kDelete:
        op.kind = OpKind::kDelete;
        break;
      case UpdateVerb::kReplaceNode:
        op.kind = OpKind::kReplaceNode;
        if (doc.type(target) == NodeType::kAttribute) {
          return Status::NotApplicable(
              "replace node on attributes takes attribute content; use "
              "insert attributes + delete instead");
        }
        break;
      case UpdateVerb::kReplaceValue:
        // XQUF dispatch: elements get their content replaced (repC),
        // texts and attributes their value (repV).
        if (doc.type(target) == NodeType::kElement) {
          op.kind = OpKind::kReplaceChildren;
          if (!expr.string_arg.empty()) {
            op.param_trees.push_back(pul->NewTextParam(expr.string_arg));
          }
        } else {
          op.kind = OpKind::kReplaceValue;
          op.param_string = expr.string_arg;
        }
        break;
      case UpdateVerb::kRename:
        op.kind = OpKind::kRename;
        op.param_string = expr.string_arg;
        break;
    }
    bool takes_trees =
        expr.verb == UpdateVerb::kInsertInto ||
        expr.verb == UpdateVerb::kInsertFirst ||
        expr.verb == UpdateVerb::kInsertLast ||
        expr.verb == UpdateVerb::kInsertBefore ||
        expr.verb == UpdateVerb::kInsertAfter ||
        expr.verb == UpdateVerb::kReplaceNode;
    if (takes_trees) {
      XUPDATE_ASSIGN_OR_RETURN(op.param_trees,
                               MaterializeContent(expr, pul));
    }
    XUPDATE_RETURN_IF_ERROR(pul->AddOp(std::move(op)));
  }
  return Status::OK();
}

}  // namespace

Result<Pul> EvaluateUpdate(const UpdateScript& script,
                           const ProducerContext& context) {
  if (context.doc == nullptr || context.labeling == nullptr) {
    return Status::InvalidArgument("producer context incomplete");
  }
  Pul pul;
  pul.BindIdSpace(context.id_base != 0
                      ? context.id_base
                      : context.doc->max_assigned_id() + 1);
  pul.set_policies(context.policies);
  for (const UpdateExpr& expr : script.expressions) {
    XUPDATE_RETURN_IF_ERROR(EmitOps(expr, context, &pul));
  }
  // upd:mergeUpdates compatibility check over the combined list.
  XUPDATE_RETURN_IF_ERROR(pul.CheckCompatible());
  return pul;
}

Result<Pul> ProducePul(std::string_view update_text,
                       const ProducerContext& context) {
  XUPDATE_ASSIGN_OR_RETURN(UpdateScript script, ParseUpdate(update_text));
  return EvaluateUpdate(script, context);
}

}  // namespace xupdate::xquery
