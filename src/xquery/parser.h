#ifndef XUPDATE_XQUERY_PARSER_H_
#define XUPDATE_XQUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xquery/ast.h"

namespace xupdate::xquery {

// Parses an update script — the XQuery Update Facility subset this
// library's PUL producer evaluates. Grammar (keywords are lowercase):
//
//   script   := expr (',' expr)*
//   expr     := 'insert' ('node'|'nodes') content position path
//             | 'insert' ('attribute'|'attributes') (name '=' string)+
//                        'into' path
//             | 'delete' ('node'|'nodes') path
//             | 'replace' 'node' path 'with' content
//             | 'replace' 'value' 'of' 'node' path 'with' string
//             | 'rename' 'node' path 'as' (string|name)
//   position := 'into' | 'as' 'first' 'into' | 'as' 'last' 'into'
//             | 'before' | 'after'
//   content  := one or more XML element constructors | string (text node)
//   path     := ('/'|'//') step (('/'|'//') step)*
//   step     := (name | '*' | '@' name | '@' '*' | 'text()') pred*
//   pred     := '[' integer ']' | '[' 'last()' ']'
//             | '[' relpath ']' | '[' relpath ('='|'!=') string ']'
//   relpath  := pathpiece ('/' pathpiece)*   (child steps, @/text() last)
//
// "replace value of node" maps to repV on text/attribute targets and to
// repC (replace element content) on element targets, mirroring XQUF.
Result<UpdateScript> ParseUpdate(std::string_view input);

// Parses a standalone absolute path (for read-only queries in examples
// and tests).
Result<PathExpr> ParsePath(std::string_view input);

}  // namespace xupdate::xquery

#endif  // XUPDATE_XQUERY_PARSER_H_
