#ifndef XUPDATE_XQUERY_LEXER_H_
#define XUPDATE_XQUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xupdate::xquery {

enum class TokenKind {
  kName,        // identifier / keyword (case-sensitive keywords)
  kString,      // 'sq' or "dq" quoted
  kInteger,
  kSlash,       // /
  kDoubleSlash, // //
  kAt,          // @
  kStar,        // *
  kLBracket,    // [
  kRBracket,    // ]
  kEquals,      // =
  kNotEquals,   // !=
  kComma,       // ,
  kTextTest,    // text()
  kLastTest,    // last()
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // name / string contents
  int64_t number = 0; // integer value
};

// Hand-rolled tokenizer for the update-expression language. XML content
// literals are not tokenized here: the parser calls ScanXmlContent()
// when the grammar expects content and the next character is '<'.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  // Current token (scans lazily).
  Result<Token> Peek();
  // Consumes and returns the current token.
  Result<Token> Next();
  // True and consumes if the current token is a name equal to `keyword`.
  bool ConsumeKeyword(std::string_view keyword);
  // True and consumes if the current token has `kind`.
  bool ConsumeKind(TokenKind kind);

  // Scans a balanced run of XML element constructors (one or more
  // sibling elements) starting at the next non-space character, which
  // must be '<'. Returns the raw XML text.
  Result<std::string> ScanXmlContent();

  // True if the next non-space character begins an XML constructor.
  bool AtXmlContent();

  Status ErrorHere(std::string message) const;

 private:
  Status Scan();
  void SkipWhitespace();

  std::string_view input_;
  size_t pos_ = 0;
  bool has_token_ = false;
  Token current_;
  size_t token_start_ = 0;
};

}  // namespace xupdate::xquery

#endif  // XUPDATE_XQUERY_LEXER_H_
