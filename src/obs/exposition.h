#ifndef XUPDATE_OBS_EXPOSITION_H_
#define XUPDATE_OBS_EXPOSITION_H_

#include <string>
#include <string_view>

#include "common/metrics.h"

namespace xupdate::obs {

// Prometheus text-exposition rendering of a metrics snapshot.
//
// Grammar (documented in DESIGN.md "Serving-layer observability"):
//  - a registry name maps to family "xupdate_" + name with every
//    '.', '/' and '-' folded to '_';
//  - names of the form "tenant/<t>/<rest>" instead map to the family of
//    <rest> with a {tenant="<t>"} label, so per-tenant series share one
//    family and one # TYPE line;
//  - counters and gauges render as single samples, timers as summaries
//    (quantile="0.5|0.95|0.99" samples plus _sum and _count).
// Registration-time name validation (IsValidMetricName) guarantees the
// rendered family names never need escaping; tenant label values are
// quote/backslash-escaped anyway, per the exposition spec.
//
// Output is byte-deterministic for a given snapshot: families sorted,
// tenant-less sample first, then tenant samples sorted; seconds use the
// fixed %.9f format shared with the JSON dump.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

// Splits "tenant/<t>/<rest>" metric names: true iff `name` is
// tenant-scoped, with the tenant and remainder returned through the
// out-params. Shared by the exposition renderer and the versioned stat
// payload builder.
bool SplitTenantMetric(std::string_view name, std::string_view* tenant,
                       std::string_view* rest);

}  // namespace xupdate::obs

#endif  // XUPDATE_OBS_EXPOSITION_H_
