#include "obs/sinks.h"

#include <cstdio>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace xupdate::obs {

namespace {

void AppendQuoted(std::string* out, std::string_view text) {
  *out += '"';
  *out += JsonEscape(text);
  *out += '"';
}

}  // namespace

std::string EventToJournalLine(const TraceEvent& event) {
  std::string line = "{\"phase\":";
  line += std::to_string(event.phase);
  line += ",\"lane\":";
  line += std::to_string(event.lane);
  line += ",\"seq\":";
  line += std::to_string(event.seq);
  line += ",\"kind\":";
  AppendQuoted(&line, EventKindName(event.kind));
  line += ",\"scope\":";
  AppendQuoted(&line, event.scope);
  line += ",\"name\":";
  AppendQuoted(&line, event.name);
  line += ",\"ops\":[";
  for (size_t i = 0; i < event.ops.size(); ++i) {
    if (i > 0) line += ',';
    AppendQuoted(&line, event.ops[i]);
  }
  line += "],\"result\":";
  AppendQuoted(&line, event.result);
  line += ",\"detail\":";
  AppendQuoted(&line, event.detail);
  line += '}';
  return line;
}

std::string ToJournalJsonl(const Tracer& tracer) {
  std::string out;
  for (const TraceEvent& event : tracer.SortedEvents()) {
    out += EventToJournalLine(event);
    out += '\n';
  }
  return out;
}

std::string ToChromeTrace(const Tracer& tracer) {
  std::vector<TraceEvent> events = tracer.SortedEvents();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& piece) {
    if (!first) out += ',';
    first = false;
    out += piece;
  };
  // Thread-name metadata, one track per lane.
  std::set<uint32_t> lanes;
  for (const TraceEvent& e : events) lanes.insert(e.lane);
  for (uint32_t lane : lanes) {
    std::string name =
        lane == 0 ? std::string("main")
                  : "shard-" + std::to_string(lane - 1);
    std::string piece =
        "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(lane) +
        ",\"name\":\"thread_name\",\"args\":{\"name\":";
    AppendQuoted(&piece, name);
    piece += "}}";
    emit(piece);
  }
  for (const TraceEvent& e : events) {
    char ts[32];
    snprintf(ts, sizeof(ts), "%.3f", e.t_us);
    std::string piece = "{\"ph\":\"";
    if (e.kind == EventKind::kSpanBegin) {
      piece += 'B';
    } else if (e.kind == EventKind::kSpanEnd) {
      piece += 'E';
    } else {
      piece += 'i';
    }
    piece += "\",\"pid\":1,\"tid\":";
    piece += std::to_string(e.lane);
    piece += ",\"ts\":";
    piece += ts;
    piece += ",\"cat\":";
    AppendQuoted(&piece, e.scope);
    piece += ",\"name\":";
    std::string display(EventKindName(e.kind));
    if (e.kind == EventKind::kSpanBegin || e.kind == EventKind::kSpanEnd) {
      display = e.name;
    } else if (!e.name.empty()) {
      display += ":" + e.name;
    }
    AppendQuoted(&piece, display);
    if (e.kind != EventKind::kSpanBegin && e.kind != EventKind::kSpanEnd) {
      piece += ",\"s\":\"t\"";
    }
    piece += ",\"args\":{\"ops\":[";
    for (size_t i = 0; i < e.ops.size(); ++i) {
      if (i > 0) piece += ',';
      AppendQuoted(&piece, e.ops[i]);
    }
    piece += "],\"result\":";
    AppendQuoted(&piece, e.result);
    piece += ",\"detail\":";
    AppendQuoted(&piece, e.detail);
    piece += "}}";
    emit(piece);
  }
  out += "]}";
  return out;
}

}  // namespace xupdate::obs
