#include "obs/explain.h"

#include <map>
#include <utility>

namespace xupdate::obs {

namespace {

// Minimal parser for one journal line: a flat JSON object whose values
// are unsigned numbers, strings, or arrays of strings — exactly what
// ToJournalJsonl emits. Key order is not assumed; unknown keys are
// skipped so journals stay forward-compatible.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  Status Parse(TraceEvent* out) {
    SkipWs();
    if (!Consume('{')) return Error("expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) break;
      if (!first && !Consume(',')) return Error("expected ','");
      first = false;
      SkipWs();
      XUPDATE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      if (key == "phase" || key == "lane" || key == "seq") {
        XUPDATE_ASSIGN_OR_RETURN(uint64_t value, ParseUnsigned());
        if (key == "phase") out->phase = static_cast<uint32_t>(value);
        if (key == "lane") out->lane = static_cast<uint32_t>(value);
        if (key == "seq") out->seq = value;
      } else if (key == "kind") {
        XUPDATE_ASSIGN_OR_RETURN(std::string value, ParseString());
        if (!EventKindFromName(value, &out->kind)) {
          return Error("unknown event kind \"" + value + "\"");
        }
      } else if (key == "scope") {
        XUPDATE_ASSIGN_OR_RETURN(out->scope, ParseString());
      } else if (key == "name") {
        XUPDATE_ASSIGN_OR_RETURN(out->name, ParseString());
      } else if (key == "result") {
        XUPDATE_ASSIGN_OR_RETURN(out->result, ParseString());
      } else if (key == "detail") {
        XUPDATE_ASSIGN_OR_RETURN(out->detail, ParseString());
      } else if (key == "ops") {
        XUPDATE_ASSIGN_OR_RETURN(out->ops, ParseStringArray());
      } else {
        XUPDATE_RETURN_IF_ERROR(SkipValue());
      }
    }
    SkipWs();
    if (i_ != s_.size()) return Error("trailing bytes after object");
    return Status::OK();
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("journal line byte " +
                                   std::to_string(i_) + ": " + message);
  }

  void SkipWs() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
  }

  bool Consume(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  Result<uint64_t> ParseUnsigned() {
    size_t begin = i_;
    uint64_t value = 0;
    while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') {
      value = value * 10 + static_cast<uint64_t>(s_[i_] - '0');
      ++i_;
    }
    if (i_ == begin) return Error("expected number");
    return value;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (i_ < s_.size()) {
      char c = s_[i_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) return Error("dangling escape");
      char e = s_[i_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (i_ + 4 > s_.size()) return Error("short \\u escape");
          uint32_t cp = 0;
          for (int k = 0; k < 4; ++k) {
            char h = s_[i_++];
            uint32_t digit;
            if (h >= '0' && h <= '9') {
              digit = static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              digit = static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              digit = static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
            cp = cp * 16 + digit;
          }
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<std::vector<std::string>> ParseStringArray() {
    if (!Consume('[')) return Error("expected '['");
    std::vector<std::string> out;
    SkipWs();
    if (Consume(']')) return out;
    while (true) {
      SkipWs();
      XUPDATE_ASSIGN_OR_RETURN(std::string item, ParseString());
      out.push_back(std::move(item));
      SkipWs();
      if (Consume(']')) return out;
      if (!Consume(',')) return Error("expected ',' in array");
    }
  }

  // Skips one unknown value (string, number, or string array).
  Status SkipValue() {
    SkipWs();
    if (i_ >= s_.size()) return Error("missing value");
    if (s_[i_] == '"') return ParseString().status();
    if (s_[i_] == '[') return ParseStringArray().status();
    return ParseUnsigned().status();
  }

  std::string_view s_;
  size_t i_ = 0;
};

// Output-slot ids name positions in the produced PUL, not input
// operations; they never get their own chain.
bool IsOutputId(std::string_view id) {
  return id.rfind("out#", 0) == 0 || id.rfind("merged#", 0) == 0 ||
         id.rfind("gen#", 0) == 0;
}

std::string JoinIds(const std::vector<std::string>& ids,
                    std::string_view skip = {}) {
  std::string out;
  for (const std::string& id : ids) {
    if (!skip.empty() && id == skip) continue;
    if (!out.empty()) out += ", ";
    out += id;
  }
  return out;
}

class ReportBuilder {
 public:
  explicit ReportBuilder(const std::vector<TraceEvent>& events)
      : events_(events) {}

  ExplainReport Build() {
    for (const TraceEvent& e : events_) {
      NoteScope(e.scope);
      if (e.kind == EventKind::kShardAssigned ||
          (e.kind == EventKind::kNote && e.name == "input")) {
        for (const std::string& id : e.ops) Chain(id);
      }
      if (!e.result.empty() && !IsOutputId(e.result)) Chain(e.result);
    }
    for (const TraceEvent& e : events_) Fold(e);
    return std::move(report_);
  }

 private:
  void NoteScope(const std::string& scope) {
    if (scope.empty()) return;
    for (const std::string& s : report_.scopes) {
      if (s == scope) return;
    }
    report_.scopes.push_back(scope);
  }

  ProvenanceChain* Chain(const std::string& id) {
    auto [it, inserted] = index_.emplace(id, report_.chains.size());
    if (inserted) {
      report_.chains.emplace_back();
      report_.chains.back().id = id;
    }
    return &report_.chains[it->second];
  }

  ProvenanceChain* Lookup(const std::string& id) {
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : &report_.chains[it->second];
  }

  void AddStep(const std::string& id, std::string step) {
    ProvenanceChain* chain = Lookup(id);
    if (chain != nullptr) chain->steps.push_back(std::move(step));
  }

  void Fold(const TraceEvent& e) {
    switch (e.kind) {
      case EventKind::kSpanBegin:
      case EventKind::kSpanEnd:
        return;
      case EventKind::kShardAssigned: {
        std::string shard = std::to_string(e.lane == 0 ? 0 : e.lane - 1);
        for (const std::string& id : e.ops) {
          AddStep(id, "assigned to shard " + shard);
        }
        return;
      }
      case EventKind::kRuleFired: {
        std::string base = e.name + ": ";
        if (e.result.empty()) {
          // A pure kill: ops[0] overrides the rest.
          if (e.ops.size() >= 2) {
            AddStep(e.ops[0], base + "overrode " +
                                  JoinIds(e.ops, e.ops[0]) +
                                  Detail(e));
            for (size_t k = 1; k < e.ops.size(); ++k) {
              AddStep(e.ops[k],
                      base + "killed by " + e.ops[0] + Detail(e));
            }
          } else if (e.ops.size() == 1) {
            AddStep(e.ops[0], base + "applied" + Detail(e));
          }
          return;
        }
        std::string line =
            base + JoinIds(e.ops) + " -> " + e.result + Detail(e);
        for (const std::string& id : e.ops) {
          if (id == e.result) {
            AddStep(id, line);
          } else {
            AddStep(id, line + " (absorbed into " + e.result + ")");
          }
        }
        if (Lookup(e.result) != nullptr) {
          bool result_in_ops = false;
          for (const std::string& id : e.ops) {
            if (id == e.result) result_in_ops = true;
          }
          if (!result_in_ops) AddStep(e.result, line);
        }
        return;
      }
      case EventKind::kConflictDetected: {
        if (e.result.empty()) {
          for (const std::string& id : e.ops) {
            AddStep(id, e.name + " conflict with " + JoinIds(e.ops, id) +
                            Detail(e));
          }
          return;
        }
        AddStep(e.result,
                e.name + ": overrides " + JoinIds(e.ops) + Detail(e));
        for (const std::string& id : e.ops) {
          AddStep(id, e.name + ": overridden by " + e.result + Detail(e));
        }
        return;
      }
      case EventKind::kPolicyApplied: {
        for (const std::string& id : e.ops) {
          std::string line = "policy " + e.name;
          if (!e.result.empty()) {
            line += id == e.result ? " (kept)" : " -> " + e.result;
          }
          AddStep(id, line + Detail(e));
        }
        return;
      }
      case EventKind::kFastPathTaken: {
        std::string line = e.scope + ": " + e.name;
        if (!e.detail.empty()) line += " (" + e.detail + ")";
        report_.fast_paths.push_back(std::move(line));
        return;
      }
      case EventKind::kOpSurvived: {
        for (const std::string& id : e.ops) {
          ProvenanceChain* chain = Lookup(id);
          if (chain == nullptr) continue;
          chain->survived = true;
          chain->output_id = e.result;
          if (chain->op_kind.empty()) chain->op_kind = e.name;
          chain->steps.push_back("survived as " + e.result);
        }
        return;
      }
      case EventKind::kNote: {
        if (e.name == "input") return;  // inventory, not a decision
        for (const std::string& id : e.ops) {
          std::string line = e.name;
          if (!e.result.empty()) line += " -> " + e.result;
          AddStep(id, line + Detail(e));
        }
        return;
      }
    }
  }

  static std::string Detail(const TraceEvent& e) {
    return e.detail.empty() ? std::string() : " [" + e.detail + "]";
  }

  const std::vector<TraceEvent>& events_;
  ExplainReport report_;
  std::map<std::string, size_t> index_;
};

void RenderChain(const ProvenanceChain& chain, std::string* out) {
  *out += chain.id;
  if (!chain.op_kind.empty()) *out += " [" + chain.op_kind + "]";
  if (chain.survived) {
    *out += ": survived";
    if (!chain.output_id.empty()) *out += " -> " + chain.output_id;
  } else {
    *out += ": eliminated";
  }
  *out += '\n';
  if (chain.steps.empty()) {
    *out += "  - no decision touched this operation\n";
    return;
  }
  for (const std::string& step : chain.steps) {
    *out += "  - " + step + '\n';
  }
}

}  // namespace

Result<std::vector<TraceEvent>> ParseJournal(std::string_view jsonl) {
  std::vector<TraceEvent> events;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= jsonl.size()) {
    size_t eol = jsonl.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? jsonl.substr(pos)
                                : jsonl.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? jsonl.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;
    TraceEvent event;
    LineParser parser(line);
    Status status = parser.Parse(&event);
    if (!status.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + std::string(status.message()));
    }
    events.push_back(std::move(event));
  }
  return events;
}

Result<ExplainReport> BuildExplainReport(
    const std::vector<TraceEvent>& events) {
  ReportBuilder builder(events);
  return builder.Build();
}

std::string RenderChains(const ExplainReport& report,
                         std::string_view only_op) {
  std::string out;
  if (!only_op.empty()) {
    for (const ProvenanceChain& chain : report.chains) {
      if (chain.id == only_op) {
        RenderChain(chain, &out);
        return out;
      }
    }
    out += "unknown op id \"" + std::string(only_op) + "\"; known ids:";
    size_t listed = 0;
    for (const ProvenanceChain& chain : report.chains) {
      out += ' ' + chain.id;
      if (++listed == 25 && report.chains.size() > 25) {
        out += " ... (" + std::to_string(report.chains.size()) + " total)";
        break;
      }
    }
    out += '\n';
    return out;
  }
  for (const std::string& line : report.fast_paths) {
    out += "fast path: " + line + '\n';
  }
  for (const ProvenanceChain& chain : report.chains) {
    RenderChain(chain, &out);
  }
  return out;
}

}  // namespace xupdate::obs
