#include "obs/flight_recorder.h"

#include <algorithm>

#include "common/string_util.h"

namespace xupdate::obs {

std::string_view FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kAdmit: return "admit";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kBatchSeal: return "batch-seal";
    case FlightEventKind::kFsyncOk: return "fsync-ok";
    case FlightEventKind::kFsyncFail: return "fsync-fail";
    case FlightEventKind::kApply: return "apply";
    case FlightEventKind::kSchemaRoute: return "schema-route";
    case FlightEventKind::kSchemaFallback: return "schema-fallback";
    case FlightEventKind::kWalPoison: return "wal-poison";
    case FlightEventKind::kTenantOpen: return "tenant-open";
    case FlightEventKind::kShutdown: return "shutdown";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  ring_.resize(capacity_);
}

void FlightRecorder::Record(FlightEventKind kind, std::string_view tenant,
                            uint64_t request, uint64_t batch, uint64_t value,
                            std::string_view detail) {
  std::lock_guard<std::mutex> lock(mu_);
  Event& slot = ring_[next_seq_ % capacity_];
  slot.seq = next_seq_;
  slot.kind = kind;
  slot.tenant.assign(tenant);
  slot.request = request;
  slot.batch = batch;
  slot.value = value;
  slot.detail.assign(detail);
  ++next_seq_;
}

std::vector<FlightRecorder::Event> FlightRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  uint64_t retained = std::min<uint64_t>(next_seq_, capacity_);
  out.reserve(retained);
  for (uint64_t seq = next_seq_ - retained; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

std::string FlightRecorder::DumpJsonl() const {
  std::string out;
  for (const Event& e : Events()) {
    out += "{\"seq\":";
    out += std::to_string(e.seq);
    out += ",\"kind\":\"";
    out += FlightEventKindName(e.kind);
    out += "\",\"tenant\":\"";
    out += JsonEscape(e.tenant);
    out += "\",\"request\":";
    out += std::to_string(e.request);
    out += ",\"batch\":";
    out += std::to_string(e.batch);
    out += ",\"value\":";
    out += std::to_string(e.value);
    out += ",\"detail\":\"";
    out += JsonEscape(e.detail);
    out += "\"}\n";
  }
  return out;
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

}  // namespace xupdate::obs
