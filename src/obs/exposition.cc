#include "obs/exposition.h"

#include <cstdio>
#include <map>

namespace xupdate::obs {

namespace {

constexpr std::string_view kTenantPrefix = "tenant/";

std::string FamilyName(std::string_view name) {
  std::string family = "xupdate_";
  for (char c : name) {
    family += (c == '.' || c == '/' || c == '-') ? '_' : c;
  }
  return family;
}

// Exposition-format label value escaping: backslash, quote, newline.
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Labels(std::string_view tenant, std::string_view extra = {}) {
  if (tenant.empty() && extra.empty()) return "";
  std::string out = "{";
  if (!tenant.empty()) {
    out += "tenant=\"";
    out += EscapeLabelValue(tenant);
    out += '"';
    if (!extra.empty()) out += ',';
  }
  out += extra;
  out += '}';
  return out;
}

void AppendSeconds(std::string* out, double value) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.9f", value);
  *out += buf;
}

// family -> tenant ("" first) -> sample, preserving one # TYPE line per
// family however many tenants share it.
template <typename Sample>
using Families =
    std::map<std::string, std::map<std::string, Sample, std::less<>>,
             std::less<>>;

template <typename Map, typename Sample>
Families<Sample> GroupByFamily(const Map& metrics) {
  Families<Sample> families;
  for (const auto& [name, sample] : metrics) {
    std::string_view tenant, rest;
    if (SplitTenantMetric(name, &tenant, &rest)) {
      families[FamilyName(rest)].emplace(std::string(tenant), sample);
    } else {
      families[FamilyName(name)].emplace(std::string(), sample);
    }
  }
  return families;
}

}  // namespace

bool SplitTenantMetric(std::string_view name, std::string_view* tenant,
                       std::string_view* rest) {
  if (name.substr(0, kTenantPrefix.size()) != kTenantPrefix) return false;
  std::string_view tail = name.substr(kTenantPrefix.size());
  size_t slash = tail.find('/');
  if (slash == std::string_view::npos || slash == 0 ||
      slash + 1 >= tail.size()) {
    return false;
  }
  *tenant = tail.substr(0, slash);
  *rest = tail.substr(slash + 1);
  return true;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;

  for (const auto& [family, samples] :
       GroupByFamily<decltype(snapshot.counters), uint64_t>(
           snapshot.counters)) {
    out += "# TYPE " + family + " counter\n";
    for (const auto& [tenant, value] : samples) {
      out += family + Labels(tenant) + " " + std::to_string(value) + "\n";
    }
  }

  for (const auto& [family, samples] :
       GroupByFamily<decltype(snapshot.gauges), int64_t>(snapshot.gauges)) {
    out += "# TYPE " + family + " gauge\n";
    for (const auto& [tenant, value] : samples) {
      out += family + Labels(tenant) + " " + std::to_string(value) + "\n";
    }
  }

  for (const auto& [family, samples] :
       GroupByFamily<decltype(snapshot.timers), MetricsSnapshot::TimerState>(
           snapshot.timers)) {
    out += "# TYPE " + family + " summary\n";
    for (const auto& [tenant, t] : samples) {
      constexpr struct { double q; const char* label; } kQuantiles[] = {
          {0.50, "quantile=\"0.5\""},
          {0.95, "quantile=\"0.95\""},
          {0.99, "quantile=\"0.99\""}};
      for (const auto& [q, label] : kQuantiles) {
        out += family + Labels(tenant, label) + " ";
        AppendSeconds(&out, PercentileFromBuckets(t.buckets, t.count, q,
                                                  t.max));
        out += '\n';
      }
      out += family + "_sum" + Labels(tenant) + " ";
      AppendSeconds(&out, t.seconds);
      out += '\n';
      out += family + "_count" + Labels(tenant) + " " +
             std::to_string(t.count) + "\n";
    }
  }

  return out;
}

}  // namespace xupdate::obs
