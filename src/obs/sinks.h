#ifndef XUPDATE_OBS_SINKS_H_
#define XUPDATE_OBS_SINKS_H_

#include <string>

#include "obs/trace.h"

namespace xupdate::obs {

// The JSONL event journal: one JSON object per line, events in
// (phase, lane, seq) order, every line carrying the full fixed key set
//   {"phase":..,"lane":..,"seq":..,"kind":"..","scope":"..","name":"..",
//    "ops":[..],"result":"..","detail":".."}
// in that order. No timestamps and no platform-dependent formatting, so
// the journal is byte-identical across runs and parallelism levels for
// a deterministic workload. This is the input format of the `explain`
// layer (obs/explain.h).
[[nodiscard]] std::string ToJournalJsonl(const Tracer& tracer);

// Serializes one event as a journal line (no trailing newline). Exposed
// for tests that golden single events.
[[nodiscard]] std::string EventToJournalLine(const TraceEvent& event);

// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
// chrome://tracing and Perfetto. Spans become B/E duration events and
// everything else an instant event; each lane is rendered as its own
// thread track (tid = lane, with thread_name metadata "main" resp.
// "shard-<k>"), so the per-shard concurrency structure of the parallel
// engines is visible on the timeline. Timestamps are the wall-clock
// offsets captured at emission — this sink is *not* deterministic and
// exists for humans, not for diffing.
[[nodiscard]] std::string ToChromeTrace(const Tracer& tracer);

}  // namespace xupdate::obs

#endif  // XUPDATE_OBS_SINKS_H_
