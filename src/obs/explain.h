#ifndef XUPDATE_OBS_EXPLAIN_H_
#define XUPDATE_OBS_EXPLAIN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"

namespace xupdate::obs {

// Folds a JSONL event journal (obs/sinks.h) back into per-operation
// provenance: for every input operation, the chain of decisions that
// made it survive, merge, or disappear. Pure function of the journal
// bytes — no engine state needed — so `xupdate explain` works on
// journals produced anywhere.

// Parses the fixed-format journal emitted by ToJournalJsonl. Tolerates
// reordered keys and unknown extra keys; fails on lines that are not
// JSON objects or lack the sort key.
[[nodiscard]] Result<std::vector<TraceEvent>> ParseJournal(
    std::string_view jsonl);

// One input operation's story.
struct ProvenanceChain {
  std::string id;         // stable op id: "#12", "P0#3", "agg#4"
  std::string op_kind;    // op kind name when the journal recorded it
  bool survived = false;  // has an op-survived event
  std::string output_id;  // output slot ("out#3", "merged#7") if survived
  std::vector<std::string> steps;  // rendered decision lines, journal order
};

struct ExplainReport {
  // Operator scopes seen in the journal, first-seen order.
  std::vector<std::string> scopes;
  // Global fast-path lines ("static-independent", ...) if any engine
  // skipped its dynamic phase.
  std::vector<std::string> fast_paths;
  // One chain per known operation id, in id-first-seen (journal) order.
  std::vector<ProvenanceChain> chains;
};

// Builds the report: the operation universe comes from shard-assigned /
// input-inventory events plus every id an event produced; each chain
// collects the events that mention the id.
[[nodiscard]] Result<ExplainReport> BuildExplainReport(
    const std::vector<TraceEvent>& events);

// Renders chains as human-readable text. With a non-empty `only_op`,
// renders just that id's chain; unknown ids render an error line and
// list the known ids. One chain:
//   #4 [insLast]: eliminated
//     - I5: merged #1 + #4 -> #1 [insLast] (absorbed into #1)
[[nodiscard]] std::string RenderChains(const ExplainReport& report,
                                       std::string_view only_op = {});

}  // namespace xupdate::obs

#endif  // XUPDATE_OBS_EXPLAIN_H_
