#ifndef XUPDATE_OBS_FLIGHT_RECORDER_H_
#define XUPDATE_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xupdate::obs {

// What the serving layer was doing just now. Each kind reuses the same
// small event record; the `request`/`batch`/`value` fields carry the
// kind-specific payload (0 = not applicable):
//   kAdmit          request id       batch 0   value = queue depth after
//   kShed           request id       batch 0   value = queue depth; detail
//                                              "global" or "tenant-quota"
//   kBatchSeal      request 0        batch id  value = jobs in the batch
//   kFsyncOk /      request 0        batch id  value = commits coalesced
//   kFsyncFail                                 detail = error text (fail)
//   kApply          request 0        batch id  value = commits applied
//   kSchemaRoute /  request 0        batch id  value = jobs in the tenant
//   kSchemaFallback                            group routed / kept serial
//   kWalPoison      request 0        batch id  detail = poisoning status
//   kTenantOpen     request 0        batch 0   value = resident tenants
//   kShutdown       request 0        batch 0   value = events recorded
enum class FlightEventKind : uint8_t {
  kAdmit,
  kShed,
  kBatchSeal,
  kFsyncOk,
  kFsyncFail,
  kApply,
  kSchemaRoute,
  kSchemaFallback,
  kWalPoison,
  kTenantOpen,
  kShutdown,
};

// Stable wire name ("admit", "shed", "batch-seal", ...).
std::string_view FlightEventKindName(FlightEventKind kind);

// Fixed-capacity ring of recent server events — the post-mortem window
// that does not depend on tracing having been enabled. Thread-safe and
// cheap (one mutex, no allocation beyond the strings); dumped as
// deterministic JSONL on SIGUSR1, on WAL poisoning and at shutdown.
//
// The dump carries the monotonic per-recorder `seq` and no wall-clock
// timestamps, so for a deterministic single-threaded event sequence the
// dump is byte-identical across runs.
class FlightRecorder {
 public:
  struct Event {
    uint64_t seq = 0;
    FlightEventKind kind = FlightEventKind::kAdmit;
    std::string tenant;  // empty when not tenant-scoped
    uint64_t request = 0;
    uint64_t batch = 0;
    uint64_t value = 0;
    std::string detail;
  };

  explicit FlightRecorder(size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(FlightEventKind kind, std::string_view tenant,
              uint64_t request = 0, uint64_t batch = 0, uint64_t value = 0,
              std::string_view detail = {});

  // The retained window in seq order (oldest first).
  std::vector<Event> Events() const;

  // One JSON object per retained event, seq order, fixed key order
  //   {"seq":..,"kind":"..","tenant":"..","request":..,"batch":..,
  //    "value":..,"detail":".."}
  // (tenant/detail JSON-escaped; everything else needs no escaping).
  std::string DumpJsonl() const;

  // Lifetime totals (events recorded, including overwritten ones).
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 0;
  std::vector<Event> ring_;  // slot = seq % capacity_
};

}  // namespace xupdate::obs

#endif  // XUPDATE_OBS_FLIGHT_RECORDER_H_
