#ifndef XUPDATE_OBS_TRACE_H_
#define XUPDATE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xupdate::obs {

// Decision-provenance tracing for the reasoning engines.
//
// The engines emit typed events (which Figure 2 rule fired on which
// operation pair, which conflict class was detected, which policy
// resolved it, which shard an operation was assigned to) into a Tracer.
// Everything is keyed on *stable operation identities* — PUL listing
// ranks ("#12"), per-PUL refs ("P0#3"), aggregate slots ("agg#4") —
// never on pointers or node ids of transient copies.
//
// Determinism discipline (mirrors the PR-1 parallel engine contract):
// every event carries a (phase, lane, seq) sort key. `phase` is a
// monotonic ordinal handed out by Tracer::NextPhase() on the
// coordinating thread; `lane` is 0 for the coordinator and 1+shard
// index for shard workers; `seq` counts emissions per TraceLane handle.
// Exactly one live TraceLane exists per (phase, lane), so the key is a
// total order and sorting on flush yields the same event sequence for
// every parallelism level and every run of the same input. Wall-clock
// timestamps are captured too, but they are confined to the Chrome
// trace sink; the JSONL journal never contains them.
//
// Cost discipline: a disabled tracer is a null pointer. Every emission
// site guards with `if (lane.enabled())` (or holds a null TraceLane),
// so the disabled path costs one branch — enforced by
// bench/trace_overhead_check.

enum class EventKind : uint8_t {
  kSpanBegin,         // nestable phase/region start (name = span name)
  kSpanEnd,           // matching region end
  kShardAssigned,     // ops = operation ids placed into shard `lane`
  kRuleFired,         // name = Figure 2 rule; ops = inputs; result = merged id
  kConflictDetected,  // name = conflict class; ops = members; result = overrider
  kPolicyApplied,     // name = resolution; ops = members; result = kept id
  kFastPathTaken,     // name = which static-analysis skip engaged
  kOpSurvived,        // name = op kind; ops = [input id]; result = output id
  kNote,              // free-form bookkeeping (input inventories etc.)
};

// Stable wire names ("rule-fired", ...) used by the sinks and `explain`.
std::string_view EventKindName(EventKind kind);
// Inverse of EventKindName; false if `name` is not a known kind.
bool EventKindFromName(std::string_view name, EventKind* out);

struct TraceEvent {
  // Deterministic sort key; see the file comment.
  uint32_t phase = 0;
  uint32_t lane = 0;
  uint64_t seq = 0;
  EventKind kind = EventKind::kNote;
  std::string scope;              // operator: "reduce", "integrate", ...
  std::string name;               // rule / conflict / policy / span name
  std::vector<std::string> ops;   // stable operation ids involved
  std::string result;             // produced/kept operation id, or ""
  std::string detail;             // free-form human context
  // Microseconds since tracer creation. Chrome sink only — excluded
  // from the JSONL journal to keep it byte-deterministic.
  double t_us = 0.0;
};

class Tracer;

// Emission handle for one (phase, lane) pair. Create exactly one per
// pair and do not share it between concurrently running threads: the
// seq counter is deliberately unsynchronized (hand-off from the
// coordinator to a pool worker is fine — the pool's task queue provides
// the happens-before edge). A default-constructed lane is disabled and
// swallows emissions, so engine code can hold lanes unconditionally.
class TraceLane {
 public:
  TraceLane() = default;
  TraceLane(Tracer* tracer, uint32_t phase, uint32_t lane,
            std::string_view scope)
      : tracer_(tracer), phase_(phase), lane_(lane), scope_(scope) {}

  bool enabled() const { return tracer_ != nullptr; }

  void Emit(EventKind kind, std::string_view name,
            std::vector<std::string> ops = {}, std::string result = {},
            std::string detail = {});

 private:
  Tracer* tracer_ = nullptr;
  uint32_t phase_ = 0;
  uint32_t lane_ = 0;
  uint64_t seq_ = 0;
  std::string scope_;
};

// Collects events from one engine invocation (or a CLI command's worth
// of invocations). Thread-safe appends; flush through the sinks in
// obs/sinks.h.
class Tracer {
 public:
  Tracer() : created_(std::chrono::steady_clock::now()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Allocates the next phase ordinal. Call on the coordinating thread
  // only, in a parallelism-independent order.
  uint32_t NextPhase();

  // Builds the emission handle for (phase, lane). `scope` names the
  // operator and is stamped on every event the lane emits.
  TraceLane Lane(uint32_t phase, uint32_t lane, std::string_view scope) {
    return TraceLane(this, phase, lane, scope);
  }

  // Thread-safe; stamps the wall-clock offset. Engine code goes through
  // TraceLane::Emit instead.
  void Append(TraceEvent event);

  // All events sorted by (phase, lane, seq) — the deterministic journal
  // order.
  std::vector<TraceEvent> SortedEvents() const;

  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  uint32_t next_phase_ = 0;
  std::chrono::steady_clock::time_point created_;
};

// Emits span-begin on construction and span-end on destruction. Null or
// disabled lanes make it a no-op.
class TraceSpan {
 public:
  TraceSpan(TraceLane* lane, std::string_view name) : lane_(lane) {
    if (lane_ != nullptr && lane_->enabled()) {
      name_ = name;
      lane_->Emit(EventKind::kSpanBegin, name_);
    }
  }
  ~TraceSpan() {
    if (lane_ != nullptr && lane_->enabled() && !name_.empty()) {
      lane_->Emit(EventKind::kSpanEnd, name_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceLane* lane_;
  std::string name_;
};

}  // namespace xupdate::obs

#endif  // XUPDATE_OBS_TRACE_H_
