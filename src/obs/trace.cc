#include "obs/trace.h"

#include <algorithm>

namespace xupdate::obs {

namespace {

struct KindName {
  EventKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kSpanBegin, "span-begin"},
    {EventKind::kSpanEnd, "span-end"},
    {EventKind::kShardAssigned, "shard-assigned"},
    {EventKind::kRuleFired, "rule-fired"},
    {EventKind::kConflictDetected, "conflict-detected"},
    {EventKind::kPolicyApplied, "policy-applied"},
    {EventKind::kFastPathTaken, "fast-path-taken"},
    {EventKind::kOpSurvived, "op-survived"},
    {EventKind::kNote, "note"},
};

}  // namespace

std::string_view EventKindName(EventKind kind) {
  for (const KindName& k : kKindNames) {
    if (k.kind == kind) return k.name;
  }
  return "note";
}

bool EventKindFromName(std::string_view name, EventKind* out) {
  for (const KindName& k : kKindNames) {
    if (k.name == name) {
      *out = k.kind;
      return true;
    }
  }
  return false;
}

void TraceLane::Emit(EventKind kind, std::string_view name,
                     std::vector<std::string> ops, std::string result,
                     std::string detail) {
  if (tracer_ == nullptr) return;
  TraceEvent event;
  event.phase = phase_;
  event.lane = lane_;
  event.seq = seq_++;
  event.kind = kind;
  event.scope = scope_;
  event.name = name;
  event.ops = std::move(ops);
  event.result = std::move(result);
  event.detail = std::move(detail);
  tracer_->Append(std::move(event));
}

uint32_t Tracer::NextPhase() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_phase_++;
}

void Tracer::Append(TraceEvent event) {
  std::chrono::duration<double, std::micro> offset =
      std::chrono::steady_clock::now() - created_;
  std::lock_guard<std::mutex> lock(mu_);
  event.t_us = offset.count();
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::SortedEvents() const {
  std::vector<TraceEvent> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = events_;
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.phase != b.phase) return a.phase < b.phase;
              if (a.lane != b.lane) return a.lane < b.lane;
              return a.seq < b.seq;
            });
  return sorted;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

}  // namespace xupdate::obs
