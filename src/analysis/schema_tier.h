#ifndef XUPDATE_ANALYSIS_SCHEMA_TIER_H_
#define XUPDATE_ANALYSIS_SCHEMA_TIER_H_

#include "analysis/diagnostic.h"
#include "analysis/independence.h"
#include "pul/pul.h"
#include "schema/schema.h"
#include "schema/summary.h"

namespace xupdate::analysis {

// Schema lint: the XU008-XU010 findings derivable only with a schema in
// hand. Like LintPul, it candidate-types every target through its
// (level, node type) label — a PUL never names its targets — so a
// finding fires only when *no* candidate typing admits the op's result.
// Returns findings sorted by (op_index, code); callers merge with
// LintPul's report.
[[nodiscard]] DiagnosticReport LintPulWithSchema(const schema::Schema& schema,
                                                 const pul::Pul& pul);

// Outcome of the tiered pairwise analysis: when the type-level tier
// proves the pair independent, `report` is synthesized (verdict
// kIndependent, reason "disjoint" — byte-identical to what the exact
// analyzer returns for an independent fully-labeled pair) and
// `resolved_at_tier0` is true; otherwise the exact O(n log n) sweep
// runs and fills `report`.
struct TieredIndependence {
  bool resolved_at_tier0 = false;
  IndependenceReport report;
};

// Tier-0 short-circuit in front of AnalyzeIndependence. Summaries are
// passed in (not recomputed) so an N-PUL caller infers each once and
// amortizes it over N-1 pairs.
[[nodiscard]] TieredIndependence AnalyzeIndependenceTiered(
    const schema::TypeSummary& summary_a, const schema::TypeSummary& summary_b,
    const pul::Pul& a, const pul::Pul& b);

}  // namespace xupdate::analysis

#endif  // XUPDATE_ANALYSIS_SCHEMA_TIER_H_
