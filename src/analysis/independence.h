#ifndef XUPDATE_ANALYSIS_INDEPENDENCE_H_
#define XUPDATE_ANALYSIS_INDEPENDENCE_H_

#include <string>
#include <string_view>

#include "pul/pul.h"

namespace xupdate::analysis {

// Verdict of the static pairwise conflict analysis (§3.2 conflict
// classes, decided from labels and operation structure alone).
enum class IndependenceVerdict : int {
  // No conflict rule of Algorithm 1 can relate any op of A to any op of
  // B: the target-id sets per conflict class are disjoint and no
  // overriding subtree of one PUL contains a target of the other. Sound:
  // dynamic Integrate({A, B}) is guaranteed to report zero conflicts.
  kIndependent = 0,
  // Some structural relation exists (shared target, subtree containment)
  // or an op lacks its label, but no conflict is provable.
  kMayConflict = 1,
  // A concrete conflicting pair was found; dynamic Integrate({A, B}) is
  // guaranteed to report at least one conflict.
  kMustConflict = 2,
};

std::string_view IndependenceVerdictName(IndependenceVerdict verdict);

// Outcome plus one witnessing op pair (listing indices into A resp. B)
// for non-independent verdicts; `reason` is a stable machine-matchable
// tag ("shared-target", "subtree-containment", "missing-label",
// "repeated-modification", "insertion-order", "repeated-attribute",
// "local-override", "non-local-override").
struct IndependenceReport {
  IndependenceVerdict verdict = IndependenceVerdict::kIndependent;
  int op_a = -1;
  int op_b = -1;
  std::string reason;
};

// Classifies the pair (A, B) by subtree containment of the two label
// sets per conflict class. The check mirrors Algorithm 1's five rules on
// each structurally related cross-PUL op pair:
//   - same target: repeated modification (type 1), insertion order
//     (type 3), repeated attribute insertion (type 2, parameter names
//     compared through the PULs' forests), local override (type 4);
//   - target of one inside a del/repN/repC subtree of the other:
//     non-local override (type 5).
// kIndependent is sound (never returned when the dynamic detector would
// find a conflict) and kMustConflict is exact for fully labeled PULs;
// any op without a valid target label collapses the verdict to
// kMayConflict.
[[nodiscard]] IndependenceReport AnalyzeIndependence(const pul::Pul& a,
                                                     const pul::Pul& b);

}  // namespace xupdate::analysis

#endif  // XUPDATE_ANALYSIS_INDEPENDENCE_H_
