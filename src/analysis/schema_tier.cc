#include "analysis/schema_tier.h"

#include <algorithm>
#include <string>

#include "label/node_label.h"
#include "pul/update_op.h"

namespace xupdate::analysis {

namespace {

using label::NodeLabel;
using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using schema::Schema;
using schema::TypeSet;
using xml::NodeType;

void Emit(DiagnosticReport* report, const char* code, int op_index,
          std::string message) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = code;
  d.op_index = op_index;
  d.related_op = -1;
  d.message = std::move(message);
  report->push_back(std::move(d));
}

std::string OpDescription(const UpdateOp& op, int index) {
  std::string s = "op ";
  s += std::to_string(index);
  s += " (";
  s += pul::OpKindName(op.kind);
  s += " on node ";
  s += std::to_string(op.target);
  s += ")";
  return s;
}

// Candidate element types of the node that will *contain* the op's
// inserted trees: the target itself for child/into insertions and repC,
// the target's parent for sibling insertions and repN. Returns false
// when no candidate level exists (unlabeled target, sibling insert at
// the root) — the schema lint then abstains for this op.
bool ParentCandidates(const Schema& schema, const UpdateOp& op,
                      const TypeSet** candidates) {
  const NodeLabel& target = op.target_label;
  if (!target.valid() || target.type != NodeType::kElement) return false;
  uint32_t level = target.level;
  switch (op.kind) {
    case OpKind::kInsFirst:
    case OpKind::kInsLast:
    case OpKind::kInsInto:
    case OpKind::kReplaceChildren:
      break;
    case OpKind::kInsBefore:
    case OpKind::kInsAfter:
    case OpKind::kReplaceNode:
      if (level == 0) return false;
      level -= 1;
      break;
    default:
      return false;
  }
  *candidates = &schema.ElementTypesAtLevel(level);
  return !(*candidates)->Empty();
}

bool AnyCandidateAllowsAny(const Schema& schema, const TypeSet& candidates) {
  for (int t = 0; t < schema.num_types(); ++t) {
    if (candidates.Test(static_cast<size_t>(t)) && schema.AllowsAny(t)) {
      return true;
    }
  }
  return false;
}

// XU008: an inserted element (or text) no candidate parent type admits.
void LintInvalidInsertions(const Schema& schema, const Pul& pul,
                           DiagnosticReport* report) {
  const auto& ops = pul.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (!op.HasTreeParams() || op.kind == OpKind::kInsAttributes) continue;
    const TypeSet* candidates = nullptr;
    if (!ParentCandidates(schema, op, &candidates)) continue;
    for (xml::NodeId tree : op.param_trees) {
      if (!pul.forest().Exists(tree)) continue;
      NodeType kind = pul.forest().type(tree);
      if (kind == NodeType::kElement) {
        std::string_view name = pul.forest().name(tree);
        bool admitted = false;
        for (int t = 0; t < schema.num_types() && !admitted; ++t) {
          admitted = candidates->Test(static_cast<size_t>(t)) &&
                     schema.AllowsChildName(t, name);
        }
        if (!admitted) {
          Emit(report, kCodeSchemaInvalidInsertion, static_cast<int>(i),
               OpDescription(op, static_cast<int>(i)) + " inserts <" +
                   std::string(name) +
                   ">, admitted by no candidate parent type's content "
                   "model");
        }
      } else if (kind == NodeType::kText) {
        bool admitted = AnyCandidateAllowsAny(schema, *candidates);
        for (int t = 0; t < schema.num_types() && !admitted; ++t) {
          admitted = candidates->Test(static_cast<size_t>(t)) &&
                     schema.AllowsText(t);
        }
        if (!admitted) {
          Emit(report, kCodeSchemaInvalidInsertion, static_cast<int>(i),
               OpDescription(op, static_cast<int>(i)) +
                   " inserts a text node, but no candidate parent type "
                   "has mixed content");
        }
      }
    }
  }
}

// XU009: del (or repN with no replacement, which behaves like del) of
// an element every candidate typing makes a required child.
void LintRequiredChildDeletion(const Schema& schema, const Pul& pul,
                               DiagnosticReport* report) {
  const auto& ops = pul.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    bool effective_delete =
        op.kind == OpKind::kDelete ||
        (op.kind == OpKind::kReplaceNode && op.param_trees.empty());
    if (!effective_delete) continue;
    const NodeLabel& target = op.target_label;
    if (!target.valid() || target.type != NodeType::kElement ||
        target.level == 0) {
      continue;
    }
    const TypeSet& child_cands = schema.ElementTypesAtLevel(target.level);
    const TypeSet& parent_cands =
        schema.ElementTypesAtLevel(target.level - 1);
    if (AnyCandidateAllowsAny(schema, parent_cands)) continue;
    bool any_typing = false;
    bool all_required = true;
    for (int p = 0; p < schema.num_types() && all_required; ++p) {
      if (!parent_cands.Test(static_cast<size_t>(p))) continue;
      for (int c = 0; c < schema.num_types(); ++c) {
        if (!child_cands.Test(static_cast<size_t>(c))) continue;
        if (!schema.AllowsChild(p, c)) continue;
        any_typing = true;
        if (!schema.IsRequiredChild(p, c)) {
          all_required = false;
          break;
        }
      }
    }
    if (any_typing && all_required) {
      Emit(report, kCodeDeletesRequiredChild, static_cast<int>(i),
           OpDescription(op, static_cast<int>(i)) +
               " removes an element that is a required child under every "
               "candidate typing");
    }
  }
}

// XU010: insAttributes with a parameter name no candidate target type
// declares.
void LintUndeclaredAttributes(const Schema& schema, const Pul& pul,
                              DiagnosticReport* report) {
  const auto& ops = pul.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (op.kind != OpKind::kInsAttributes) continue;
    const NodeLabel& target = op.target_label;
    if (!target.valid() || target.type != NodeType::kElement) continue;
    const TypeSet& candidates = schema.ElementTypesAtLevel(target.level);
    if (candidates.Empty() || AnyCandidateAllowsAny(schema, candidates)) {
      continue;
    }
    for (xml::NodeId attr : op.param_trees) {
      if (!pul.forest().Exists(attr) ||
          pul.forest().type(attr) != NodeType::kAttribute) {
        continue;
      }
      std::string_view name = pul.forest().name(attr);
      bool declared = false;
      for (int t = 0; t < schema.num_types() && !declared; ++t) {
        declared = candidates.Test(static_cast<size_t>(t)) &&
                   schema.HasAttribute(t, name);
      }
      if (!declared) {
        Emit(report, kCodeUndeclaredAttribute, static_cast<int>(i),
             OpDescription(op, static_cast<int>(i)) + " inserts @" +
                 std::string(name) +
                 ", declared on no candidate target type");
      }
    }
  }
}

}  // namespace

DiagnosticReport LintPulWithSchema(const Schema& schema, const Pul& pul) {
  DiagnosticReport report;
  LintInvalidInsertions(schema, pul, &report);
  LintRequiredChildDeletion(schema, pul, &report);
  LintUndeclaredAttributes(schema, pul, &report);
  std::sort(report.begin(), report.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.op_index != b.op_index) return a.op_index < b.op_index;
              return a.code < b.code;
            });
  return report;
}

TieredIndependence AnalyzeIndependenceTiered(
    const schema::TypeSummary& summary_a,
    const schema::TypeSummary& summary_b, const Pul& a, const Pul& b) {
  TieredIndependence result;
  if (schema::DecideIndependence(summary_a, summary_b) ==
      schema::SchemaVerdict::kProvenIndependent) {
    result.resolved_at_tier0 = true;
    result.report.verdict = IndependenceVerdict::kIndependent;
    result.report.reason = "disjoint";
    return result;
  }
  result.report = AnalyzeIndependence(a, b);
  return result;
}

}  // namespace xupdate::analysis
