#include "analysis/independence.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "label/bitstring.h"
#include "label/node_label.h"
#include "pul/pul_view.h"
#include "pul/update_op.h"

namespace xupdate::analysis {

namespace {

using label::NodeLabel;
using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using xml::NodeId;
using xml::NodeType;

// repN with an empty replacement list behaves exactly like del
// (footnote 3 of the paper); Algorithm 1 treats it as del and so does
// the static mirror.
OpKind EffectiveKind(const UpdateOp& op) {
  if (op.kind == OpKind::kReplaceNode && op.param_trees.empty()) {
    return OpKind::kDelete;
  }
  return op.kind;
}

bool IsType1Kind(OpKind kind) {
  return kind == OpKind::kRename || kind == OpKind::kReplaceNode ||
         kind == OpKind::kReplaceChildren || kind == OpKind::kReplaceValue;
}

bool IsType3Kind(OpKind kind) {
  return kind == OpKind::kInsBefore || kind == OpKind::kInsAfter ||
         kind == OpKind::kInsFirst || kind == OpKind::kInsLast;
}

// Operations a same-target repN/del overrides (type-4 conflicts), as in
// integrate.cc.
bool IsLocallyOverridable(OpKind effective) {
  switch (effective) {
    case OpKind::kRename:
    case OpKind::kReplaceValue:
    case OpKind::kReplaceChildren:
    case OpKind::kInsFirst:
    case OpKind::kInsLast:
    case OpKind::kInsAttributes:
    case OpKind::kInsInto:
    case OpKind::kDelete:
      return true;
    default:
      return false;
  }
}

std::set<std::string_view> InsertedAttributeNames(const Pul& pul,
                                                  const UpdateOp& op) {
  std::set<std::string_view> names;
  for (NodeId r : op.param_trees) names.insert(pul.forest().name(r));
  return names;
}

// The type 1-4 rules on one cross-PUL op pair with a shared target.
// Returns the stable reason tag of the first rule that fires, nullptr if
// none can. Exact: with two PULs, Algorithm 1 reports a same-target
// conflict iff some cross-PUL pair passes one of these tests.
const char* SameTargetConflict(const Pul& pul_a, const UpdateOp& a,
                               const Pul& pul_b, const UpdateOp& b) {
  OpKind ea = EffectiveKind(a);
  OpKind eb = EffectiveKind(b);
  if (ea == eb && IsType1Kind(ea)) return "repeated-modification";
  if (ea == eb && IsType3Kind(ea)) return "insertion-order";
  if (ea == OpKind::kInsAttributes && eb == OpKind::kInsAttributes) {
    std::set<std::string_view> names_a = InsertedAttributeNames(pul_a, a);
    for (std::string_view name : InsertedAttributeNames(pul_b, b)) {
      if (names_a.count(name) != 0) return "repeated-attribute";
    }
  }
  auto local_override = [](OpKind overrider, OpKind other) {
    bool full =
        overrider == OpKind::kReplaceNode || overrider == OpKind::kDelete;
    if (full) {
      return IsLocallyOverridable(other) &&
             !(overrider == OpKind::kDelete && other == OpKind::kDelete);
    }
    if (overrider == OpKind::kReplaceChildren) {
      return other == OpKind::kInsFirst || other == OpKind::kInsInto ||
             other == OpKind::kInsLast;
    }
    return false;
  };
  if (local_override(ea, eb) || local_override(eb, ea)) {
    return "local-override";
  }
  return nullptr;
}

// The type-5 rule: `over` (an effective repN/del/repC) against an op of
// the other PUL whose target lies strictly inside its subtree.
bool NonLocalOverride(const UpdateOp& over, const UpdateOp& inner) {
  OpKind ok = EffectiveKind(over);
  bool full = ok == OpKind::kReplaceNode || ok == OpKind::kDelete;
  bool children_only = ok == OpKind::kReplaceChildren;
  if (!full && !children_only) return false;
  if (EffectiveKind(inner) == OpKind::kDelete) return false;
  if (children_only && inner.target_label.parent == over.target &&
      inner.target_label.type == NodeType::kAttribute) {
    return false;  // attributes of the repC target survive
  }
  return true;
}

// Labeled ops of one PUL sorted by document order of the targets, for
// the containment sweep. `key` caches the start code's order-preserving
// 64-bit prefix (label::BitString::PrefixKey64): the sort and the sweep
// compare keys first and fall back to the full code only on ties.
struct ByStart {
  uint64_t key;
  const UpdateOp* op;
  int index;
};

std::vector<ByStart> SortByStart(const Pul& pul) {
  std::vector<ByStart> out;
  const auto& ops = pul.ops();
  out.reserve(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    out.push_back({ops[i].target_label.start.PrefixKey64(), &ops[i],
                   static_cast<int>(i)});
  }
  std::sort(out.begin(), out.end(), [](const ByStart& x, const ByStart& y) {
    int c = label::BitString::CompareKeyed(x.key, x.op->target_label.start,
                                           y.key, y.op->target_label.start);
    if (c != 0) return c < 0;
    return x.index < y.index;
  });
  return out;
}

}  // namespace

std::string_view IndependenceVerdictName(IndependenceVerdict verdict) {
  switch (verdict) {
    case IndependenceVerdict::kIndependent:
      return "independent";
    case IndependenceVerdict::kMayConflict:
      return "may-conflict";
    case IndependenceVerdict::kMustConflict:
      return "must-conflict";
  }
  return "?";
}

IndependenceReport AnalyzeIndependence(const Pul& a, const Pul& b) {
  IndependenceReport report;

  // Without a label an op's structural position is unknown; nothing can
  // be ruled out (and Integrate would reject the PUL anyway).
  for (const Pul* pul : {&a, &b}) {
    const auto& ops = pul->ops();
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!ops[i].target_label.valid()) {
        report.verdict = IndependenceVerdict::kMayConflict;
        report.reason = "missing-label";
        (pul == &a ? report.op_a : report.op_b) = static_cast<int>(i);
        return report;
      }
    }
  }

  // Conflict classes 1-4 need a shared target node: a flat chained join
  // in place of the hash-of-vectors (chains keep listing order).
  pul::TargetIndex b_by_target;
  b_by_target.Reset(b.ops().size());
  for (size_t j = 0; j < b.ops().size(); ++j) {
    b_by_target.Append(b.ops()[j].target, static_cast<int32_t>(j));
  }
  for (size_t i = 0; i < a.ops().size(); ++i) {
    for (int32_t j = b_by_target.Head(a.ops()[i].target); j >= 0;
         j = b_by_target.Next(j)) {
      const char* reason = SameTargetConflict(
          a, a.ops()[i], b, b.ops()[static_cast<size_t>(j)]);
      if (reason != nullptr) {
        report.verdict = IndependenceVerdict::kMustConflict;
        report.op_a = static_cast<int>(i);
        report.op_b = j;
        report.reason = reason;
        return report;
      }
    }
  }

  // Conflict class 5 needs a target of one PUL strictly inside the
  // subtree of an overriding op of the other. Sweep each PUL's overrider
  // intervals over the other's targets in document order.
  std::vector<ByStart> a_sorted = SortByStart(a);
  std::vector<ByStart> b_sorted = SortByStart(b);
  auto scan_overriders = [](const std::vector<ByStart>& overs,
                            const std::vector<ByStart>& inners, int* over_out,
                            int* inner_out) {
    for (const ByStart& over : overs) {
      OpKind ok = EffectiveKind(*over.op);
      if (ok != OpKind::kReplaceNode && ok != OpKind::kDelete &&
          ok != OpKind::kReplaceChildren) {
        continue;
      }
      const NodeLabel& lab = over.op->target_label;
      const uint64_t end_key = lab.end.PrefixKey64();
      // First inner whose start lies after the overrider's start; walk
      // while still inside the [start, end] interval. The binary search
      // and the walk both run on the cached keys.
      auto first = std::upper_bound(
          inners.begin(), inners.end(), over,
          [](const ByStart& s, const ByStart& x) {
            return label::BitString::CompareKeyed(
                       s.key, s.op->target_label.start, x.key,
                       x.op->target_label.start) < 0;
          });
      for (auto it = first; it != inners.end(); ++it) {
        if (label::BitString::CompareKeyed(it->key,
                                           it->op->target_label.start,
                                           end_key, lab.end) >= 0) {
          break;
        }
        if (!label::IsDescendantOf(it->op->target_label, lab)) continue;
        if (NonLocalOverride(*over.op, *it->op)) {
          *over_out = over.index;
          *inner_out = it->index;
          return true;
        }
      }
    }
    return false;
  };
  int x = -1;
  int y = -1;
  if (scan_overriders(a_sorted, b_sorted, &x, &y)) {
    report.verdict = IndependenceVerdict::kMustConflict;
    report.op_a = x;
    report.op_b = y;
    report.reason = "non-local-override";
    return report;
  }
  if (scan_overriders(b_sorted, a_sorted, &x, &y)) {
    report.verdict = IndependenceVerdict::kMustConflict;
    report.op_a = y;
    report.op_b = x;
    report.reason = "non-local-override";
    return report;
  }

  // Fully labeled and no rule can fire on any related pair: the label
  // sets are disjoint per conflict class — provably no conflict.
  report.verdict = IndependenceVerdict::kIndependent;
  report.reason = "disjoint";
  return report;
}

}  // namespace xupdate::analysis
