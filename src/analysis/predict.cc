#include "analysis/predict.h"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "label/bitstring.h"
#include "label/node_label.h"
#include "pul/update_op.h"

namespace xupdate::analysis {

namespace {

using label::BitString;
using label::NodeLabel;
using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using xml::kInvalidNode;
using xml::NodeId;
using xml::NodeType;

bool IsKillerKind(OpKind kind) {
  return kind == OpKind::kReplaceNode || kind == OpKind::kDelete ||
         kind == OpKind::kReplaceChildren;
}

// Marks the ops the first override sweep (rules O3/O4) is guaranteed to
// drop: target strictly inside the subtree interval of another op's
// repN/del target, or of a repC target (attributes of the repC target
// itself excepted). Mirrors Reducer::SweepOverrides.
std::vector<char> SweptOps(const std::vector<UpdateOp>& ops) {
  std::vector<char> swept(ops.size(), 0);
  struct Event {
    const BitString* code;
    int type;  // 0 = query, 1 = killer-interval open
    int op_index;
  };
  std::vector<Event> events;
  events.reserve(ops.size() * 2);
  for (size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (!op.target_label.valid()) continue;
    events.push_back({&op.target_label.start, 0, static_cast<int>(i)});
    if (IsKillerKind(op.kind)) {
      events.push_back({&op.target_label.start, 1, static_cast<int>(i)});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              int c = a.code->Compare(*b.code);
              if (c != 0) return c < 0;
              return a.type < b.type;
            });
  struct OpenKiller {
    int op_index;
    bool children_only;
  };
  std::vector<OpenKiller> open;
  for (const Event& ev : events) {
    const UpdateOp& op = ops[static_cast<size_t>(ev.op_index)];
    while (!open.empty()) {
      const UpdateOp& killer = ops[static_cast<size_t>(open.back().op_index)];
      if (killer.target_label.end < *ev.code) {
        open.pop_back();
      } else {
        break;
      }
    }
    if (ev.type == 1) {
      open.push_back({ev.op_index, op.kind == OpKind::kReplaceChildren});
      continue;
    }
    for (const OpenKiller& k : open) {
      const UpdateOp& killer = ops[static_cast<size_t>(k.op_index)];
      if (killer.target == op.target) continue;
      if (k.children_only && op.target_label.parent == killer.target &&
          op.target_label.type == NodeType::kAttribute) {
        continue;
      }
      swept[static_cast<size_t>(ev.op_index)] = 1;
      break;
    }
  }
  return swept;
}

// Most ops the Figure 2 fixpoint can keep on one target, from the kind
// counts of the ops initially aimed at it. Every merge result inherits
// the (target, kind) of one constituent, so the fixpoint constraints
// (no same-target repN/del + overridable pair, no repN + sibling
// insertion, no two same-kind insertions, no repC + child insertion,
// no insInto + insFirst/insLast) bound the survivors from the initial
// counts alone.
size_t GroupUpperBound(const std::array<size_t, pul::kNumOpKinds>& c) {
  auto count = [&c](OpKind k) { return c[static_cast<size_t>(k)]; };
  size_t before = count(OpKind::kInsBefore) > 0 ? 1 : 0;
  size_t after = count(OpKind::kInsAfter) > 0 ? 1 : 0;
  if (count(OpKind::kReplaceNode) > 0) return count(OpKind::kReplaceNode);
  if (count(OpKind::kDelete) > 0) return 1 + before + after;
  size_t total = count(OpKind::kRename) + count(OpKind::kReplaceValue) +
                 count(OpKind::kReplaceChildren);
  if (count(OpKind::kInsAttributes) > 0) total += 1;
  if (count(OpKind::kReplaceChildren) == 0) {
    size_t families = (count(OpKind::kInsFirst) > 0 ? 1 : 0) +
                      (count(OpKind::kInsLast) > 0 ? 1 : 0) +
                      (count(OpKind::kInsInto) > 0 ? 1 : 0);
    if (count(OpKind::kInsInto) > 0 &&
        (count(OpKind::kInsFirst) > 0 || count(OpKind::kInsLast) > 0)) {
      families -= 1;  // I6/I7 fold the insInto family into first/last
    }
    total += families;
  }
  return total + before + after;
}

// True if any pair of ops is related by a rule relation: same target,
// parent / left-sibling link (the I10-I20 neighbor rules), or interval
// containment (the O3/O4 sweep). Without such a pair the fixpoint is
// empty and Reduce cannot change the operation list.
bool AnyRelatedPair(const std::vector<UpdateOp>& ops) {
  std::unordered_set<NodeId> targets;
  for (const UpdateOp& op : ops) {
    if (!targets.insert(op.target).second) return true;  // shared target
  }
  for (const UpdateOp& op : ops) {
    const NodeLabel& lab = op.target_label;
    if (!lab.valid()) continue;
    if (lab.parent != kInvalidNode && targets.count(lab.parent) != 0) {
      return true;
    }
    if (lab.left_sibling != kInvalidNode &&
        targets.count(lab.left_sibling) != 0) {
      return true;
    }
  }
  // Containment: sweep the labeled target intervals in document order;
  // any interval opening inside another means a nested pair.
  std::vector<const NodeLabel*> labeled;
  labeled.reserve(ops.size());
  for (const UpdateOp& op : ops) {
    if (op.target_label.valid()) labeled.push_back(&op.target_label);
  }
  std::sort(labeled.begin(), labeled.end(),
            [](const NodeLabel* a, const NodeLabel* b) {
              return a->start < b->start;
            });
  const NodeLabel* open = nullptr;
  for (const NodeLabel* lab : labeled) {
    if (open != nullptr && lab->start < open->end) return true;
    if (open == nullptr || open->end < lab->start) open = lab;
  }
  return false;
}

}  // namespace

ReductionPrediction PredictReduction(const Pul& pul) {
  ReductionPrediction p;
  const std::vector<UpdateOp>& ops = pul.ops();
  p.input_ops = ops.size();
  for (const UpdateOp& op : ops) {
    if (op.kind == OpKind::kInsInto) {
      p.has_ins_into = true;
      break;
    }
  }
  if (ops.empty()) {
    p.no_rule_can_fire = true;
    return p;
  }
  p.no_rule_can_fire = !AnyRelatedPair(ops);
  if (p.no_rule_can_fire) {
    p.surviving_upper_bound = ops.size();
    return p;
  }

  std::vector<char> swept = SweptOps(ops);
  std::unordered_map<NodeId, std::array<size_t, pul::kNumOpKinds>> groups;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (swept[i] != 0) continue;
    auto [it, inserted] = groups.emplace(
        ops[i].target, std::array<size_t, pul::kNumOpKinds>{});
    ++it->second[static_cast<size_t>(ops[i].kind)];
  }
  size_t bound = 0;
  for (const auto& [target, counts] : groups) {
    bound += GroupUpperBound(counts);
  }
  p.surviving_upper_bound = std::min(bound, ops.size());
  p.guaranteed_kills = p.input_ops - p.surviving_upper_bound;
  return p;
}

}  // namespace xupdate::analysis
