#include "analysis/report.h"

#include <cstdio>

#include "common/string_util.h"

namespace xupdate::analysis {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string JsonEscape(std::string_view text) {
  return xupdate::JsonEscape(text);
}

std::string DiagnosticsToJson(const DiagnosticReport& report) {
  std::string out = "[";
  for (size_t i = 0; i < report.size(); ++i) {
    const Diagnostic& d = report[i];
    if (i > 0) out += ',';
    out += "{\"code\":\"";
    out += d.code;
    out += "\",\"severity\":\"";
    out += SeverityName(d.severity);
    out += "\",\"op\":";
    out += std::to_string(d.op_index);
    out += ",\"related\":";
    out += std::to_string(d.related_op);
    out += ",\"message\":\"";
    out += JsonEscape(d.message);
    out += "\"}";
  }
  out += ']';
  return out;
}

std::string PredictionToJson(const ReductionPrediction& p) {
  std::string out = "{\"inputOps\":";
  out += std::to_string(p.input_ops);
  out += ",\"survivingUpperBound\":";
  out += std::to_string(p.surviving_upper_bound);
  out += ",\"guaranteedKills\":";
  out += std::to_string(p.guaranteed_kills);
  out += ",\"noRuleCanFire\":";
  out += p.no_rule_can_fire ? "true" : "false";
  out += ",\"hasInsInto\":";
  out += p.has_ins_into ? "true" : "false";
  out += '}';
  return out;
}

std::string IndependenceToJson(const IndependenceReport& r) {
  std::string out = "{\"verdict\":\"";
  out += IndependenceVerdictName(r.verdict);
  out += "\",\"reason\":\"";
  out += JsonEscape(r.reason);
  out += "\",\"opA\":";
  out += std::to_string(r.op_a);
  out += ",\"opB\":";
  out += std::to_string(r.op_b);
  out += '}';
  return out;
}

}  // namespace xupdate::analysis
