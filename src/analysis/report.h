#ifndef XUPDATE_ANALYSIS_REPORT_H_
#define XUPDATE_ANALYSIS_REPORT_H_

#include <string>
#include <string_view>

#include "analysis/diagnostic.h"
#include "analysis/independence.h"
#include "analysis/predict.h"

namespace xupdate::analysis {

// JSON rendering of the analyzer outputs, byte-deterministic (fixed key
// order, no locale-dependent formatting) so reports can be diffed and
// golden-tested. Shapes:
//
//   DiagnosticsToJson:
//     [{"code":"XU001","severity":"error","op":3,"related":1,
//       "message":"..."}, ...]
//   PredictionToJson:
//     {"inputOps":10,"survivingUpperBound":6,"guaranteedKills":4,
//      "noRuleCanFire":false,"hasInsInto":true}
//   IndependenceToJson:
//     {"verdict":"must-conflict","reason":"local-override",
//      "opA":2,"opB":0}
[[nodiscard]] std::string DiagnosticsToJson(const DiagnosticReport& report);
[[nodiscard]] std::string PredictionToJson(const ReductionPrediction& p);
[[nodiscard]] std::string IndependenceToJson(const IndependenceReport& r);

// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string JsonEscape(std::string_view text);

}  // namespace xupdate::analysis

#endif  // XUPDATE_ANALYSIS_REPORT_H_
