#include "analysis/lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "label/bitstring.h"
#include "label/node_label.h"
#include "pul/update_op.h"

namespace xupdate::analysis {

namespace {

using label::BitString;
using label::NodeLabel;
using pul::OpClass;
using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using xml::kInvalidNode;
using xml::NodeId;
using xml::NodeType;

void Emit(DiagnosticReport* report, Severity severity, const char* code,
          int op_index, int related_op, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.code = code;
  d.op_index = op_index;
  d.related_op = related_op;
  d.message = std::move(message);
  report->push_back(std::move(d));
}

std::string OpDescription(const UpdateOp& op, int index) {
  std::string s = "op ";
  s += std::to_string(index);
  s += " (";
  s += pul::OpKindName(op.kind);
  s += " on node ";
  s += std::to_string(op.target);
  s += ")";
  return s;
}

// XU001: a second replacement-class op of the same kind on one target
// makes the PUL incompatible (Definition 3) — Reduce and Integrate both
// refuse it.
void LintDuplicateReplacements(const Pul& pul, DiagnosticReport* report) {
  std::map<std::pair<NodeId, int>, int> first_seen;
  const auto& ops = pul.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (pul::ClassOf(ops[i].kind) != OpClass::kReplacement) continue;
    auto key = std::make_pair(ops[i].target, static_cast<int>(ops[i].kind));
    auto [it, inserted] = first_seen.emplace(key, static_cast<int>(i));
    if (inserted) continue;
    Emit(report, Severity::kError, kCodeDuplicateReplacement,
         static_cast<int>(i), it->second,
         OpDescription(ops[i], static_cast<int>(i)) +
             " repeats the replacement of op " + std::to_string(it->second) +
             "; the PUL violates Definition 3");
  }
}

// XU002: the op's target sits strictly inside a subtree this same PUL
// removes with del / repN (or replaces the children of, for non-attribute
// descendants, with repC) — the override sweep O3/O4 erases it, so it is
// dead weight the producer can drop at the source. The overriding ops
// themselves and same-target pairs are O1/O2 turf, not reported here.
void LintOverriddenBySubtree(const Pul& pul, DiagnosticReport* report) {
  struct Killer {
    const UpdateOp* op;
    int index;
  };
  std::vector<Killer> killers;
  const auto& ops = pul.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (!op.target_label.valid()) continue;
    if (op.kind == OpKind::kDelete || op.kind == OpKind::kReplaceNode ||
        op.kind == OpKind::kReplaceChildren) {
      killers.push_back({&op, static_cast<int>(i)});
    }
  }
  if (killers.empty()) return;
  for (size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (!op.target_label.valid()) continue;
    for (const Killer& k : killers) {
      if (k.index == static_cast<int>(i)) continue;
      if (k.op->target == op.target) continue;
      if (!label::IsDescendantOf(op.target_label, k.op->target_label)) {
        continue;
      }
      if (k.op->kind == OpKind::kReplaceChildren &&
          op.target_label.parent == k.op->target &&
          op.target_label.type == NodeType::kAttribute) {
        continue;  // attributes of the repC target survive
      }
      Emit(report, Severity::kWarning, kCodeOverriddenBySubtreeOp,
           static_cast<int>(i), k.index,
           OpDescription(op, static_cast<int>(i)) +
               " targets a node inside the subtree that op " +
               std::to_string(k.index) + " (" +
               std::string(pul::OpKindName(k.op->kind)) +
               ") removes; reduction erases it");
      break;  // one witness per op is enough
    }
  }
}

// XU003: insBefore / insAfter need a sibling position, which attributes
// and unparented (root or detached) nodes do not have.
void LintDanglingSiblingRefs(const Pul& pul, DiagnosticReport* report) {
  const auto& ops = pul.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (op.kind != OpKind::kInsBefore && op.kind != OpKind::kInsAfter) {
      continue;
    }
    if (!op.target_label.valid()) continue;  // XU006 covers this
    if (op.target_label.type == NodeType::kAttribute) {
      Emit(report, Severity::kWarning, kCodeDanglingSiblingRef,
           static_cast<int>(i), -1,
           OpDescription(op, static_cast<int>(i)) +
               " inserts a sibling of an attribute node");
    } else if (op.target_label.parent == kInvalidNode) {
      Emit(report, Severity::kWarning, kCodeDanglingSiblingRef,
           static_cast<int>(i), -1,
           OpDescription(op, static_cast<int>(i)) +
               " inserts a sibling of an unparented node");
    }
  }
}

// XU004: §3.1 lists PULs in document order of their targets; canonical
// reduction and the golden outputs assume it. Report the first inversion
// only — one note per PUL, not one per unsorted pair.
void LintNonCanonicalOrder(const Pul& pul, DiagnosticReport* report) {
  const auto& ops = pul.ops();
  const BitString* prev = nullptr;
  int prev_index = -1;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].target_label.valid()) continue;
    const BitString& start = ops[i].target_label.start;
    if (prev != nullptr && start < *prev) {
      Emit(report, Severity::kInfo, kCodeNonCanonicalOrder,
           static_cast<int>(i), prev_index,
           OpDescription(ops[i], static_cast<int>(i)) +
               " precedes the target of op " + std::to_string(prev_index) +
               " in document order; listing is not canonical");
      return;
    }
    prev = &start;
    prev_index = static_cast<int>(i);
  }
}

// XU005: the same attribute name inserted twice on one target — within a
// single insA parameter list or across two insA ops — yields a document
// with duplicate attributes on application.
void LintDuplicateAttributes(const Pul& pul, DiagnosticReport* report) {
  // (target, name) -> first inserting op.
  std::map<std::pair<NodeId, std::string>, int> first_seen;
  const auto& ops = pul.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (op.kind != OpKind::kInsAttributes) continue;
    std::set<std::string> in_this_op;
    for (NodeId r : op.param_trees) {
      std::string name(pul.forest().name(r));
      if (!in_this_op.insert(name).second) {
        Emit(report, Severity::kWarning, kCodeDuplicateAttribute,
             static_cast<int>(i), static_cast<int>(i),
             OpDescription(op, static_cast<int>(i)) +
                 " inserts attribute \"" + name + "\" twice");
        continue;
      }
      auto key = std::make_pair(op.target, name);
      auto [it, inserted] = first_seen.emplace(key, static_cast<int>(i));
      if (!inserted && it->second != static_cast<int>(i)) {
        Emit(report, Severity::kWarning, kCodeDuplicateAttribute,
             static_cast<int>(i), it->second,
             OpDescription(op, static_cast<int>(i)) +
                 " inserts attribute \"" + name +
                 "\" already inserted by op " + std::to_string(it->second));
      }
    }
  }
}

// XU006 / XU007: per-op structural notes.
void LintPerOpNotes(const Pul& pul, DiagnosticReport* report) {
  const auto& ops = pul.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (!op.target_label.valid()) {
      Emit(report, Severity::kInfo, kCodeMissingTargetLabel,
           static_cast<int>(i), -1,
           OpDescription(op, static_cast<int>(i)) +
               " carries no target label; static reasoning degrades to "
               "may-conflict and Integrate rejects the PUL");
    }
    if (op.kind == OpKind::kReplaceNode && op.param_trees.empty()) {
      Emit(report, Severity::kInfo, kCodeEmptyReplaceNode,
           static_cast<int>(i), -1,
           OpDescription(op, static_cast<int>(i)) +
               " has no replacement trees and behaves like del");
    }
  }
}

}  // namespace

DiagnosticReport LintPul(const Pul& pul) {
  DiagnosticReport report;
  LintDuplicateReplacements(pul, &report);
  LintOverriddenBySubtree(pul, &report);
  LintDanglingSiblingRefs(pul, &report);
  LintNonCanonicalOrder(pul, &report);
  LintDuplicateAttributes(pul, &report);
  LintPerOpNotes(pul, &report);
  std::sort(report.begin(), report.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.op_index != b.op_index) return a.op_index < b.op_index;
              return a.code < b.code;
            });
  return report;
}

bool HasSeverity(const DiagnosticReport& report, Severity severity) {
  for (const Diagnostic& d : report) {
    if (static_cast<int>(d.severity) >= static_cast<int>(severity)) {
      return true;
    }
  }
  return false;
}

}  // namespace xupdate::analysis
