#ifndef XUPDATE_ANALYSIS_PREDICT_H_
#define XUPDATE_ANALYSIS_PREDICT_H_

#include <cstddef>

#include "pul/pul.h"

namespace xupdate::analysis {

// Static upper bound on the effect of Reduce (§3.1) on one PUL,
// computed from target ids, kinds and labels alone — the document and
// the rule engine are never touched. Intended uses: pre-sizing output
// buffers (`surviving_upper_bound`), skipping Reduce calls that are
// provably the identity (`no_rule_can_fire`), and scheduling (shards
// with high predicted kill counts first).
struct ReductionPrediction {
  size_t input_ops = 0;
  // Sound upper bound on |Reduce(pul)|: the fixpoint never keeps more
  // operations than this, in any mode.
  size_t surviving_upper_bound = 0;
  // input_ops - surviving_upper_bound: rule applications that are
  // guaranteed to happen (each removes at least one op).
  size_t guaranteed_kills = 0;
  // No pair of operations is related by any Figure 2 rule relation
  // (same target, parent / left-sibling link, subtree containment):
  // the rule fixpoint is a no-op. Reduce is then the identity in kPlain
  // mode; in kDeterministic mode it additionally requires
  // !has_ins_into (stage 10 rewrites insInto to insFirst); kCanonical
  // mode also reorders, so identity is never guaranteed there.
  bool no_rule_can_fire = false;
  bool has_ins_into = false;
};

[[nodiscard]] ReductionPrediction PredictReduction(const pul::Pul& pul);

}  // namespace xupdate::analysis

#endif  // XUPDATE_ANALYSIS_PREDICT_H_
