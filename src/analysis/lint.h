#ifndef XUPDATE_ANALYSIS_LINT_H_
#define XUPDATE_ANALYSIS_LINT_H_

#include "analysis/diagnostic.h"
#include "pul/pul.h"

namespace xupdate::analysis {

// Static well-formedness pass over one PUL: examines only the operation
// list, the target labels it carries and the parameter trees — never a
// document. Returns the findings sorted by (op_index, code). An empty
// report means the PUL is structurally clean: Definition 3 compatible,
// free of self-overridden operations, canonically ordered, and fully
// labeled.
[[nodiscard]] DiagnosticReport LintPul(const pul::Pul& pul);

// True if the report contains a diagnostic at `severity` or worse.
[[nodiscard]] bool HasSeverity(const DiagnosticReport& report,
                               Severity severity);

}  // namespace xupdate::analysis

#endif  // XUPDATE_ANALYSIS_LINT_H_
