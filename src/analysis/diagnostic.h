#ifndef XUPDATE_ANALYSIS_DIAGNOSTIC_H_
#define XUPDATE_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

namespace xupdate::analysis {

// How bad a lint finding is. Errors describe PULs the reasoning engines
// reject or whose semantics are ill-defined; warnings describe ops the
// reduction provably erases or whose structural references cannot be
// resolved; infos are style/normalization notes.
enum class Severity : int { kInfo = 0, kWarning = 1, kError = 2 };

std::string_view SeverityName(Severity severity);

// Stable diagnostic codes emitted by the lint pass. Codes are part of
// the public surface (golden tests and downstream tooling match on
// them); never renumber, only append.
//
//   XU001 error    duplicate-replacement     two replacement-class ops of the
//                                            same kind on one target
//                                            (Definition 3 incompatibility)
//   XU002 warning  overridden-by-subtree-op  op targets a node strictly inside
//                                            a subtree this same PUL deletes
//                                            or replaces (rule O3 erases it)
//   XU003 warning  dangling-sibling-ref      sibling insertion (insBefore /
//                                            insAfter) on an attribute or an
//                                            unparented node
//   XU004 info     non-canonical-order       operations not listed in document
//                                            order of their targets
//   XU005 warning  duplicate-attribute       the same attribute name inserted
//                                            twice on one target
//   XU006 info     missing-target-label      op carries no structural label;
//                                            Integrate refuses such PULs and
//                                            the static passes degrade to
//                                            may-conflict verdicts
//   XU007 info     empty-replace-node        repN with no replacement trees
//                                            (behaves exactly like del)
//   XU008 warning  schema-invalid-insertion  inserted content admitted by no
//                                            candidate parent type's content
//                                            model (schema lint only)
//   XU009 warning  deletes-required-child    every candidate (parent, child)
//                                            typing of the deleted element
//                                            is schema-required (schema lint
//                                            only)
//   XU010 warning  undeclared-attribute      insAttributes parameter name
//                                            declared on no candidate target
//                                            type (schema lint only)
inline constexpr const char* kCodeDuplicateReplacement = "XU001";
inline constexpr const char* kCodeOverriddenBySubtreeOp = "XU002";
inline constexpr const char* kCodeDanglingSiblingRef = "XU003";
inline constexpr const char* kCodeNonCanonicalOrder = "XU004";
inline constexpr const char* kCodeDuplicateAttribute = "XU005";
inline constexpr const char* kCodeMissingTargetLabel = "XU006";
inline constexpr const char* kCodeEmptyReplaceNode = "XU007";
inline constexpr const char* kCodeSchemaInvalidInsertion = "XU008";
inline constexpr const char* kCodeDeletesRequiredChild = "XU009";
inline constexpr const char* kCodeUndeclaredAttribute = "XU010";

// One lint finding, anchored on the listing index of the offending
// operation (`op_index`); `related_op` is the other half of a pairwise
// finding (the overrider, the earlier duplicate) or -1.
struct Diagnostic {
  Severity severity = Severity::kInfo;
  std::string code;
  int op_index = -1;
  int related_op = -1;
  std::string message;
};

// Diagnostics sorted by (op_index, code); convenient for golden tests.
using DiagnosticReport = std::vector<Diagnostic>;

}  // namespace xupdate::analysis

#endif  // XUPDATE_ANALYSIS_DIAGNOSTIC_H_
