#include "core/diff.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace xupdate::core {

namespace {

using label::NodeLabel;
using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using xml::Document;
using xml::kInvalidNode;
using xml::NodeId;
using xml::NodeType;

class DeltaBuilder {
 public:
  DeltaBuilder(const Document& from, const label::Labeling& labeling,
               const Document& to, NodeId fresh_floor)
      : from_(from), labeling_(labeling), to_(to),
        fresh_floor_(fresh_floor) {}

  Result<Pul> Run() {
    if (from_.root() == kInvalidNode || to_.root() == kInvalidNode) {
      return Status::InvalidArgument("both documents need a root");
    }
    if (from_.root() != to_.root()) {
      return Status::InvalidArgument(
          "documents do not share a root id; no delta exists in the "
          "Table 2 vocabulary (the root cannot be replaced)");
    }
    // Fresh parameter ids must clash with nothing in either document.
    out_.BindIdSpace(std::max({from_.max_assigned_id() + 1,
                               to_.max_assigned_id() + 1, fresh_floor_}));
    XUPDATE_RETURN_IF_ERROR(SyncElement(from_.root()));
    return std::move(out_);
  }

 private:
  Status AddOp(OpKind kind, NodeId target, std::vector<NodeId> trees,
               std::string arg) {
    UpdateOp op;
    op.kind = kind;
    op.target = target;
    if (const NodeLabel* label = labeling_.Find(target)) {
      op.target_label = *label;
    }
    op.param_trees = std::move(trees);
    op.param_string = std::move(arg);
    return out_.AddOp(std::move(op));
  }

  // Copies a `to`-subtree into the delta forest with fresh ids (moved
  // or new content; see header).
  Result<NodeId> CopyFromTo(NodeId to_node) {
    return out_.forest().AdoptSubtree(to_, to_node, /*preserve_ids=*/false,
                                      nullptr);
  }

  // A node id "survives" when both documents hold it with the same kind
  // under the same parent.
  bool Survives(NodeId id, NodeId parent) const {
    return from_.Exists(id) && to_.Exists(id) &&
           from_.type(id) == to_.type(id) &&
           from_.parent(id) == parent && to_.parent(id) == parent;
  }

  Status SyncAttributes(NodeId element) {
    const auto& from_attrs = from_.attributes(element);
    const auto& to_attrs = to_.attributes(element);
    std::unordered_set<NodeId> to_set(to_attrs.begin(), to_attrs.end());
    std::unordered_set<NodeId> from_set(from_attrs.begin(),
                                        from_attrs.end());
    std::vector<NodeId> inserted;
    for (NodeId attr : from_attrs) {
      if (to_set.count(attr) == 0 || to_.type(attr) != NodeType::kAttribute) {
        XUPDATE_RETURN_IF_ERROR(AddOp(OpKind::kDelete, attr, {}, ""));
      } else {
        if (from_.name(attr) != to_.name(attr)) {
          XUPDATE_RETURN_IF_ERROR(AddOp(OpKind::kRename, attr, {},
                                        std::string(to_.name(attr))));
        }
        if (from_.value(attr) != to_.value(attr)) {
          XUPDATE_RETURN_IF_ERROR(
              AddOp(OpKind::kReplaceValue, attr, {}, to_.value(attr)));
        }
      }
    }
    for (NodeId attr : to_attrs) {
      if (from_set.count(attr) != 0 &&
          from_.type(attr) == NodeType::kAttribute) {
        continue;
      }
      inserted.push_back(
          out_.NewAttributeParam(to_.name(attr), to_.value(attr)));
    }
    if (!inserted.empty()) {
      XUPDATE_RETURN_IF_ERROR(
          AddOp(OpKind::kInsAttributes, element, std::move(inserted), ""));
    }
    return Status::OK();
  }

  Status SyncChildren(NodeId element) {
    const auto& from_kids = from_.children(element);
    const auto& to_kids = to_.children(element);
    // Index of each surviving child in the `from` sequence.
    std::unordered_map<NodeId, size_t> from_pos;
    for (size_t i = 0; i < from_kids.size(); ++i) {
      from_pos[from_kids[i]] = i;
    }
    // Surviving children in `to` order, with their `from` positions.
    std::vector<NodeId> kept;
    std::vector<size_t> kept_from_pos;
    for (NodeId child : to_kids) {
      if (Survives(child, element)) {
        kept.push_back(child);
        kept_from_pos.push_back(from_pos.at(child));
      }
    }
    // Anchors: longest strictly increasing subsequence of the `from`
    // positions — these children keep their relative order and stay put.
    std::vector<size_t> lis_prev(kept.size(), SIZE_MAX);
    std::vector<size_t> tails;        // indices into kept
    std::vector<size_t> tail_values;  // from positions of tails
    for (size_t i = 0; i < kept.size(); ++i) {
      size_t value = kept_from_pos[i];
      size_t lo = static_cast<size_t>(
          std::lower_bound(tail_values.begin(), tail_values.end(), value) -
          tail_values.begin());
      if (lo == tail_values.size()) {
        tail_values.push_back(value);
        tails.push_back(i);
      } else {
        tail_values[lo] = value;
        tails[lo] = i;
      }
      lis_prev[i] = lo > 0 ? tails[lo - 1] : SIZE_MAX;
    }
    std::unordered_set<NodeId> anchors;
    if (!tails.empty()) {
      for (size_t i = tails.back(); i != SIZE_MAX; i = lis_prev[i]) {
        anchors.insert(kept[i]);
      }
    }

    // Deletions: every `from` child that is not an anchor disappears
    // (non-surviving ones for good, moved ones to be re-created).
    for (NodeId child : from_kids) {
      if (anchors.count(child) == 0) {
        XUPDATE_RETURN_IF_ERROR(AddOp(OpKind::kDelete, child, {}, ""));
      }
    }

    // Insertions: walk `to` children, emitting one operation per maximal
    // run between anchors; recurse into anchors.
    std::vector<NodeId> run;
    NodeId last_anchor = kInvalidNode;
    auto flush = [&]() -> Status {
      if (run.empty()) return Status::OK();
      std::vector<NodeId> trees = std::move(run);
      run.clear();
      if (last_anchor != kInvalidNode) {
        return AddOp(OpKind::kInsAfter, last_anchor, std::move(trees), "");
      }
      return AddOp(OpKind::kInsFirst, element, std::move(trees), "");
    };
    for (NodeId child : to_kids) {
      if (anchors.count(child) != 0) {
        XUPDATE_RETURN_IF_ERROR(flush());
        last_anchor = child;
        XUPDATE_RETURN_IF_ERROR(SyncNode(child));
        continue;
      }
      XUPDATE_ASSIGN_OR_RETURN(NodeId copy, CopyFromTo(child));
      run.push_back(copy);
    }
    return flush();
  }

  Status SyncNode(NodeId id) {
    switch (from_.type(id)) {
      case NodeType::kText:
        if (from_.value(id) != to_.value(id)) {
          return AddOp(OpKind::kReplaceValue, id, {}, to_.value(id));
        }
        return Status::OK();
      case NodeType::kElement:
        return SyncElement(id);
      case NodeType::kAttribute:
        return Status::Internal("attribute in a child sequence");
    }
    return Status::Internal("unknown node type");
  }

  Status SyncElement(NodeId element) {
    if (from_.name(element) != to_.name(element)) {
      XUPDATE_RETURN_IF_ERROR(AddOp(OpKind::kRename, element, {},
                                    std::string(to_.name(element))));
    }
    XUPDATE_RETURN_IF_ERROR(SyncAttributes(element));
    return SyncChildren(element);
  }

  const Document& from_;
  const label::Labeling& labeling_;
  const Document& to_;
  NodeId fresh_floor_ = 0;
  Pul out_;
};

}  // namespace

Result<pul::Pul> ComputeDelta(const Document& from,
                              const label::Labeling& from_labeling,
                              const Document& to, xml::NodeId fresh_floor) {
  DeltaBuilder builder(from, from_labeling, to, fresh_floor);
  return builder.Run();
}

}  // namespace xupdate::core
