#include "core/invert.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pul/apply.h"

namespace xupdate::core {

namespace {

using label::NodeLabel;
using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using xml::Document;
using xml::kInvalidNode;
using xml::NodeId;
using xml::NodeType;

// Kinds a same-target repN/del makes ineffective (O1's overridable set).
bool IsO1Overridable(OpKind kind) {
  switch (kind) {
    case OpKind::kRename:
    case OpKind::kReplaceValue:
    case OpKind::kReplaceChildren:
    case OpKind::kDelete:
    case OpKind::kInsFirst:
    case OpKind::kInsLast:
    case OpKind::kInsInto:
    case OpKind::kInsAttributes:
      return true;
    default:
      return false;
  }
}

// Rejects PULs that the O-rules of Figure 2 would shrink: an overridden
// operation has no effect, so inverting it would corrupt the undo.
Status CheckOIrreducible(const Document& doc, const Pul& pul) {
  std::unordered_map<NodeId, std::vector<const UpdateOp*>> by_target;
  for (const UpdateOp& op : pul.ops()) {
    by_target[op.target].push_back(&op);
  }
  for (const auto& [target, ops] : by_target) {
    const UpdateOp* killer = nullptr;
    bool has_repc = false;
    for (const UpdateOp* op : ops) {
      if (op->kind == OpKind::kDelete || op->kind == OpKind::kReplaceNode) {
        killer = op;
      }
      if (op->kind == OpKind::kReplaceChildren) has_repc = true;
    }
    for (const UpdateOp* op : ops) {
      // O1: anything but a sibling insertion next to a same-target
      // repN/del is overridden (a second del counts too).
      if (killer != nullptr && op != killer && IsO1Overridable(op->kind)) {
        return Status::InvalidArgument(
            "PUL is O-reducible (same-target override on node " +
            std::to_string(target) + "); reduce before inverting");
      }
      // O2: child insertions next to a same-target repC.
      if (has_repc &&
          (op->kind == OpKind::kInsFirst || op->kind == OpKind::kInsInto ||
           op->kind == OpKind::kInsLast)) {
        return Status::InvalidArgument(
            "PUL is O-reducible (repC overrides insertion on node " +
            std::to_string(target) + "); reduce before inverting");
      }
    }
  }
  // Nested overrides (O3/O4): no op may target a node inside a killed
  // subtree. Ground truth from the document (we have it here).
  std::vector<NodeId> killers;
  for (const UpdateOp& op : pul.ops()) {
    if (op.kind == OpKind::kDelete || op.kind == OpKind::kReplaceNode) {
      killers.push_back(op.target);
    }
  }
  for (const UpdateOp& op : pul.ops()) {
    for (NodeId killer : killers) {
      if (doc.IsAncestor(killer, op.target)) {
        return Status::InvalidArgument(
            "PUL is O-reducible (operation under removed node " +
            std::to_string(killer) + "); reduce before inverting");
      }
    }
  }
  for (const UpdateOp& op : pul.ops()) {
    if (op.kind != OpKind::kReplaceChildren) continue;
    for (const UpdateOp& other : pul.ops()) {
      if (&other == &op) continue;
      if (doc.IsAncestor(op.target, other.target) &&
          !(doc.parent(other.target) == op.target &&
            doc.type(other.target) == NodeType::kAttribute)) {
        return Status::InvalidArgument(
            "PUL is O-reducible (operation under repC target " +
            std::to_string(op.target) + "); reduce before inverting");
      }
    }
  }
  return Status::OK();
}

class Inverter {
 public:
  Inverter(const Document& doc, const label::Labeling& labeling,
           const Pul& pul)
      : doc_(doc), labeling_(labeling), pul_(pul) {}

  Result<Pul> Run();

 private:
  // Saves a copy (original ids) of the subtree at `node` into the
  // inverse PUL's forest.
  Result<NodeId> Save(NodeId node) {
    return out_.forest().AdoptSubtree(doc_, node, /*preserve_ids=*/true,
                                      nullptr);
  }

  Status AddInverseOp(OpKind kind, NodeId target,
                      std::vector<NodeId> trees, std::string arg) {
    UpdateOp op;
    op.kind = kind;
    op.target = target;
    // Surviving original nodes keep their labels so the inverse PUL can
    // itself be reasoned about; targets created by the forward PUL have
    // none.
    if (const NodeLabel* lab = labeling_.Find(target)) {
      op.target_label = *lab;
    }
    op.param_trees = std::move(trees);
    op.param_string = std::move(arg);
    return out_.AddOp(std::move(op));
  }

  // Re-insertion anchor for a removed child `v`: the nearest left
  // sibling that survives the forward PUL — or, when the neighbor was
  // replaced (repN), the last root of its replacement. Falls back to
  // insFirst under the parent.
  struct Anchor {
    OpKind kind = OpKind::kInsFirst;
    NodeId target = kInvalidNode;
  };
  Anchor AnchorFor(NodeId v) const {
    NodeId parent = doc_.parent(v);
    const auto& siblings = doc_.children(parent);
    int index = doc_.ChildIndex(v);
    for (int i = index - 1; i >= 0; --i) {
      NodeId s = siblings[static_cast<size_t>(i)];
      auto it = replacement_tail_.find(s);
      if (it != replacement_tail_.end()) {
        if (it->second != kInvalidNode) {
          return {OpKind::kInsAfter, it->second};
        }
        continue;  // deleted (or replaced by nothing): keep scanning
      }
      return {OpKind::kInsAfter, s};
    }
    return {OpKind::kInsFirst, parent};
  }

  const Document& doc_;
  const label::Labeling& labeling_;
  const Pul& pul_;
  Pul out_;
  std::unordered_set<NodeId> removed_;
  // Removed node -> last replacement root (kInvalidNode if none).
  std::unordered_map<NodeId, NodeId> replacement_tail_;
};

Result<Pul> Inverter::Run() {
  XUPDATE_RETURN_IF_ERROR(pul_.CheckCompatible());
  XUPDATE_RETURN_IF_ERROR(CheckOIrreducible(doc_, pul_));

  // First pass: removal bookkeeping for anchor computation.
  for (const UpdateOp& op : pul_.ops()) {
    if (op.kind == OpKind::kDelete) {
      removed_.insert(op.target);
      replacement_tail_[op.target] = kInvalidNode;
    } else if (op.kind == OpKind::kReplaceNode) {
      removed_.insert(op.target);
      replacement_tail_[op.target] =
          op.param_trees.empty() ? kInvalidNode : op.param_trees.back();
    }
  }

  // Deletions grouped per anchor so restored sibling order is exact:
  // map anchor -> removed nodes in document order.
  struct Group {
    Inverter::Anchor anchor;
    std::vector<NodeId> nodes;  // document order
  };
  std::map<std::pair<int, NodeId>, Group> restore_children;
  std::unordered_map<NodeId, std::vector<NodeId>> restore_attributes;

  for (const UpdateOp& op : pul_.ops()) {
    if (!doc_.Exists(op.target)) {
      return Status::NotApplicable("target node " +
                                   std::to_string(op.target) +
                                   " not in document");
    }
    switch (op.kind) {
      case OpKind::kInsBefore:
      case OpKind::kInsAfter:
      case OpKind::kInsFirst:
      case OpKind::kInsLast:
      case OpKind::kInsInto:
      case OpKind::kInsAttributes:
        // Undo an insertion by deleting the inserted roots (they keep
        // their producer-assigned ids in the updated document).
        for (NodeId root : op.param_trees) {
          XUPDATE_RETURN_IF_ERROR(
              AddInverseOp(OpKind::kDelete, root, {}, ""));
        }
        break;
      case OpKind::kReplaceValue: {
        XUPDATE_RETURN_IF_ERROR(AddInverseOp(
            OpKind::kReplaceValue, op.target, {}, doc_.value(op.target)));
        break;
      }
      case OpKind::kRename: {
        XUPDATE_RETURN_IF_ERROR(
            AddInverseOp(OpKind::kRename, op.target, {},
                           std::string(doc_.name(op.target))));
        break;
      }
      case OpKind::kReplaceChildren: {
        std::vector<NodeId> saved;
        for (NodeId child : doc_.children(op.target)) {
          XUPDATE_ASSIGN_OR_RETURN(NodeId copy, Save(child));
          saved.push_back(copy);
        }
        XUPDATE_RETURN_IF_ERROR(AddInverseOp(OpKind::kReplaceChildren,
                                               op.target, std::move(saved),
                                               ""));
        break;
      }
      case OpKind::kReplaceNode: {
        XUPDATE_ASSIGN_OR_RETURN(NodeId copy, Save(op.target));
        if (op.param_trees.empty()) {
          // Behaves like del: schedule a positional re-insertion.
          if (doc_.type(op.target) == NodeType::kAttribute) {
            restore_attributes[doc_.parent(op.target)].push_back(copy);
          } else if (doc_.parent(op.target) == kInvalidNode) {
            return Status::InvalidArgument(
                "cannot invert removal of a parentless node");
          } else {
            Anchor anchor = AnchorFor(op.target);
            auto key = std::make_pair(static_cast<int>(anchor.kind),
                                      anchor.target);
            restore_children[key].anchor = anchor;
            restore_children[key].nodes.push_back(copy);
          }
          break;
        }
        // repN(first replacement -> saved subtree), delete the rest.
        XUPDATE_RETURN_IF_ERROR(AddInverseOp(
            OpKind::kReplaceNode, op.param_trees.front(), {copy}, ""));
        for (size_t i = 1; i < op.param_trees.size(); ++i) {
          XUPDATE_RETURN_IF_ERROR(
              AddInverseOp(OpKind::kDelete, op.param_trees[i], {}, ""));
        }
        break;
      }
      case OpKind::kDelete: {
        XUPDATE_ASSIGN_OR_RETURN(NodeId copy, Save(op.target));
        if (doc_.type(op.target) == NodeType::kAttribute) {
          restore_attributes[doc_.parent(op.target)].push_back(copy);
          break;
        }
        if (doc_.parent(op.target) == kInvalidNode) {
          return Status::InvalidArgument(
              "cannot invert deletion of a parentless node");
        }
        Anchor anchor = AnchorFor(op.target);
        auto key =
            std::make_pair(static_cast<int>(anchor.kind), anchor.target);
        restore_children[key].anchor = anchor;
        restore_children[key].nodes.push_back(copy);
        break;
      }
    }
  }

  // Emit grouped re-insertions. Saved copies preserve ids, and groups
  // collect nodes in PUL order — normalize to document order of the
  // originals (copy ids equal original ids).
  for (auto& [key, group] : restore_children) {
    std::vector<NodeId>& nodes = group.nodes;
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      return doc_.Compare(a, b) < 0;
    });
    XUPDATE_RETURN_IF_ERROR(AddInverseOp(group.anchor.kind,
                                           group.anchor.target,
                                           std::move(nodes), ""));
  }
  for (auto& [parent, attrs] : restore_attributes) {
    XUPDATE_RETURN_IF_ERROR(
        AddInverseOp(OpKind::kInsAttributes, parent, std::move(attrs),
                       ""));
  }
  XUPDATE_RETURN_IF_ERROR(out_.CheckCompatible());
  return std::move(out_);
}

}  // namespace

Result<pul::Pul> Invert(const xml::Document& doc,
                        const label::Labeling& labeling,
                        const pul::Pul& pul) {
  Inverter inverter(doc, labeling, pul);
  return inverter.Run();
}

}  // namespace xupdate::core
