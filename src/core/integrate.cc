#include "core/integrate.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/independence.h"
#include "label/bitstring.h"
#include "label/node_label.h"
#include "obs/trace.h"
#include "pul/pul_view.h"
#include "schema/summary.h"
#include "pul/update_op.h"

namespace xupdate::core {

namespace {

using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using xml::NodeId;
using xml::NodeType;

// repN with an empty replacement list behaves exactly like del
// (footnote 3 of the paper); the conflict rules treat it as del.
OpKind EffectiveKind(const UpdateOp& op) {
  if (op.kind == OpKind::kReplaceNode && op.param_trees.empty()) {
    return OpKind::kDelete;
  }
  return op.kind;
}

bool IsType1Kind(OpKind kind) {
  return kind == OpKind::kRename || kind == OpKind::kReplaceNode ||
         kind == OpKind::kReplaceChildren || kind == OpKind::kReplaceValue;
}

bool IsType3Kind(OpKind kind) {
  return kind == OpKind::kInsBefore || kind == OpKind::kInsAfter ||
         kind == OpKind::kInsFirst || kind == OpKind::kInsLast;
}

// Operations a same-target repN/del overrides (local override, rule 4).
bool IsLocallyOverridable(OpKind effective) {
  switch (effective) {
    case OpKind::kRename:
    case OpKind::kReplaceValue:
    case OpKind::kReplaceChildren:
    case OpKind::kInsFirst:
    case OpKind::kInsLast:
    case OpKind::kInsAttributes:
    case OpKind::kInsInto:
    case OpKind::kDelete:
      return true;
    default:
      return false;
  }
}

// Stable trace id of an input operation: PUL index + listing index.
std::string RefId(const OpRef& ref) {
  return "P" + std::to_string(ref.pul) + "#" + std::to_string(ref.op);
}

struct TaggedOp {
  OpRef ref;
  const UpdateOp* op = nullptr;
  const Pul* owner = nullptr;
  OpKind effective = OpKind::kDelete;
  bool conflicted = false;
};

// One target node with all the operations aimed at it. The order keys
// are the 64-bit start/end code prefixes (label::BitString::PrefixKey64)
// cached at group creation: the document-order sort and the containment
// sweep compare them first and touch the codes only on key ties.
struct Group {
  NodeId target = xml::kInvalidNode;
  const label::NodeLabel* label = nullptr;
  uint64_t start_key = 0;
  uint64_t end_key = 0;
  std::vector<TaggedOp*> ops;
  std::vector<int> children;  // indices into the group vector (type-5 tree)
};

// Per-shard scratch for DetectLocalConflicts: one bucket per op kind,
// reused across the shard's groups so the 11-kind filter is a single
// pass over each group instead of kNumOpKinds passes.
struct LocalScratch {
  std::vector<TaggedOp*> by_kind[pul::kNumOpKinds];
};

// Attribute names inserted by an insA operation.
std::vector<std::string_view> InsertedAttributeNames(const TaggedOp& op) {
  std::vector<std::string_view> names;
  for (NodeId r : op.op->param_trees) {
    names.push_back(op.owner->forest().name(r));
  }
  return names;
}

class Integrator {
 public:
  Integrator(const std::vector<const Pul*>& puls,
             const IntegrateOptions& options)
      : puls_(puls), options_(options) {}

  Result<IntegrationResult> Run();

 private:
  // Appends the type 1-4 conflicts of one target group to `out`.
  // `scratch` is the calling shard's kind-bucket scratch (reused across
  // its groups; shards never share one).
  void DetectLocalConflicts(Group& group, LocalScratch* scratch,
                            std::vector<Conflict>* out);
  // Appends the type-5 conflicts of the self-contained group forest
  // groups_[begin, end) to `out`, innermost targets first (reverse
  // document order of the overriding group).
  void DetectNonLocalConflicts(size_t begin, size_t end,
                               std::vector<Conflict>* out);

  const std::vector<const Pul*>& puls_;
  const IntegrateOptions& options_;
  std::vector<TaggedOp> tagged_;
  std::vector<Group> groups_;
  std::vector<Conflict> conflicts_;
};

void Integrator::DetectLocalConflicts(Group& group, LocalScratch* scratch,
                                      std::vector<Conflict>* out) {
  // Spans of operations from at least two distinct PULs are required for
  // any conflict.
  auto distinct_puls = [](const std::vector<TaggedOp*>& ops) {
    int first = -1;
    for (const TaggedOp* t : ops) {
      if (first == -1) {
        first = t->ref.pul;
      } else if (t->ref.pul != first) {
        return true;
      }
    }
    return false;
  };

  // One bucketing pass replaces the per-kind scans; bucket order is the
  // group's op order, so the emitted conflicts are unchanged.
  for (auto& bucket : scratch->by_kind) bucket.clear();
  for (TaggedOp* t : group.ops) {
    scratch->by_kind[static_cast<int>(t->effective)].push_back(t);
  }

  // Types 1 and 3: same effective kind, same target.
  for (int k = 0; k < pul::kNumOpKinds; ++k) {
    OpKind kind = static_cast<OpKind>(k);
    if (!IsType1Kind(kind) && !IsType3Kind(kind)) continue;
    const std::vector<TaggedOp*>& same_kind = scratch->by_kind[k];
    if (same_kind.size() < 2 || !distinct_puls(same_kind)) continue;
    Conflict c;
    c.type = IsType1Kind(kind) ? ConflictType::kRepeatedModification
                               : ConflictType::kInsertionOrder;
    for (TaggedOp* t : same_kind) {
      c.ops.push_back(t->ref);
      t->conflicted = true;
    }
    out->push_back(std::move(c));
  }

  // Type 2: insA operations from different PULs inserting at least one
  // common attribute name; conflicts are the connected components of the
  // shared-name relation.
  const std::vector<TaggedOp*>& ins_attr =
      scratch->by_kind[static_cast<int>(OpKind::kInsAttributes)];
  if (ins_attr.size() >= 2) {
    std::vector<std::vector<std::string_view>> names;
    names.reserve(ins_attr.size());
    for (TaggedOp* t : ins_attr) names.push_back(InsertedAttributeNames(*t));
    std::vector<int> component(ins_attr.size());
    for (size_t i = 0; i < ins_attr.size(); ++i) {
      component[i] = static_cast<int>(i);
    }
    std::function<int(int)> find = [&](int x) {
      while (component[static_cast<size_t>(x)] != x) {
        x = component[static_cast<size_t>(x)];
      }
      return x;
    };
    bool any_edge = false;
    for (size_t i = 0; i < ins_attr.size(); ++i) {
      for (size_t j = i + 1; j < ins_attr.size(); ++j) {
        if (ins_attr[i]->ref.pul == ins_attr[j]->ref.pul) continue;
        bool share = false;
        for (std::string_view a : names[i]) {
          for (std::string_view b : names[j]) {
            if (a == b) {
              share = true;
              break;
            }
          }
          if (share) break;
        }
        if (share) {
          component[static_cast<size_t>(find(static_cast<int>(i)))] =
              find(static_cast<int>(j));
          any_edge = true;
        }
      }
    }
    if (any_edge) {
      // Keyed on the component's first member so conflicts come out in
      // the order the operations were listed, not in hash order.
      std::map<int, Conflict> by_component;
      for (size_t i = 0; i < ins_attr.size(); ++i) {
        by_component[find(static_cast<int>(i))].ops.push_back(
            ins_attr[i]->ref);
      }
      for (auto& [root, c] : by_component) {
        if (c.ops.size() < 2) continue;
        c.type = ConflictType::kRepeatedAttributeInsertion;
        for (const OpRef& ref : c.ops) {
          for (TaggedOp* t : ins_attr) {
            if (t->ref == ref) {
              t->conflicted = true;
              break;
            }
          }
        }
        out->push_back(std::move(c));
      }
    }
  }

  // Type 4: local overrides.
  for (TaggedOp* overrider : group.ops) {
    OpKind ok = overrider->effective;
    bool full = ok == OpKind::kReplaceNode || ok == OpKind::kDelete;
    bool children_only = ok == OpKind::kReplaceChildren;
    if (!full && !children_only) continue;
    Conflict c;
    c.type = ConflictType::kLocalOverride;
    c.overrider = overrider->ref;
    for (TaggedOp* other : group.ops) {
      if (other == overrider || other->ref.pul == overrider->ref.pul) {
        continue;
      }
      OpKind o2 = other->effective;
      bool hit = false;
      if (full) {
        hit = IsLocallyOverridable(o2) &&
              !(ok == OpKind::kDelete && o2 == OpKind::kDelete);
      } else {
        hit = o2 == OpKind::kInsFirst || o2 == OpKind::kInsInto ||
              o2 == OpKind::kInsLast;
      }
      if (hit) {
        c.ops.push_back(other->ref);
        other->conflicted = true;
      }
    }
    if (!c.ops.empty()) {
      overrider->conflicted = true;
      out->push_back(std::move(c));
    }
  }
}

void Integrator::DetectNonLocalConflicts(size_t begin, size_t end,
                                         std::vector<Conflict>* out) {
  // Postorder over the target tree built in Run(); every node passes the
  // list of operations in its subtree up to its parent, where the
  // ancestor's repN/del/repC operations are matched against them.
  std::vector<std::vector<TaggedOp*>> subtree(end - begin);
  // groups_ is in document order, so children always follow parents;
  // iterate in reverse for a valid postorder.
  for (size_t gi = end; gi-- > begin;) {
    Group& g = groups_[gi];
    std::vector<TaggedOp*> below;
    for (int child : g.children) {
      auto& sub = subtree[static_cast<size_t>(child) - begin];
      below.insert(below.end(), sub.begin(), sub.end());
      sub.clear();
      sub.shrink_to_fit();
    }
    for (TaggedOp* overrider : g.ops) {
      OpKind ok = overrider->effective;
      bool full = ok == OpKind::kReplaceNode || ok == OpKind::kDelete;
      bool children_only = ok == OpKind::kReplaceChildren;
      if (!full && !children_only) continue;
      Conflict c;
      c.type = ConflictType::kNonLocalOverride;
      c.overrider = overrider->ref;
      for (TaggedOp* other : below) {
        if (other->ref.pul == overrider->ref.pul) continue;
        if (other->effective == OpKind::kDelete) continue;
        if (children_only &&
            other->op->target_label.parent == g.target &&
            other->op->target_label.type == NodeType::kAttribute) {
          continue;  // attributes of the repC target survive
        }
        c.ops.push_back(other->ref);
        other->conflicted = true;
      }
      if (!c.ops.empty()) {
        overrider->conflicted = true;
        out->push_back(std::move(c));
      }
    }
    below.insert(below.end(), g.ops.begin(), g.ops.end());
    subtree[gi - begin] = std::move(below);
  }
}

Result<IntegrationResult> Integrator::Run() {
  Metrics* metrics = options_.metrics;
  if (metrics) metrics->AddCounter("integrate.calls");

  // Tag and validate.
  for (size_t p = 0; p < puls_.size(); ++p) {
    XUPDATE_RETURN_IF_ERROR(puls_[p]->CheckCompatible());
    const auto& ops = puls_[p]->ops();
    for (size_t o = 0; o < ops.size(); ++o) {
      if (!ops[o].target_label.valid()) {
        return Status::InvalidArgument(
            "integration requires target labels on every operation");
      }
      TaggedOp t;
      t.ref = {static_cast<int>(p), static_cast<int>(o)};
      t.op = &ops[o];
      t.owner = puls_[p];
      t.effective = EffectiveKind(ops[o]);
      tagged_.push_back(t);
    }
  }
  if (metrics) metrics->AddCounter("integrate.input_ops", tagged_.size());

  obs::Tracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr;
  obs::TraceLane input_lane;
  if (tracing) {
    input_lane = tracer->Lane(tracer->NextPhase(), 0, "integrate");
    size_t cursor = 0;
    for (size_t p = 0; p < puls_.size(); ++p) {
      std::vector<std::string> ids;
      ids.reserve(puls_[p]->size());
      for (size_t o = 0; o < puls_[p]->size(); ++o) {
        ids.push_back(RefId(tagged_[cursor + o].ref));
      }
      cursor += puls_[p]->size();
      input_lane.Emit(obs::EventKind::kNote, "input", std::move(ids), {},
                      "P" + std::to_string(p));
    }
  }

  // Fast-path body shared by the schema and static tiers: when every
  // PUL pair is provably independent no conflict rule can fire, and
  // Delta is simply the union of all operations — identical to what the
  // detection path below produces with an empty conflict list, at a
  // fraction of the cost.
  auto merge_all = [this, tracing,
                    &input_lane](const char* label,
                                 const char* note) -> Result<IntegrationResult> {
    if (tracing) {
      input_lane.Emit(obs::EventKind::kFastPathTaken, label, {}, {}, note);
    }
    IntegrationResult result;
    size_t j = 0;
    for (const TaggedOp& t : tagged_) {
      XUPDATE_RETURN_IF_ERROR(
          result.merged.AdoptOp(t.owner->forest(), *t.op));
      if (tracing) {
        input_lane.Emit(obs::EventKind::kOpSurvived,
                        pul::OpKindName(t.op->kind), {RefId(t.ref)},
                        "merged#" + std::to_string(j));
      }
      ++j;
    }
    return result;
  };

  // Schema tier (tier 0): one touched-type summary per PUL, one O(types)
  // set comparison per pair — no per-op sweep at all. Sound relative to
  // documents conforming to the schema: a proven pair is one the static
  // analyzer below would also call independent.
  if (options_.use_schema_analysis && options_.schema != nullptr &&
      puls_.size() >= 2) {
    ScopedTimer timer(metrics, "integrate.schema_analysis_seconds");
    std::vector<schema::TypeSummary> summaries;
    summaries.reserve(puls_.size());
    for (const pul::Pul* p : puls_) {
      summaries.push_back(schema::InferTouchedTypes(*options_.schema, *p));
    }
    bool all_proven = true;
    for (size_t i = 0; i < puls_.size() && all_proven; ++i) {
      for (size_t j = i + 1; j < puls_.size(); ++j) {
        if (metrics) metrics->AddCounter("integrate.schema.pairs");
        if (schema::DecideIndependence(summaries[i], summaries[j]) !=
            schema::SchemaVerdict::kProvenIndependent) {
          all_proven = false;
          break;
        }
        if (metrics) metrics->AddCounter("integrate.schema.proven");
      }
    }
    if (all_proven) {
      if (metrics) {
        metrics->AddCounter("integrate.schema.skips");
        metrics->AddCounter("integrate.conflicts", 0);
      }
      return merge_all("schema-independent",
                       "all PUL pairs proven independent at type level");
    }
  }

  if (options_.use_static_analysis && puls_.size() >= 2) {
    ScopedTimer timer(metrics, "integrate.static_analysis_seconds");
    bool all_independent = true;
    for (size_t i = 0; i < puls_.size() && all_independent; ++i) {
      for (size_t j = i + 1; j < puls_.size(); ++j) {
        analysis::IndependenceReport verdict =
            analysis::AnalyzeIndependence(*puls_[i], *puls_[j]);
        if (verdict.verdict !=
            analysis::IndependenceVerdict::kIndependent) {
          all_independent = false;
          break;
        }
        if (metrics) metrics->AddCounter("integrate.static.independent_pairs");
      }
    }
    if (all_independent) {
      if (metrics) {
        metrics->AddCounter("integrate.static.skips");
        metrics->AddCounter("integrate.conflicts", 0);
      }
      return merge_all("static-independent",
                       "all PUL pairs statically independent");
    }
  }

  // Roots of the containment forest; each root starts a contiguous run
  // of groups (a shard) that no conflict rule reaches across.
  std::vector<size_t> roots;
  obs::TraceLane group_lane;
  if (tracing) {
    group_lane = tracer->Lane(tracer->NextPhase(), 0, "integrate");
  }
  {
    obs::TraceSpan span(&group_lane, "group");
    ScopedTimer timer(metrics, "integrate.group_seconds");

    // Partition by target in document order of the targets. The flat
    // target index replaces the hash map: Head() is the group of a
    // target, -1 if unseen.
    pul::TargetIndex group_of;
    group_of.Reset(tagged_.size());
    for (TaggedOp& t : tagged_) {
      int32_t gi = group_of.Head(t.op->target);
      if (gi < 0) {
        gi = static_cast<int32_t>(groups_.size());
        group_of.Append(t.op->target, gi);
        Group g;
        g.target = t.op->target;
        g.label = &t.op->target_label;
        g.start_key = t.op->target_label.start.PrefixKey64();
        g.end_key = t.op->target_label.end.PrefixKey64();
        groups_.push_back(std::move(g));
      }
      groups_[static_cast<size_t>(gi)].ops.push_back(&t);
    }
    std::sort(groups_.begin(), groups_.end(),
              [](const Group& a, const Group& b) {
                return label::BitString::CompareKeyed(
                           a.start_key, a.label->start, b.start_key,
                           b.label->start) < 0;
              });

    // Containment tree over the sorted targets: the parent of a group is
    // the closest enclosing target (paper's tree T; a virtual root covers
    // forests). Stack sweep over document order, on the cached keys.
    std::vector<int> stack;
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      const Group& g = groups_[gi];
      while (!stack.empty()) {
        const Group& top = groups_[static_cast<size_t>(stack.back())];
        if (label::BitString::CompareKeyed(top.end_key, top.label->end,
                                           g.start_key,
                                           g.label->start) < 0) {
          stack.pop_back();
        } else {
          break;
        }
      }
      if (stack.empty()) {
        roots.push_back(gi);
      } else {
        groups_[static_cast<size_t>(stack.back())].children.push_back(
            static_cast<int>(gi));
      }
      stack.push_back(static_cast<int>(gi));
    }
  }

  const size_t num_shards = roots.size();
  if (metrics) metrics->AddCounter("integrate.shards", num_shards);

  // One detect-phase lane per shard, created on the coordinating thread
  // (the pool's task queue supplies the happens-before edge for the seq
  // counters). The shard structure does not depend on the thread count,
  // so neither does the journal.
  std::vector<obs::TraceLane> shard_lanes;
  if (tracing) {
    uint32_t detect_phase = tracer->NextPhase();
    shard_lanes.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      shard_lanes.push_back(tracer->Lane(
          detect_phase, static_cast<uint32_t>(s) + 1, "integrate"));
      size_t begin = roots[s];
      size_t end = s + 1 < num_shards ? roots[s + 1] : groups_.size();
      std::vector<std::string> ids;
      for (size_t gi = begin; gi < end; ++gi) {
        for (const TaggedOp* t : groups_[gi].ops) {
          ids.push_back(RefId(t->ref));
        }
      }
      shard_lanes[s].Emit(obs::EventKind::kShardAssigned, "shard",
                          std::move(ids));
    }
  }

  // Conflict detection, one task per root subtree. Shards own disjoint
  // groups (and therefore disjoint TaggedOps), so they only ever write
  // disjoint state.
  std::vector<std::vector<Conflict>> locals(num_shards);
  std::vector<std::vector<Conflict>> nonlocals(num_shards);
  auto scan_shard = [&](size_t s) -> Status {
    obs::TraceSpan span(tracing ? &shard_lanes[s] : nullptr, "shard-detect");
    ScopedTimer shard_timer(metrics, "integrate.shard_detect_seconds");
    size_t begin = roots[s];
    size_t end = s + 1 < num_shards ? roots[s + 1] : groups_.size();
    LocalScratch scratch;
    for (size_t gi = begin; gi < end; ++gi) {
      DetectLocalConflicts(groups_[gi], &scratch, &locals[s]);
    }
    DetectNonLocalConflicts(begin, end, &nonlocals[s]);
    if (tracing) {
      auto emit_conflict = [&](const Conflict& c) {
        std::vector<std::string> ids;
        ids.reserve(c.ops.size());
        for (const OpRef& r : c.ops) ids.push_back(RefId(r));
        shard_lanes[s].Emit(
            obs::EventKind::kConflictDetected, ConflictTypeName(c.type),
            std::move(ids),
            c.symmetric() ? std::string() : RefId(c.overrider));
      };
      for (const Conflict& c : locals[s]) emit_conflict(c);
      for (const Conflict& c : nonlocals[s]) emit_conflict(c);
    }
    return Status();
  };
  {
    ScopedTimer timer(metrics, "integrate.detect_seconds");
    if (options_.parallelism > 1 && num_shards > 1) {
      ThreadPool* pool = options_.pool;
      std::unique_ptr<ThreadPool> owned;
      if (pool == nullptr) {
        owned = std::make_unique<ThreadPool>(
            std::min(static_cast<size_t>(options_.parallelism), num_shards));
        pool = owned.get();
      }
      XUPDATE_RETURN_IF_ERROR(ParallelFor(pool, num_shards, scan_shard));
    } else {
      for (size_t s = 0; s < num_shards; ++s) {
        XUPDATE_RETURN_IF_ERROR(scan_shard(s));
      }
    }
  }

  // The sequential engine lists every local conflict in document order
  // of the target, then every non-local conflict in reverse document
  // order of the overriding target; concatenating the shard lists
  // forward resp. backward reproduces that exactly.
  for (size_t s = 0; s < num_shards; ++s) {
    for (Conflict& c : locals[s]) conflicts_.push_back(std::move(c));
  }
  for (size_t s = num_shards; s-- > 0;) {
    for (Conflict& c : nonlocals[s]) conflicts_.push_back(std::move(c));
  }
  if (metrics) {
    metrics->AddCounter("integrate.conflicts", conflicts_.size());
    for (const Conflict& c : conflicts_) {
      metrics->AddCounter("integrate.conflicts.type" +
                          std::to_string(static_cast<int>(c.type)));
    }
  }

  // Delta: all unconflicted operations, merged into a single PUL.
  obs::TraceLane merge_lane;
  if (tracing) {
    merge_lane = tracer->Lane(tracer->NextPhase(), 0, "integrate");
  }
  ScopedTimer timer(metrics, "integrate.merge_seconds");
  obs::TraceSpan merge_span(&merge_lane, "merge");
  IntegrationResult result;
  size_t j = 0;
  for (const TaggedOp& t : tagged_) {
    if (t.conflicted) continue;
    XUPDATE_RETURN_IF_ERROR(
        result.merged.AdoptOp(t.owner->forest(), *t.op));
    if (tracing) {
      merge_lane.Emit(obs::EventKind::kOpSurvived,
                      pul::OpKindName(t.op->kind), {RefId(t.ref)},
                      "merged#" + std::to_string(j));
    }
    ++j;
  }
  result.conflicts = std::move(conflicts_);
  return result;
}

}  // namespace

std::string_view ConflictTypeName(ConflictType type) {
  switch (type) {
    case ConflictType::kRepeatedModification:
      return "repeated-modification";
    case ConflictType::kRepeatedAttributeInsertion:
      return "repeated-attribute-insertion";
    case ConflictType::kInsertionOrder:
      return "insertion-order";
    case ConflictType::kLocalOverride:
      return "local-override";
    case ConflictType::kNonLocalOverride:
      return "non-local-override";
  }
  return "unknown";
}

Result<IntegrationResult> Integrate(
    const std::vector<const pul::Pul*>& puls) {
  return Integrate(puls, IntegrateOptions());
}

Result<IntegrationResult> Integrate(const std::vector<const pul::Pul*>& puls,
                                    const IntegrateOptions& options) {
  Integrator integrator(puls, options);
  return integrator.Run();
}

}  // namespace xupdate::core
