#include "core/reduce.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/predict.h"
#include "label/bitstring.h"
#include "label/node_label.h"
#include "obs/trace.h"
#include "pul/pul_view.h"
#include "pul/update_op.h"
#include "xml/serializer.h"

namespace xupdate::core {

namespace {

using label::BitString;
using label::NodeLabel;
using pul::OpClass;
using pul::OpKind;
using pul::Pul;
using pul::UpdateOp;
using xml::kInvalidNode;
using xml::NodeId;
using xml::NodeType;

bool IsChildInsertion(OpKind kind) {
  return kind == OpKind::kInsFirst || kind == OpKind::kInsInto ||
         kind == OpKind::kInsLast;
}

// op1-kinds overridden by a same-target repN/del (rule O1): everything
// except the sibling insertions (their effect survives the target's
// removal) and repN itself.
bool IsO1Overridable(OpKind kind) {
  switch (kind) {
    case OpKind::kRename:
    case OpKind::kReplaceValue:
    case OpKind::kReplaceChildren:
    case OpKind::kDelete:
    case OpKind::kInsFirst:
    case OpKind::kInsLast:
    case OpKind::kInsInto:
    case OpKind::kInsAttributes:
      return true;
    default:
      return false;
  }
}

// One candidate rule application: ops in their rule roles plus the merge
// recipe (result kind, identity donor, parameter order).
struct PairApp {
  const char* rule;
  int op1;
  int op2;
  OpKind result;
  int shape;
  int first;
  int second;
};

// Reduction engine over a working copy of the input PUL's operations.
// Rules are found through O(1) hash lookups keyed on the structural
// information carried in the operation labels (same target, parent,
// left sibling); the A-D rules O3/O4 use one O(k log k) interval sweep
// per pass — matching the paper's optimized algorithm (§3.1).
//
// With a `subset` the engine works on just those operations (indices
// into input.ops()), reading the shared input forest but never touching
// it — several Reducers over disjoint subsets may run concurrently.
// Ranks are then the global listing indices, so shard survivors merge
// into the same order the whole-PUL run produces.
class Reducer {
 public:
  Reducer(const Pul& input, ReduceMode mode,
          const std::vector<int>* subset = nullptr,
          obs::TraceLane* lane = nullptr)
      : input_(input), mode_(mode), subset_(subset), lane_(lane) {}

  // Runs the rule fixpoint (the caller has already checked Definition 3
  // compatibility). Infallible by construction; returns Status to fit
  // the pool's exception-free task convention.
  Status RunRules();

  // Survivors of the fixpoint in working-set order. `op` points into
  // this Reducer and stays valid while it lives; `key` is filled (the <o
  // sort key) only in canonical mode.
  struct Survivor {
    size_t rank;
    std::string key;
    const UpdateOp* op;
  };
  void CollectSurvivors(std::vector<Survivor>* out);

  size_t rule_applications() const { return applications_; }

  // Sequential assembly of the surviving operations into a fresh PUL.
  Result<Pul> Assemble();

 private:
  bool Alive(int i) const { return alive_[static_cast<size_t>(i)] != 0; }
  // The working set is a pointer view: base operations alias the input
  // PUL (never copied), merged and stage-10-rewritten operations live in
  // owned_ (a deque, so addresses stay stable as it grows).
  const UpdateOp& Op(int i) const { return *view_[static_cast<size_t>(i)]; }
  size_t NumOps() const { return view_.size(); }

  void Kill(int i) {
    alive_[static_cast<size_t>(i)] = 0;
    ++applications_;
  }

  // Stable id of a working-set op: its inherited listing rank. Merge
  // constituent sets are disjoint, so min-rank inheritance keeps the ids
  // unique across the whole run.
  std::string Id(int i) const {
    return "#" + std::to_string(rank_[static_cast<size_t>(i)]);
  }

  // rule-fired event with no result = pure kill: ops[0] overrides
  // ops[1].
  void EmitKill(const char* rule, int killer, int victim) {
    if (lane_ == nullptr || !lane_->enabled()) return;
    lane_->Emit(obs::EventKind::kRuleFired, rule, {Id(killer), Id(victim)},
                {},
                std::string(pul::OpKindName(Op(killer).kind)) +
                    " overrides " +
                    std::string(pul::OpKindName(Op(victim).kind)));
  }

  int AddMerged(UpdateOp op, size_t rank) {
    int index = static_cast<int>(view_.size());
    uint64_t key = op.target_label.start.PrefixKey64();
    by_target_.Append(op.target, index);
    owned_.push_back(std::move(op));
    view_.push_back(&owned_.back());
    okey_.push_back(key);
    alive_.push_back(1);
    queued_.push_back(0);
    rank_.push_back(rank);
    return index;
  }

  // All alive ops with the given target and kind, excluding `exclude`.
  // Chains preserve append order, so partner choice matches the order
  // the per-target vectors used to produce.
  void FindPartners(NodeId target, OpKind kind, int exclude,
                    std::vector<int>* out) const {
    for (int32_t j = by_target_.Head(target); j >= 0;
         j = by_target_.Next(j)) {
      if (j != exclude && Alive(j) && Op(j).kind == kind) out->push_back(j);
    }
  }
  int FirstPartner(NodeId target, OpKind kind, int exclude) const {
    for (int32_t j = by_target_.Head(target); j >= 0;
         j = by_target_.Next(j)) {
      if (j != exclude && Alive(j) && Op(j).kind == kind) return j;
    }
    return -1;
  }

  // Builds the merged operation of an I/IR rule. `first`/`second` give
  // the parameter concatenation order; the result op's kind/target come
  // from `shape_from`.
  void ApplyMerge(const char* rule, OpKind result_kind, int shape_from,
                  int first, int second) {
    UpdateOp merged;
    merged.kind = result_kind;
    merged.target = Op(shape_from).target;
    merged.target_label = Op(shape_from).target_label;
    merged.param_trees = Op(first).param_trees;
    merged.param_trees.insert(merged.param_trees.end(),
                              Op(second).param_trees.begin(),
                              Op(second).param_trees.end());
    size_t rank = std::min(rank_[static_cast<size_t>(first)],
                           rank_[static_cast<size_t>(second)]);
    Kill(first);
    if (second != first) alive_[static_cast<size_t>(second)] = 0;
    int index = AddMerged(std::move(merged), rank);
    if (lane_ != nullptr && lane_->enabled()) {
      lane_->Emit(obs::EventKind::kRuleFired, rule, {Id(first), Id(second)},
                  Id(index), std::string(pul::OpKindName(result_kind)));
    }
    Enqueue(index);
  }

  void Enqueue(int i) {
    if (queued_[static_cast<size_t>(i)] == 0) {
      queued_[static_cast<size_t>(i)] = 1;
      worklist_.push_back(i);
    }
  }
  void EnqueueBucket(NodeId target) {
    for (int32_t j = by_target_.Head(target); j >= 0;
         j = by_target_.Next(j)) {
      if (Alive(j)) Enqueue(j);
    }
  }

  // One merge-rule application attempt centered on op `i` for `stage`.
  // Returns true if a rule fired (i or a partner may now be dead).
  bool TryMergeRules(int stage, int i);
  // Same-target drop rules O1/O2 centered on op `i`.
  bool TryDropRules(int i);
  // O3/O4: drops every op whose target lies strictly inside the interval
  // of a repN/del (or non-attribute-inside a repC) target.
  bool SweepOverrides();

  // Worklist fixpoint of the rules of `stage` (plain/deterministic).
  bool StageFixpoint(int stage);
  // One canonical-order application for `stage`; true if something fired.
  bool CanonicalStageStep(int stage);
  // All applicable ordered pairs of the rule-within-stage.
  void CollectRulePairs(int stage, int rule, std::vector<PairApp>* out);
  static int RulesInStage(int stage);

  // <o sort key (document order of targets, then parameter order).
  const std::string& OpKey(int i);

  const Pul& input_;
  ReduceMode mode_;
  const std::vector<int>* subset_;
  std::vector<const UpdateOp*> view_;  // op i; aliases input_ or owned_
  std::deque<UpdateOp> owned_;         // merged + stage-10-rewritten ops
  std::vector<uint64_t> okey_;         // cached start-code order keys
  std::vector<char> alive_;
  std::vector<char> queued_;
  std::vector<size_t> rank_;  // PUL listing order, inherited by merges
  std::deque<int> worklist_;
  pul::TargetIndex by_target_;
  // <o keys are a function of the op's content, which never changes
  // after creation, so the cache is append-only across canonical steps.
  // Deque, not vector: OpKey hands out references that must survive the
  // cache growing when merges append ops mid-fixpoint.
  std::deque<std::string> key_cache_;
  std::vector<char> key_computed_;
  pul::Arena arena_;  // sweep-event scratch, recycled between passes
  obs::TraceLane* lane_;
  size_t applications_ = 0;
};

bool Reducer::TryDropRules(int i) {
  const UpdateOp& op = Op(i);
  // O1, as the overridden side.
  if (IsO1Overridable(op.kind)) {
    int killer = FirstPartner(op.target, OpKind::kReplaceNode, i);
    if (killer < 0) killer = FirstPartner(op.target, OpKind::kDelete, i);
    if (killer >= 0) {
      EmitKill("O1", killer, i);
      Kill(i);
      return true;
    }
  }
  // O1, as the overriding side: drop overridable partners.
  if (op.kind == OpKind::kReplaceNode || op.kind == OpKind::kDelete) {
    for (int32_t j = by_target_.Head(op.target); j >= 0;
         j = by_target_.Next(j)) {
      if (j != i && Alive(j) && IsO1Overridable(Op(j).kind)) {
        EmitKill("O1", i, j);
        Kill(j);
        return true;
      }
    }
  }
  // O2: child insertions overridden by a same-target repC.
  if (IsChildInsertion(op.kind)) {
    int killer = FirstPartner(op.target, OpKind::kReplaceChildren, i);
    if (killer >= 0) {
      EmitKill("O2", killer, i);
      Kill(i);
      return true;
    }
  }
  if (op.kind == OpKind::kReplaceChildren) {
    for (int32_t j = by_target_.Head(op.target); j >= 0;
         j = by_target_.Next(j)) {
      if (j != i && Alive(j) && IsChildInsertion(Op(j).kind)) {
        EmitKill("O2", i, j);
        Kill(j);
        return true;
      }
    }
  }
  return false;
}

bool Reducer::TryMergeRules(int stage, int i) {
  const UpdateOp& op = Op(i);
  const NodeLabel& lab = op.target_label;
  // Helper lambdas for the two lookup directions.
  auto merge_same_target = [&](const char* rule, OpKind mine, OpKind other,
                               OpKind result, bool mine_first,
                               int shape) -> bool {
    // shape: 0 = my op gives target/kind identity, 1 = partner does.
    if (op.kind != mine) return false;
    int j = FirstPartner(op.target, other, i);
    if (j < 0) return false;
    int shape_from = shape == 0 ? i : j;
    if (mine_first) {
      ApplyMerge(rule, result, shape_from, i, j);
    } else {
      ApplyMerge(rule, result, shape_from, j, i);
    }
    return true;
  };

  switch (stage) {
    case 1:
      // I5: same insertion kind, same target.
      if (pul::ClassOf(op.kind) == OpClass::kInsertion) {
        int j = FirstPartner(op.target, op.kind, i);
        if (j >= 0) {
          // Keep PUL listing order: the earlier op's parameters first
          // (rank survives merging, so chained merges stay in order —
          // matching the Table 3 worked example).
          bool i_first = rank_[static_cast<size_t>(i)] <
                         rank_[static_cast<size_t>(j)];
          int first = i_first ? i : j;
          int second = i_first ? j : i;
          ApplyMerge("I5", op.kind, first, first, second);
          return true;
        }
      }
      return false;
    case 2:
      // I6: insInto(v,L1) + insFirst(v,L2) -> insFirst(v,[L2,L1]).
      if (merge_same_target("I6", OpKind::kInsInto, OpKind::kInsFirst,
                            OpKind::kInsFirst, /*mine_first=*/false, 1)) {
        return true;
      }
      return merge_same_target("I6", OpKind::kInsFirst, OpKind::kInsInto,
                               OpKind::kInsFirst, /*mine_first=*/true, 0);
    case 3:
      // I7: insInto(v,L1) + insLast(v,L2) -> insLast(v,[L1,L2]).
      if (merge_same_target("I7", OpKind::kInsInto, OpKind::kInsLast,
                            OpKind::kInsLast, /*mine_first=*/true, 1)) {
        return true;
      }
      return merge_same_target("I7", OpKind::kInsLast, OpKind::kInsInto,
                               OpKind::kInsLast, /*mine_first=*/false, 0);
    case 4:
      // IR8: repN(v,L1) + insBefore(v,L2) -> repN(v,[L2,L1]).
      // IR9: repN(v,L1) + insAfter(v,L2)  -> repN(v,[L1,L2]).
      if (merge_same_target("IR8", OpKind::kReplaceNode, OpKind::kInsBefore,
                            OpKind::kReplaceNode, /*mine_first=*/false, 0)) {
        return true;
      }
      if (merge_same_target("IR8", OpKind::kInsBefore, OpKind::kReplaceNode,
                            OpKind::kReplaceNode, /*mine_first=*/true, 1)) {
        return true;
      }
      if (merge_same_target("IR9", OpKind::kReplaceNode, OpKind::kInsAfter,
                            OpKind::kReplaceNode, /*mine_first=*/true, 0)) {
        return true;
      }
      return merge_same_target("IR9", OpKind::kInsAfter, OpKind::kReplaceNode,
                               OpKind::kReplaceNode, /*mine_first=*/false, 1);
    case 5:
      // I10: insInto(v,L1) + insBefore(v',L2), v' child of v
      //      -> insBefore(v',[L1,L2]).
      if (op.kind == OpKind::kInsBefore && lab.valid() &&
          lab.parent != kInvalidNode &&
          lab.type != NodeType::kAttribute) {
        int j = FirstPartner(lab.parent, OpKind::kInsInto, i);
        if (j >= 0) {
          ApplyMerge("I10", OpKind::kInsBefore, i, j, i);
          return true;
        }
      }
      if (op.kind == OpKind::kInsInto) {
        // Reverse direction: find an insBefore on one of v's children.
        // Children are not indexed; rely on the child-side attempt above
        // (every op passes through the worklist).
      }
      return false;
    case 6:
      // I11: insInto(v,L1) + insAfter(v',L2), v' child of v
      //      -> insAfter(v',[L2,L1]).
      if (op.kind == OpKind::kInsAfter && lab.valid() &&
          lab.parent != kInvalidNode &&
          lab.type != NodeType::kAttribute) {
        int j = FirstPartner(lab.parent, OpKind::kInsInto, i);
        if (j >= 0) {
          ApplyMerge("I11", OpKind::kInsAfter, i, i, j);
          return true;
        }
      }
      return false;
    case 7:
      // IR12: repN(v,L1) + insInto(v',L2), v child of v'
      //       -> repN(v,[L1,L2]).
      if (op.kind == OpKind::kReplaceNode && lab.valid() &&
          lab.parent != kInvalidNode &&
          lab.type != NodeType::kAttribute) {
        int j = FirstPartner(lab.parent, OpKind::kInsInto, i);
        if (j >= 0) {
          ApplyMerge("IR12", OpKind::kReplaceNode, i, i, j);
          return true;
        }
      }
      return false;
    case 8: {
      if (!lab.valid() || lab.parent == kInvalidNode) return false;
      // IR13: repN(v,L1) + insA(v',L2), v attribute of v'
      //       -> repN(v,[L1,L2]).
      if (op.kind == OpKind::kReplaceNode &&
          lab.type == NodeType::kAttribute) {
        int j = FirstPartner(lab.parent, OpKind::kInsAttributes, i);
        if (j >= 0) {
          ApplyMerge("IR13", OpKind::kReplaceNode, i, i, j);
          return true;
        }
      }
      if (lab.type == NodeType::kAttribute) return false;
      bool first_child = lab.left_sibling == kInvalidNode;
      bool last_child = lab.is_last_child;
      // I14: insBefore(v,L1) + insFirst(v',L2), v first child of v'
      //      -> insBefore(v,[L2,L1]).
      if (op.kind == OpKind::kInsBefore && first_child) {
        int j = FirstPartner(lab.parent, OpKind::kInsFirst, i);
        if (j >= 0) {
          ApplyMerge("I14", OpKind::kInsBefore, i, j, i);
          return true;
        }
      }
      // I15: insAfter(v,L1) + insLast(v',L2), v last child of v'
      //      -> insAfter(v,[L1,L2]).
      if (op.kind == OpKind::kInsAfter && last_child) {
        int j = FirstPartner(lab.parent, OpKind::kInsLast, i);
        if (j >= 0) {
          ApplyMerge("I15", OpKind::kInsAfter, i, i, j);
          return true;
        }
      }
      // IR16: repN(v,L1) + insFirst(v',L2), v first child -> repN(v,[L2,L1]).
      if (op.kind == OpKind::kReplaceNode && first_child) {
        int j = FirstPartner(lab.parent, OpKind::kInsFirst, i);
        if (j >= 0) {
          ApplyMerge("IR16", OpKind::kReplaceNode, i, j, i);
          return true;
        }
      }
      // IR17: repN(v,L1) + insLast(v',L2), v last child -> repN(v,[L1,L2]).
      if (op.kind == OpKind::kReplaceNode && last_child) {
        int j = FirstPartner(lab.parent, OpKind::kInsLast, i);
        if (j >= 0) {
          ApplyMerge("IR17", OpKind::kReplaceNode, i, i, j);
          return true;
        }
      }
      return false;
    }
    case 9: {
      if (!lab.valid() || lab.type == NodeType::kAttribute) return false;
      NodeId left = lab.left_sibling;
      // I18: insBefore(v,L1) + insAfter(v',L2), v' left sibling of v
      //      -> insBefore(v,[L2,L1]).
      if (op.kind == OpKind::kInsBefore && left != kInvalidNode) {
        int j = FirstPartner(left, OpKind::kInsAfter, i);
        if (j >= 0) {
          ApplyMerge("I18", OpKind::kInsBefore, i, j, i);
          return true;
        }
      }
      // IR19: repN(v,L1) + insAfter(v',L2), v' left sibling of v
      //       -> repN(v,[L2,L1]). (Parameter order corrected from the
      //       garbled figure; see DESIGN.md.)
      if (op.kind == OpKind::kReplaceNode && left != kInvalidNode) {
        int j = FirstPartner(left, OpKind::kInsAfter, i);
        if (j >= 0) {
          ApplyMerge("IR19", OpKind::kReplaceNode, i, j, i);
          return true;
        }
      }
      // IR20: repN(v,L1) + insBefore(v',L2), v left sibling of v'
      //       -> repN(v,[L1,L2]). Looked up from the insBefore side.
      if (op.kind == OpKind::kInsBefore && left != kInvalidNode) {
        int j = FirstPartner(left, OpKind::kReplaceNode, i);
        if (j >= 0) {
          ApplyMerge("IR20", OpKind::kReplaceNode, j, j, i);
          return true;
        }
      }
      return false;
    }
    default:
      return false;
  }
}

bool Reducer::SweepOverrides() {
  struct Event {
    uint64_t key;  // cached start-code order key of the op's target
    // 0 = query (op target), 1 = open interval. (Close events are not
    // needed: a stack ordered by interval nesting suffices.)
    int type;
    int op_index;
  };
  // Scratch comes from the arena: the sweep runs once per stage-1 pass
  // and the event array is the largest transient of the whole fixpoint.
  arena_.Reset();
  Event* events = arena_.AllocateArray<Event>(NumOps() * 2);
  size_t num_events = 0;
  for (size_t i = 0; i < NumOps(); ++i) {
    if (!Alive(static_cast<int>(i))) continue;
    const UpdateOp& op = Op(static_cast<int>(i));
    if (!op.target_label.valid()) continue;
    events[num_events++] = {okey_[i], 0, static_cast<int>(i)};
    if (op.kind == OpKind::kReplaceNode || op.kind == OpKind::kDelete ||
        op.kind == OpKind::kReplaceChildren) {
      events[num_events++] = {okey_[i], 1, static_cast<int>(i)};
    }
  }
  // Key-first comparison; the full code compare only breaks key ties, so
  // the order (and hence the sweep) is exactly the pre-key order.
  std::sort(events, events + num_events,
            [this](const Event& a, const Event& b) {
              int c = BitString::CompareKeyed(
                  a.key, Op(a.op_index).target_label.start, b.key,
                  Op(b.op_index).target_label.start);
              if (c != 0) return c < 0;
              return a.type < b.type;  // queries before opens at a node
            });
  // Stack of open killer intervals (op indices), innermost on top.
  struct OpenKiller {
    uint64_t end_key;
    const BitString* end;
    int op_index;
    bool children_only;  // repC: attributes of the target survive
  };
  std::vector<OpenKiller> open;
  bool any = false;
  for (size_t e = 0; e < num_events; ++e) {
    const Event& ev = events[e];
    const UpdateOp& op = Op(ev.op_index);
    const BitString& code = op.target_label.start;
    // Pop intervals that ended before this position.
    while (!open.empty()) {
      const OpenKiller& top = open.back();
      if (BitString::CompareKeyed(top.end_key, *top.end, ev.key, code) < 0) {
        open.pop_back();
      } else {
        break;
      }
    }
    if (ev.type == 1) {
      const BitString& end = op.target_label.end;
      open.push_back({end.PrefixKey64(), &end, ev.op_index,
                      op.kind == OpKind::kReplaceChildren});
      continue;
    }
    if (!Alive(ev.op_index) || open.empty()) continue;
    int killer_index = -1;
    for (const OpenKiller& k : open) {
      const UpdateOp& killer = Op(k.op_index);
      if (killer.target == op.target) continue;  // same node: O1/O2 turf
      if (k.children_only &&
          op.target_label.parent == killer.target &&
          op.target_label.type == NodeType::kAttribute) {
        continue;  // attribute of the repC target survives
      }
      killer_index = k.op_index;
      break;
    }
    if (killer_index >= 0) {
      const UpdateOp& killer = Op(killer_index);
      EmitKill(killer.kind == OpKind::kReplaceChildren ? "O4" : "O3",
               killer_index, ev.op_index);
      Kill(ev.op_index);
      any = true;
    }
  }
  return any;
}

bool Reducer::StageFixpoint(int stage) {
  bool any = false;
  if (stage == 1) {
    any |= SweepOverrides();
  }
  queued_.assign(NumOps(), 0);
  worklist_.clear();
  for (size_t i = 0; i < NumOps(); ++i) {
    if (Alive(static_cast<int>(i))) Enqueue(static_cast<int>(i));
  }
  while (!worklist_.empty()) {
    int i = worklist_.front();
    worklist_.pop_front();
    queued_[static_cast<size_t>(i)] = 0;
    if (!Alive(i)) continue;
    bool fired = true;
    while (fired && Alive(i)) {
      fired = false;
      if (stage == 1 && TryDropRules(i)) {
        fired = true;
        any = true;
        // A drop may enable rules for the remaining bucket members.
        EnqueueBucket(Op(i).target);
        continue;
      }
      if (TryMergeRules(stage, i)) {
        fired = true;
        any = true;
      }
    }
  }
  return any;
}

const std::string& Reducer::OpKey(int i) {
  size_t idx = static_cast<size_t>(i);
  if (idx >= key_cache_.size()) {
    key_cache_.resize(NumOps());
    key_computed_.resize(NumOps(), 0);
  }
  if (key_computed_[idx] != 0) return key_cache_[idx];
  const UpdateOp& op = Op(i);
  std::string key;
  if (op.target_label.valid()) {
    key += '0';
    key += op.target_label.start.ToString();
  } else {
    key += '1';
    char buf[24];
    snprintf(buf, sizeof(buf), "%020llu",
             static_cast<unsigned long long>(op.target));
    key += buf;
  }
  key += '\x01';
  // Lexicographic order of the serialized parameters (<lex of <o).
  for (NodeId r : op.param_trees) {
    switch (input_.forest().type(r)) {
      case NodeType::kElement: {
        auto text = xml::SerializeSubtree(input_.forest(), r, {});
        if (text.ok()) key += *text;
        break;
      }
      case NodeType::kText:
        key += "t:";
        key += input_.forest().value(r);
        break;
      case NodeType::kAttribute:
        key += "a:";
        key += input_.forest().name(r);
        key += '=';
        key += input_.forest().value(r);
        break;
    }
    key += '\x02';
  }
  key += op.param_string;
  key_computed_[idx] = 1;
  key_cache_[idx] = std::move(key);
  return key_cache_[idx];
}

void Reducer::CollectRulePairs(int stage, int rule,
                               std::vector<PairApp>* out) {
  std::vector<int> partners;
  auto emit = [&](const char* name, int op1, int op2, OpKind result,
                  int shape, int first, int second) {
    out->push_back({name, op1, op2, result, shape, first, second});
  };
  for (size_t idx = 0; idx < NumOps(); ++idx) {
    int i = static_cast<int>(idx);
    if (!Alive(i)) continue;
    const UpdateOp& op = Op(i);
    const NodeLabel& lab = op.target_label;
    partners.clear();
    switch (stage * 10 + rule) {
      case 10:  // I5: op1 and op2 same insertion kind, same target.
        if (pul::ClassOf(op.kind) != OpClass::kInsertion) break;
        FindPartners(op.target, op.kind, i, &partners);
        for (int j : partners) emit("I5", i, j, op.kind, i, i, j);
        break;
      case 20:  // I6: insInto + insFirst(v) -> insFirst(v,[L2,L1])
        if (op.kind != OpKind::kInsInto) break;
        FindPartners(op.target, OpKind::kInsFirst, i, &partners);
        for (int j : partners) emit("I6", i, j, OpKind::kInsFirst, j, j, i);
        break;
      case 30:  // I7: insInto + insLast(v) -> insLast(v,[L1,L2])
        if (op.kind != OpKind::kInsInto) break;
        FindPartners(op.target, OpKind::kInsLast, i, &partners);
        for (int j : partners) emit("I7", i, j, OpKind::kInsLast, j, i, j);
        break;
      case 40:  // IR8: repN + insBefore(v) -> repN(v,[L2,L1])
        if (op.kind != OpKind::kReplaceNode) break;
        FindPartners(op.target, OpKind::kInsBefore, i, &partners);
        for (int j : partners) emit("IR8", i, j, OpKind::kReplaceNode, i, j, i);
        break;
      case 41:  // IR9: repN + insAfter(v) -> repN(v,[L1,L2])
        if (op.kind != OpKind::kReplaceNode) break;
        FindPartners(op.target, OpKind::kInsAfter, i, &partners);
        for (int j : partners) emit("IR9", i, j, OpKind::kReplaceNode, i, i, j);
        break;
      case 50:  // I10: insInto(v) + insBefore(v' child of v)
        if (op.kind != OpKind::kInsBefore || !lab.valid() ||
            lab.parent == kInvalidNode ||
            lab.type == NodeType::kAttribute) {
          break;
        }
        FindPartners(lab.parent, OpKind::kInsInto, i, &partners);
        for (int j : partners) emit("I10", j, i, OpKind::kInsBefore, i, j, i);
        break;
      case 60:  // I11: insInto(v) + insAfter(v' child of v)
        if (op.kind != OpKind::kInsAfter || !lab.valid() ||
            lab.parent == kInvalidNode ||
            lab.type == NodeType::kAttribute) {
          break;
        }
        FindPartners(lab.parent, OpKind::kInsInto, i, &partners);
        for (int j : partners) emit("I11", j, i, OpKind::kInsAfter, i, i, j);
        break;
      case 70:  // IR12: repN(v child of v') + insInto(v')
        if (op.kind != OpKind::kReplaceNode || !lab.valid() ||
            lab.parent == kInvalidNode ||
            lab.type == NodeType::kAttribute) {
          break;
        }
        FindPartners(lab.parent, OpKind::kInsInto, i, &partners);
        for (int j : partners) emit("IR12", i, j, OpKind::kReplaceNode, i, i, j);
        break;
      case 80:  // IR13: repN(attribute v of v') + insA(v')
        if (op.kind != OpKind::kReplaceNode || !lab.valid() ||
            lab.parent == kInvalidNode ||
            lab.type != NodeType::kAttribute) {
          break;
        }
        FindPartners(lab.parent, OpKind::kInsAttributes, i, &partners);
        for (int j : partners) emit("IR13", i, j, OpKind::kReplaceNode, i, i, j);
        break;
      case 81:  // I14: insBefore(first child v of v') + insFirst(v')
        if (op.kind != OpKind::kInsBefore || !lab.valid() ||
            lab.parent == kInvalidNode ||
            lab.type == NodeType::kAttribute ||
            lab.left_sibling != kInvalidNode) {
          break;
        }
        FindPartners(lab.parent, OpKind::kInsFirst, i, &partners);
        for (int j : partners) emit("I14", i, j, OpKind::kInsBefore, i, j, i);
        break;
      case 82:  // I15: insAfter(last child v of v') + insLast(v')
        if (op.kind != OpKind::kInsAfter || !lab.valid() ||
            lab.parent == kInvalidNode ||
            lab.type == NodeType::kAttribute || !lab.is_last_child) {
          break;
        }
        FindPartners(lab.parent, OpKind::kInsLast, i, &partners);
        for (int j : partners) emit("I15", i, j, OpKind::kInsAfter, i, i, j);
        break;
      case 83:  // IR16: repN(first child v) + insFirst(parent)
        if (op.kind != OpKind::kReplaceNode || !lab.valid() ||
            lab.parent == kInvalidNode ||
            lab.type == NodeType::kAttribute ||
            lab.left_sibling != kInvalidNode) {
          break;
        }
        FindPartners(lab.parent, OpKind::kInsFirst, i, &partners);
        for (int j : partners) emit("IR16", i, j, OpKind::kReplaceNode, i, j, i);
        break;
      case 84:  // IR17: repN(last child v) + insLast(parent)
        if (op.kind != OpKind::kReplaceNode || !lab.valid() ||
            lab.parent == kInvalidNode ||
            lab.type == NodeType::kAttribute || !lab.is_last_child) {
          break;
        }
        FindPartners(lab.parent, OpKind::kInsLast, i, &partners);
        for (int j : partners) emit("IR17", i, j, OpKind::kReplaceNode, i, i, j);
        break;
      case 90:  // I18: insBefore(v) + insAfter(left sibling of v)
        if (op.kind != OpKind::kInsBefore || !lab.valid() ||
            lab.type == NodeType::kAttribute ||
            lab.left_sibling == kInvalidNode) {
          break;
        }
        FindPartners(lab.left_sibling, OpKind::kInsAfter, i, &partners);
        for (int j : partners) emit("I18", i, j, OpKind::kInsBefore, i, j, i);
        break;
      case 91:  // IR19: repN(v) + insAfter(left sibling of v)
        if (op.kind != OpKind::kReplaceNode || !lab.valid() ||
            lab.type == NodeType::kAttribute ||
            lab.left_sibling == kInvalidNode) {
          break;
        }
        FindPartners(lab.left_sibling, OpKind::kInsAfter, i, &partners);
        for (int j : partners) emit("IR19", i, j, OpKind::kReplaceNode, i, j, i);
        break;
      case 92:  // IR20: repN(v) + insBefore(v', v left sibling of v')
        if (op.kind != OpKind::kInsBefore || !lab.valid() ||
            lab.type == NodeType::kAttribute ||
            lab.left_sibling == kInvalidNode) {
          break;
        }
        FindPartners(lab.left_sibling, OpKind::kReplaceNode, i, &partners);
        for (int j : partners) emit("IR20", j, i, OpKind::kReplaceNode, j, j, i);
        break;
      default:
        break;
    }
  }
}

int Reducer::RulesInStage(int stage) {
  switch (stage) {
    case 4:
      return 2;
    case 8:
      return 5;
    case 9:
      return 3;
    default:
      return 1;
  }
}

bool Reducer::CanonicalStageStep(int stage) {
  // Drops are order-insensitive: flush them first through the fast path.
  if (stage == 1) {
    bool dropped = SweepOverrides();
    for (size_t i = 0; i < NumOps(); ++i) {
      int idx = static_cast<int>(i);
      if (Alive(idx) && TryDropRules(idx)) dropped = true;
    }
    if (dropped) return true;
  }
  // Definition 9: per rule, fire the <p-minimal applicable ordered pair.
  std::vector<PairApp> pairs;
  for (int rule = 0; rule < RulesInStage(stage); ++rule) {
    pairs.clear();
    CollectRulePairs(stage, rule, &pairs);
    if (pairs.empty()) continue;
    const PairApp* best = &pairs[0];
    for (const PairApp& cand : pairs) {
      if (OpKey(cand.op1) < OpKey(best->op1) ||
          (OpKey(cand.op1) == OpKey(best->op1) &&
           OpKey(cand.op2) < OpKey(best->op2))) {
        best = &cand;
      }
    }
    ApplyMerge(best->rule, best->result, best->shape, best->first,
               best->second);
    return true;
  }
  return false;
}

// Survivors are emitted in the <o order for canonical mode and in rank
// order (the listing position of the earliest operation folded into each
// survivor — unique, since merge constituent sets are disjoint) for the
// other modes. Both orders depend only on the final operation set, never
// on the rule-application interleaving, which keeps the output
// byte-deterministic across platforms and makes the parallel shard merge
// coincide with the sequential path.
Result<Pul> Reducer::Assemble() {
  Pul out;
  out.set_policies(input_.policies());
  out.BindIdSpace(1);  // ids preserved on adoption; floor irrelevant
  std::vector<int> order;
  order.reserve(NumOps());
  for (size_t i = 0; i < NumOps(); ++i) {
    if (Alive(static_cast<int>(i))) order.push_back(static_cast<int>(i));
  }
  if (mode_ == ReduceMode::kCanonical) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const std::string& ka = OpKey(a);
      const std::string& kb = OpKey(b);
      if (ka != kb) return ka < kb;
      return rank_[static_cast<size_t>(a)] < rank_[static_cast<size_t>(b)];
    });
  } else {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return rank_[static_cast<size_t>(a)] < rank_[static_cast<size_t>(b)];
    });
  }
  for (int i : order) {
    XUPDATE_RETURN_IF_ERROR(out.AdoptOp(input_.forest(), Op(i)));
  }
  return out;
}

void Reducer::CollectSurvivors(std::vector<Survivor>* out) {
  for (size_t i = 0; i < NumOps(); ++i) {
    int idx = static_cast<int>(i);
    if (!Alive(idx)) continue;
    Survivor s;
    s.rank = rank_[i];
    if (mode_ == ReduceMode::kCanonical) s.key = OpKey(idx);
    s.op = view_[i];
    out->push_back(std::move(s));
  }
}

Status Reducer::RunRules() {
  if (subset_ != nullptr) {
    view_.reserve(subset_->size());
    rank_.reserve(subset_->size());
    for (int global : *subset_) {
      rank_.push_back(static_cast<size_t>(global));
      view_.push_back(&input_.ops()[static_cast<size_t>(global)]);
    }
  } else {
    const std::vector<UpdateOp>& ops = input_.ops();
    view_.reserve(ops.size());
    rank_.resize(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      rank_[i] = i;
      view_.push_back(&ops[i]);
    }
  }
  okey_.reserve(view_.size());
  for (const UpdateOp* op : view_) {
    okey_.push_back(op->target_label.start.PrefixKey64());
  }
  alive_.assign(view_.size(), 1);
  queued_.assign(view_.size(), 0);
  by_target_.Reset(view_.size());
  for (size_t i = 0; i < view_.size(); ++i) {
    by_target_.Append(view_[i]->target, static_cast<int32_t>(i));
  }

  auto run_all_stages = [&]() {
    bool any = false;
    for (int stage = 1; stage <= 9; ++stage) {
      if (mode_ == ReduceMode::kCanonical) {
        // The key cache persists across steps: keys depend only on op
        // content, which is immutable once an op exists (merges create
        // new indices, stage 10 only flips the kind).
        while (CanonicalStageStep(stage)) {
          any = true;
        }
      } else {
        any |= StageFixpoint(stage);
      }
    }
    return any;
  };

  while (run_all_stages()) {
  }
  if (mode_ != ReduceMode::kPlain) {
    // Stage 10: determinize the surviving insInto operations. Base ops
    // alias the input, so the rewritten op is materialized in owned_.
    for (size_t i = 0; i < NumOps(); ++i) {
      if (Alive(static_cast<int>(i)) && Op(static_cast<int>(i)).kind == OpKind::kInsInto) {
        UpdateOp rewritten = Op(static_cast<int>(i));
        rewritten.kind = OpKind::kInsFirst;
        owned_.push_back(std::move(rewritten));
        view_[i] = &owned_.back();
        ++applications_;
        if (lane_ != nullptr && lane_->enabled()) {
          int idx = static_cast<int>(i);
          lane_->Emit(obs::EventKind::kRuleFired, "S10", {Id(idx)}, Id(idx),
                      "insInto -> insFirst");
        }
      }
    }
    while (run_all_stages()) {
    }
  }
  return Status::OK();
}

// Partitions the operation indices into the connected components of the
// "some Figure 2 rule or override sweep can relate these operations"
// relation, decided purely on containment labels:
//   * same target node;
//   * target's parent / immediate left sibling is another op's target
//     (the I10-I20 neighbor rules, in both lookup directions);
//   * the target interval nests inside another op's target interval
//     (the O3/O4 ancestor override sweep).
// The components are closed under rule application: a merged operation
// keeps the target (and label) of one of its constituents.
std::vector<std::vector<int>> PartitionByTargetSubtree(const Pul& input) {
  const std::vector<UpdateOp>& ops = input.ops();
  int n = static_cast<int>(ops.size());
  std::vector<int> uf(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) uf[static_cast<size_t>(i)] = i;
  auto find = [&uf](int x) {
    while (uf[static_cast<size_t>(x)] != x) {
      uf[static_cast<size_t>(x)] =
          uf[static_cast<size_t>(uf[static_cast<size_t>(x)])];
      x = uf[static_cast<size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int a, int b) { uf[static_cast<size_t>(find(a))] = find(b); };

  // First op on each target in listing order — the chain heads of the
  // flat target join.
  pul::TargetIndex by_target;
  by_target.Reset(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    by_target.Append(ops[static_cast<size_t>(i)].target, i);
  }
  for (int i = 0; i < n; ++i) {
    int head = by_target.Head(ops[static_cast<size_t>(i)].target);
    if (head != i) unite(i, head);
  }
  for (int i = 0; i < n; ++i) {
    const NodeLabel& lab = ops[static_cast<size_t>(i)].target_label;
    if (!lab.valid()) continue;
    if (lab.parent != kInvalidNode) {
      int head = by_target.Head(lab.parent);
      if (head >= 0) unite(i, head);
    }
    if (lab.left_sibling != kInvalidNode) {
      int head = by_target.Head(lab.left_sibling);
      if (head >= 0) unite(i, head);
    }
  }

  // Ancestor containment: sweep the labeled intervals in document order
  // and union every operation with the closest enclosing target, which
  // transitively covers the whole nesting chain. Order keys decide the
  // sort and the nesting pops; the full code compare only breaks ties.
  struct Interval {
    uint64_t start_key;
    uint64_t end_key;
    const BitString* start;
    const BitString* end;
    int op;
  };
  std::vector<Interval> intervals;
  intervals.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const NodeLabel& lab = ops[static_cast<size_t>(i)].target_label;
    if (!lab.valid()) continue;
    intervals.push_back({lab.start.PrefixKey64(), lab.end.PrefixKey64(),
                         &lab.start, &lab.end, i});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              int c = BitString::CompareKeyed(a.start_key, *a.start,
                                              b.start_key, *b.start);
              if (c != 0) return c < 0;
              return a.op < b.op;
            });
  std::vector<const Interval*> open;
  for (const Interval& iv : intervals) {
    while (!open.empty() &&
           BitString::CompareKeyed(open.back()->end_key, *open.back()->end,
                                   iv.start_key, *iv.start) < 0) {
      open.pop_back();
    }
    if (!open.empty()) unite(iv.op, open.back()->op);
    open.push_back(&iv);
  }

  // Components in order of their first operation (ranks stay sorted).
  std::vector<std::vector<int>> shards;
  std::unordered_map<int, size_t> shard_of_root;
  for (int i = 0; i < n; ++i) {
    int root = find(i);
    auto [it, inserted] = shard_of_root.emplace(root, shards.size());
    if (inserted) shards.emplace_back();
    shards[it->second].push_back(i);
  }
  return shards;
}

}  // namespace

Result<pul::Pul> Reduce(const pul::Pul& input, const ReduceOptions& options,
                        ReduceStats* stats) {
  XUPDATE_RETURN_IF_ERROR(input.CheckCompatible());
  if (stats != nullptr) *stats = ReduceStats{};

  // Static fast path: if no rule relation exists between any two ops the
  // fixpoint is empty and (for the non-reordering modes, absent the
  // stage-10 insInto rewrite) the reduced PUL is the input verbatim.
  if (options.use_static_analysis &&
      options.mode != ReduceMode::kCanonical) {
    ScopedTimer timer(options.metrics, "reduce.static_analysis_seconds");
    analysis::ReductionPrediction prediction =
        analysis::PredictReduction(input);
    if (prediction.no_rule_can_fire &&
        (options.mode == ReduceMode::kPlain || !prediction.has_ins_into)) {
      // Rebuilt the way Assemble does (rank order == listing order here)
      // so the bytes match the engine path exactly.
      pul::Pul out;
      out.set_policies(input.policies());
      out.BindIdSpace(1);
      for (const UpdateOp& op : input.ops()) {
        XUPDATE_RETURN_IF_ERROR(out.AdoptOp(input.forest(), op));
      }
      if (options.tracer != nullptr) {
        obs::TraceLane lane =
            options.tracer->Lane(options.tracer->NextPhase(), 0, "reduce");
        lane.Emit(obs::EventKind::kFastPathTaken, "static-identity", {}, {},
                  "no Figure 2 rule can fire");
        for (size_t i = 0; i < input.size(); ++i) {
          lane.Emit(obs::EventKind::kOpSurvived,
                    pul::OpKindName(input.ops()[i].kind),
                    {"#" + std::to_string(i)}, "out#" + std::to_string(i));
        }
      }
      if (stats != nullptr) {
        stats->input_ops = input.size();
        stats->output_ops = out.size();
        stats->rule_applications = 0;
        stats->shards = 1;
      }
      if (options.metrics != nullptr) {
        options.metrics->AddCounter("reduce.calls");
        options.metrics->AddCounter("reduce.input_ops", input.size());
        options.metrics->AddCounter("reduce.static.identity_skips");
        options.metrics->AddCounter("reduce.shards");
        options.metrics->AddCounter("reduce.output_ops", out.size());
        options.metrics->AddCounter("reduce.rule_applications", 0);
      }
      return out;
    }
  }

  std::vector<std::vector<int>> shards;
  obs::Tracer* tracer = options.tracer;
  const bool tracing = tracer != nullptr;
  // Tracing forces the shard path even at parallelism 1: the shard
  // structure is a function of the input alone, so forcing it makes the
  // journal byte-identical across every thread count.
  bool want_parallel = tracing
                           ? input.size() > 0
                           : (options.parallelism > 1 && input.size() > 1);
  obs::TraceLane partition_lane;
  if (tracing && want_parallel) {
    partition_lane = tracer->Lane(tracer->NextPhase(), 0, "reduce");
  }
  if (want_parallel) {
    obs::TraceSpan span(&partition_lane, "partition");
    ScopedTimer timer(options.metrics, "reduce.partition_seconds");
    shards = PartitionByTargetSubtree(input);
  }
  if (options.metrics != nullptr) {
    options.metrics->AddCounter("reduce.calls");
    options.metrics->AddCounter("reduce.input_ops", input.size());
  }

  if (!want_parallel || (!tracing && shards.size() <= 1)) {
    Reducer reducer(input, options.mode);
    {
      ScopedTimer timer(options.metrics, "reduce.rules_seconds");
      XUPDATE_RETURN_IF_ERROR(reducer.RunRules());
    }
    ScopedTimer timer(options.metrics, "reduce.merge_seconds");
    XUPDATE_ASSIGN_OR_RETURN(pul::Pul out, reducer.Assemble());
    if (stats != nullptr) {
      stats->input_ops = input.size();
      stats->output_ops = out.size();
      stats->rule_applications = reducer.rule_applications();
      stats->shards = 1;
    }
    if (options.metrics != nullptr) {
      options.metrics->AddCounter("reduce.shards");
      options.metrics->AddCounter("reduce.output_ops", out.size());
      options.metrics->AddCounter("reduce.rule_applications",
                                  reducer.rule_applications());
    }
    return out;
  }

  // One rules-phase lane per shard. The lanes are created (and the
  // shard-assigned inventory emitted) on the coordinating thread, then
  // each lane is handed to exactly one pool task — the task queue
  // supplies the happens-before edge for the lane's seq counter.
  std::vector<obs::TraceLane> shard_lanes;
  if (tracing) {
    uint32_t rules_phase = tracer->NextPhase();
    shard_lanes.reserve(shards.size());
    for (size_t s = 0; s < shards.size(); ++s) {
      shard_lanes.push_back(
          tracer->Lane(rules_phase, static_cast<uint32_t>(s) + 1, "reduce"));
      std::vector<std::string> ids;
      ids.reserve(shards[s].size());
      for (int g : shards[s]) ids.push_back("#" + std::to_string(g));
      shard_lanes[s].Emit(obs::EventKind::kShardAssigned, "shard",
                          std::move(ids));
    }
  }

  std::vector<std::unique_ptr<Reducer>> reducers;
  reducers.reserve(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    reducers.push_back(std::make_unique<Reducer>(
        input, options.mode, &shards[s],
        tracing ? &shard_lanes[s] : nullptr));
  }
  {
    ScopedTimer timer(options.metrics, "reduce.rules_seconds");
    ThreadPool* pool = options.pool;
    std::unique_ptr<ThreadPool> local_pool;
    if (pool == nullptr && options.parallelism > 1) {
      size_t workers = std::min<size_t>(
          static_cast<size_t>(options.parallelism), shards.size());
      local_pool = std::make_unique<ThreadPool>(workers);
      pool = local_pool.get();
    }
    Metrics* metrics = options.metrics;
    XUPDATE_RETURN_IF_ERROR(ParallelFor(
        pool, reducers.size(),
        [&reducers, &shard_lanes, tracing, metrics](size_t s) {
          obs::TraceSpan span(tracing ? &shard_lanes[s] : nullptr,
                              "shard-solve");
          ScopedTimer shard_timer(metrics, "reduce.shard_solve_seconds");
          return reducers[s]->RunRules();
        }));
  }

  obs::TraceLane merge_lane;
  if (tracing) {
    merge_lane = tracer->Lane(tracer->NextPhase(), 0, "reduce");
  }
  ScopedTimer timer(options.metrics, "reduce.merge_seconds");
  obs::TraceSpan merge_span(&merge_lane, "merge");
  std::vector<Reducer::Survivor> survivors;
  size_t applications = 0;
  for (std::unique_ptr<Reducer>& r : reducers) {
    r->CollectSurvivors(&survivors);
    applications += r->rule_applications();
  }
  if (options.mode == ReduceMode::kCanonical) {
    std::sort(survivors.begin(), survivors.end(),
              [](const Reducer::Survivor& a, const Reducer::Survivor& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.rank < b.rank;
              });
  } else {
    std::sort(survivors.begin(), survivors.end(),
              [](const Reducer::Survivor& a, const Reducer::Survivor& b) {
                return a.rank < b.rank;
              });
  }
  pul::Pul out;
  out.set_policies(input.policies());
  out.BindIdSpace(1);  // ids preserved on adoption; floor irrelevant
  for (const Reducer::Survivor& s : survivors) {
    XUPDATE_RETURN_IF_ERROR(out.AdoptOp(input.forest(), *s.op));
  }
  if (tracing) {
    for (size_t j = 0; j < survivors.size(); ++j) {
      merge_lane.Emit(obs::EventKind::kOpSurvived,
                      pul::OpKindName(survivors[j].op->kind),
                      {"#" + std::to_string(survivors[j].rank)},
                      "out#" + std::to_string(j));
    }
  }
  if (stats != nullptr) {
    stats->input_ops = input.size();
    stats->output_ops = out.size();
    stats->rule_applications = applications;
    stats->shards = shards.size();
  }
  if (options.metrics != nullptr) {
    options.metrics->AddCounter("reduce.shards", shards.size());
    options.metrics->AddCounter("reduce.output_ops", out.size());
    options.metrics->AddCounter("reduce.rule_applications", applications);
  }
  return out;
}

Result<pul::Pul> Reduce(const pul::Pul& input, ReduceMode mode) {
  ReduceOptions options;
  options.mode = mode;
  return Reduce(input, options, nullptr);
}

Result<pul::Pul> ReduceWithStats(const pul::Pul& input, ReduceMode mode,
                                 ReduceStats* stats) {
  ReduceOptions options;
  options.mode = mode;
  return Reduce(input, options, stats);
}

}  // namespace xupdate::core
